"""Targeted tests for the cSlack bookkeeping (the subtlest part of B/C).

cSlack is the conservative slack of the running chain ({current} ∪ Qedf):
it does **not** decay while the chain executes (the running job's
conservative laxity is non-decreasing at c(t) >= c̲) but a parked Qedf
entry's stored snapshot decays by the time spent parked (lines C.3/C.15).
These tests pin the arithmetic with hand-computed scenarios.
"""

import pytest

from repro.capacity import ConstantCapacity
from repro.core import VDoverScheduler
from repro.sim import Job, simulate


def J(jid, r, p, d, v=1.0):
    return Job(jid, r, p, d, v)


class TestSlackBudget:
    def test_slack_consumed_by_successive_preemptions(self):
        """Job 0 has laxity 6; two short EDF preemptions (1 + 2 units) fit
        inside it; a third (4 units) must be refused."""
        jobs = [
            J(0, 0.0, 4.0, 10.0),            # claxity 6 -> cSlack 6
            J(1, 0.5, 1.0, 8.0),             # fits: cSlack 6 >= 1
            J(2, 1.0, 2.0, 7.0),             # fits: cSlack ~4 >= 2
            J(3, 1.5, 4.0, 6.9),             # cSlack ~2 < 4 -> Qother
        ]
        r = simulate(jobs, ConstantCapacity(1.0), VDoverScheduler(k=7.0), validate=True)
        order = [s.jid for s in r.trace.segments]
        # Job 3 is refused the EDF fast-path despite its earliest deadline
        # (total demand 11 > 6.9 makes it unsalvageable); the admitted
        # chain 0/1/2 is protected and completes in full.
        assert order[:3] == [0, 1, 2]
        assert 3 not in order  # never granted the processor
        assert r.completed_ids == [0, 1, 2]
        assert r.failed_ids == [3]

    def test_chain_protection_keeps_deadlines(self):
        """The point of the cSlack test: whatever is admitted via EDF
        preemption must never cause the preempted chain to miss."""
        jobs = [
            J(0, 0.0, 5.0, 6.0, v=10.0),     # claxity 1
            J(1, 1.0, 0.9, 4.0, v=1.0),      # fits exactly (cSlack 1 >= 0.9)
        ]
        r = simulate(jobs, ConstantCapacity(1.0), VDoverScheduler(k=10.0), validate=True)
        assert r.n_completed == 2
        assert r.trace.completion_times[0] <= 6.0

    def test_refusal_when_chain_has_zero_slack(self):
        jobs = [
            J(0, 0.0, 5.0, 5.0, v=10.0),     # zero laxity: cSlack 0
            J(1, 1.0, 0.5, 3.0, v=1.0),      # earlier deadline, no slack
        ]
        r = simulate(jobs, ConstantCapacity(1.0), VDoverScheduler(k=10.0), validate=True)
        # Job 1 is parked, loses the value comparison, dies; job 0 holds.
        assert r.completed_ids == [0]
        assert r.trace.segments[0].jid == 0
        assert r.trace.segments[0].end == pytest.approx(5.0)

    def test_parked_slack_ages(self):
        """C.3: a Qedf entry restored after Δt has cSlack_prev − Δt.

        Construction: job 0 (laxity 4) is EDF-preempted by job 1 for 3
        units; on restore its slack must be ~1, so a new arrival needing
        2 units of slack is refused — correctly, since admitting it would
        blow job 0's deadline (8 < 7 + 2).
        """
        jobs = [
            J(0, 0.0, 4.0, 8.0),             # claxity 4
            J(1, 0.0 + 0.5, 3.0, 5.0),       # preempts; runs [0.5, 3.5]
            # at t=3.5 job 0 resumes with aged slack 4 - 3 = 1:
            J(2, 4.0, 2.0, 6.9),             # needs 2 > aged slack -> parked
        ]
        r = simulate(jobs, ConstantCapacity(1.0), VDoverScheduler(k=7.0), validate=True)
        segs = [(s.jid, round(s.start, 2), round(s.end, 2)) for s in r.trace.segments]
        assert (1, 0.5, 3.5) in segs
        assert (0, 3.5, 7.0) in segs         # job 0's chain is protected
        assert all(s.jid != 2 for s in r.trace.segments)
        assert r.completed_ids == [0, 1]
        assert r.failed_ids == [2]

    def test_aged_slack_still_admits_small_jobs(self):
        jobs = [
            J(0, 0.0, 4.0, 8.0),             # claxity 4
            J(1, 0.5, 3.0, 5.0),             # preempts; aged slack 1 at 3.5
            J(2, 4.0, 0.5, 6.0),             # needs 0.5 <= aged slack 1
        ]
        r = simulate(jobs, ConstantCapacity(1.0), VDoverScheduler(k=7.0), validate=True)
        # Job 2 preempts job 0 immediately at release.
        job2_first_run = min(s.start for s in r.trace.segments if s.jid == 2)
        assert job2_first_run == pytest.approx(4.0)
        assert r.n_completed == 3
