"""Batch scheduler protocol: whole-interrupt-group policy decisions.

PR 6 moved job state into the columnar :class:`~repro.sim.jobtable.JobTable`
and left the hot loop bound by the *per-event* scheduler protocol: every
release interrupt costs one kernel dispatch, one handler call and one apply,
even when dozens of jobs arrive at the same instant.  This module defines
the batch side of the contract:

* :class:`BatchView` — one same-``(time, kind)`` interrupt group, exposed as
  the :class:`Job` views plus their table rows so handlers can read whole
  columns (laxities, deadlines, remaining) in one vectorized expression.
  The ready-set scan is computed at most once per batch and cached
  (:attr:`BatchView.ready_rows`), fixing the per-event re-derivation the
  scalar loop performs.
* :class:`BatchDecisions` — the aligned decision array a batch handler
  returns: ``desired[i]`` is the job that should occupy the processor once
  interrupt ``i`` of the group is handled, and ``obs[i]`` is the decision
  record the scalar handler would have emitted at that point (or ``None``).
  The kernel applies the decisions *per event* so traces, segments and
  journals stay byte-identical with the scalar path.
* :class:`BatchScheduler` — mixin implementing ``plan(view)`` by routing to
  ``on_releases`` / ``on_completions``.  Natively ported policies implement
  ``_on_release_from(cur, job)`` — their release handler factored to take
  the (hypothetical) current job explicitly — and get the group fold for
  free; policies with a cheaper whole-group formulation (AdmissionEDF's
  single feasibility chain) override ``on_releases`` outright.
* :class:`ScalarAdapter` — wraps any existing per-job :class:`Scheduler`
  unchanged.  ``plan`` folds the inner ``on_release`` over the group
  through a proxy context whose ``current_job()`` answers with the
  *hypothetical* current of the fold, so un-ported policies keep working
  under the batch protocol during migration.

Equivalence contract (enforced by ``tests/properties/test_property_batchproto.py``):
for every policy, running the same instance under ``protocol="batch"``
produces bit-identical results, byte-identical journals and byte-identical
exported traces versus ``protocol="scalar"`` — including under crash-resume.

Three class flags gate what the kernel may batch:

``batch_capable``
    The scheduler implements ``plan``; ``False`` (the base default) keeps
    the kernel on per-event dispatch even under ``protocol="batch"``.
``batch_obs_exact``
    The batch handlers reproduce the scalar path's observability emissions
    exactly (via the returned ``obs`` payloads).  When ``False`` — the
    :class:`ScalarAdapter`, whose inner handlers emit directly, and
    sensed-rate Dover, whose sensor emissions happen mid-handler — the
    kernel falls back to per-event dispatch whenever tracing is active.
``batch_pure_completions``
    ``on_job_end`` for a *waiting* job is a pure queue purge (no
    emissions, no election, no alarms), so a same-instant deadline sweep
    may be folded into one ``on_completions`` call.  ``False`` for LLF,
    which re-elects (and emits) on every job end.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.sim.events import EventKind
from repro.sim.job import Job
from repro.sim.scheduler import Scheduler, SchedulerContext

__all__ = ["BatchView", "BatchDecisions", "BatchScheduler", "ScalarAdapter"]

#: Sentinel distinguishing "no hypothetical current installed" from a
#: hypothetical current of ``None`` (idle) during an adapter fold.
_UNSET = object()


class BatchView:
    """One same-``(time, kind)`` interrupt group over the job table.

    ``jobs`` and ``rows`` are aligned: ``rows[i]`` is the
    :class:`~repro.sim.jobtable.JobTable` row of ``jobs[i]``, in kernel
    dispatch order (event-queue order, which for releases is bootstrap
    seeding order).  ``table`` grants read access to the parameter columns
    so handlers can vectorize whole-group expressions.
    """

    __slots__ = ("time", "kind", "jobs", "rows", "table", "_ready_rows")

    def __init__(
        self,
        time: float,
        kind: EventKind,
        jobs: Sequence[Job],
        rows: Sequence[int],
        table,
    ) -> None:
        self.time = time
        self.kind = kind
        self.jobs = list(jobs)
        self.rows = list(rows)
        self.table = table
        self._ready_rows = None

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def ready_rows(self):
        """Rows currently READY, scanned at most once per batch.

        The scalar loop re-derives the ready set on every interrupt; batch
        handlers that need it share a single cached
        :meth:`~repro.sim.jobtable.JobTable.rows_ready` scan (pinned by the
        scan-count regression test)."""
        if self._ready_rows is None:
            self._ready_rows = self.table.rows_ready()
        return self._ready_rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchView(t={self.time!r}, kind={self.kind!r}, "
            f"n={len(self.jobs)})"
        )


class BatchDecisions:
    """Aligned decision arrays returned by a batch handler.

    ``desired[i]`` is the processor assignment after interrupt ``i`` (a
    :class:`Job` or ``None`` for idle; on the multiprocessor kernel a full
    assignment sequence).  ``obs[i]`` is the decision-record payload the
    scalar handler would have emitted while handling interrupt ``i`` — a
    ``(policy, action, jid, extra)`` tuple or ``None`` — which the kernel
    emits at the exact scalar ring position when tracing is active.
    """

    __slots__ = ("desired", "obs")

    def __init__(
        self,
        desired: Sequence[Optional[Job]],
        obs: Optional[Sequence[Optional[tuple]]] = None,
    ) -> None:
        self.desired = list(desired)
        if obs is None:
            self.obs = [None] * len(self.desired)
        else:
            self.obs = list(obs)
            if len(self.obs) != len(self.desired):
                raise SchedulingError(
                    "BatchDecisions desired/obs length mismatch: "
                    f"{len(self.desired)} != {len(self.obs)}"
                )

    def __len__(self) -> int:
        return len(self.desired)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchDecisions(n={len(self.desired)})"


class BatchScheduler:
    """Mixin providing the batch contract on top of a scalar policy.

    Subclasses implement :meth:`_on_release_from` (and usually
    :meth:`on_completions`); the generic :meth:`on_releases` folds the
    release logic over the group while tracking the hypothetical current
    job, producing decisions bit-identical to dispatching the events one
    at a time."""

    #: See the module docstring for the three-flag gating contract.
    batch_capable = True
    batch_obs_exact = True
    batch_pure_completions = True

    def plan(self, view: BatchView) -> BatchDecisions:
        """Decide the whole interrupt group in one call."""
        if view.kind == EventKind.RELEASE:
            return self.on_releases(view)
        if view.kind == EventKind.DEADLINE:
            self.on_completions(view)
            n = len(view)
            cur = self.ctx.current_job()
            return BatchDecisions([cur] * n)
        raise SchedulingError(
            f"{type(self).__name__} has no batch handler for {view.kind!r}"
        )

    def on_releases(self, view: BatchView) -> BatchDecisions:
        """Fold the factored release handler over the group."""
        cur = self.ctx.current_job()
        fold = self._on_release_from
        desired: List[Optional[Job]] = []
        payloads: List[Optional[tuple]] = []
        for job in view.jobs:
            cur, payload = fold(cur, job)
            desired.append(cur)
            payloads.append(payload)
        return BatchDecisions(desired, payloads)

    def on_releases_fast(self, view: BatchView) -> Optional[Job]:
        """Final assignment after the whole release group.

        Called only from the uninstrumented fast loop, which applies the
        group's net decision once instead of per event (intermediate
        same-instant switches are observably inert there — zero-length
        segments are dropped and zero work folds bit-identically).  The
        default routes through :meth:`on_releases` so policies with
        overridden group handlers (admission chains, laxity screens,
        alarm bookkeeping) keep their side effects; policies whose final
        decision is cheaper than the per-event decision array override
        this with a direct computation."""
        return self.on_releases(view).desired[-1]

    def on_completions(self, view: BatchView) -> None:
        """Purge a same-instant sweep of departed *waiting* jobs.

        Only called when :attr:`batch_pure_completions` is true and none of
        the departing jobs is the running one, so the scalar equivalent is
        a silent queue removal per job."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement on_completions"
        )

    def _on_release_from(
        self, cur: Optional[Job], job: Job
    ) -> Tuple[Optional[Job], Optional[tuple]]:
        """Release logic with the current job passed explicitly.

        Must behave exactly like the scalar ``on_release`` would if ``cur``
        were on the processor, except the decision record is *returned* as
        a ``(policy, action, jid, extra)`` payload instead of emitted —
        the caller (scalar wrapper or batch kernel) emits it at the right
        ring position."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement _on_release_from"
        )


class _HypotheticalContext(SchedulerContext):
    """Proxy context for :class:`ScalarAdapter` folds.

    Delegates every observation and alarm call to the engine context, but
    ``current_job()`` answers with the fold's hypothetical current while a
    ``plan`` is in progress.  All other values are bit-identical to what
    the scalar path would observe: the group shares one timestamp, so no
    work has elapsed between the hypothetically-applied decisions —
    ``remaining`` reads the same stored columns either way."""

    def __init__(self, ctx: SchedulerContext) -> None:
        self._ctx = ctx
        self._hypo = _UNSET
        self.obs = getattr(ctx, "obs", None)

    # -- observation ----------------------------------------------------
    def now(self) -> float:
        return self._ctx.now()

    def remaining(self, job: Job) -> float:
        return self._ctx.remaining(job)

    def capacity_now(self) -> float:
        return self._ctx.capacity_now()

    @property
    def bounds(self) -> Tuple[float, float]:
        return self._ctx.bounds

    def current_job(self) -> Optional[Job]:
        hypo = self._hypo
        if hypo is _UNSET:
            return self._ctx.current_job()
        return hypo

    # -- alarms ----------------------------------------------------------
    def set_alarm(self, job: Job, time: float, tag: str = "claxity") -> None:
        self._ctx.set_alarm(job, time, tag)

    def cancel_alarm(self, job: Job) -> None:
        self._ctx.cancel_alarm(job)

    def set_timer(self, time: float, tag: str) -> None:
        self._ctx.set_timer(time, tag)


class ScalarAdapter(Scheduler):
    """Run any per-job :class:`Scheduler` under the batch protocol.

    Scalar interrupts pass straight through to the wrapped policy (bound
    to a transparent proxy context, so behaviour and emissions are
    byte-identical to running it unwrapped).  ``plan`` folds the inner
    ``on_release`` over a release group with the proxy's hypothetical
    current installed, which is exactly the sequence of calls the scalar
    kernel would have made — the adapter buys batching's dispatch-overhead
    savings without touching the wrapped policy.

    ``batch_obs_exact`` is ``False``: the inner handlers emit decision
    records themselves mid-fold rather than returning payloads, so when
    tracing is active the kernel keeps the adapter on per-event dispatch.

    Snapshots nest the inner state under the adapter's own type name, so
    restoring an adapter snapshot into the bare policy (or vice versa)
    raises :class:`~repro.errors.RecoveryError` instead of silently
    corrupting queues."""

    batch_capable = True
    batch_obs_exact = False
    batch_pure_completions = False

    def __init__(self, inner: Scheduler) -> None:
        super().__init__()
        if not isinstance(inner, Scheduler):
            raise SchedulingError(
                f"ScalarAdapter wraps Scheduler instances, got {inner!r}"
            )
        self.inner = inner
        self.name = inner.name
        self._proxy: Optional[_HypotheticalContext] = None

    # ------------------------------------------------------------------
    def bind(self, ctx: SchedulerContext) -> None:
        self.ctx = ctx
        self._sensor_last_good = None
        self._sensor_health = {"reads": 0, "dropouts": 0, "clamped": 0}
        self._proxy = _HypotheticalContext(ctx)
        self.inner.bind(self._proxy)
        self.reset()

    @property
    def sensor_health(self) -> dict:
        # The wrapped policy does the sensing (through the proxy).
        return self.inner.sensor_health

    # -- scalar passthrough ---------------------------------------------
    def on_release(self, job: Job) -> Optional[Job]:
        return self.inner.on_release(job)

    def on_job_end(self, job: Job, completed: bool) -> Optional[Job]:
        return self.inner.on_job_end(job, completed)

    def on_alarm(self, job: Job, tag: str) -> Optional[Job]:
        return self.inner.on_alarm(job, tag)

    def on_timer(self, tag: str) -> Optional[Job]:
        return self.inner.on_timer(tag)

    def on_eviction(self, job: Job) -> Optional[Job]:
        return self.inner.on_eviction(job)

    # -- batch contract --------------------------------------------------
    def plan(self, view: BatchView) -> BatchDecisions:
        if view.kind != EventKind.RELEASE:
            raise SchedulingError(
                f"ScalarAdapter batches release groups only, got {view.kind!r}"
            )
        proxy = self._proxy
        on_release = self.inner.on_release
        desired: List[Optional[Job]] = []
        try:
            proxy._hypo = self._ctx_current()
            for job in view.jobs:
                proxy._hypo = on_release(job)
                desired.append(proxy._hypo)
        finally:
            proxy._hypo = _UNSET
        return BatchDecisions(desired)

    def _ctx_current(self) -> Optional[Job]:
        return self.ctx.current_job()

    # -- snapshot / restore ----------------------------------------------
    def _policy_state(self) -> dict:
        return {"inner": self.inner.get_state()}

    def _restore_policy_state(
        self, state: dict, jobs_by_id: "dict[int, Job]"
    ) -> None:
        self.inner.set_state(state["inner"], jobs_by_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScalarAdapter({self.inner!r})"
