"""Write-ahead event journal and engine snapshots (crash recovery).

The recovery story (docs/ROBUSTNESS.md) has two cooperating artifacts:

* :class:`EngineSnapshot` — a complete, picklable image of a
  :class:`~repro.sim.engine.SimulationEngine` mid-run: simulation clock,
  per-job remaining workload and status, the running segment's anchors, the
  event heap (with its insertion-sequence counter, so post-restore pushes
  get the same tie-breaking sequence numbers), the trace accumulators, the
  scheduler's policy state, and the capacity object itself (pickled
  wholesale, which captures any lazily-materialised stochastic path *and*
  its RNG state).  Restoring a snapshot into a fresh engine and running to
  the horizon yields a :class:`~repro.sim.metrics.SimulationResult`
  bit-identical to the uncrashed run.

* :class:`EventJournal` — a write-ahead log of dispatched events.  The
  engine appends a :class:`JournalRecord` *before* dispatching each event,
  so after a crash the journal extends past the last snapshot; on restore
  the engine replays forward and *verifies* each re-dispatched event
  against the journaled record, raising
  :class:`~repro.errors.RecoveryError` on any divergence (which would
  indicate non-determinism or a corrupted snapshot).  The journal can
  optionally mirror to a JSONL file whose torn final line (the crash
  signature) is tolerated on load.

Determinism is what makes this work: the engine consults no wall clock and
no RNG of its own, and capacity paths are materialised lazily in
time-increasing order, so "snapshot + replay the same events" is exact, not
approximate.
"""

from __future__ import annotations

import json
import os
import pickle
from dataclasses import dataclass, field
from time import perf_counter as _perf_counter
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import RecoveryError

__all__ = [
    "JournalRecord",
    "EventJournal",
    "EngineSnapshot",
    "describe_payload",
    "results_bit_identical",
]

_JOURNAL_SCHEMA = 1


def describe_payload(kind: int, payload: Any) -> str:
    """Canonical string key for an event's payload (journal comparisons).

    Job-carrying events reduce to the jid; alarms add their tag; faults
    stringify their descriptor tuple.  Two dispatches are "the same event"
    iff time, kind and this key all agree.
    """
    from repro.sim.events import EventKind

    k = EventKind(kind)
    if k is EventKind.COMPLETION and isinstance(payload, tuple):
        # Multiprocessor completion: payload is ``(proc, job)``.  The
        # single-processor engine keeps the bare-Job form so existing
        # journals (and their keys) stay bit-identical.
        proc, job = payload
        return f"jid:{job.jid}@p{proc}"
    if k in (EventKind.RELEASE, EventKind.COMPLETION, EventKind.DEADLINE):
        return f"jid:{payload.jid}"
    if k is EventKind.ALARM:
        job, tag = payload
        return f"alarm:{job.jid}:{tag}"
    if k is EventKind.TIMER:
        return f"timer:{payload}"
    if k is EventKind.END:
        return "end"
    if k is EventKind.FAULT:
        return "fault:" + ":".join(str(x) for x in payload)
    return repr(payload)  # pragma: no cover - future kinds


@dataclass(frozen=True)
class JournalRecord:
    """One dispatched event, as logged write-ahead."""

    index: int  #: dispatch index (0-based, monotone)
    time: float
    kind: int  #: ``int(EventKind)``
    key: str  #: :func:`describe_payload` of the event's payload
    version: int = 0

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "time": self.time,
            "kind": self.kind,
            "key": self.key,
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "JournalRecord":
        return cls(
            index=int(d["index"]),
            time=float(d["time"]),
            kind=int(d["kind"]),
            key=str(d["key"]),
            version=int(d.get("version", 0)),
        )


class EventJournal:
    """Append-only write-ahead log of dispatched events.

    In-memory always; mirrored to a JSONL file when ``path`` is given
    (header line first, one record per line).

    Durability contract: ``flush_every=N`` batches the file-buffer flush —
    every N-th append flushes, so a crash loses at most the last ``N-1``
    records plus a torn final line.  The default (``flush_every=1``)
    keeps the historical flush-per-append behaviour.  The kernel calls
    :meth:`flush` on every snapshot boundary regardless of the batch
    size, so the WAL on disk always covers at least everything the last
    recovery anchor supersedes; ``fsync=True`` additionally forces the
    OS buffer to stable storage on each such explicit flush (the service
    WAL's stated durability point).
    """

    def __init__(
        self,
        path: "str | Path | None" = None,
        *,
        flush_every: int = 1,
        fsync: bool = False,
    ) -> None:
        if flush_every < 1:
            raise RecoveryError(
                f"flush_every must be >= 1, got {flush_every!r}"
            )
        self._records: List[JournalRecord] = []
        self._path = None if path is None else Path(path)
        self._fh = None
        self._flush_every = int(flush_every)
        self._fsync = bool(fsync)
        self._unflushed = 0
        #: Optional ``callable(seconds)`` timing each fsync — the service
        #: telemetry plane's journal-latency SLO hook (wall clock; never
        #: in the replay domain).
        self.sync_observer = None
        self._dir_synced = True  # nothing to sync for in-memory journals
        if self._path is not None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self._path.open("w", encoding="utf-8")
            self._fh.write(
                json.dumps({"kind": "event_journal", "schema": _JOURNAL_SCHEMA})
                + "\n"
            )
            self._fh.flush()
            # The journal *entry* (the freshly created file name) is not
            # durable until the parent directory is fsynced — without
            # this the whole journal can vanish on power loss even
            # though every record was fsynced.  Paid once, at the first
            # durability point: eagerly under fsync=True, else deferred
            # to the first flush(sync=True).
            self._dir_synced = False
            if self._fsync:
                self._sync_dir()

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> Tuple[JournalRecord, ...]:
        return tuple(self._records)

    @property
    def path(self) -> Optional[Path]:
        return self._path

    def append(self, record: JournalRecord) -> None:
        if record.index != len(self._records):
            raise RecoveryError(
                f"journal append out of order: got index {record.index}, "
                f"expected {len(self._records)}"
            )
        self._records.append(record)
        if self._fh is not None:
            self._fh.write(json.dumps(record.to_dict()) + "\n")
            self._unflushed += 1
            if self._unflushed >= self._flush_every:
                self._fh.flush()
                self._unflushed = 0

    def flush(self, *, sync: "bool | None" = None) -> None:
        """Flush buffered records to the file (no-op when in-memory only).

        ``sync`` forces (or suppresses) an ``fsync`` for this call;
        ``None`` defers to the constructor's ``fsync`` flag.  Called by
        the kernel on every snapshot boundary."""
        if self._fh is None:
            return
        self._fh.flush()
        self._unflushed = 0
        do_sync = self._fsync if sync is None else bool(sync)
        if do_sync:
            observer = self.sync_observer
            if observer is None:
                os.fsync(self._fh.fileno())
                self._sync_dir()
            else:
                t0 = _perf_counter()
                os.fsync(self._fh.fileno())
                self._sync_dir()
                observer(_perf_counter() - t0)

    def _sync_dir(self) -> None:
        """One-time fsync of the journal's parent directory, making the
        file's creation itself durable (see __init__)."""
        if self._dir_synced or self._path is None:
            return
        try:
            fd = os.open(self._path.parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            self._dir_synced = True
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)
        self._dir_synced = True

    def get(self, index: int) -> JournalRecord:
        return self._records[index]

    def close(self) -> None:
        if self._fh is not None:
            self.flush()
            self._fh.close()
            self._fh = None

    @classmethod
    def load(cls, path: "str | Path") -> "EventJournal":
        """Rebuild an in-memory journal from a JSONL file.

        A torn (undecodable) *final* line is the expected crash signature
        and is dropped; a bad line anywhere else raises
        :class:`~repro.errors.RecoveryError`.
        """
        path = Path(path)
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError as exc:
            raise RecoveryError(f"cannot read journal {path}: {exc}") from exc
        if not lines:
            raise RecoveryError(f"journal {path} is empty")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise RecoveryError(f"journal {path}: corrupt header") from exc
        if header.get("kind") != "event_journal":
            raise RecoveryError(f"journal {path}: not an event journal")
        if header.get("schema") != _JOURNAL_SCHEMA:
            raise RecoveryError(
                f"journal {path}: unsupported schema {header.get('schema')!r}"
            )
        journal = cls()
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                record = JournalRecord.from_dict(json.loads(line))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                if lineno == len(lines):
                    break  # torn final line: the crash signature
                raise RecoveryError(
                    f"journal {path}: corrupt record at line {lineno}"
                ) from exc
            journal.append(record)
        return journal

    @classmethod
    def resume(
        cls,
        path: "str | Path",
        *,
        flush_every: int = 1,
        fsync: bool = False,
    ) -> "EventJournal":
        """Reopen an on-disk journal for continued appends (cold start).

        Unlike :meth:`load` (read-only rebuild), ``resume`` prepares the
        *file* for further writing: any torn final line — including a
        parseable record missing its newline, which a later append would
        corrupt — is truncated back to the last complete record, and the
        file reopens in append mode.  The restored kernel then verifies
        its re-dispatched events against the loaded records and extends
        the same file seamlessly past them.
        """
        if flush_every < 1:
            raise RecoveryError(
                f"flush_every must be >= 1, got {flush_every!r}"
            )
        path = Path(path)
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise RecoveryError(f"cannot read journal {path}: {exc}") from exc
        nl = data.find(b"\n")
        if nl < 0:
            raise RecoveryError(f"journal {path}: corrupt header")
        try:
            header = json.loads(data[:nl].decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise RecoveryError(f"journal {path}: corrupt header") from exc
        if header.get("kind") != "event_journal":
            raise RecoveryError(f"journal {path}: not an event journal")
        if header.get("schema") != _JOURNAL_SCHEMA:
            raise RecoveryError(
                f"journal {path}: unsupported schema {header.get('schema')!r}"
            )

        journal = cls()
        good_end = nl + 1
        offset = nl + 1
        n = len(data)
        while offset < n:
            next_nl = data.find(b"\n", offset)
            line_end = n if next_nl < 0 else next_nl
            line = data[offset:line_end]
            if line.strip():
                complete = next_nl >= 0
                record = None
                if complete:
                    try:
                        record = JournalRecord.from_dict(
                            json.loads(line.decode("utf-8"))
                        )
                    except (
                        json.JSONDecodeError,
                        UnicodeDecodeError,
                        KeyError,
                        TypeError,
                        ValueError,
                    ):
                        record = None
                if record is None:
                    # Torn tail: tolerated only with nothing after it.
                    if data[line_end:].strip():
                        raise RecoveryError(
                            f"journal {path}: corrupt record mid-file"
                        )
                    break
                journal.append(record)
            good_end = line_end + 1 if next_nl >= 0 else good_end
            if next_nl < 0:
                break
            offset = next_nl + 1

        if good_end < n:
            with path.open("r+b") as fh:
                fh.truncate(good_end)

        journal._path = path
        journal._flush_every = int(flush_every)
        journal._fsync = bool(fsync)
        journal._fh = path.open("a", encoding="utf-8")
        journal._dir_synced = False
        if journal._fsync:
            journal._sync_dir()
        return journal


@dataclass
class EngineSnapshot:
    """A complete, picklable image of a mid-run simulation engine.

    Jobs are referenced by jid (the restoring engine re-binds them to its
    own :class:`~repro.sim.job.Job` objects, preserving ``is``-identity in
    scheduler queues); the capacity functions travel as a pickle blob so
    any materialised stochastic path and RNG state survive exactly.

    Schema 2 generalises the image to ``m`` processors: the running-job
    slot and segment anchors are per-processor lists, traces are a list
    of per-processor segment lists, and ``capacity_blob`` pickles the
    *list* of capacity models.  The single-processor engine is simply the
    ``n_procs == 1`` case (element 0 everywhere).
    """

    schema: int = 2
    scheduler_name: str = ""
    #: simulation clock
    now: float = 0.0
    horizon: float = 0.0
    #: number of processors the image describes (1 for the single engine)
    n_procs: int = 1
    #: per-processor jid of the running job (None = idle)
    current_jids: List[Optional[int]] = field(default_factory=lambda: [None])
    seg_start: List[float] = field(default_factory=lambda: [0.0])
    seg_remaining0: List[float] = field(default_factory=lambda: [0.0])
    seg_cum0: List[float] = field(default_factory=lambda: [0.0])
    remaining: Dict[int, float] = field(default_factory=dict)
    #: jid -> JobStatus name
    status: Dict[int, str] = field(default_factory=dict)
    completion_version: Dict[int, int] = field(default_factory=dict)
    alarm_version: Dict[int, int] = field(default_factory=dict)
    #: encoded heap entries ``(time, kind, seq, payload_desc, version)``
    events: List[tuple] = field(default_factory=list)
    next_seq: int = 0
    stale_hint: int = 0
    #: events dispatched so far (aligns with the journal index)
    dispatch_count: int = 0
    #: per-processor trace accumulators (one segment list per processor)
    trace_segments: List[List[Tuple[float, float, int, float]]] = field(
        default_factory=lambda: [[]]
    )
    trace_outcomes: Dict[int, str] = field(default_factory=dict)
    trace_completion_times: Dict[int, float] = field(default_factory=dict)
    trace_value_points: List[Tuple[float, float]] = field(default_factory=list)
    trace_lost_work: Dict[int, float] = field(default_factory=dict)
    #: :meth:`repro.sim.scheduler.Scheduler.get_state`
    scheduler_state: Dict[str, Any] = field(default_factory=dict)
    #: ``pickle.dumps(list_of_capacities)``
    capacity_blob: bytes = b""
    #: indices (into the engine's fault list) of faults already fired
    fired_faults: Tuple[int, ...] = ()

    def roundtrip(self) -> "EngineSnapshot":
        """Pickle round-trip (what crossing a process boundary does)."""
        return pickle.loads(pickle.dumps(self))


def results_bit_identical(a, b) -> bool:
    """True iff two :class:`~repro.sim.metrics.SimulationResult`\\ s are
    bit-identical: same scheduler, horizon, segments (``==`` on floats, no
    tolerance), outcomes, completion times and value points."""
    return (
        a.scheduler_name == b.scheduler_name
        and a.horizon == b.horizon
        and a.trace.segments == b.trace.segments
        and a.trace.outcomes == b.trace.outcomes
        and a.trace.completion_times == b.trace.completion_times
        and a.trace.value_points == b.trace.value_points
        and getattr(a.trace, "lost_work", {}) == getattr(b.trace, "lost_work", {})
    )
