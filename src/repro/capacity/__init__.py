"""Time-varying processor-capacity models (the paper's ``C(c̲, c̄)``).

The scheduler sees only the declared bounds and the past of the trajectory;
the simulation engine is clairvoyant.  See :class:`CapacityFunction` for the
interface contract, :mod:`repro.capacity.prefix` for the shared O(log n)
prefix-sum capacity index, and docs/PERFORMANCE.md for the invariants
consumers rely on.
"""

from repro.capacity.base import CapacityFunction, Piece, ensure_band, within_band
from repro.capacity.combinators import (
    ClampedCapacity,
    ScaledCapacity,
    ShiftedCapacity,
    SummedCapacity,
)
from repro.capacity.constant import ConstantCapacity
from repro.capacity.markov import MarkovModulatedCapacity, TwoStateMarkovCapacity
from repro.capacity.piecewise import PiecewiseConstantCapacity
from repro.capacity.prefix import (
    PrefixIndexedCapacity,
    crosscheck_index,
    naive_advance,
    naive_integrate,
)
from repro.capacity.sinusoidal import SinusoidalCapacity
from repro.capacity.trace import TraceCapacity, sample_function

__all__ = [
    "CapacityFunction",
    "Piece",
    "ensure_band",
    "within_band",
    "ClampedCapacity",
    "ScaledCapacity",
    "ShiftedCapacity",
    "SummedCapacity",
    "ConstantCapacity",
    "PiecewiseConstantCapacity",
    "PrefixIndexedCapacity",
    "crosscheck_index",
    "naive_advance",
    "naive_integrate",
    "MarkovModulatedCapacity",
    "TwoStateMarkovCapacity",
    "SinusoidalCapacity",
    "TraceCapacity",
    "sample_function",
]
