"""Shared machinery of the Dover scheduler family (paper, Section III-D).

The paper presents V-Dover as four procedures:

* **A** — the interrupt loop (implemented by the engine);
* **B** — the job-release handler;
* **C** — the job completion-or-failure handler;
* **D** — the zero-conservative-laxity handler.

Dover (Koren & Shasha) and V-Dover share this structure; Section IV of the
paper states the exact two deltas: (i) Dover computes laxities against a
point estimate ``ĉ`` of future capacity, V-Dover against the conservative
bound ``c̲``; (ii) V-Dover keeps jobs that lose the zero-laxity value
comparison alive as *supplement* jobs (they may still complete when the
capacity runs above ``c̲``), while Dover abandons them (under constant
capacity they are provably dead).  :class:`DoverFamilyScheduler` implements
the machinery with both deltas as knobs; :mod:`repro.core.vdover` and
:mod:`repro.core.dover` are thin configurations.

State (paper lines A.1–A.2):

* ``Qedf``   — recently EDF-preempted regular jobs, stored as tuples
  ``(job, t_insert, cSlack_insert)``, earliest deadline first;
* ``Qother`` — other regular jobs, earliest deadline first;
* ``Qsupp``  — supplement jobs, **latest** deadline first;
* ``cSlack`` — the slack time that can be granted to new jobs without any
  job of {current} ∪ Qedf missing its deadline under the conservative rate
  estimate.  While a regular job runs at real rate ``c(t) >= c̲`` its
  conservative laxity cannot decrease, so ``cSlack`` does not decay during
  execution; entries parked in ``Qedf`` *do* decay, which is why their
  stored snapshot is aged by ``now − t_insert`` on restore (lines C.3/C.15).

Pseudocode fidelity notes:

* Lines B.7–B.9 are garbled in the published text; we reconstruct them by
  symmetry with C.5–C.7 (the same EDF-preemption bookkeeping): on an EDF
  preemption the new ``cSlack`` is
  ``min(cSlack − t_c(T_arr), claxity(T_arr))``.
* The zero-laxity interrupt is armed for every *waiting regular* job at the
  absolute instant ``d − p_r/est`` (its laxity decreases at unit rate while
  waiting and ``p_r`` is frozen); the engine drops alarms that fire while a
  job runs, and re-arming on every enqueue version-invalidates stale ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.errors import EstimateError, SchedulingError
from repro.sim.batchproto import BatchDecisions, BatchScheduler, BatchView
from repro.sim.job import Job
from repro.sim.queues import EdfEntry, JobQueue, edf_key, latest_deadline_key
from repro.sim.scheduler import Scheduler

__all__ = ["DoverFamilyScheduler", "RegularInterval"]


@dataclass(frozen=True)
class RegularInterval:
    """A *regular interval* (paper, Definition 6): from the first instant a
    regular job is scheduled while Qedf is empty, to the first subsequent
    completion of a regular job while Qedf is empty.

    ``regval`` is the value completed inside the interval, ``clval`` the
    part of it earned by jobs scheduled through the zero-laxity handler —
    the two quantities Lemma 1 bounds the interval's capacity integral by:
    ``∫ c <= regval + clval / (β − 1)``.
    """

    start: float
    end: float
    regval: float
    clval: float

    def lemma1_bound(self, beta: float) -> float:
        """The right-hand side of Lemma 1 for this interval."""
        return self.regval + self.clval / (beta - 1.0)


class DoverFamilyScheduler(BatchScheduler, Scheduler):
    """Configurable implementation of the Dover/V-Dover machinery.

    Parameters
    ----------
    beta:
        The value-comparison threshold of handler D (line D.1).  V-Dover
        optimizes ``beta = 1 + sqrt(k / f(k, δ))`` (Section III-G); Dover
        uses Koren–Shasha's ``1 + sqrt(k)``.
    rate_estimate:
        The rate used for laxities and conservative processing times:
        ``None`` selects the conservative bound ``c̲`` from the context
        (V-Dover); a float selects Dover's point estimate ``ĉ``; the string
        ``"sensed"`` tracks the instantaneous capacity sensor, refreshed at
        every interrupt through :meth:`~repro.sim.scheduler.Scheduler.
        sense_capacity` — i.e. with the clamp / last-known-good / c̲
        degradation ladder of docs/ROBUSTNESS.md, so a noisy, stale or
        dropped-out sensor degrades the estimate but never crashes the
        scheduler.
    supplement:
        Whether losing jobs at the zero-laxity comparison are retained as
        supplement jobs (V-Dover) or abandoned (Dover).
    """

    name = "dover-family"

    def __init__(
        self,
        beta: float,
        *,
        rate_estimate: float | str | None = None,
        supplement: bool = True,
    ) -> None:
        super().__init__()
        if beta <= 1.0:
            raise SchedulingError(
                f"beta must exceed 1 (got {beta!r}); the competitive-ratio "
                "argument and same-instant termination both require it"
            )
        if isinstance(rate_estimate, str) and rate_estimate != "sensed":
            raise SchedulingError(
                f"rate_estimate must be a float, None or 'sensed', "
                f"got {rate_estimate!r}"
            )
        self._beta = float(beta)
        self._rate_cfg = rate_estimate
        self._supplement_enabled = bool(supplement)
        #: per-group ``jid -> (claxity, tc)`` cache during a batched
        #: release fold (``None`` outside :meth:`on_releases`)
        self._group_cache: Optional[Dict[int, Tuple[float, float]]] = None

    @property
    def batch_obs_exact(self) -> bool:
        # Sensed mode re-reads the capacity sensor inside every handler;
        # the degradation ladder's health accounting must interleave with
        # trace emissions exactly as the scalar path does, so the kernel
        # keeps sensed runs on per-event dispatch whenever observability
        # is active.
        return self._rate_cfg != "sensed"

    # ------------------------------------------------------------------
    # Per-run state
    # ------------------------------------------------------------------
    def _check_band(self) -> tuple[float, float]:
        """The declared band, validated once per run: a scheduler whose
        whole contract is built on ``0 < c̲ <= c̄ < ∞`` must fail loudly
        (structured :class:`EstimateError`) on a garbage declaration rather
        than mis-schedule every job."""
        lo, hi = self.ctx.bounds
        if not (math.isfinite(lo) and math.isfinite(hi) and 0.0 < lo <= hi):
            raise EstimateError(
                f"declared capacity band ({lo!r}, {hi!r}) is unusable for "
                f"{self.name}"
            )
        return lo, hi

    def _refresh_rate(self) -> None:
        """In ``"sensed"`` mode, re-read the (possibly faulty) sensor with
        graceful degradation before handling an interrupt."""
        if self._rate_cfg == "sensed":
            self._rate = self.sense_capacity()

    def reset(self) -> None:
        if self._rate_cfg is None:
            self._rate = self._check_band()[0]
        elif self._rate_cfg == "sensed":
            self._check_band()
            self._rate = self.sense_capacity()
        else:
            self._rate = float(self._rate_cfg)
            if self._rate <= 0.0:
                raise SchedulingError(f"rate estimate must be positive: {self._rate}")
        self._qedf: JobQueue[EdfEntry] = JobQueue(
            edf_key, entry_job=lambda e: e[0], name="Qedf"
        )
        self._qother: JobQueue[Job] = JobQueue(edf_key, name="Qother")
        self._qsupp: JobQueue[Job] = JobQueue(latest_deadline_key, name="Qsupp")
        self._cslack = math.inf
        self._supp_ids: set[int] = set()
        self._abandoned_ids: set[int] = set()
        # Instrumentation for the analysis module (regular intervals etc.).
        self._stats = {
            "zero_laxity_interrupts": 0,
            "zero_laxity_wins": 0,
            "supplement_labels": 0,
            "edf_preemptions": 0,
            "supplement_preemptions": 0,
        }
        # Regular-interval tracking (Definition 6 / Lemma 1).
        self._zero_cl_ids: set[int] = set()
        self._intervals: list[RegularInterval] = []
        self._open_start: float | None = None
        self._acc_regval = 0.0
        self._acc_clval = 0.0

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _claxity(self, job: Job) -> float:
        """Laxity under the configured rate estimate (Definition 5 when the
        estimate is ``c̲``)."""
        cache = self._group_cache
        if cache is not None:
            hit = cache.get(job.jid)
            if hit is not None:
                return hit[0]
        return self.ctx.claxity(job, self._rate)

    def _tc(self, job: Job) -> float:
        """Estimated remaining processing time ``t_c(T, est)``."""
        cache = self._group_cache
        if cache is not None:
            hit = cache.get(job.jid)
            if hit is not None:
                return hit[1]
        return self.ctx.conservative_remaining_time(job, self._rate)

    def _is_supplement(self, job: Job) -> bool:
        return job.jid in self._supp_ids

    def _dispatch_regular(self, job: Job) -> Job:
        """Bookkeeping for scheduling a regular job: opens a regular
        interval when none is open and Qedf is empty (Definition 6)."""
        if self._open_start is None and not self._qedf:
            self._open_start = self.ctx.now()
            self._acc_regval = 0.0
            self._acc_clval = 0.0
        return job

    def _note_completion(self, job: Job, was_supplement: bool) -> None:
        """Fold a completed job into the open interval and close the
        interval if this was a regular completion with Qedf empty."""
        if self._open_start is None:
            return
        self._acc_regval += job.value
        if job.jid in self._zero_cl_ids:
            self._acc_clval += job.value
        if not was_supplement and not self._qedf:
            self._intervals.append(
                RegularInterval(
                    start=self._open_start,
                    end=self.ctx.now(),
                    regval=self._acc_regval,
                    clval=self._acc_clval,
                )
            )
            self._open_start = None

    @property
    def regular_intervals(self) -> list[RegularInterval]:
        """Closed regular intervals of the last (or running) simulation."""
        return list(self._intervals)

    def _arm_zero_laxity(self, job: Job) -> None:
        """Arm the zero-laxity interrupt of a waiting regular job at the
        absolute time its estimated laxity reaches zero."""
        fire_at = job.deadline - self.ctx.remaining(job) / self._rate
        self.ctx.set_alarm(job, fire_at, tag="zero-claxity")

    def _enqueue_other(self, job: Job) -> None:
        self._qother.insert(job)
        self._arm_zero_laxity(job)

    def _label_supplement(self, job: Job) -> None:
        """Line D.7 — or, for Dover, abandonment."""
        if self._supplement_enabled:
            self._supp_ids.add(job.jid)
            self._qsupp.insert(job)
            self._stats["supplement_labels"] += 1
        else:
            # Dover: under the (assumed constant) estimate the job can no
            # longer meet its deadline; drop it.  Its deadline event will
            # record the failure.
            self._abandoned_ids.add(job.jid)

    @property
    def stats(self) -> dict:
        """Counters for ablation analysis (copies on access)."""
        return dict(self._stats)

    # ------------------------------------------------------------------
    # Handler B: job release
    # ------------------------------------------------------------------
    def _on_release_from(
        self, cur: Optional[Job], job: Job
    ) -> Tuple[Optional[Job], Optional[tuple]]:
        self._refresh_rate()

        if cur is None:  # lines B.1–B.4: processor idle
            self._cslack = self._claxity(job)
            return (
                self._dispatch_regular(job),
                (self.name, "admit.idle", job.jid, None),
            )

        if self._is_supplement(cur):  # lines B.13–B.15
            # Regular arrivals preempt supplement work immediately.
            self._qsupp.insert(cur)
            self._stats["supplement_preemptions"] += 1
            self._cslack = self._claxity(job)
            return (
                self._dispatch_regular(job),
                (
                    self.name,
                    "preempt.supplement",
                    job.jid,
                    {"preempted": cur.jid},
                ),
            )

        # Current is regular: EDF comparison, lines B.6–B.12.
        if job.deadline < cur.deadline and self._cslack >= self._tc(job):
            # EDF preemption with room in the slack: current becomes a
            # recently-EDF-scheduled job (tuple remembers the slack state).
            self._qedf.insert((cur, self.ctx.now(), self._cslack))
            self._arm_zero_laxity(cur)
            self._cslack = min(self._cslack - self._tc(job), self._claxity(job))
            self._stats["edf_preemptions"] += 1
            return (
                self._dispatch_regular(job),
                (self.name, "preempt.edf", job.jid, {"preempted": cur.jid}),
            )

        self._enqueue_other(job)  # line B.11
        return cur, (self.name, "enqueue.other", job.jid, None)

    def on_release(self, job: Job) -> Optional[Job]:
        cur, payload = self._on_release_from(self.ctx.current_job(), job)
        self._emit_decision(payload)
        return cur

    #: Minimum release-group width before the vectorized laxity screen
    #: engages.  Below this the per-element cache handoff costs more than
    #: the scalar expressions it replaces (measured: the screen only
    #: approaches break-even around 10^2-wide groups), so narrow groups
    #: fold with direct computation — bit-identical either way.
    _SCREEN_MIN_GROUP = 64

    def on_releases(self, view: BatchView) -> BatchDecisions:
        if len(view) >= self._SCREEN_MIN_GROUP and self._rate_cfg != "sensed":
            # Batched laxity screening: one vectorized pass computes every
            # newcomer's conservative laxity and processing-time estimate
            # (bit-identical to the scalar expressions — the table method
            # mirrors their operation order), then the fold reads the
            # cache instead of re-deriving per event.  Sensed mode skips
            # the cache: its rate changes between fold steps.
            rows = np.asarray(view.rows, dtype=np.intp)
            rate = self._rate
            n = len(view.rows)
            rem_col = view.table.remaining
            # Group-sized gather: materializing the full remaining column
            # per group would cost O(instance) — fromiter stays O(group).
            rem = np.fromiter(
                (rem_col[r] for r in view.rows), dtype=np.float64, count=n
            )
            # Same element-wise expression order as ctx.claxity /
            # conservative_remaining_time — bit-identical per element.
            lax = view.table.deadline[rows] - view.time - rem / rate
            tc = rem / rate
            self._group_cache = {
                job.jid: (float(lax[i]), float(tc[i]))
                for i, job in enumerate(view.jobs)
            }
        try:
            return super().on_releases(view)
        finally:
            self._group_cache = None

    # ------------------------------------------------------------------
    # Handler C: job completion or failure (of the running job)
    # ------------------------------------------------------------------
    def _handler_c(self) -> Optional[Job]:
        now = self.ctx.now()
        obs = self.ctx.obs

        if self._qedf and self._qother:  # lines C.1–C.9
            head_job, t_prev, cslack_prev = self._qedf.first()
            self._cslack = cslack_prev - (now - t_prev)
            other = self._qother.first()
            if (
                other.deadline < head_job.deadline
                and self._cslack >= self._tc(other)
            ):  # lines C.5–C.7
                self._qother.remove(other)
                self._cslack = min(
                    self._cslack - self._tc(other), self._claxity(other)
                )
                if obs is not None:
                    obs.decision(self.name, "resume.other", now, other.jid)
                return self._dispatch_regular(other)
            self._qedf.dequeue()  # line C.9
            if obs is not None:
                obs.decision(self.name, "resume.qedf", now, head_job.jid)
            return self._dispatch_regular(head_job)

        if self._qother:  # lines C.10–C.12
            other = self._qother.dequeue()
            self._cslack = self._claxity(other)
            if obs is not None:
                obs.decision(self.name, "resume.other", now, other.jid)
            return self._dispatch_regular(other)

        if self._qedf:  # lines C.13–C.15
            head_job, t_prev, cslack_prev = self._qedf.dequeue()
            self._cslack = cslack_prev - (now - t_prev)
            if obs is not None:
                obs.decision(self.name, "resume.qedf", now, head_job.jid)
            return self._dispatch_regular(head_job)

        # Lines C.16–C.22: no regular work left.
        self._cslack = math.inf
        if self._qsupp:
            revived = self._qsupp.dequeue()
            if obs is not None:
                obs.decision(self.name, "revive.supplement", now, revived.jid)
            return revived
        if obs is not None:
            obs.decision(self.name, "idle", now)
        return None

    def on_job_end(self, job: Job, completed: bool) -> Optional[Job]:
        self._refresh_rate()
        current = self.ctx.current_job()
        if current is not None:
            # A *waiting* job expired: purge it from wherever it sits and
            # keep executing.  (Handler C is only for the running job.)
            self._remove_everywhere(job)
            return current
        # The running job completed or failed: full handler C.
        was_supplement = self._is_supplement(job)
        self._remove_everywhere(job)  # defensive; it should be in no queue
        if completed:
            self._note_completion(job, was_supplement)
        return self._handler_c()

    def on_completions(self, view: BatchView) -> None:
        # Same-instant deadline sweep of waiting jobs while a job runs:
        # the scalar on_job_end is a sensor refresh plus a silent purge.
        for job in view.jobs:
            self._refresh_rate()
            self._remove_everywhere(job)

    def _remove_everywhere(self, job: Job) -> None:
        self._qedf.remove(job)
        self._qother.remove(job)
        self._qsupp.remove(job)
        self._supp_ids.discard(job.jid)

    # ------------------------------------------------------------------
    # Handler D: zero (estimated) laxity
    # ------------------------------------------------------------------
    def on_alarm(self, job: Job, tag: str) -> Optional[Job]:
        if tag != "zero-claxity":  # pragma: no cover - future-proofing
            return self.ctx.current_job()
        self._refresh_rate()
        if self._is_supplement(job) or job.jid in self._abandoned_ids:
            return self.ctx.current_job()  # stale alarm on a demoted job
        self._stats["zero_laxity_interrupts"] += 1
        current = self.ctx.current_job()

        obs = self.ctx.obs
        if current is None or self._is_supplement(current):
            # Defensive branch: a waiting regular job while no regular job
            # runs should not occur (every handler schedules regular work
            # ahead of supplement/idle), but an urgent regular job must run.
            self._remove_from_regular_queues(job)
            if current is not None:
                self._qsupp.insert(current)
            self._cslack = 0.0
            self._stats["zero_laxity_wins"] += 1
            self._zero_cl_ids.add(job.jid)
            if obs is not None:
                obs.decision(
                    self.name, "zero_laxity.win", self.ctx.now(), job.jid
                )
            return self._dispatch_regular(job)

        protected_value = current.value + sum(
            entry[0].value for entry in self._qedf.entries()
        )
        if job.value > self._beta * protected_value:  # lines D.1–D.5
            self._remove_from_regular_queues(job)
            self._enqueue_other(current)
            for entry in self._qedf.drain():  # line D.3
                self._enqueue_other(entry[0])
            self._cslack = 0.0  # line D.4
            self._stats["zero_laxity_wins"] += 1
            self._zero_cl_ids.add(job.jid)
            if obs is not None:
                obs.decision(
                    self.name,
                    "zero_laxity.win",
                    self.ctx.now(),
                    job.jid,
                    preempted=current.jid,
                )
            return self._dispatch_regular(job)

        # Line D.7: not valuable enough — demote.
        self._remove_from_regular_queues(job)
        self._label_supplement(job)
        if obs is not None:
            obs.decision(
                self.name,
                "zero_laxity.demote"
                if self._supplement_enabled
                else "zero_laxity.abandon",
                self.ctx.now(),
                job.jid,
            )
        return current

    def _remove_from_regular_queues(self, job: Job) -> None:
        if self._qedf.remove(job) is None:
            if self._qother.remove(job) is None:
                raise SchedulingError(
                    f"zero-laxity interrupt for job {job.jid} that is in "
                    "neither Qedf nor Qother"
                )

    # ------------------------------------------------------------------
    # Eviction (execution faults: VM revocation, mid-run job kill)
    # ------------------------------------------------------------------
    def on_eviction(self, job: Job) -> Optional[Job]:
        """The running job was forcibly evicted (and may have lost
        progress).  Requeue it — supplement jobs back to Qsupp, regular
        jobs to Qother with a fresh zero-laxity alarm — then run handler C
        to elect a successor, exactly as if the processor had just freed
        up."""
        self._refresh_rate()
        if self._is_supplement(job):
            self._qsupp.insert(job)
        elif job.jid not in self._abandoned_ids:
            self._enqueue_other(job)
        obs = self.ctx.obs
        if obs is not None:
            obs.decision(self.name, "requeue.evicted", self.ctx.now(), job.jid)
        return self._handler_c()

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def _policy_state(self) -> dict:
        return {
            "rate": self._rate,
            "cslack": self._cslack,
            # Qedf entries carry bookkeeping; all queues serialise by jid
            # (insertion order is irrelevant: every ordering key includes
            # the jid tie-break, so keys are unique).
            "qedf": sorted(
                (e[0].jid, e[1], e[2]) for e in self._qedf.entries()
            ),
            "qother": self._qother.live_jids(),
            "qsupp": self._qsupp.live_jids(),
            "supp_ids": sorted(self._supp_ids),
            "abandoned_ids": sorted(self._abandoned_ids),
            "zero_cl_ids": sorted(self._zero_cl_ids),
            "stats": dict(self._stats),
            "intervals": [
                (iv.start, iv.end, iv.regval, iv.clval) for iv in self._intervals
            ],
            "open_start": self._open_start,
            "acc_regval": self._acc_regval,
            "acc_clval": self._acc_clval,
        }

    def _restore_policy_state(self, state: dict, jobs_by_id) -> None:
        self._rate = state["rate"]
        self._cslack = state["cslack"]
        for jid, t_insert, cslack_insert in state["qedf"]:
            self._qedf.insert((jobs_by_id[jid], t_insert, cslack_insert))
        for jid in state["qother"]:
            # Plain insert: the armed zero-laxity alarms live in the
            # engine's event-queue snapshot; re-arming here would bump
            # version tokens and orphan them.
            self._qother.insert(jobs_by_id[jid])
        for jid in state["qsupp"]:
            self._qsupp.insert(jobs_by_id[jid])
        self._supp_ids = set(state["supp_ids"])
        self._abandoned_ids = set(state["abandoned_ids"])
        self._zero_cl_ids = set(state["zero_cl_ids"])
        self._stats = dict(state["stats"])
        self._intervals = [
            RegularInterval(start=s, end=e, regval=rv, clval=cv)
            for s, e, rv, cv in state["intervals"]
        ]
        self._open_start = state["open_start"]
        self._acc_regval = state["acc_regval"]
        self._acc_clval = state["acc_clval"]
