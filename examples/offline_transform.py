"""The offline reduction (Section III-A), made concrete.

Takes a varying-capacity instance, stretches it to constant capacity,
solves both sides exactly, and walks one schedule through the bijection —
printing the intermediate objects so the transformation stops being
abstract.

Run:  python examples/offline_transform.py
"""

from repro import Job, PiecewiseConstantCapacity, StretchTransform
from repro.analysis import render_table
from repro.core import EDFScheduler, optimal_offline_value
from repro.sim import simulate


def main() -> None:
    capacity = PiecewiseConstantCapacity(
        breakpoints=[0.0, 4.0, 8.0],
        rates=[1.0, 3.0, 1.5],
    )
    jobs = [
        Job(0, release=0.0, workload=3.0, deadline=5.0, value=2.0),
        Job(1, release=2.0, workload=6.0, deadline=8.0, value=5.0),
        Job(2, release=4.0, workload=5.0, deadline=12.0, value=4.0),
        Job(3, release=6.0, workload=9.0, deadline=10.0, value=7.0),
    ]

    transform = StretchTransform(capacity)  # target rate = c̄ = 3
    print(
        f"Stretch map T(t) = (1/{transform.rate:g}) ∫₀ᵗ c(τ)dτ; "
        "sample points:"
    )
    for t in (0.0, 2.0, 4.0, 6.0, 8.0, 12.0):
        print(f"  T({t:5.1f}) = {transform.forward(t):7.3f}")

    image = transform.transform_instance(jobs)
    rows = []
    for job, im in zip(jobs, image.jobs):
        rows.append(
            [
                job.jid,
                f"[{job.release:g}, {job.deadline:g}]",
                f"[{im.release:.3f}, {im.deadline:.3f}]",
                job.workload,
                job.value,
            ]
        )
    print()
    print(
        render_table(
            ["job", "window (original)", "window (stretched)", "p", "v"],
            rows,
            title=(
                f"Job transformation (workloads and values are preserved; "
                f"image runs at constant rate {transform.rate:g})"
            ),
            float_fmt="{:g}",
        )
    )

    direct = optimal_offline_value(jobs, capacity)
    via_image = optimal_offline_value(image.jobs, image.capacity)
    print(
        f"\nexact offline optimum, varying capacity : {direct:g}"
        f"\nexact offline optimum, stretched image  : {via_image:g}"
        f"\n(equal — the bijection preserves value, Section III-A)"
    )

    # Walk one concrete schedule through the bijection.
    result = simulate(jobs, capacity, EDFScheduler(), validate=True)
    mapped = transform.map_segments(result.trace.segments)
    print("\nEDF schedule under the bijection (work per segment preserved):")
    for seg, im in zip(result.trace.segments, mapped):
        print(
            f"  job {seg.jid}: [{seg.start:5.2f}, {seg.end:5.2f}) "
            f"-> [{im.start:6.3f}, {im.end:6.3f})   work {seg.work:.2f}"
        )


if __name__ == "__main__":
    main()
