"""Execution-fault model unit tests: kills, revocations, crash plans, specs.

Kill semantics are checked against hand-computable single-job runs on a
constant-rate processor: a kill at time ``t`` with ``retain=r`` rewrites
the remaining workload to ``w - r * t`` and books the destroyed progress
as ``lost_work`` (so the trace validator's budget still balances).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.capacity import ConstantCapacity, PiecewiseConstantCapacity
from repro.core import EDFScheduler
from repro.errors import FaultConfigError
from repro.faults import (
    EXECUTION_FAULT_KINDS,
    EngineCrashPlan,
    ExecutionFault,
    ExecutionFaultSpec,
    JobKillFault,
    RevocationBurst,
)
from repro.sim import Job, simulate


class _TimedKill(ExecutionFault):
    """Test fault: kill the running job at explicit, fixed times."""

    def __init__(self, times, retain=0.0):
        self.times = tuple(times)
        self.retain = float(retain)

    def arm(self, engine, index):
        for t in self.times:
            engine.push_fault_event(t, ("kill", index, self.retain))


def _single_job_run(retain: float, kill_at: float = 4.0):
    job = Job(0, 0.0, 10.0, 30.0, 1.0)
    return simulate(
        [job],
        ConstantCapacity(1.0),
        EDFScheduler(),
        faults=[_TimedKill([kill_at], retain=retain)],
    )


# ----------------------------------------------------------------------
# JobKillFault
# ----------------------------------------------------------------------
class TestJobKillFault:
    def test_validation(self):
        with pytest.raises(FaultConfigError):
            JobKillFault(-1.0)
        with pytest.raises(FaultConfigError):
            JobKillFault(1.0, retain=1.5)
        with pytest.raises(FaultConfigError):
            JobKillFault(1.0, retain=-0.1)

    def test_kill_times_deterministic(self):
        a = JobKillFault(2.0, seed=5).kill_times(50.0)
        b = JobKillFault(2.0, seed=5).kill_times(50.0)
        assert a == b
        assert a != JobKillFault(2.0, seed=6).kill_times(50.0)
        assert all(0.0 < t < 50.0 for t in a)
        assert a == sorted(a)

    def test_zero_rate_or_horizon_empty(self):
        assert JobKillFault(0.0).kill_times(10.0) == []
        assert JobKillFault(3.0).kill_times(0.0) == []

    def test_full_restart_semantics(self):
        """retain=0: 4 units of progress destroyed, completion at 14."""
        result = _single_job_run(retain=0.0)
        assert result.trace.completion_times[0] == pytest.approx(14.0)
        assert result.trace.lost_work[0] == pytest.approx(4.0)
        result.trace.validate(result.jobs, ConstantCapacity(1.0))

    def test_partial_retain_semantics(self):
        """retain=0.5: only 2 of the 4 units are destroyed → done at 12."""
        result = _single_job_run(retain=0.5)
        assert result.trace.completion_times[0] == pytest.approx(12.0)
        assert result.trace.lost_work[0] == pytest.approx(2.0)

    def test_pure_eviction_loses_nothing(self):
        """retain=1: a preemption-and-resume, no work destroyed."""
        result = _single_job_run(retain=1.0)
        assert result.trace.completion_times[0] == pytest.approx(10.0)
        assert result.trace.lost_work.get(0, 0.0) == 0.0

    def test_kill_on_idle_processor_is_a_miss(self):
        job = Job(0, 5.0, 1.0, 30.0, 1.0)
        result = simulate(
            [job],
            ConstantCapacity(1.0),
            EDFScheduler(),
            faults=[_TimedKill([2.0])],  # nothing running at t=2
        )
        assert result.trace.completion_times[0] == pytest.approx(6.0)
        assert result.trace.lost_work == {}


# ----------------------------------------------------------------------
# RevocationBurst
# ----------------------------------------------------------------------
class TestRevocationBurst:
    def test_validation(self):
        with pytest.raises(FaultConfigError):
            RevocationBurst(-0.5)
        with pytest.raises(FaultConfigError):
            RevocationBurst(1.0, mean_down=0.0)
        with pytest.raises(FaultConfigError):
            RevocationBurst(windows=[(3.0, 2.0)])  # end <= start
        with pytest.raises(FaultConfigError, match="overlap"):
            RevocationBurst(windows=[(0.0, 2.0), (1.0, 3.0)])

    def test_sampled_windows_deterministic_and_disjoint(self):
        w = RevocationBurst(0.5, mean_down=1.0, seed=3).windows(40.0)
        assert w == RevocationBurst(0.5, mean_down=1.0, seed=3).windows(40.0)
        assert len(w) >= 1
        for (s0, e0), (s1, e1) in zip(w, w[1:]):
            assert e0 <= s1
        assert all(0.0 <= s < e <= 40.0 for s, e in w)

    def test_explicit_windows_clipped_to_horizon(self):
        burst = RevocationBurst(windows=[(1.0, 2.0), (5.0, 9.0), (12.0, 13.0)])
        assert burst.windows(8.0) == ((1.0, 2.0), (5.0, 8.0))

    def test_transform_pins_to_floor(self):
        base = ConstantCapacity(4.0)
        burst = RevocationBurst(windows=[(2.0, 3.0)])
        out = burst.transform(base, 10.0)
        assert isinstance(out, PiecewiseConstantCapacity)
        assert out.value(2.5) == base.lower
        assert out.value(1.0) == 4.0
        assert out.value(3.5) == 4.0
        assert (out.lower, out.upper) == (base.lower, base.upper)

    def test_transform_without_windows_is_identity(self):
        base = ConstantCapacity(4.0)
        assert RevocationBurst(0.0).transform(base, 10.0) is base

    def test_from_price_spikes(self):
        times = np.arange(0.0, 6.0)  # 0..5
        prices = np.array([1.0, 5.0, 5.0, 1.0, 5.0, 1.0])
        burst = RevocationBurst.from_price_spikes(times, prices, threshold=2.0)
        assert burst.windows(10.0) == ((1.0, 3.0), (4.0, 5.0))

    def test_from_price_spikes_open_tail(self):
        burst = RevocationBurst.from_price_spikes(
            [0.0, 1.0, 2.0], [0.0, 9.0, 9.0], threshold=2.0
        )
        assert burst.windows(10.0) == ((1.0, 3.0),)  # one grid step wide

    def test_from_price_spikes_shape_mismatch(self):
        with pytest.raises(FaultConfigError):
            RevocationBurst.from_price_spikes([0.0, 1.0], [1.0], 0.5)

    def test_eviction_delays_completion(self):
        """Revoked window [2, 5): rate 1 outside, floor 1... use a base with
        a higher rate so the pin actually bites."""
        job = Job(0, 0.0, 8.0, 30.0, 1.0)
        base = PiecewiseConstantCapacity([0.0], [4.0], lower=1.0, upper=4.0)
        burst = RevocationBurst(windows=[(1.0, 3.0)])
        capacity = burst.transform(base, 31.0)
        result = simulate([job], capacity, EDFScheduler(), faults=[burst])
        # 4/s for 1s (work 4), floor 1/s for 2s (work 2), 4/s for 0.5s.
        assert result.trace.completion_times[0] == pytest.approx(3.5)
        reference = simulate([job], base, EDFScheduler())
        assert reference.trace.completion_times[0] == pytest.approx(2.0)


# ----------------------------------------------------------------------
# EngineCrashPlan / ExecutionFaultSpec
# ----------------------------------------------------------------------
class TestEngineCrashPlan:
    def test_exactly_one_trigger(self):
        with pytest.raises(FaultConfigError):
            EngineCrashPlan()
        with pytest.raises(FaultConfigError):
            EngineCrashPlan(at_time=1.0, at_event=5)
        with pytest.raises(FaultConfigError):
            EngineCrashPlan(at_time=-1.0)
        with pytest.raises(FaultConfigError):
            EngineCrashPlan(at_event=-2)

    def test_is_crash_plan_marker(self):
        assert EngineCrashPlan(at_event=3).is_crash_plan
        assert not getattr(JobKillFault(1.0), "is_crash_plan", False)

    def test_picklable(self):
        plan = EngineCrashPlan(at_event=7)
        plan.fired = True
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.at_event == 7 and clone.fired


class TestExecutionFaultSpec:
    def test_kinds(self):
        assert EXECUTION_FAULT_KINDS == ("kill", "revocation", "crash")
        with pytest.raises(FaultConfigError):
            ExecutionFaultSpec(kind="meteor")

    def test_crash_requires_location(self):
        with pytest.raises(FaultConfigError):
            ExecutionFaultSpec(kind="crash")
        spec = ExecutionFaultSpec(kind="crash", options={"at_event": 9})
        fault = spec.build(seed=1)
        assert isinstance(fault, EngineCrashPlan) and fault.at_event == 9

    def test_zero_severity_builds_none(self):
        assert ExecutionFaultSpec(kind="none").build() is None
        assert ExecutionFaultSpec(kind="kill", severity=0.0).build() is None
        assert ExecutionFaultSpec(kind="revocation", severity=0.0).build() is None

    def test_build_kill_and_revocation(self):
        kill = ExecutionFaultSpec(
            kind="kill", severity=0.3, options={"retain": 0.5}
        ).build(seed=11)
        assert isinstance(kill, JobKillFault)
        assert (kill.rate, kill.retain, kill.seed) == (0.3, 0.5, 11)

        rev = ExecutionFaultSpec(
            kind="revocation", severity=0.1, options={"mean_down": 2.0}
        ).build(seed=12)
        assert isinstance(rev, RevocationBurst)
        assert (rev.rate, rev.mean_down, rev.seed) == (0.1, 2.0, 12)

    def test_labels(self):
        assert ExecutionFaultSpec(kind="none").label == "no-fault"
        assert ExecutionFaultSpec(kind="kill", severity=0.0).label == "no-fault"
        assert ExecutionFaultSpec(kind="kill", severity=0.25).label == "kill=0.25"
        assert (
            ExecutionFaultSpec(kind="crash", options={"at_time": 2.0}).label
            == "crash"
        )

    def test_spec_picklable(self):
        spec = ExecutionFaultSpec(kind="kill", severity=0.2, options={"retain": 0.1})
        assert pickle.loads(pickle.dumps(spec)) == spec
