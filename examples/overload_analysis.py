"""Overload analysis: how each policy degrades as load grows.

Sweeps the arrival rate over the paper's workload (Section IV setup at
reduced scale) and prints the fraction of offered value each policy
captures, alongside the theoretical worst-case guarantees for context.
This is the extended version of the paper's Table I with the full
scheduler zoo — it shows *why* the Dover family exists: the classical
policies fall off a cliff once the system overloads.

Run:  python examples/overload_analysis.py [mc_runs]
"""

import sys

from repro.analysis import render_table
from repro.analysis.theory import (
    varying_capacity_upper_bound,
    vdover_competitive_ratio,
)
from repro.experiments import run_policy_sweep


def main(mc_runs: int = 20) -> None:
    lambdas = (1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0)
    print(
        f"Sweeping arrival rate over {lambdas}, {mc_runs} Monte-Carlo runs "
        "per point (paper setup: k=7, capacity CTMC over {1, 35})...\n"
    )
    sweep = run_policy_sweep(
        lambdas=lambdas, n_runs=mc_runs, expected_jobs=400.0, seed=123
    )

    names = list(sweep.percents)
    headers = ["lambda"] + names + ["winner"]
    rows = []
    for i, lam in enumerate(sweep.swept_values):
        row = [f"{lam:g}"]
        row += [f"{sweep.percents[n][i].mean:6.2f}" for n in names]
        row.append(sweep.best_at(i))
        rows.append(row)
    print(render_table(headers, rows, title="% of offered value captured"))

    k, delta = 7.0, 35.0
    print(
        "\nTheory for context (worst case, not averages):"
        f"\n  no online algorithm can guarantee more than "
        f"{100 * varying_capacity_upper_bound(k):.2f}%  (Theorem 3(1))"
        f"\n  V-Dover guarantees at least "
        f"{100 * vdover_competitive_ratio(k, delta):.3f}%  (Theorem 3(2))"
        "\nAverage performance sits far above both — competitive ratios "
        "price in an adversary the Poisson workload never plays."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20)
