"""Crash-at-every-byte-offset durability properties.

The central contract of :mod:`repro.store` (docs/ROBUSTNESS.md §12):
**recovered state equals the longest fsynced prefix of operations**.
Concretely, for a run that crashes (torn write + power loss) at global
byte offset *k* — for *every* k the run ever writes:

* every operation whose ``append(..., sync=True)`` returned before the
  crash is recovered, in order, bit-identically;
* the operation in flight at the crash is cleanly absent (torn tails
  truncate; partial snapshots stay invisible);
* recovery itself never raises — no offset leaves the store unopenable.

The deterministic loops below literally enumerate every offset; the
hypothesis block (skipped when hypothesis is not installed, e.g. the
minimal CI environment) randomises payload shapes, segment bounds and
snapshot cadence on top.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import StorageFault
from repro.store.directory import MemoryDirectory
from repro.store.faults import StorageFaultSpec
from repro.store.log import SegmentedLog
from repro.store.tenant import TenantStore


def _run_log_until_fault(directory, payloads, *, segment_bytes=64):
    """Append payloads (sync each) until the injected fault kills the
    process; returns the list whose appends completed."""
    completed = []
    try:
        log = SegmentedLog(directory, segment_bytes=segment_bytes, fsync=True)
        for p in payloads:
            log.append(p, sync=True)
            completed.append(p)
        log.close()
    except StorageFault:
        pass
    return completed


def _total_log_bytes(payloads, *, segment_bytes=64):
    mem = MemoryDirectory()
    spy = StorageFaultSpec("torn_write", at=10**9).apply(mem)
    assert _run_log_until_fault(spy, payloads,
                                segment_bytes=segment_bytes) == payloads
    return spy.bytes_written


def _recovered_log(mem, *, segment_bytes=64):
    log = SegmentedLog(mem, segment_bytes=segment_bytes, fsync=True)
    return [payload for _seq, payload in log.entries()]


class TestLogEveryOffset:
    PAYLOADS = [f"record-{i:02d}".encode() for i in range(12)]

    def test_crash_at_every_byte_offset(self):
        total = _total_log_bytes(self.PAYLOADS)
        assert total > 0
        for offset in range(total):
            mem = MemoryDirectory()
            faulty = StorageFaultSpec("torn_write", at=offset).apply(mem)
            completed = _run_log_until_fault(faulty, self.PAYLOADS)
            mem.crash()  # power loss at the tear
            recovered = _recovered_log(mem)
            assert recovered == completed, (
                f"offset {offset}: recovered {len(recovered)} records, "
                f"expected the {len(completed)} completed appends"
            )

    def test_enospc_at_every_byte_offset(self):
        # Disk-full mid-write must be exactly as safe as a torn write.
        total = _total_log_bytes(self.PAYLOADS)
        for offset in range(0, total, 7):  # stride: same machinery
            mem = MemoryDirectory()
            faulty = StorageFaultSpec("enospc", at=offset).apply(mem)
            completed = []
            try:
                log = SegmentedLog(faulty, segment_bytes=64, fsync=True)
                for p in self.PAYLOADS:
                    log.append(p, sync=True)
                    completed.append(p)
                log.close()
            except OSError:
                pass
            mem.crash()
            assert _recovered_log(mem) == completed

    def test_fsync_lie_recovers_a_prefix(self):
        # With a lying fsync nothing is guaranteed durable — but recovery
        # must still land on a clean *prefix* of the completed appends,
        # never invent or reorder records.
        total = _total_log_bytes(self.PAYLOADS)
        for offset in range(0, total, 5):
            mem = MemoryDirectory()
            lying = StorageFaultSpec("fsync_lie").apply(mem)
            torn = StorageFaultSpec("torn_write", at=offset).apply(lying)
            completed = _run_log_until_fault(torn, self.PAYLOADS)
            mem.crash()
            recovered = _recovered_log(mem)
            assert recovered == completed[: len(recovered)]

    def test_bit_flip_at_every_offset_never_surfaces_rot(self):
        # Silent rot at any payload/frame byte must quarantine, not
        # parse: recovery yields a clean prefix and never raises.
        total = _total_log_bytes(self.PAYLOADS)
        for offset in range(0, total, 3):
            mem = MemoryDirectory()
            flip = StorageFaultSpec("bit_flip", at=offset).apply(mem)
            log = SegmentedLog(flip, segment_bytes=64, fsync=True)
            for p in self.PAYLOADS:
                log.append(p, sync=True)
            log.close()
            recovered = _recovered_log(mem)
            assert recovered == self.PAYLOADS[: len(recovered)]


class TestTenantStoreEveryOffset:
    """End-to-end: ops + periodic snapshots + compaction, crash at every
    offset, recovered (snapshot ∘ post-anchor ops) = completed prefix."""

    N_OPS = 14
    SNAP_EVERY = 5

    def _drive(self, directory):
        """Returns the ops whose fsynced append returned before death."""
        completed = []
        try:
            store = TenantStore(directory, segment_bytes=96, fsync=True)
            store.ensure_spec({"tenant": "t", "seed": 1})
            for i in range(self.N_OPS):
                store.append_ops([{"i": i}], sync=True)
                completed.append(i)
                if (i + 1) % self.SNAP_EVERY == 0:
                    store.write_snapshot(list(completed),
                                         op_seq=store.op_seq)
            store.close()
        except StorageFault:
            pass
        return completed

    def _recover(self, mem):
        store = TenantStore(mem, fsync=True)
        loaded = store.load_snapshot()
        state, anchor = ([], 0) if loaded is None else loaded
        return list(state) + [
            doc["i"] for seq, doc in store.ops() if seq >= anchor
        ]

    def _total_bytes(self):
        mem = MemoryDirectory()
        spy = StorageFaultSpec("torn_write", at=10**9).apply(mem)
        assert len(self._drive(spy)) == self.N_OPS
        return spy.bytes_written

    def test_crash_at_every_byte_offset(self):
        total = self._total_bytes()
        assert total > 0
        for offset in range(total):
            mem = MemoryDirectory()
            faulty = StorageFaultSpec("torn_write", at=offset).apply(mem)
            completed = self._drive(faulty)
            mem.crash()
            recovered = self._recover(mem)
            assert recovered == completed, (
                f"offset {offset}: recovered {recovered!r} != "
                f"completed {completed!r}"
            )

    def test_sigkill_loses_nothing_even_unsynced(self):
        # SIGKILL (not power loss) keeps everything handed to the OS:
        # sync_all before crash models the page cache surviving.
        total = self._total_bytes()
        for offset in range(0, total, 11):
            mem = MemoryDirectory()
            faulty = StorageFaultSpec("torn_write", at=offset).apply(mem)
            completed = self._drive(faulty)
            mem.sync_all()
            mem.crash()
            recovered = self._recover(mem)
            # The torn in-flight frame is still truncated away; every
            # completed op survives.
            assert recovered == completed


# ----------------------------------------------------------------------
# Randomised layer (skipped without hypothesis, e.g. minimal CI).
# ----------------------------------------------------------------------
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


@settings(max_examples=40, deadline=None)
@given(
    payloads=st.lists(
        st.binary(min_size=0, max_size=40), min_size=1, max_size=25
    ),
    segment_bytes=st.integers(min_value=24, max_value=200),
    offset=st.integers(min_value=0, max_value=4000),
)
def test_random_payloads_random_crash_offset(payloads, segment_bytes, offset):
    mem = MemoryDirectory()
    faulty = StorageFaultSpec("torn_write", at=offset).apply(mem)
    completed = _run_log_until_fault(
        faulty, payloads, segment_bytes=segment_bytes
    )
    mem.crash()
    assert _recovered_log(mem, segment_bytes=segment_bytes) == completed


@settings(max_examples=25, deadline=None)
@given(
    n_ops=st.integers(min_value=1, max_value=20),
    snap_every=st.integers(min_value=1, max_value=8),
    offset=st.integers(min_value=0, max_value=6000),
    op_size=st.integers(min_value=1, max_value=30),
)
def test_random_tenant_store_crash(n_ops, snap_every, offset, op_size):
    blob = "x" * op_size

    def drive(directory):
        completed = []
        try:
            store = TenantStore(directory, segment_bytes=96, fsync=True)
            for i in range(n_ops):
                store.append_ops([{"i": i, "blob": blob}], sync=True)
                completed.append(i)
                if (i + 1) % snap_every == 0:
                    store.write_snapshot(completed[:], op_seq=store.op_seq)
            store.close()
        except StorageFault:
            pass
        return completed

    mem = MemoryDirectory()
    completed = drive(StorageFaultSpec("torn_write", at=offset).apply(mem))
    mem.crash()
    store = TenantStore(mem, fsync=True)
    loaded = store.load_snapshot()
    state, anchor = ([], 0) if loaded is None else loaded
    recovered = list(state) + [
        doc["i"] for seq, doc in store.ops() if seq >= anchor
    ]
    assert recovered == completed


@settings(max_examples=25, deadline=None)
@given(
    records=st.lists(
        st.dictionaries(
            st.sampled_from(["op", "jid", "dc", "t"]),
            st.integers(min_value=0, max_value=99),
            min_size=1,
        ),
        min_size=1,
        max_size=15,
    ),
    flip_at=st.integers(min_value=0, max_value=1500),
    bit=st.integers(min_value=0, max_value=7),
)
def test_random_bit_rot_never_parses(records, flip_at, bit):
    # JSON op docs through the log with one random flipped bit anywhere:
    # recovery must yield a decodable prefix, never garbage records.
    mem = MemoryDirectory()
    flip = StorageFaultSpec(
        "bit_flip", at=flip_at, options={"bit": bit}
    ).apply(mem)
    log = SegmentedLog(flip, segment_bytes=80, fsync=True)
    encoded = [json.dumps(doc, sort_keys=True).encode() for doc in records]
    for payload in encoded:
        log.append(payload, sync=True)
    log.close()
    recovered = _recovered_log(mem, segment_bytes=80)
    assert recovered == encoded[: len(recovered)]
    for payload in recovered:
        json.loads(payload.decode())  # every survivor decodes
