"""Shared helpers for the benchmark/reproduction harness.

Every benchmark regenerates one paper artifact (table/figure) or ablation,
prints it, and archives it under ``benchmarks/results/`` so EXPERIMENTS.md
can be refreshed from the latest run.  Scale knobs:

* ``REPRO_MC_RUNS``  — Monte-Carlo replications (default: laptop-friendly;
  the paper uses 800);
* ``REPRO_JOBS``     — expected jobs per run (paper: 2000).

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def expected_jobs(default: float = 1000.0) -> float:
    raw = os.environ.get("REPRO_JOBS")
    return float(raw) if raw else default


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def archive(results_dir):
    """Print an artifact and save it under benchmarks/results/<name>.txt."""

    def _archive(name: str, text: str) -> None:
        print()
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _archive
