"""The scheduling kernel: one event loop for all engines.

Everything the single-processor engine learned in PRs 1–3 — the prefix-sum
capacity fast path, execution-fault dispatch, snapshot/restore with the
write-ahead journal, the invariant watchdog, and event-heap compaction —
lives here once, parameterised over a *processor set*:

* ``m`` capacity trajectories (one per processor), each with its own
  running segment anchored at ``W(seg_start)`` when the trajectory carries
  a prefix-sum index (``supports_prefix_index``), so progress queries and
  completion re-prediction are O(log n) on every processor;
* a single global event queue ordered by ``(time, kind priority, seq)``
  with per-job version tokens for lazy deletion and automatic compaction
  (:meth:`~repro.sim.events.EventQueue.note_stale`) — a binary heap by
  default, or a bucketed calendar queue in high-λ regimes
  (:func:`~repro.sim.events.make_event_queue`, ``event_queue="auto"``);
* one *decision protocol* flag: ``single=True`` means scheduler handlers
  return ``Optional[Job]`` (the paper's single-processor interface) and
  the kernel applies it to processor 0; ``single=False`` means handlers
  return a full :class:`~repro.multi.scheduler.Assignment` which the
  kernel diffs against the current one (free preemption and migration,
  no intra-job parallelism).

Columnar hot path (this PR)
---------------------------
Per-job execution state lives in a struct-of-arrays
:class:`~repro.sim.jobtable.JobTable`: immutable job parameters as numpy
columns, the mutable ``remaining``/``status`` hot columns as row-indexed
lists the loop mutates in place.  Whole-population passes — bootstrap
event seeding, the wind-down failure sweep, laxity recomputation — are
vectorized over the columns; :class:`Job` objects remain thin views that
flow through scheduler handlers and event payloads unchanged.

The run loop dispatches in *same-timestamp batches*: when several events
share one instant, the inner loop drains them without re-entering the
outer bookkeeping (monotonicity check, horizon check, ``now`` update) —
popping one event at a time and re-peeking, because a dispatch may push a
new event at the *same* instant with *higher* kind priority (e.g. a
COMPLETION predicted at exactly ``t``), which must precede the remaining
batch.  Each event still takes its own scheduler decision, preserving the
paper's per-interrupt semantics bit-for-bit.

Provably-dead events (stale version token, or a job event whose job is
already terminal) are filtered *before* journaling, identically in every
loop variant — ~20–35 % of pops on the Figure-1 workloads are such
no-ops.  The filter depends only on deterministic run state, so journals
written before a crash replay exactly after restore.

Determinism contract: for a fixed instance and scheduler the run is
bit-for-bit reproducible — ties break by insertion sequence, nothing
consults a wall clock or an RNG — and with ``m = 1`` the kernel replays
the historical single-processor engine *exactly* (same events, same
sequence numbers, same float operations; the parity suite in
``tests/multi/test_kernel_parity.py`` pins this down).
"""

from __future__ import annotations

import math
import pickle
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.capacity.base import CapacityFunction
from repro.errors import (
    RecoveryError,
    SchedulingError,
    SimulatedCrash,
    SimulationError,
)
from repro import obs as _obs
from repro.sim.events import Event, EventKind, make_event_queue
from repro.sim.job import (
    CODE_STATUS,
    STATUS_CODE,
    Job,
    JobStatus,
    validate_jobs,
)
from repro.sim.jobtable import JobTable
from repro.sim.journal import (
    EngineSnapshot,
    EventJournal,
    JournalRecord,
    describe_payload,
)
from repro.sim.trace import RunSegment, ScheduleTrace

__all__ = ["SchedulingKernel"]

_EPS = 1e-9

# Status codes (hot-loop int compares; CODE_STATUS order is append-only,
# so "terminal" is exactly "code >= COMPLETED").
_PENDING = STATUS_CODE[JobStatus.PENDING]
_READY = STATUS_CODE[JobStatus.READY]
_RUNNING = STATUS_CODE[JobStatus.RUNNING]
_COMPLETED = STATUS_CODE[JobStatus.COMPLETED]
_FAILED = STATUS_CODE[JobStatus.FAILED]
_TERMINAL_MIN = _COMPLETED

#: Default snapshot cadence (events) when crash plans are present but the
#: caller did not pick one.
_DEFAULT_SNAPSHOT_EVERY = 64


class SchedulingKernel:
    """The shared event loop (see module docstring).

    Parameters
    ----------
    jobs:
        The instance's job set (ids must be unique).
    capacities:
        One realized capacity trajectory per processor (``len >= 1``).
    scheduler:
        The online policy.  ``single=True`` expects the single-processor
        :class:`~repro.sim.scheduler.Scheduler` handler contract
        (``Optional[Job]`` decisions); ``single=False`` expects
        :class:`~repro.multi.scheduler.MultiScheduler` (full assignments).
    make_context:
        Builds the scheduler-facing context from this kernel; called at
        bootstrap and again at restore (fresh bind).
    horizon, faults, watchdog, journal, snapshot_every:
        As on the façades (see :class:`~repro.sim.engine.SimulationEngine`).
    event_queue:
        ``"auto"`` (default), ``"heap"`` or ``"calendar"`` — the event
        queue layout (:func:`~repro.sim.events.make_event_queue`).  All
        three produce bit-identical runs; the choice is constant-factor
        only.
    single:
        Selects the decision protocol (see above).  In single mode the
        kernel's combined ``outcomes`` trace *is* ``traces[0]`` (one
        object), preserving the historical single-processor trace layout.
    """

    def __init__(
        self,
        jobs: Sequence[Job],
        capacities: Sequence[CapacityFunction],
        scheduler,
        *,
        make_context: Callable[["SchedulingKernel"], object],
        horizon: float | None = None,
        faults: Sequence[object] = (),
        watchdog: "object | None" = None,
        journal: "EventJournal | None" = None,
        snapshot_every: int | None = None,
        event_queue: str = "auto",
        single: bool = False,
        protocol: str = "scalar",
    ) -> None:
        validate_jobs(jobs)
        if protocol not in ("scalar", "batch", "auto"):
            raise SimulationError(
                f'protocol must be "scalar", "batch" or "auto", got {protocol!r}'
            )
        if not capacities:
            raise SimulationError("at least one processor required")
        self._jobs = list(jobs)
        self._by_id: Dict[int, Job] = {j.jid: j for j in jobs}
        self._caps: List[CapacityFunction] = list(capacities)
        self._scheduler = scheduler
        self._make_context = make_context
        self._single = bool(single)
        if self._single and len(self._caps) != 1:
            raise SimulationError(
                "single-decision protocol requires exactly one processor"
            )
        if horizon is None:
            horizon = max((j.deadline for j in jobs), default=0.0) + 1.0
        if not math.isfinite(horizon) or horizon < 0.0:
            raise SimulationError(f"invalid horizon: {horizon!r}")
        self._horizon = float(horizon)

        m = len(self._caps)
        # Ground-truth run state: the columnar job table plus per-processor
        # running-segment registers.  _row/_rem/_st alias the table's
        # mapping and mutable columns (the table mutates them in place on
        # restore, so the aliases never go stale).
        self._now = 0.0
        self._table = JobTable(self._jobs)
        self._row: Dict[int, int] = self._table.row_of
        self._rem: List[float] = self._table.remaining
        self._st: List[int] = self._table.status
        self._current: List[Optional[Job]] = [None] * m
        self._seg_start: List[float] = [0.0] * m
        self._seg_remaining0: List[float] = [0.0] * m
        # Prefix-sum index fast path (repro.capacity.prefix): anchor each
        # running segment at its cumulative work W(seg_start) so progress
        # queries are one O(log n) lookup, W(now) − anchor — bit-identical
        # to integrate(seg_start, now), which indexed models define as
        # exactly that difference.
        self._indexed: List[bool] = [
            bool(getattr(c, "supports_prefix_index", False)) for c in self._caps
        ]
        self._advance_from = [
            getattr(c, "advance_from", None) for c in self._caps
        ]
        self._seg_cum0: List[float] = [0.0] * m
        # One-slot cumulative cache per processor: within one dispatch the
        # kernel asks W(t) for the same t several times (progress check,
        # segment close, next start's anchor); cumulative() is pure, so
        # the last (t, W(t)) pair short-circuits the repeats.
        self._cum_t: List[float] = [-1.0] * m
        self._cum_v: List[float] = [0.0] * m
        self._proc_of: Dict[int, int] = {}  # jid -> processor while running

        # Event bookkeeping.
        self._events = make_event_queue(
            event_queue,
            stale=self._event_is_stale,
            horizon=self._horizon,
            expected_events=2 * len(self._jobs) + 1,
        )
        self._completion_version: Dict[int, int] = {}
        self._alarm_version: Dict[int, int] = {}
        self._traces: List[ScheduleTrace] = [ScheduleTrace() for _ in range(m)]
        # Combined outcome/value record.  Single mode: the same object as
        # traces[0], so segments and outcomes share one trace (the
        # historical single-processor layout).
        self._outcomes: ScheduleTrace = (
            self._traces[0] if self._single else ScheduleTrace()
        )
        self._apply = self._apply_single if self._single else self._apply_multi

        # Fault / recovery / monitoring plumbing.
        self._faults = list(faults)
        self._watchdog = watchdog
        self._journal = journal
        if snapshot_every is None and any(
            getattr(f, "is_crash_plan", False) for f in self._faults
        ):
            snapshot_every = _DEFAULT_SNAPSHOT_EVERY
        if snapshot_every is not None and snapshot_every < 1:
            raise SimulationError(
                f"snapshot_every must be >= 1, got {snapshot_every!r}"
            )
        self._snapshot_every = snapshot_every
        self._event_crashes: List[Tuple[int, int]] = []  # (at_event, fault idx)
        self._dispatch_count = 0
        self._verify_until = 0
        self._last_snapshot: Optional[EngineSnapshot] = None
        self._started = False
        self._ended = False
        # Batch decision protocol (repro.sim.batchproto).  "scalar" keeps
        # the historical per-event loops byte-untouched; "batch"/"auto"
        # switch to _run_batch when the scheduler implements plan() —
        # per-event dispatch otherwise, so the knob is always safe.
        self._protocol = protocol
        self._use_batch = protocol != "scalar" and bool(
            getattr(scheduler, "batch_capable", False)
        )
        # One-way latch: set when a segment close leaves a READY job with
        # (near-)zero remaining work.  Starting such a job mid-batch would
        # predict a COMPLETION at the *current* instant, which the scalar
        # loop would dispatch before the rest of the batch — so once the
        # latch trips, the kernel stops gathering groups and dispatches
        # per-event (bit-identical, just without the batch win).
        self._batch_unsafe = False
        # Observability: capture the active context once.  When disabled
        # (the default) this is None and every emission site in the hot
        # path reduces to a single attribute-identity check.
        self._obs = _obs.current()
        #: The object faults and watchdog monitors observe (the façade);
        #: defaults to the kernel itself, façades point it at themselves.
        self.owner = self

    # ------------------------------------------------------------------
    # Read-only accessors (used by façades, the watchdog and recovery)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def horizon(self) -> float:
        return self._horizon

    @property
    def n_procs(self) -> int:
        return len(self._caps)

    @property
    def capacity(self) -> CapacityFunction:
        """Processor 0's trajectory (the whole world in single mode)."""
        return self._caps[0]

    @property
    def capacities(self) -> List[CapacityFunction]:
        return list(self._caps)

    @property
    def trace(self) -> ScheduleTrace:
        """The combined outcome trace (``traces[0]`` in single mode)."""
        return self._outcomes

    @property
    def traces(self) -> List[ScheduleTrace]:
        return list(self._traces)

    @property
    def outcomes(self) -> ScheduleTrace:
        return self._outcomes

    @property
    def scheduler(self):
        return self._scheduler

    @property
    def jobs(self) -> List[Job]:
        return list(self._jobs)

    @property
    def jobs_by_id(self) -> Dict[int, Job]:
        return dict(self._by_id)

    @property
    def table(self) -> JobTable:
        """The columnar ground-truth job state (read-only use only)."""
        return self._table

    @property
    def dispatch_count(self) -> int:
        """Events dispatched so far (journal index of the next dispatch)."""
        return self._dispatch_count

    @property
    def last_snapshot(self) -> Optional[EngineSnapshot]:
        return self._last_snapshot

    @property
    def event_queue_size(self) -> int:
        return len(self._events)

    @property
    def started(self) -> bool:
        return self._started

    @property
    def ended(self) -> bool:
        """True once the END event (or the horizon) has been reached."""
        return self._ended

    def running(self) -> Tuple[Optional[Job], ...]:
        return tuple(self._current)

    def job_status(self, jid: int) -> Optional[JobStatus]:
        """Diagnostic view of a job's lifecycle state."""
        return self._table.status_of(jid)

    # ------------------------------------------------------------------
    # Lazy-deletion hygiene: which queued events are provably dead
    # ------------------------------------------------------------------
    def _event_is_stale(self, event: Event) -> bool:
        """True iff dispatching ``event`` would be a guaranteed no-op.

        Conservative: alarms/completions with bumped version tokens, and
        job events for jobs in a terminal state.  Alarms of RUNNING jobs
        are *not* stale (the job may return to READY before they fire)."""
        kind = event.kind
        if kind is EventKind.ALARM:
            jid = event.payload[0].jid
            if self._alarm_version.get(jid, 0) != event.version:
                return True
            row = self._row.get(jid)
            return row is not None and self._st[row] >= _TERMINAL_MIN
        if kind is EventKind.COMPLETION:
            payload = event.payload
            jid = (payload[1] if isinstance(payload, tuple) else payload).jid
            if self._completion_version.get(jid, 0) != event.version:
                return True
            row = self._row.get(jid)
            return row is not None and self._st[row] >= _TERMINAL_MIN
        if kind is EventKind.DEADLINE:
            row = self._row.get(event.payload.jid)
            return row is not None and self._st[row] >= _TERMINAL_MIN
        return False

    def _event_is_noop(self, event: Event) -> bool:
        """Pre-dispatch filter: exactly the early-return cases of
        :meth:`_dispatch`, evaluated *before* journaling.

        Must stay in lockstep with the dispatch handlers and must be
        applied identically in every loop variant: skipped events are
        never journaled and never counted, so a journal written with the
        watchdog/observability on replays bit-identically with them off —
        and a pre-crash journal replays bit-identically after restore
        (the filter reads only deterministic run state)."""
        kind = event.kind
        if kind is EventKind.COMPLETION:
            payload = event.payload
            job = payload if self._single else payload[1]
            return self._completion_version.get(job.jid, 0) != event.version
        if kind is EventKind.DEADLINE:
            return self._st[self._row[event.payload.jid]] >= _TERMINAL_MIN
        if kind is EventKind.ALARM:
            job = event.payload[0]
            if self._alarm_version.get(job.jid, 0) != event.version:
                return True
            return self._st[self._row[job.jid]] != _READY
        return False

    # ------------------------------------------------------------------
    # Execution-fault plumbing (used by repro.faults.execution at arm time)
    # ------------------------------------------------------------------
    def push_fault_event(self, time: float, payload: tuple) -> None:
        """Queue a FAULT event (payload: ``("kill", i, retain[, proc])``,
        ``("evict", i[, proc])`` or ``("crash", i)``)."""
        if 0.0 <= time <= self._horizon:
            self._events.push(Event(time, EventKind.FAULT, tuple(payload)))

    def register_event_crash(self, fault_index: int, at_event: int) -> None:
        """Arrange for crash plan ``fault_index`` to fire just before the
        ``at_event``-th event dispatch."""
        self._event_crashes.append((int(at_event), int(fault_index)))

    # ------------------------------------------------------------------
    # State queries used by the contexts
    # ------------------------------------------------------------------
    def _cum_at(self, proc: int, t: float) -> float:
        """``W(t)`` on ``proc`` through the one-slot cache (pure query:
        the prefix index is append-only, so a cached value never goes
        stale within a run; restore resets the slots)."""
        if t == self._cum_t[proc]:
            return self._cum_v[proc]
        v = self._caps[proc].cumulative(t)
        self._cum_t[proc] = t
        self._cum_v[proc] = v
        return v

    def _seg_work(self, proc: int, t: float) -> float:
        """Work performed by processor ``proc``'s running segment up to
        ``t`` — via the capacity's prefix-sum index when available, else
        the naive integral (identical values either way)."""
        octx = self._obs
        if self._indexed[proc]:
            if octx is not None:
                octx.metrics.counter("kernel.capacity_index.hits").inc()
            return self._cum_at(proc, t) - self._seg_cum0[proc]
        if octx is not None:
            octx.metrics.counter("kernel.capacity_index.misses").inc()
        return self._caps[proc].integrate(self._seg_start[proc], t)

    def remaining_of(self, job: Job) -> float:
        row = self._row.get(job.jid)
        if row is None or self._st[row] == _PENDING:
            raise SchedulingError(
                f"remaining() queried for unreleased job {job.jid}"
            )
        proc = self._proc_of.get(job.jid)
        if proc is not None and self._current[proc] is job:
            done = self._seg_work(proc, self._now)
            return max(0.0, self._seg_remaining0[proc] - done)
        return self._rem[row]

    # ------------------------------------------------------------------
    # Alarm / timer plumbing
    # ------------------------------------------------------------------
    def set_alarm(self, job: Job, time: float, tag: str) -> None:
        if job.jid not in self._row:
            raise SchedulingError(f"alarm for unknown job {job.jid}")
        when = max(time, self._now)
        version = self._alarm_version.get(job.jid, 0) + 1
        self._alarm_version[job.jid] = version
        if version > 1:
            # A previous alarm for this job may still sit in the heap.
            self._events.note_stale()
        self._events.push(Event(when, EventKind.ALARM, (job, tag), version))

    def cancel_alarm(self, job: Job) -> None:
        # Bumping the version orphans any in-flight alarm event.
        self._alarm_version[job.jid] = self._alarm_version.get(job.jid, 0) + 1
        self._events.note_stale()

    def set_timer(self, time: float, tag: str) -> None:
        self._events.push(Event(max(time, self._now), EventKind.TIMER, tag))

    # ------------------------------------------------------------------
    # Processor mechanics
    # ------------------------------------------------------------------
    def _close_segment(self, proc: int, t: float) -> None:
        """Stop the job running on ``proc`` at ``t``, folding its progress
        into the ground truth and the trace.  Leaves the processor empty."""
        job = self._current[proc]
        if job is None:
            return
        work = self._seg_work(proc, t)
        new_remaining = self._seg_remaining0[proc] - work
        if new_remaining < -1e-6 * max(1.0, job.workload):
            raise SimulationError(
                f"job {job.jid} over-executed: remaining {new_remaining}"
            )
        row = self._row[job.jid]
        self._rem[row] = max(0.0, new_remaining)
        self._st[row] = _READY
        if new_remaining <= 1e-6 * max(1.0, job.workload):
            # A READY job this close to done completes the instant it is
            # restarted; see the _batch_unsafe latch in __init__.
            self._batch_unsafe = True
        self._traces[proc].add_segment(self._seg_start[proc], t, job.jid, work)
        # Orphan the in-flight completion event.
        self._completion_version[job.jid] = (
            self._completion_version.get(job.jid, 0) + 1
        )
        self._events.note_stale()
        self._current[proc] = None
        self._proc_of.pop(job.jid, None)
        octx = self._obs
        if octx is not None:
            octx.metrics.counter("kernel.preemptions").inc()
            octx.emit(
                "job.preempt", t, {"jid": job.jid, "proc": proc, "work": work}
            )

    def _start_job(self, proc: int, job: Job, t: float) -> None:
        row = self._row[job.jid]
        if self._st[row] != _READY:
            raise SchedulingError(
                f"scheduler tried to run job {job.jid} in state "
                f"{CODE_STATUS[self._st[row]]}"
            )
        self._current[proc] = job
        self._proc_of[job.jid] = proc
        self._st[row] = _RUNNING
        self._seg_start[proc] = t
        rem0 = self._rem[row]
        self._seg_remaining0[proc] = rem0
        if self._indexed[proc]:
            cum0 = self._cum_at(proc, t)
            self._seg_cum0[proc] = cum0
            advance_from = self._advance_from[proc]
            if advance_from is not None:
                finish = advance_from(t, cum0, rem0)
            else:  # pragma: no cover - indexed models all carry advance_from
                finish = self._caps[proc].advance(t, rem0)
        else:
            finish = self._caps[proc].advance(t, rem0)
        version = self._completion_version.get(job.jid, 0) + 1
        self._completion_version[job.jid] = version
        if finish <= self._horizon:
            payload = job if self._single else (proc, job)
            self._events.push(Event(finish, EventKind.COMPLETION, payload, version))
        octx = self._obs
        if octx is not None:
            octx.metrics.counter("kernel.starts").inc()
            octx.emit("job.start", t, {"jid": job.jid, "proc": proc})

    def _apply_single(self, desired: Optional[Job], t: float) -> None:
        """Switch processor 0 to ``desired`` (no-op if unchanged)."""
        if desired is self._current[0]:
            return
        self._close_segment(0, t)
        if desired is not None:
            self._start_job(0, desired, t)

    def _apply_multi(self, desired, t: float) -> None:
        """Diff a full assignment against the current one."""
        desired = list(desired)
        if len(desired) != len(self._caps):
            raise SchedulingError(
                f"assignment length {len(desired)} != "
                f"{len(self._caps)} processors"
            )
        seen: set[int] = set()
        for job in desired:
            if job is None:
                continue
            if job.jid in seen:
                raise SchedulingError(
                    f"job {job.jid} assigned to two processors at once"
                )
            seen.add(job.jid)
        # Close every processor whose job changes (incl. migrations away).
        for proc, job in enumerate(desired):
            if self._current[proc] is not job:
                self._close_segment(proc, t)
        # Start the new assignments (migrations now find the job READY).
        for proc, job in enumerate(desired):
            if job is not None and self._current[proc] is not job:
                self._start_job(proc, job, t)

    def _complete(self, proc: int, job: Job, t: float) -> None:
        """Fold the running job's final segment and record its success."""
        work = self._seg_work(proc, t)
        self._traces[proc].add_segment(self._seg_start[proc], t, job.jid, work)
        row = self._row[job.jid]
        self._rem[row] = 0.0
        self._st[row] = _COMPLETED
        self._current[proc] = None
        self._proc_of.pop(job.jid, None)
        self._completion_version[job.jid] = (
            self._completion_version.get(job.jid, 0) + 1
        )
        self._events.note_stale()
        self._outcomes.record_outcome(job, JobStatus.COMPLETED, t)
        octx = self._obs
        if octx is not None:
            octx.metrics.counter("kernel.completions").inc()
            octx.emit(
                "job.complete",
                t,
                {"jid": job.jid, "proc": proc, "value": job.value, "work": work},
            )
        desired = self._scheduler.on_job_end(job, completed=True)
        self._apply(desired, t)

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, event: Event) -> None:
        t = event.time
        kind = event.kind

        if kind is EventKind.RELEASE:
            job: Job = event.payload
            row = self._row[job.jid]
            self._st[row] = _READY
            self._rem[row] = job.workload
            octx = self._obs
            if octx is not None:
                octx.emit(
                    "job.release",
                    t,
                    {
                        "jid": job.jid,
                        "deadline": job.deadline,
                        "workload": job.workload,
                        "value": job.value,
                    },
                )
            desired = self._scheduler.on_release(job)
            self._apply(desired, t)
            return

        if kind is EventKind.COMPLETION:
            payload = event.payload
            if self._single:
                proc, job = 0, payload
            else:
                proc, job = payload
            if self._completion_version.get(job.jid, 0) != event.version:
                return  # stale: the job was preempted since this was armed
            if self._current[proc] is not job:  # pragma: no cover - defensive
                return
            self._complete(proc, job, t)
            return

        if kind is EventKind.DEADLINE:
            job = event.payload
            row = self._row[job.jid]
            if self._st[row] >= _TERMINAL_MIN:
                return
            proc = self._proc_of.get(job.jid)
            if proc is not None and self._current[proc] is job:
                # Jobs with zero laxity finish *exactly* at their deadline;
                # the predicted completion instant can land one ulp past it.
                # A running job whose remaining workload is within float
                # tolerance has completed, not failed.
                done = self._seg_work(proc, t)
                left = self._seg_remaining0[proc] - done
                if left <= 1e-9 * max(1.0, job.workload):
                    self._complete(proc, job, t)
                    return
                self._close_segment(proc, t)
            self._st[row] = _FAILED
            self._outcomes.record_outcome(job, JobStatus.FAILED, t)
            octx = self._obs
            if octx is not None:
                octx.metrics.counter("kernel.deadline_misses").inc()
                octx.emit(
                    "job.deadline_miss",
                    t,
                    {"jid": job.jid, "value": job.value},
                )
            desired = self._scheduler.on_job_end(job, completed=False)
            self._apply(desired, t)
            return

        if kind is EventKind.ALARM:
            job, tag = event.payload
            if self._alarm_version.get(job.jid, 0) != event.version:
                return  # re-armed or cancelled since
            if self._st[self._row[job.jid]] != _READY:
                return  # running/finished jobs do not take alarms
            desired = self._scheduler.on_alarm(job, tag)
            self._apply(desired, t)
            return

        if kind is EventKind.TIMER:
            desired = self._scheduler.on_timer(event.payload)
            self._apply(desired, t)
            return

        if kind is EventKind.FAULT:
            self._dispatch_fault(event.payload, t)
            return

        raise SimulationError(f"unhandled event kind: {kind!r}")  # pragma: no cover

    def _dispatch_fault(self, payload: tuple, t: float) -> None:
        """Apply an execution fault (see :mod:`repro.faults.execution`).

        Kill/evict payloads may carry a trailing processor index (default
        0 — and the only legal value in single mode), so per-machine
        targeting works on heterogeneous fleets."""
        op = payload[0]

        if op == "crash":
            idx = int(payload[1])
            fault = self._faults[idx]
            if getattr(fault, "fired", False):
                return  # already crashed once (journal replay after resume)
            fault.fired = True
            self._raise_crash(t, at_event=None, fault_index=idx)

        elif op in ("kill", "evict"):
            if op == "kill":
                retain = float(payload[2])
                proc = int(payload[3]) if len(payload) > 3 else 0
            else:
                proc = int(payload[2]) if len(payload) > 2 else 0
            if not 0 <= proc < len(self._caps):
                raise SimulationError(
                    f"fault targets processor {proc} of {len(self._caps)}"
                )
            job = self._current[proc]
            if job is None:
                return  # the fault hit an idle processor: nothing to lose
            # Fold the progress made so far, return the job to READY.
            self._close_segment(proc, t)
            lost = 0.0
            if op == "kill":
                row = self._row[job.jid]
                old_remaining = self._rem[row]
                progress = job.workload - old_remaining
                if progress > 0.0 and retain < 1.0:
                    # The kill destroys (1 − retain) of the progress; the
                    # destroyed work *was* executed, so the trace budgets
                    # for it (validator: workload + lost_work).
                    new_remaining = job.workload - retain * progress
                    lost = new_remaining - old_remaining
                    self._outcomes.record_lost_work(job.jid, lost)
                    self._rem[row] = new_remaining
            octx = self._obs
            if octx is not None:
                octx.metrics.counter("kernel.faults." + op).inc()
                data = {"jid": job.jid, "proc": proc}
                if op == "kill":
                    data["retain"] = retain
                    data["lost"] = lost
                octx.emit("fault." + op, t, data)
            desired = self._scheduler.on_eviction(job)
            self._apply(desired, t)

        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown fault payload: {payload!r}")

    def _raise_crash(self, t: float, at_event: int | None, fault_index: int) -> None:
        """Die like a crashed process: attach the *last periodic* snapshot
        (not a fresh one — resuming must genuinely replay the journal) and
        mark the plan fired in it so the resumed run does not re-crash."""
        snapshot = self._last_snapshot
        if snapshot is not None:
            fired = set(snapshot.fired_faults)
            fired.update(
                i
                for i, f in enumerate(self._faults)
                if getattr(f, "fired", False)
            )
            snapshot.fired_faults = tuple(sorted(fired))
        octx = self._obs
        if octx is not None:
            # Process history, not simulation history: lifecycle event.
            octx.metrics.counter("kernel.crashes").inc()
            octx.emit(
                "fault.crash",
                t,
                {
                    "fault": fault_index,
                    "at_event": at_event,
                    "dispatch": self._dispatch_count,
                },
                replay=False,
            )
        raise SimulatedCrash(
            time=t,
            at_event=at_event,
            fault_index=fault_index,
            snapshot=snapshot,
        )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        """First-run initialisation: bind the scheduler, seed the event
        queue, arm faults, take snapshot zero."""
        octx = self._obs
        if octx is not None and octx.sink is not None:
            octx.sink.begin_run()
        self._scheduler.bind(self._make_context(self))
        if octx is not None:
            # After bind: adapters derive their display name during reset.
            octx.emit(
                "run.start",
                0.0,
                {
                    "scheduler": getattr(self._scheduler, "name", "?"),
                    "jobs": len(self._jobs),
                    "procs": len(self._caps),
                    "horizon": self._horizon,
                },
            )

        # Seed release/deadline pairs for every job arriving inside the
        # horizon — the membership test is one vectorized pass over the
        # release column; rows come back in instance order, so sequence
        # numbers match the historical per-job loop exactly.  push_many
        # heapifies once (O(n)) instead of n× O(log n) pushes.
        jobs = self._table.jobs
        seed: List[Event] = []
        for r in self._table.rows_released_by(self._horizon).tolist():
            job = jobs[r]
            seed.append(Event(job.release, EventKind.RELEASE, job))
            seed.append(Event(job.deadline, EventKind.DEADLINE, job))
        seed.append(Event(self._horizon, EventKind.END))
        self._events.push_many(seed)

        for i, fault in enumerate(self._faults):
            fault.arm(self.owner, i)
        if self._watchdog is not None:
            self._watchdog.start(self.owner)
        self._started = True
        if self._snapshot_every is not None:
            self._last_snapshot = self.snapshot()
            if self._journal is not None:
                # Snapshot boundary: everything the snapshot supersedes is
                # on disk before the snapshot becomes the recovery anchor.
                self._journal.flush()

    def _maybe_crash_at_event(self) -> None:
        """Fire any event-indexed crash plan scheduled for the *next*
        dispatch (checked before the event is popped, so the snapshot keeps
        it pending)."""
        for at_event, idx in self._event_crashes:
            if at_event == self._dispatch_count:
                fault = self._faults[idx]
                if getattr(fault, "fired", False):
                    continue
                fault.fired = True
                self._raise_crash(self._now, at_event=at_event, fault_index=idx)

    # ------------------------------------------------------------------
    # Incremental (service-mode) drive
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bootstrap eagerly without dispatching anything.

        The closed-horizon entry point (:meth:`run_loop`) bootstraps
        lazily; a live service must bootstrap *before* the first
        admission so snapshot zero and the seeded END event exist ahead
        of any incremental state.  Idempotent."""
        if not self._started:
            self._bootstrap()

    def admit_job(self, job: Job) -> None:
        """Admit one job into a live (started) kernel.

        Mirrors bootstrap seeding exactly: the job joins the instance
        and, when it arrives inside the horizon, a RELEASE/DEADLINE pair
        is pushed.  Because sequence numbers only break ties *within* one
        ``(time, kind)`` class and releases/deadlines are pushed in
        admission order, a closed-horizon replay of the accepted jobs
        (in the same order) dispatches bit-identically — the service's
        replay-equivalence contract rests on this method.

        Admission in the past is refused: the dispatch frontier has
        already moved beyond the release, so the closed-horizon replay
        would dispatch a RELEASE this run never saw.
        """
        if not self._started:
            raise SimulationError("admit_job: kernel not started")
        if self._ended:
            raise SimulationError("admit_job: kernel already ended")
        if job.jid in self._by_id:
            raise SimulationError(f"admit_job: duplicate job id {job.jid}")
        if job.release < self._now - _EPS:
            raise SimulationError(
                f"admit_job: release {job.release:g} is behind the "
                f"dispatch frontier (now={self._now:g})"
            )
        self._jobs.append(job)
        self._by_id[job.jid] = job
        self._table.append_job(job)
        if job.release <= self._horizon:
            self._events.push(Event(job.release, EventKind.RELEASE, job))
            self._events.push(Event(job.deadline, EventKind.DEADLINE, job))
        octx = self._obs
        if octx is not None:
            octx.metrics.counter("kernel.jobs.admitted").inc()
            octx.emit(
                "job.admit",
                self._now,
                {"jid": job.jid, "release": job.release},
                replay=False,
            )

    def run_until(self, until: float) -> None:
        """Dispatch every event *strictly before* ``until``, then stop.

        The exclusive bound is what makes incremental admission safe:
        all same-instant submissions are admitted before the batch at
        their release time dispatches, so the ``(kind, seq)`` order at
        that instant matches the closed-horizon replay.  ``now`` is left
        at the last dispatched event (never advanced to ``until``), again
        matching replay semantics.  Always runs the *full* loop variant —
        the service path carries a journal and snapshots.  No-op once the
        kernel has ended."""
        if not self._started:
            self._bootstrap()
        if self._ended:
            return
        if self._use_batch:
            self._run_batch(until=float(until))
        else:
            self._run_full(until=float(until))

    def run_loop(self) -> None:
        """Execute (or, after :meth:`restore`, resume) to the horizon and
        wind down.  The façade builds the result object afterwards.

        Two loop bodies share the dispatch semantics: the *fast* variant
        runs when no journal, watchdog, snapshot cadence, crash plan or
        observability session is attached (the Monte-Carlo/benchmark hot
        path) and carries zero per-event bookkeeping branches; the *full*
        variant handles all of those.  Both filter provably-dead events
        through :meth:`_event_is_noop` before counting/journaling and
        drain same-timestamp batches through an inner loop, so their
        dispatch sequences — and therefore journals, traces and results —
        are bit-identical."""
        if not self._started:
            self._bootstrap()
        if not self._ended:
            uninstrumented = (
                self._journal is None
                and self._watchdog is None
                and self._snapshot_every is None
                and not self._event_crashes
                and self._obs is None
            )
            if self._use_batch:
                # Like the scalar loops, the batch protocol has a lean
                # twin for the uninstrumented hot path and a full variant
                # carrying journal/watchdog/snapshot/obs bookkeeping.
                if uninstrumented:
                    self._run_batch_fast()
                else:
                    self._run_batch()
            elif uninstrumented:
                self._run_fast()
            else:
                self._run_full()
        self._wind_down()

    def _run_fast(self) -> None:
        events = self._events
        pop = events.pop
        peek = events.peek_time
        dispatch = self._dispatch
        noop = self._event_is_noop
        horizon = self._horizon
        end_kind = EventKind.END

        while len(events):
            event = pop()
            t = event.time
            if t < self._now - _EPS:
                raise SimulationError(
                    f"time went backwards: {t} < {self._now}"
                )
            if event.kind is end_kind:
                self._now = t
                self._ended = True
                return
            if t > horizon:
                self._now = horizon
                self._ended = True
                return
            self._now = t
            # Same-timestamp batch: drain every event at exactly t without
            # re-entering the outer bookkeeping.  Pop-then-re-peek, one at
            # a time: a dispatch may push a *same-instant* event of higher
            # kind priority (e.g. a COMPLETION predicted at exactly t),
            # which must come out before the rest of the batch.
            while True:
                if not noop(event):
                    self._dispatch_count += 1
                    dispatch(event)
                if peek() != t:
                    break
                event = pop()
                if event.kind is end_kind:
                    self._now = t
                    self._ended = True
                    return

    def _run_full(self, until: float | None = None) -> None:
        # Loop-invariant lookups hoisted out of the per-event path.  All of
        # these are fixed for the lifetime of one run_loop call: faults are
        # armed in _bootstrap/restore (both before this point), and the
        # journal/watchdog/snapshot wiring never changes mid-run.
        events = self._events
        pop = events.pop
        peek = events.peek_time
        dispatch = self._dispatch
        noop = self._event_is_noop
        journal = self._journal
        watchdog = self._watchdog
        snapshot_every = self._snapshot_every
        has_event_crashes = bool(self._event_crashes)
        horizon = self._horizon
        end_kind = EventKind.END
        owner = self.owner
        octx = self._obs

        while len(events) and not self._ended:
            if until is not None:
                # Exclusive incremental bound (run_until): stop *before*
                # popping the first event at or past `until`.  Checked
                # ahead of the event-indexed crash hook so a crash armed
                # for the next dispatch doesn't fire for an event this
                # call will never dispatch.  A stale head at or past the
                # bound also stops the loop — every live event behind it
                # is at or past the bound too.
                next_time = peek()
                if next_time is None or next_time >= until:
                    return
            if has_event_crashes:
                self._maybe_crash_at_event()
            event = pop()
            t = event.time
            if t < self._now - _EPS:
                raise SimulationError(
                    f"time went backwards: {t} < {self._now}"
                )
            if event.kind is end_kind:
                self._now = t
                self._ended = True
                break
            if t > horizon:
                self._now = horizon
                self._ended = True
                break
            self._now = t

            # Same-timestamp batch (see _run_fast for the pop/re-peek
            # rationale); identical filter and dispatch order.
            while True:
                if noop(event):
                    if octx is not None:
                        octx.metrics.counter(
                            "kernel.events.skipped_stale"
                        ).inc()
                else:
                    if journal is not None:
                        record = JournalRecord(
                            index=self._dispatch_count,
                            time=event.time,
                            kind=int(event.kind),
                            key=describe_payload(int(event.kind), event.payload),
                            version=event.version,
                        )
                        if self._dispatch_count < self._verify_until:
                            expected = journal.get(self._dispatch_count)
                            if record != expected:
                                raise RecoveryError(
                                    f"journal replay diverged at dispatch "
                                    f"#{self._dispatch_count}: live {record} != "
                                    f"journaled {expected}"
                                )
                        else:
                            journal.append(record)
                    self._dispatch_count += 1
                    if octx is None:
                        dispatch(event)
                    else:
                        self._dispatch_observed(octx, event)
                    if watchdog is not None:
                        watchdog.after_event(owner, event)
                    if (
                        snapshot_every is not None
                        and self._dispatch_count % snapshot_every == 0
                    ):
                        self._last_snapshot = self.snapshot()
                        if journal is not None:
                            journal.flush()
                if peek() != t:
                    break
                if has_event_crashes:
                    self._maybe_crash_at_event()
                event = pop()
                if event.kind is end_kind:
                    self._now = t
                    self._ended = True
                    break

    # ------------------------------------------------------------------
    # Batch decision protocol (repro.sim.batchproto)
    # ------------------------------------------------------------------
    def _journal_event(self, event: Event) -> None:
        """Journal (or replay-verify) one live event at the current
        dispatch index — the batch loop's copy of the inline block in
        :meth:`_run_full`.  Record content is fully determined before the
        event dispatches, so gathered groups journal at pop time."""
        journal = self._journal
        if journal is None:
            return
        record = JournalRecord(
            index=self._dispatch_count,
            time=event.time,
            kind=int(event.kind),
            key=describe_payload(int(event.kind), event.payload),
            version=event.version,
        )
        if self._dispatch_count < self._verify_until:
            expected = journal.get(self._dispatch_count)
            if record != expected:
                raise RecoveryError(
                    f"journal replay diverged at dispatch "
                    f"#{self._dispatch_count}: live {record} != "
                    f"journaled {expected}"
                )
        else:
            journal.append(record)

    def _run_batch_fast(self) -> None:
        """The batch-protocol twin of :meth:`_run_fast`: zero per-event
        bookkeeping branches (no journal, watchdog, snapshot cadence,
        crash plans or observability — guaranteed by the ``run_loop``
        routing), plus group gathering.  The dispatch sequence — pops,
        no-op filtering, dispatch count — is identical to
        :meth:`_run_fast`; gathered groups go through the same
        ``_dispatch_release_group`` / ``_dispatch_deadline_group``
        appliers as the full batch loop."""
        events = self._events
        pop = events.pop
        peek = events.peek_time
        peek_key = events.peek_key
        dispatch = self._dispatch
        noop = self._event_is_noop
        horizon = self._horizon
        end_kind = EventKind.END
        release_kind = EventKind.RELEASE
        deadline_kind = EventKind.DEADLINE
        release_int = int(release_kind)
        deadline_int = int(deadline_kind)
        pure_completions = bool(
            getattr(self._scheduler, "batch_pure_completions", False)
        )

        while len(events):
            event = pop()
            t = event.time
            if t < self._now - _EPS:
                raise SimulationError(
                    f"time went backwards: {t} < {self._now}"
                )
            if event.kind is end_kind:
                self._now = t
                self._ended = True
                return
            if t > horizon:
                self._now = horizon
                self._ended = True
                return
            self._now = t

            while True:
                if not noop(event):
                    kind = event.kind
                    # Gather check, cheapest test first: only when another
                    # event sits at exactly t can a group exist at all.
                    if (
                        peek() == t
                        and not self._batch_unsafe
                        and (
                            (
                                kind is release_kind
                                and peek_key() == (t, release_int)
                            )
                            or (
                                kind is deadline_kind
                                and pure_completions
                                and peek_key() == (t, deadline_int)
                            )
                        )
                    ):
                        self._gather_fast(event, t, kind)
                    else:
                        self._dispatch_count += 1
                        dispatch(event)
                if peek() != t:
                    break
                event = pop()
                if event.kind is end_kind:
                    self._now = t
                    self._ended = True
                    return

    def _gather_fast(self, first: Event, t: float, kind) -> None:
        """Pop the rest of ``first``'s ``(time, kind)`` group (no-op
        filtering each pop, exactly as the scalar loop would) and hand it
        to the batch appliers — the uninstrumented twin of
        :meth:`_dispatch_gathered`."""
        noop = self._event_is_noop
        group = [first]
        append = group.append
        for event in self._events.pop_group(t, int(kind)):
            if not noop(event):
                append(event)
        self._dispatch_count += len(group)
        if kind is EventKind.RELEASE:
            if len(group) == 1:
                self._dispatch(first)
            else:
                self._dispatch_release_group(group, t, fast=True)
        else:
            self._dispatch_deadline_group(group, t)

    def _run_batch(self, until: float | None = None) -> None:
        """The batch-protocol twin of :meth:`_run_full`.

        Identical outer bookkeeping and per-event path; the one addition
        is *group gathering*: when the head of a same-timestamp batch is a
        RELEASE (or, under preconditions, a DEADLINE) and further events
        of the same ``(time, kind)`` sit behind it, the whole group is
        popped at once — each pop taking the crash hook, the no-op filter
        and the journal append exactly as the scalar loop would — and
        handed to the scheduler as **one** ``plan()`` /
        ``on_completions()`` call.  Decisions are applied per event, so
        segments, traces and journals stay bit-identical; the win is
        skipping the per-event dispatch machinery and letting policies
        fold a group in one pass.

        Gathering is skipped (falling back to the per-event path, which
        is exactly ``_run_full``'s body) when the scheduler is not batch
        capable for the situation: tracing active without
        ``batch_obs_exact``, profiling active (per-event latency samples),
        or the ``_batch_unsafe`` latch tripped."""
        events = self._events
        pop = events.pop
        peek = events.peek_time
        peek_key = events.peek_key
        dispatch = self._dispatch
        noop = self._event_is_noop
        journal = self._journal
        watchdog = self._watchdog
        snapshot_every = self._snapshot_every
        has_event_crashes = bool(self._event_crashes)
        horizon = self._horizon
        end_kind = EventKind.END
        release_kind = EventKind.RELEASE
        deadline_kind = EventKind.DEADLINE
        owner = self.owner
        octx = self._obs
        scheduler = self._scheduler
        obs_ok = octx is None or (
            bool(getattr(scheduler, "batch_obs_exact", False))
            and not octx.profile
        )
        pure_completions = bool(
            getattr(scheduler, "batch_pure_completions", False)
        )
        release_key = (0.0, int(release_kind))
        deadline_key = (0.0, int(deadline_kind))

        while len(events) and not self._ended:
            if until is not None:
                next_time = peek()
                if next_time is None or next_time >= until:
                    return
            if has_event_crashes:
                self._maybe_crash_at_event()
            event = pop()
            t = event.time
            if t < self._now - _EPS:
                raise SimulationError(
                    f"time went backwards: {t} < {self._now}"
                )
            if event.kind is end_kind:
                self._now = t
                self._ended = True
                break
            if t > horizon:
                self._now = horizon
                self._ended = True
                break
            self._now = t
            release_key = (t, int(release_kind))
            deadline_key = (t, int(deadline_kind))

            while True:
                if noop(event):
                    if octx is not None:
                        octx.metrics.counter(
                            "kernel.events.skipped_stale"
                        ).inc()
                else:
                    kind = event.kind
                    if (
                        obs_ok
                        and not self._batch_unsafe
                        and (
                            (
                                kind is release_kind
                                and peek_key() == release_key
                            )
                            or (
                                kind is deadline_kind
                                and pure_completions
                                and peek_key() == deadline_key
                            )
                        )
                    ):
                        self._dispatch_gathered(event, t, kind)
                    else:
                        # Singleton (or ungatherable) event: the exact
                        # per-event path of _run_full.
                        if journal is not None:
                            self._journal_event(event)
                        self._dispatch_count += 1
                        if octx is None:
                            dispatch(event)
                        else:
                            self._dispatch_observed(octx, event)
                        if watchdog is not None:
                            watchdog.after_event(owner, event)
                        if (
                            snapshot_every is not None
                            and self._dispatch_count % snapshot_every == 0
                        ):
                            self._last_snapshot = self.snapshot()
                            if journal is not None:
                                journal.flush()
                if peek() != t:
                    break
                if has_event_crashes:
                    self._maybe_crash_at_event()
                event = pop()
                if event.kind is end_kind:
                    self._now = t
                    self._ended = True
                    break

    def _dispatch_gathered(self, first: Event, t: float, kind) -> None:
        """Pop the rest of ``first``'s ``(time, kind)`` group and dispatch
        it through the batch contract.

        Every pop takes the event-indexed crash hook, the no-op filter
        and the journal append/verify *at gather time* — the dispatch
        index and record content of a live event are fully determined
        before any of the group's decisions apply, so a crash mid-gather
        leaves exactly the journal prefix the scalar loop would have.
        The snapshot cadence is settled once at group end (a snapshot
        cannot be taken mid-group: popped-but-unapplied events would be
        lost from it)."""
        events = self._events
        octx = self._obs
        noop = self._event_is_noop
        has_event_crashes = bool(self._event_crashes)
        key = (t, int(kind))
        base = self._dispatch_count
        self._journal_event(first)
        self._dispatch_count += 1
        group = [first]
        while events.peek_key() == key:
            if has_event_crashes:
                self._maybe_crash_at_event()
            event = events.pop()
            if noop(event):
                # Group members' no-op status cannot be changed by the
                # dispatch of earlier same-kind members (releases are
                # never no-ops; a waiting job's deadline no-op only flips
                # on terminality, which same-instant deadline handling of
                # *other* jobs never causes) — so filtering at gather
                # time matches the scalar pop-by-pop filter exactly.
                if octx is not None:
                    octx.metrics.counter("kernel.events.skipped_stale").inc()
                continue
            self._journal_event(event)
            self._dispatch_count += 1
            group.append(event)
        if kind is EventKind.RELEASE:
            if len(group) == 1:
                self._dispatch_group_sequential(group)
            else:
                self._dispatch_release_group(group, t)
        else:
            self._dispatch_deadline_group(group, t)
        snapshot_every = self._snapshot_every
        if snapshot_every is not None and (
            self._dispatch_count // snapshot_every != base // snapshot_every
        ):
            self._last_snapshot = self.snapshot()
            if self._journal is not None:
                self._journal.flush()

    def _dispatch_group_sequential(self, group: List[Event]) -> None:
        """Dispatch an already-gathered (journaled, counted) group through
        the per-event machinery — the fallback when a gathered group turns
        out not to satisfy the batch preconditions.  Bit-identical to the
        scalar loop: under the gather gating no same-instant event of the
        group's (or a higher) priority can be pushed mid-group, so the
        scalar loop would have popped exactly these events in this order."""
        octx = self._obs
        watchdog = self._watchdog
        owner = self.owner
        dispatch = self._dispatch
        base = self._dispatch_count - len(group)
        if octx is None:
            for i, event in enumerate(group):
                dispatch(event)
                if watchdog is not None:
                    watchdog.after_event(owner, event)
            return
        sink = octx.sink
        metrics = octx.metrics
        events_c = metrics.counter("kernel.events")
        gauge = metrics.gauge("kernel.heap_size")
        heap_len = len(self._events)
        last = len(group) - 1
        for i, event in enumerate(group):
            if sink is not None:
                sink.current_dispatch = base + i
            events_c.inc()
            metrics.counter("kernel.events." + event.kind.name).inc()
            # The scalar loop pops one event at a time: at event i the
            # rest of the group is still in the heap.
            gauge.set(float(len(self._events) + (last - i)))
            dispatch(event)
            if watchdog is not None:
                watchdog.after_event(owner, event)

    def _dispatch_release_group(
        self, group: List[Event], t: float, fast: bool = False
    ) -> None:
        """One ``plan()`` call for a same-instant release burst.

        The jobs are marked READY (and their remaining initialised) up
        front so the scheduler sees the whole group's columns; decisions
        are then applied one event at a time — each release emitted, its
        decision record emitted, its assignment applied — so segments and
        traces are bit-identical to per-event dispatch.

        ``fast=True`` (the uninstrumented loop only) applies just the
        group's *final* assignment instead.  Same-instant intermediate
        switches are observably inert without journal/obs/snapshots: they
        fold zero work (``remaining`` bit-unchanged), their zero-length
        segments are dropped by ``ScheduleTrace.add_segment``, and the
        completion events they push are orphaned within the same group —
        so skipping them changes only internal version counters and heap
        churn, never results or traces."""
        from repro.sim.batchproto import BatchView

        scheduler = self._scheduler
        row_of = self._row
        rem = self._rem
        st = self._st
        jobs: List[Job] = []
        rows: List[int] = []
        for event in group:
            job = event.payload
            row = row_of[job.jid]
            st[row] = _READY
            rem[row] = job.workload
            jobs.append(job)
            rows.append(row)
        view = BatchView(t, EventKind.RELEASE, jobs, rows, self._table)
        if fast:
            planner = getattr(scheduler, "on_releases_fast", None)
            if planner is not None:
                self._apply(planner(view), t)
            else:
                self._apply(scheduler.plan(view).desired[-1], t)
            return
        decisions = scheduler.plan(view)
        desired = decisions.desired
        payloads = decisions.obs
        if len(desired) != len(jobs):
            raise SchedulingError(
                f"plan() returned {len(desired)} decisions for "
                f"{len(jobs)} releases"
            )
        apply = self._apply
        octx = self._obs
        watchdog = self._watchdog
        owner = self.owner
        if octx is None:
            if watchdog is None:
                for want in desired:
                    apply(want, t)
            else:
                for i, event in enumerate(group):
                    apply(desired[i], t)
                    watchdog.after_event(owner, event)
            return
        # Traced batch (batch_obs_exact schedulers only): the group's
        # emissions land in one ring container (exploded lazily on
        # export), interleaved per event exactly as the scalar loop
        # interleaves them.
        sink = octx.sink
        metrics = octx.metrics
        events_c = metrics.counter("kernel.events")
        kind_c = metrics.counter("kernel.events.RELEASE")
        gauge = metrics.gauge("kernel.heap_size")
        emit = octx.emit
        decision = octx.decision
        base = self._dispatch_count - len(group)
        last = len(group) - 1
        with octx.decisions(t):
            for i, job in enumerate(jobs):
                if sink is not None:
                    sink.current_dispatch = base + i
                events_c.inc()
                kind_c.inc()
                gauge.set(float(len(self._events) + (last - i)))
                emit(
                    "job.release",
                    t,
                    {
                        "jid": job.jid,
                        "deadline": job.deadline,
                        "workload": job.workload,
                        "value": job.value,
                    },
                )
                payload = payloads[i]
                if payload is not None:
                    policy, action, jid, extra = payload
                    if extra:
                        decision(policy, action, t, jid, **extra)
                    else:
                        decision(policy, action, t, jid)
                apply(desired[i], t)
                if watchdog is not None:
                    watchdog.after_event(owner, group[i])

    def _dispatch_deadline_group(self, group: List[Event], t: float) -> None:
        """One ``on_completions()`` purge for a same-instant deadline
        sweep of *waiting* jobs.

        Batched only when no job of the group is running (then the scalar
        path per job is: mark FAILED, record, emit, then a silent
        queue-purge ``on_job_end`` that keeps the current assignment — no
        applies, so the fold is one purge call).  Otherwise the gathered
        group falls back to per-event dispatch, which handles the
        running-job tolerance-completion branch exactly as the scalar
        loop does."""
        current = self._current[0] if self._single else None
        batchable = self._single and current is not None
        if batchable:
            cur_jid = current.jid
            for event in group:
                if event.payload.jid == cur_jid:
                    batchable = False
                    break
        if not batchable:
            self._dispatch_group_sequential(group)
            return
        from repro.sim.batchproto import BatchView

        row_of = self._row
        st = self._st
        outcomes = self._outcomes
        octx = self._obs
        watchdog = self._watchdog
        owner = self.owner
        jobs: List[Job] = []
        rows: List[int] = []
        for event in group:
            job = event.payload
            jobs.append(job)
            rows.append(row_of[job.jid])
        if octx is None:
            for i, job in enumerate(jobs):
                st[rows[i]] = _FAILED
                outcomes.record_outcome(job, JobStatus.FAILED, t)
                if watchdog is not None:
                    watchdog.after_event(owner, group[i])
        else:
            sink = octx.sink
            metrics = octx.metrics
            events_c = metrics.counter("kernel.events")
            kind_c = metrics.counter("kernel.events.DEADLINE")
            miss_c = metrics.counter("kernel.deadline_misses")
            gauge = metrics.gauge("kernel.heap_size")
            emit = octx.emit
            base = self._dispatch_count - len(group)
            last = len(group) - 1
            with octx.decisions(t):
                for i, job in enumerate(jobs):
                    if sink is not None:
                        sink.current_dispatch = base + i
                    events_c.inc()
                    kind_c.inc()
                    gauge.set(float(len(self._events) + (last - i)))
                    st[rows[i]] = _FAILED
                    outcomes.record_outcome(job, JobStatus.FAILED, t)
                    miss_c.inc()
                    emit(
                        "job.deadline_miss",
                        t,
                        {"jid": job.jid, "value": job.value},
                    )
                    if watchdog is not None:
                        watchdog.after_event(owner, group[i])
        self._scheduler.on_completions(
            BatchView(t, EventKind.DEADLINE, jobs, rows, self._table)
        )

    def _wind_down(self) -> None:
        """Close running segments and fail unresolved jobs at ``now``.

        The unresolved sweep is one vectorized pass over the status
        column; surviving rows come back in instance order, matching the
        historical per-job loop."""
        octx = self._obs
        for proc in range(len(self._caps)):
            self._close_segment(proc, self._now)
        jobs = self._table.jobs
        st = self._st
        for row in self._table.rows_unresolved().tolist():
            job = jobs[row]
            st[row] = _FAILED
            self._outcomes.record_outcome(job, JobStatus.FAILED, self._now)
            if octx is not None:
                octx.emit("job.unfinished", self._now, {"jid": job.jid})
        if octx is not None:
            octx.emit(
                "run.end", self._now, {"dispatches": self._dispatch_count}
            )

    def _dispatch_observed(self, octx, event: Event) -> None:
        """The traced twin of the ``dispatch(event)`` call in
        :meth:`_run_full` — taken only when an observability session is
        active, so none of this code runs on the disabled path.

        Stamps the sink with the dispatch index (events emitted during
        this dispatch group under it — the replay-truncation boundary on
        restore), maintains the event-loop metrics, and — under
        ``profile=True`` — samples the wall-clock dispatch latency per
        event kind.  Provably-dead events are filtered out upstream (and
        counted under ``kernel.events.skipped_stale``), so every event
        seen here is live."""
        kind = event.kind
        metrics = octx.metrics
        sink = octx.sink
        if sink is not None:
            sink.current_dispatch = self._dispatch_count - 1
        metrics.counter("kernel.events").inc()
        metrics.counter("kernel.events." + kind.name).inc()
        metrics.gauge("kernel.heap_size").set(float(len(self._events)))
        if kind is EventKind.ALARM:
            metrics.counter("kernel.alarm.fired").inc()
        if octx.profile:
            clock = octx.clock
            t0 = clock()
            self._dispatch(event)
            metrics.histogram(
                "kernel.dispatch_latency_s." + kind.name
            ).observe(clock() - t0)
        else:
            self._dispatch(event)

    def after_run(self, result) -> None:
        """Watchdog wind-down hook (called by the façade with its result)."""
        if self._watchdog is not None:
            self._watchdog.after_run(self.owner, result)

    # ------------------------------------------------------------------
    # Snapshot / restore (crash recovery)
    # ------------------------------------------------------------------
    def _encode_payload(self, kind: EventKind, payload) -> tuple:
        if kind is EventKind.COMPLETION and isinstance(payload, tuple):
            return ("pjob", payload[0], payload[1].jid)
        if kind in (EventKind.RELEASE, EventKind.COMPLETION, EventKind.DEADLINE):
            return ("job", payload.jid)
        if kind is EventKind.ALARM:
            return ("alarm", payload[0].jid, payload[1])
        if kind is EventKind.TIMER:
            return ("timer", payload)
        if kind is EventKind.END:
            return ("end",)
        if kind is EventKind.FAULT:
            return ("fault",) + tuple(payload)
        raise SimulationError(f"cannot snapshot event kind {kind!r}")  # pragma: no cover

    def _decode_payload(self, kind: EventKind, desc: tuple):
        tag = desc[0]
        try:
            if tag == "job":
                return self._by_id[desc[1]]
            if tag == "pjob":
                return (desc[1], self._by_id[desc[2]])
            if tag == "alarm":
                return (self._by_id[desc[1]], desc[2])
        except KeyError:
            raise RecoveryError(
                f"snapshot references unknown job {desc[-1]}"
            ) from None
        if tag == "timer":
            return desc[1]
        if tag == "end":
            return None
        if tag == "fault":
            return tuple(desc[1:])
        raise RecoveryError(f"cannot decode event payload {desc!r}")

    def snapshot(self) -> EngineSnapshot:
        """Image the complete mid-run state (picklable; jid-based).

        The mutable job state is copied straight off the table's columns
        (one pass each); the jid-keyed dict layout of the snapshot schema
        (2, unchanged) is materialized only here."""
        events = [
            (time, kind, seq, self._encode_payload(ev.kind, ev.payload), ev.version)
            for time, kind, seq, ev in self._events.dump()
        ]
        return EngineSnapshot(
            scheduler_name=self._scheduler.name,
            now=self._now,
            horizon=self._horizon,
            n_procs=len(self._caps),
            current_jids=[
                None if job is None else job.jid for job in self._current
            ],
            seg_start=list(self._seg_start),
            seg_remaining0=list(self._seg_remaining0),
            seg_cum0=list(self._seg_cum0),
            remaining=self._table.export_remaining(),
            status=self._table.export_status(),
            completion_version=dict(self._completion_version),
            alarm_version=dict(self._alarm_version),
            events=events,
            next_seq=self._events.next_seq,
            stale_hint=self._events.stale_hint,
            dispatch_count=self._dispatch_count,
            trace_segments=[
                [(s.start, s.end, s.jid, s.work) for s in trace.segments]
                for trace in self._traces
            ],
            trace_outcomes={
                jid: st.name for jid, st in self._outcomes.outcomes.items()
            },
            trace_completion_times=dict(self._outcomes.completion_times),
            trace_value_points=list(self._outcomes.value_points),
            trace_lost_work=dict(self._outcomes.lost_work),
            scheduler_state=self._scheduler.get_state(),
            capacity_blob=pickle.dumps(list(self._caps)),
            fired_faults=tuple(
                i
                for i, f in enumerate(self._faults)
                if getattr(f, "fired", False)
            ),
        )

    def restore(self, snapshot: EngineSnapshot) -> None:
        """Load a snapshot into this (fresh, never-run) kernel.

        After restoring, :meth:`run_loop` resumes from the snapshot
        instant; if the kernel also holds a journal extending past the
        snapshot, the resumed dispatches are verified against it
        (deterministic replay)."""
        if self._started:
            raise RecoveryError("restore() requires a fresh engine")
        if snapshot.n_procs != len(self._caps):
            raise RecoveryError(
                f"snapshot is for {snapshot.n_procs} processor(s), "
                f"engine has {len(self._caps)}"
            )
        for jid in snapshot.remaining:
            if jid not in self._by_id:
                raise RecoveryError(f"snapshot references unknown job {jid}")
        for jid in snapshot.status:
            if jid not in self._by_id:
                raise RecoveryError(f"snapshot references unknown job {jid}")

        # World physics first (the scheduler's bind() reads its bounds).
        caps = pickle.loads(snapshot.capacity_blob)
        self._caps = list(caps)
        self._indexed = [
            bool(getattr(c, "supports_prefix_index", False)) for c in self._caps
        ]
        self._advance_from = [
            getattr(c, "advance_from", None) for c in self._caps
        ]
        self._cum_t = [-1.0] * len(self._caps)
        self._cum_v = [0.0] * len(self._caps)
        self._horizon = snapshot.horizon
        self._now = snapshot.now

        # Ground truth: load the jid-keyed snapshot dicts back into the
        # table's columns (in place — the kernel's aliases stay valid).
        self._table.load_state_dicts(dict(snapshot.remaining), snapshot.status)
        # Re-derive the batch-gathering latch from the restored columns:
        # the hazard it guards against is "a live job with (near-)zero
        # remaining work gets started mid-group", so scanning the live
        # rows is exactly sufficient — any *future* near-zero fold will
        # re-trip the latch before the next gather, just as in the
        # original run.
        self._batch_unsafe = any(
            (s == _READY or s == _RUNNING)
            and r <= 1e-6 * max(1.0, job.workload)
            for s, r, job in zip(self._st, self._rem, self._table.jobs)
        )
        self._current = [
            None if jid is None else self._by_id[jid]
            for jid in snapshot.current_jids
        ]
        self._proc_of = {
            job.jid: proc
            for proc, job in enumerate(self._current)
            if job is not None
        }
        self._seg_start = list(snapshot.seg_start)
        self._seg_remaining0 = list(snapshot.seg_remaining0)
        self._seg_cum0 = list(snapshot.seg_cum0)
        self._completion_version = dict(snapshot.completion_version)
        self._alarm_version = dict(snapshot.alarm_version)

        # Event queue (sequence counter included: post-restore pushes must
        # get the same tie-breaking numbers the original run would have).
        entries = []
        for time, kind, seq, desc, version in snapshot.events:
            k = EventKind(kind)
            entries.append(
                (time, kind, seq, Event(time, k, self._decode_payload(k, desc), version))
            )
        self._events.load(entries, snapshot.next_seq, snapshot.stale_hint)
        self._dispatch_count = snapshot.dispatch_count

        # Trace accumulators.  Single mode: one trace carries both the
        # segments and the combined outcome record (same object).
        traces = []
        for per_proc in snapshot.trace_segments:
            trace = ScheduleTrace()
            trace.segments = [RunSegment(*seg) for seg in per_proc]
            traces.append(trace)
        outcomes = traces[0] if self._single else ScheduleTrace()
        outcomes.outcomes = {
            jid: JobStatus[name] for jid, name in snapshot.trace_outcomes.items()
        }
        outcomes.completion_times = dict(snapshot.trace_completion_times)
        outcomes.value_points = [tuple(p) for p in snapshot.trace_value_points]
        outcomes.lost_work = dict(snapshot.trace_lost_work)
        self._traces = traces
        self._outcomes = outcomes

        # Scheduler: fresh bind (reset), then install the captured state.
        # The name check runs *after* bind because some schedulers derive
        # their display name during reset (e.g. the partitioned adapter).
        self._scheduler.bind(self._make_context(self))
        if snapshot.scheduler_name != self._scheduler.name:
            raise RecoveryError(
                f"snapshot is for scheduler {snapshot.scheduler_name!r}, "
                f"engine runs {self._scheduler.name!r}"
            )
        self._scheduler.set_state(snapshot.scheduler_state, self._by_id)

        # Faults: re-mark already-fired plans, re-register event-indexed
        # crash checks (queued FAULT events travelled with the heap).
        for i in snapshot.fired_faults:
            if 0 <= i < len(self._faults):
                self._faults[i].fired = True
        for i, fault in enumerate(self._faults):
            rearm = getattr(fault, "rearm", None)
            if rearm is not None:
                rearm(self.owner, i)

        if self._journal is not None and len(self._journal) > snapshot.dispatch_count:
            self._verify_until = len(self._journal)
        if self._watchdog is not None:
            self._watchdog.start(self.owner)
        self._last_snapshot = snapshot
        self._started = True

        # Observability: the restored run re-dispatches (journal-verified)
        # everything at or past the snapshot, re-emitting those replay
        # events bit-identically — drop the pre-crash copies so the trace
        # carries each exactly once.  The restore itself is process
        # history: a lifecycle event, excluded from replay-only exports.
        octx = self._obs
        if octx is not None:
            truncated = 0
            sink = octx.sink
            if sink is not None:
                truncated = sink.truncate_replay(snapshot.dispatch_count)
            octx.metrics.counter("kernel.recoveries").inc()
            octx.emit(
                "recovery.restore",
                self._now,
                {
                    "dispatch": snapshot.dispatch_count,
                    "truncated": truncated,
                    "verify_until": self._verify_until,
                },
                replay=False,
            )
