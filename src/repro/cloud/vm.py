"""Secondary VM requests: the cloud-facing view of a secondary job.

The paper's secondary jobs "are virtual machines for low-priority
applications that can be dynamically sized to fit the remaining server
resource".  :class:`VMRequest` captures the user-facing request (compute
demand, latest useful finish, bid) and converts it into the scheduler's
:class:`~repro.sim.job.Job` abstraction; the *dynamic sizing* is exactly
what the time-varying processor model expresses — a running VM absorbs
whatever residual rate ``c(t)`` the server has at each instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import InvalidInstanceError
from repro.sim.job import Job

__all__ = ["VMRequest", "requests_to_jobs"]


@dataclass(frozen=True)
class VMRequest:
    """A secondary (spot) VM request.

    Parameters
    ----------
    request_id:
        Unique id.
    submit_time:
        When the customer submits the request (the job's release).
    compute_demand:
        Total work (capacity-units × time) the VM needs to finish its task.
    latest_finish:
        Firm completion deadline; results delivered later are worthless to
        the customer, so the provider earns nothing.
    bid:
        Price per unit of compute the customer pays on successful
        completion — this *is* the value density, so a bid ceiling/floor
        pair is the importance-ratio bound ``k`` of the theory.
    """

    request_id: int
    submit_time: float
    compute_demand: float
    latest_finish: float
    bid: float

    def __post_init__(self) -> None:
        if self.compute_demand <= 0.0:
            raise InvalidInstanceError(
                f"request {self.request_id}: non-positive demand"
            )
        if self.bid <= 0.0:
            raise InvalidInstanceError(f"request {self.request_id}: non-positive bid")
        if self.latest_finish <= self.submit_time:
            raise InvalidInstanceError(
                f"request {self.request_id}: latest_finish before submit_time"
            )

    @property
    def revenue(self) -> float:
        """Provider revenue on success: ``bid × demand``."""
        return self.bid * self.compute_demand

    def to_job(self, jid: int | None = None) -> Job:
        """Express the request as a deadline-scheduling job."""
        return Job(
            jid=self.request_id if jid is None else jid,
            release=self.submit_time,
            workload=self.compute_demand,
            deadline=self.latest_finish,
            value=self.revenue,
        )

    def is_admissible(self, floor_capacity: float) -> bool:
        """Definition-4 admissibility against the server's floor: can the
        VM always finish if scheduled alone on the guaranteed residual?"""
        return self.to_job().is_individually_admissible(floor_capacity)


def requests_to_jobs(requests: Sequence[VMRequest]) -> list[Job]:
    """Convert a batch of requests to jobs, re-keyed by submit order."""
    ordered = sorted(requests, key=lambda r: (r.submit_time, r.request_id))
    return [req.to_job(jid=i) for i, req in enumerate(ordered)]
