"""Command-line interface: regenerate the paper's artifacts from a shell.

Usage::

    repro-sched table1  [--runs N] [--seed S] [--workers W] [--lambdas ...]
                        [--checkpoint DIR] [--timeout T] [--retries R]
    repro-sched figure1 [--lam L] [--seed S]
    repro-sched sweep   {policy,supplement,beta,delta,k-misest,slack} [--runs N]
    repro-sched faults  {noise,staleness,dropout,bias} [--severities ...]
    repro-sched recovery {kill,revocation,crash-demo} [--rates ...]
    repro-sched multi   {run,crash-demo} [--m M] [--lam L] [--runs N]
    repro-sched theory  [--k K] [--delta D]
    repro-sched adversary [--n N]
    repro-sched simulate INSTANCE.json [--scheduler ...] [--gantt]
                        [--trace FILE] [--profile]
    repro-sched obs     {report,tail,diff} TRACE...

(also ``python -m repro ...``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.tables import render_table
from repro.analysis.theory import (
    asymptotic_optimality_gap,
    f_overload,
    optimal_beta,
    varying_capacity_upper_bound,
    vdover_competitive_ratio,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sched",
        description=(
            "Reproduce 'Secondary Job Scheduling in the Cloud with "
            "Deadlines' (IPPS 2011): V-Dover vs Dover under time-varying "
            "capacity."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="reproduce Table I (value %% vs lambda)")
    p.add_argument("--runs", type=int, default=50, help="Monte-Carlo runs per row")
    p.add_argument("--seed", type=int, default=2011)
    p.add_argument("--workers", type=int, default=None)
    p.add_argument(
        "--lambdas",
        type=float,
        nargs="+",
        default=None,
        help="override the swept arrival rates",
    )
    p.add_argument(
        "--jobs",
        type=float,
        default=2000.0,
        help="expected jobs per run (the paper uses 2000)",
    )
    p.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help=(
            "checkpoint each finished replication under DIR; rerunning with "
            "the same arguments resumes from where it stopped"
        ),
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-replication wall-clock budget in seconds",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry a replication this many times on transient failure",
    )
    p.add_argument(
        "--allow-failures",
        action="store_true",
        help=(
            "exit 0 even when some replications failed (default: failed "
            "replications make the command exit non-zero)"
        ),
    )

    p = sub.add_parser("figure1", help="reproduce Figure 1 (value vs time)")
    p.add_argument("--lam", type=float, default=6.0)
    p.add_argument("--seed", type=int, default=1106)
    p.add_argument("--jobs", type=float, default=2000.0)
    p.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "record a structured trace of all panels and export it as "
            "JSON lines to FILE (inspect with 'obs report FILE')"
        ),
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help=(
            "sample per-event dispatch latency into the trace's metrics "
            "footer (implies observability on)"
        ),
    )
    p.add_argument(
        "--protocol",
        choices=["scalar", "batch", "auto"],
        default="scalar",
        help=(
            "scheduler dispatch protocol: per-event handler calls "
            "('scalar', the historical path) or vectorized same-instant "
            "group decisions ('batch'/'auto'); results are bit-identical"
        ),
    )

    p = sub.add_parser("sweep", help="ablation sweeps")
    p.add_argument(
        "kind", choices=["policy", "supplement", "beta", "delta", "k-misest", "slack"]
    )
    p.add_argument("--runs", type=int, default=20)
    p.add_argument("--workers", type=int, default=None)

    p = sub.add_parser(
        "faults",
        help="Table-I comparison under capacity-sensor faults (E15)",
    )
    p.add_argument("kind", choices=["noise", "staleness", "dropout", "bias"])
    p.add_argument(
        "--severities",
        type=float,
        nargs="+",
        default=None,
        help="override the swept severity grid (0 = fault-free)",
    )
    p.add_argument("--lam", type=float, default=6.0)
    p.add_argument("--runs", type=int, default=20)
    p.add_argument("--seed", type=int, default=29)
    p.add_argument("--workers", type=int, default=None)
    p.add_argument(
        "--jobs", type=float, default=500.0, help="expected jobs per run"
    )
    p.add_argument(
        "--allow-failures",
        action="store_true",
        help=(
            "exit 0 even when some replications failed (default: failed "
            "replications make the command exit non-zero)"
        ),
    )

    p = sub.add_parser(
        "recovery",
        help=(
            "E16: value retention under execution faults (job kills, VM "
            "revocations) and the crash-resume bit-identity demo"
        ),
    )
    p.add_argument("kind", choices=["kill", "revocation", "crash-demo"])
    p.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=None,
        help="override the swept fault-rate grid (0 = fault-free)",
    )
    p.add_argument("--lam", type=float, default=6.0)
    p.add_argument("--runs", type=int, default=20)
    p.add_argument("--seed", type=int, default=31)
    p.add_argument("--workers", type=int, default=None)
    p.add_argument(
        "--jobs", type=float, default=500.0, help="expected jobs per run"
    )
    p.add_argument(
        "--retain",
        type=float,
        default=0.0,
        help="fraction of a killed job's progress that survives (kill only)",
    )
    p.add_argument(
        "--mean-down",
        type=float,
        default=1.0,
        help="mean revocation window length (revocation only)",
    )
    p.add_argument(
        "--checkpoint",
        default=None,
        metavar="BASE",
        help=(
            "base path for per-cell replication checkpoints; rerunning with "
            "the same arguments resumes from where it stopped"
        ),
    )
    p.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also persist the sweep to FILE (schema-v2 store JSON)",
    )
    p.add_argument(
        "--allow-failures",
        action="store_true",
        help=(
            "exit 0 even when some replications failed (default: failed "
            "replications make the command exit non-zero)"
        ),
    )

    p = sub.add_parser(
        "multi",
        help=(
            "multiprocessor fleet: paired policy comparison on m "
            "heterogeneous servers, and the multi crash-resume "
            "bit-identity demo"
        ),
    )
    p.add_argument("kind", choices=["run", "crash-demo"])
    p.add_argument("--m", type=int, default=4, help="number of servers")
    p.add_argument(
        "--lam",
        type=float,
        default=None,
        help="cluster-wide arrival rate (default: 20 for run, 6 for crash-demo)",
    )
    p.add_argument("--k", type=float, default=7.0, help="importance-ratio bound")
    p.add_argument("--runs", type=int, default=5, help="Monte-Carlo runs (run only)")
    p.add_argument("--seed", type=int, default=2011)
    p.add_argument("--workers", type=int, default=0)
    p.add_argument(
        "--jobs", type=float, default=240.0, help="expected jobs per run"
    )

    p = sub.add_parser("theory", help="print the paper's closed-form bounds")
    p.add_argument("--k", type=float, default=7.0)
    p.add_argument("--delta", type=float, default=35.0)

    p = sub.add_parser(
        "adversary", help="demonstrate Theorem 3(3): ratio -> 0 without admissibility"
    )
    p.add_argument("--n", type=int, nargs="+", default=[5, 10, 20, 40])

    p = sub.add_parser(
        "simulate", help="run a saved instance (see repro.workload.save_instance)"
    )
    p.add_argument("instance", help="JSON instance file (jobs + capacity)")
    p.add_argument(
        "--scheduler",
        choices=["vdover", "dover", "edf", "edf-ac", "llf", "greedy", "fcfs"],
        default="vdover",
    )
    p.add_argument("--k", type=float, default=7.0, help="importance-ratio bound")
    p.add_argument("--c-hat", type=float, default=1.0, help="Dover's estimate")
    p.add_argument("--gantt", action="store_true", help="draw the schedule")
    p.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="export a structured trace of the run as JSON lines to FILE",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="sample per-event dispatch latency into the trace's metrics footer",
    )
    p.add_argument(
        "--protocol",
        choices=["scalar", "batch", "auto"],
        default="scalar",
        help=(
            "scheduler dispatch protocol: per-event handler calls "
            "('scalar') or vectorized same-instant group decisions "
            "('batch'/'auto'); results are bit-identical"
        ),
    )

    p = sub.add_parser(
        "obs",
        help="inspect exported trace files (docs/OBSERVABILITY.md)",
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    q = obs_sub.add_parser(
        "report",
        help="summarize a trace: event mix, decision reasons, latency, faults",
    )
    q.add_argument("trace", help="JSON-lines trace file")
    q = obs_sub.add_parser("tail", help="print the last N events of a trace")
    q.add_argument("trace", help="JSON-lines trace file")
    q.add_argument("-n", type=int, default=25, help="events to show")
    q = obs_sub.add_parser(
        "diff",
        help=(
            "first behaviourally divergent scheduler decision between two "
            "traces (policy names are ignored, so paired algorithms diff "
            "cleanly)"
        ),
    )
    q.add_argument("trace_a", help="first trace file")
    q.add_argument("trace_b", help="second trace file")
    q = obs_sub.add_parser(
        "trace",
        help=(
            "reconstruct one request's causal path (ingress → admission "
            "→ op log → kernel dispatch → journal) from a tenant store "
            "and/or a trace export — works across kill -9 cold starts"
        ),
    )
    q.add_argument("request_id", help="the request_id to correlate")
    q.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="tenant store directory (the durable witness)",
    )
    q.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="JSON-lines trace export (lifecycle enrichment)",
    )
    q.add_argument(
        "--tenant", default=None, help="restrict the store scan to one tenant"
    )

    p = sub.add_parser(
        "soak",
        help=(
            "E17: chaos soak of the always-on service — N tenants of "
            "Poisson traffic through the live supervisor under sensor "
            "faults, kills, revocations and forced kernel crashes, "
            "verified replay-equivalent per tenant"
        ),
    )
    p.add_argument("--tenants", type=int, default=3)
    p.add_argument("--lam", type=float, default=3.0, help="per-tenant arrival rate")
    p.add_argument("--horizon", type=float, default=40.0)
    p.add_argument("--seed", type=int, default=2011)
    p.add_argument(
        "--crashes", type=int, default=5, help="forced kernel crashes, fleet-wide"
    )
    p.add_argument(
        "--queue-budget", type=int, default=64, help="per-tenant backlog budget"
    )
    p.add_argument(
        "--journal-dir",
        default=None,
        metavar="DIR",
        help="persist per-tenant journals and shed logs under DIR",
    )
    p.add_argument(
        "--kill9",
        action="store_true",
        help=(
            "kill -9 mode: run a real child service process, SIGKILL it "
            "mid-traffic --kills times, and prove replay parity + zero "
            "accepted-job loss after every cold start"
        ),
    )
    p.add_argument(
        "--kills", type=int, default=3, help="SIGKILLs to deliver (--kill9)"
    )
    p.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="durable tenant store for --kill9 (default: temp dir)",
    )
    p.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip store fsyncs in --kill9 (survives SIGKILL, not power loss)",
    )
    p.add_argument(
        "--timeline",
        default=None,
        metavar="FILE",
        help=(
            "write a machine-readable health timeline (JSON lines of "
            "per-tenant SLO scrapes) to FILE as the soak progresses"
        ),
    )

    p = sub.add_parser(
        "serve",
        help=(
            "run the durable scheduling service: TCP JSON-line ingress, "
            "crash-safe tenant store, SIGTERM drain (the kill -9 soak's "
            "child process)"
        ),
    )
    p.add_argument("--store", required=True, help="store directory")
    p.add_argument(
        "--specs", default=None, help="JSON tenant-spec file (fresh store)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0)
    p.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip store fsyncs (faster; survives SIGKILL, not power loss)",
    )
    p.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable SLO tracking and the HTTP exposition listener",
    )
    p.add_argument(
        "--telemetry-port",
        type=int,
        default=0,
        help="HTTP exposition port (default 0 = ephemeral)",
    )

    p = sub.add_parser(
        "top",
        help=(
            "live fleet dashboard: poll a running service's telemetry "
            "exposition (/metrics.json) and render per-tenant SLOs"
        ),
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        required=True,
        help="the service's telemetry port (hello line: telemetry_port)",
    )
    p.add_argument(
        "--interval", type=float, default=1.0, help="poll interval (seconds)"
    )
    p.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="screens to render before exiting (0 = until interrupted)",
    )
    p.add_argument(
        "--no-clear",
        action="store_true",
        help="append screens instead of clearing the terminal",
    )

    return parser


def _failure_exit(
    n_failed: int, first, allow_failures: bool
) -> int:
    """Shared failure-summary policy: print what was lost and pick the exit
    code.  Failed replications are *excluded* from the printed averages, so
    silently exiting 0 would let CI publish tables computed from fewer runs
    than requested — non-zero unless ``--allow-failures``."""
    if n_failed == 0:
        return 0
    print(
        f"[!] {n_failed} replication(s) failed and were excluded from the "
        f"averages (first: {first})",
        file=sys.stderr,
    )
    if allow_failures:
        return 0
    print(
        "[!] exiting non-zero; pass --allow-failures to accept partial "
        "results",
        file=sys.stderr,
    )
    return 1


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.table1 import Table1Config, run_table1

    kwargs: dict = {
        "n_runs": args.runs,
        "seed": args.seed,
        "workers": args.workers,
        "expected_jobs": args.jobs,
    }
    if args.lambdas is not None:
        kwargs["lambdas"] = tuple(args.lambdas)
    result = run_table1(
        Table1Config(**kwargs),
        checkpoint_dir=args.checkpoint,
        timeout=args.timeout,
        max_retries=args.retries,
    )
    print(result.render())
    first = None
    if result.failures:
        lam = sorted(result.failures)[0]
        first = result.failures[lam][0]
    return _failure_exit(result.n_failed, first, args.allow_failures)


def _cmd_figure1(args: argparse.Namespace) -> int:
    from repro.analysis.plots import render_line_chart
    from repro.experiments.figure1 import Figure1Config, run_figure1

    config = Figure1Config(
        lam=args.lam,
        seed=args.seed,
        expected_jobs=args.jobs,
        protocol=args.protocol,
    )
    octx = None
    if args.trace or args.profile:
        from repro import obs

        with obs.session(profile=args.profile) as octx:
            result = run_figure1(config)
    else:
        result = run_figure1(config)
    for panel in result.panels:
        print(
            render_line_chart(
                {
                    "V-Dover": panel.vdover_series,
                    f"Dover(c={panel.c_hat:g})": panel.dover_series,
                },
                title=(
                    f"Figure 1 — value vs time, lambda={config.lam:g}, "
                    f"Dover estimate c={panel.c_hat:g} "
                    f"(generated {panel.generated_value:.0f})"
                ),
                y_label="value",
            )
        )
        print()
    if args.trace and octx is not None:
        n = octx.sink.export_jsonl(args.trace, metrics=octx.snapshot_metrics())
        print(
            f"wrote {n} trace event(s) to {args.trace} "
            f"(inspect with: repro-sched obs report {args.trace})",
            file=sys.stderr,
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments import sweeps

    fn = {
        "policy": sweeps.run_policy_sweep,
        "supplement": sweeps.run_supplement_ablation,
        "beta": sweeps.run_beta_sweep,
        "delta": sweeps.run_delta_sweep,
        "k-misest": sweeps.run_k_misestimation_sweep,
        "slack": sweeps.run_slack_sweep,
    }[args.kind]
    print(fn(n_runs=args.runs, workers=args.workers).render())
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.experiments.faults_sweep import run_faults_sweep

    result = run_faults_sweep(
        args.kind,
        tuple(args.severities) if args.severities is not None else None,
        lam=args.lam,
        n_runs=args.runs,
        seed=args.seed,
        workers=args.workers,
        expected_jobs=args.jobs,
    )
    print(result.render())
    first = result.failures[0][1] if result.failures else None
    return _failure_exit(len(result.failures), first, args.allow_failures)


def _cmd_recovery(args: argparse.Namespace) -> int:
    from repro.analysis.tables import render_table as _render_table
    from repro.experiments.recovery_sweep import (
        crash_resume_equivalence,
        run_recovery_sweep,
    )

    if args.kind == "crash-demo":
        report = crash_resume_equivalence(lam=args.lam, seed=args.seed)
        rows = [
            [
                name,
                "yes" if r["identical"] else "NO",
                r["recoveries"],
                r["events_journaled"],
                f"{r['value']:g}",
            ]
            for name, r in report.items()
        ]
        print(
            _render_table(
                ["scheduler", "bit-identical", "recoveries", "events", "value"],
                rows,
                title="Crash-resume equivalence (snapshot + journal replay)",
            )
        )
        if not all(r["identical"] for r in report.values()):
            print("[!] recovered run diverged from the reference", file=sys.stderr)
            return 1
        return 0

    result = run_recovery_sweep(
        args.kind,
        tuple(args.rates) if args.rates is not None else None,
        lam=args.lam,
        n_runs=args.runs,
        seed=args.seed,
        workers=args.workers,
        expected_jobs=args.jobs,
        retain=args.retain,
        mean_down=args.mean_down,
        checkpoint=args.checkpoint,
    )
    print(result.render())
    if args.out is not None:
        from repro.experiments.store import save_sweep

        save_sweep(args.out, result)
        print(f"saved sweep to {args.out}")
    first = result.failures[0][1] if result.failures else None
    return _failure_exit(len(result.failures), first, args.allow_failures)


def _cmd_multi(args: argparse.Namespace) -> int:
    from repro.experiments.multi_demo import (
        multi_crash_resume_equivalence,
        run_multi_demo,
    )

    if args.kind == "crash-demo":
        report = multi_crash_resume_equivalence(
            m=args.m,
            lam=args.lam if args.lam is not None else 6.0,
            k=args.k,
            seed=args.seed,
            expected_jobs=args.jobs,
        )
        rows = [
            [
                name,
                "yes" if r["identical"] else "NO",
                r["recoveries"],
                r["events_journaled"],
                f"{r['value']:g}",
            ]
            for name, r in report.items()
        ]
        print(
            render_table(
                ["policy", "bit-identical", "recoveries", "events", "value"],
                rows,
                title=(
                    f"Multiprocessor crash-resume equivalence "
                    f"(m={args.m}, snapshot + journal replay)"
                ),
            )
        )
        if not all(r["identical"] for r in report.values()):
            print("[!] recovered run diverged from the reference", file=sys.stderr)
            return 1
        return 0

    rows = run_multi_demo(
        m=args.m,
        lam=args.lam if args.lam is not None else 20.0,
        k=args.k,
        n_runs=args.runs,
        seed=args.seed,
        expected_jobs=args.jobs,
        workers=args.workers,
    )
    print(
        render_table(
            ["policy", "value %", "completed"],
            [[name, f"{share:.2f}", f"{done:.1f}"] for name, share, done in rows],
            title=(
                f"Multiprocessor policies on m={args.m} heterogeneous "
                f"servers (paired, {args.runs} runs)"
            ),
        )
    )
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    k, delta = args.k, args.delta
    rows = [
        ["f(k, δ)  (Lemma 2)", f_overload(k, delta)],
        ["β*  = 1 + √(k/f)  (Thm 3 proof)", optimal_beta(k, delta)],
        ["achievable ratio (Thm 3(2))", vdover_competitive_ratio(k, delta)],
        ["upper bound 1/(1+√k)² (Thm 3(1))", varying_capacity_upper_bound(k)],
        ["achievable / upper (→1 as k→∞)", asymptotic_optimality_gap(k, delta)],
    ]
    print(
        render_table(
            ["quantity", "value"],
            rows,
            title=f"Theory at k={k:g}, δ={delta:g}",
            float_fmt="{:.6f}",
        )
    )
    return 0


def _cmd_adversary(args: argparse.Namespace) -> int:
    from repro.core.offline import greedy_admission
    from repro.core.vdover import VDoverScheduler
    from repro.sim.engine import simulate
    from repro.workload.instances import inadmissible_trap

    rows = []
    for n in args.n:
        jobs, capacity = inadmissible_trap(n)
        online = simulate(jobs, capacity, VDoverScheduler(k=float(n * n)))
        offline_value, _ = greedy_admission(jobs, capacity)
        rows.append(
            [n, online.value, offline_value, online.value / offline_value]
        )
    print(
        render_table(
            ["n", "online (V-Dover)", "offline (greedy)", "ratio"],
            rows,
            title="Theorem 3(3): ratio decays without individual admissibility",
        )
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.core import (
        AdmissionEDFScheduler,
        DoverScheduler,
        EDFScheduler,
        FCFSScheduler,
        GreedyDensityScheduler,
        LLFScheduler,
        VDoverScheduler,
    )
    from repro.sim import render_gantt, simulate
    from repro.workload import load_instance

    jobs, capacity = load_instance(args.instance)
    if capacity is None:
        print("instance file has no capacity section", file=sys.stderr)
        return 1
    scheduler = {
        "vdover": lambda: VDoverScheduler(k=args.k),
        "dover": lambda: DoverScheduler(k=args.k, c_hat=args.c_hat),
        "edf": EDFScheduler,
        "edf-ac": AdmissionEDFScheduler,
        "llf": LLFScheduler,
        "greedy": GreedyDensityScheduler,
        "fcfs": FCFSScheduler,
    }[args.scheduler]()
    octx = None
    if args.trace or args.profile:
        from repro import obs

        with obs.session(profile=args.profile) as octx:
            result = simulate(
                jobs, capacity, scheduler, validate=True, protocol=args.protocol
            )
    else:
        result = simulate(
            jobs, capacity, scheduler, validate=True, protocol=args.protocol
        )
    print(
        f"{scheduler.name}: value {result.value:g} of {result.generated_value:g} "
        f"({100 * result.normalized_value:.1f}%), "
        f"{result.n_completed}/{len(jobs)} jobs completed"
    )
    if args.gantt:
        print()
        print(render_gantt(result.trace, jobs, capacity=capacity))
    if args.trace and octx is not None:
        n = octx.sink.export_jsonl(args.trace, metrics=octx.snapshot_metrics())
        print(
            f"wrote {n} trace event(s) to {args.trace} "
            f"(inspect with: repro-sched obs report {args.trace})",
            file=sys.stderr,
        )
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    import os

    from repro.obs import diff_traces, load_trace, render_report, render_tail

    if args.obs_command == "report":
        print(render_report(load_trace(args.trace)))
        return 0
    if args.obs_command == "tail":
        print(render_tail(load_trace(args.trace), n=args.n))
        return 0
    if args.obs_command == "trace":
        from repro.obs import correlate_request, render_request_trace

        if args.store is None and args.trace is None:
            print(
                "error: obs trace needs --store and/or --trace",
                file=sys.stderr,
            )
            return 2
        result = correlate_request(
            args.request_id,
            store_dir=args.store,
            trace=None if args.trace is None else load_trace(args.trace),
            tenant=args.tenant,
        )
        print(render_request_trace(result))
        return 0 if result["found"] else 1
    # diff
    print(
        diff_traces(
            load_trace(args.trace_a),
            load_trace(args.trace_b),
            names=(
                os.path.basename(args.trace_a),
                os.path.basename(args.trace_b),
            ),
        )
    )
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    if args.kill9:
        from repro.experiments.soak import Kill9Config, run_kill9

        report = run_kill9(
            Kill9Config(
                tenants=args.tenants,
                lam=args.lam,
                horizon=args.horizon,
                seed=args.seed,
                kills=args.kills,
                forced_crashes=args.crashes,
                queue_budget=args.queue_budget,
                store_dir=args.store_dir,
                store_fsync=not args.no_fsync,
                timeline_path=args.timeline,
            )
        )
    else:
        from repro.experiments.soak import SoakConfig, run_soak

        report = run_soak(
            SoakConfig(
                tenants=args.tenants,
                lam=args.lam,
                horizon=args.horizon,
                seed=args.seed,
                forced_crashes=args.crashes,
                queue_budget=args.queue_budget,
                journal_dir=args.journal_dir,
                timeline_path=args.timeline,
            )
        )
    print("\n".join(report.summary_lines()))
    if not report.ok:
        for failure in report.failures():
            print(f"[!] {failure}", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.daemon import main as serve_main

    argv = ["--store", args.store, "--host", args.host, "--port", str(args.port)]
    if args.specs:
        argv += ["--specs", args.specs]
    if args.no_fsync:
        argv.append("--no-fsync")
    if args.no_telemetry:
        argv.append("--no-telemetry")
    argv += ["--telemetry-port", str(args.telemetry_port)]
    return serve_main(argv)


def _cmd_top(args: argparse.Namespace) -> int:
    import json as _json
    import time
    import urllib.error
    import urllib.request

    from repro.obs import render_top

    url = f"http://{args.host}:{args.port}/metrics.json"
    shown = 0
    try:
        while True:
            try:
                with urllib.request.urlopen(url, timeout=5.0) as resp:
                    doc = _json.loads(resp.read().decode("utf-8"))
            except (urllib.error.URLError, OSError, ValueError) as exc:
                print(f"scrape failed: {exc}", file=sys.stderr)
                return 1
            fleet = doc.get("tenants") or {}
            screen = render_top(fleet, title=f"repro top — {url}")
            if not args.no_clear:
                print("\033[2J\033[H", end="")
            print(screen, flush=True)
            shown += 1
            if args.iterations and shown >= args.iterations:
                return 0
            time.sleep(max(args.interval, 0.05))
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "table1": _cmd_table1,
        "figure1": _cmd_figure1,
        "sweep": _cmd_sweep,
        "faults": _cmd_faults,
        "recovery": _cmd_recovery,
        "multi": _cmd_multi,
        "theory": _cmd_theory,
        "adversary": _cmd_adversary,
        "simulate": _cmd_simulate,
        "obs": _cmd_obs,
        "soak": _cmd_soak,
        "serve": _cmd_serve,
        "top": _cmd_top,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
