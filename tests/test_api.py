"""Public-API surface tests: imports, exports, error hierarchy."""

import pytest

import repro
from repro.errors import (
    AnalysisError,
    CapacityError,
    InvalidInstanceError,
    ReproError,
    SchedulingError,
    SimulationError,
)


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        assert repro.__version__

    def test_quickstart_from_docstring(self):
        """The module docstring's quickstart must actually run."""
        from repro import Job, TwoStateMarkovCapacity, VDoverScheduler, simulate

        jobs = [Job(0, release=0.0, workload=2.0, deadline=4.0, value=5.0)]
        capacity = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=10.0, rng=0)
        result = simulate(jobs, capacity, VDoverScheduler(k=7.0))
        assert result.value in (0.0, 5.0)

    def test_subpackage_alls_resolve(self):
        import repro.analysis as analysis
        import repro.capacity as capacity
        import repro.cloud as cloud
        import repro.core as core
        import repro.experiments as experiments
        import repro.sim as sim
        import repro.workload as workload

        for module in (analysis, capacity, cloud, core, experiments, sim, workload):
            for name in module.__all__:
                assert getattr(module, name, None) is not None, (
                    f"{module.__name__}.{name}"
                )


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [CapacityError, InvalidInstanceError, SchedulingError, SimulationError, AnalysisError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_library_raises_its_own_errors(self):
        from repro import ConstantCapacity, Job

        with pytest.raises(ReproError):
            ConstantCapacity(-1.0)
        with pytest.raises(ReproError):
            Job(0, 0.0, -1.0, 1.0, 1.0)
