"""Core scheduling algorithms: the paper's contribution and its baselines.

* :class:`VDoverScheduler` — the proposed algorithm (Section III-D);
* :class:`DoverScheduler` — Koren–Shasha Dover with a capacity estimate ĉ
  (the paper's comparison baseline);
* :class:`EDFScheduler`, :class:`LLFScheduler` — classical policies,
  optimal when underloaded (Theorems 1(1) and 2);
* greedy strawmen for the extended benchmarks;
* the offline reduction (:class:`StretchTransform`) and offline
  feasibility/optimum algorithms;
* admissibility predicates (Definition 4).
"""

from repro.core.admission_edf import AdmissionEDFScheduler
from repro.core.admission import (
    admissibility_report,
    all_individually_admissible,
    filter_admissible,
    is_individually_admissible,
)
from repro.core.dover import DoverScheduler
from repro.core.dover_family import DoverFamilyScheduler
from repro.core.edf import EDFScheduler
from repro.core.greedy import (
    FCFSScheduler,
    GreedyDensityScheduler,
    GreedyValueScheduler,
)
from repro.core.llf import LLFScheduler
from repro.core.offline import (
    edf_result,
    greedy_admission,
    is_feasible,
    is_underloaded,
    optimal_offline_value,
)
from repro.core.transform import StretchTransform
from repro.core.vdover import VDoverScheduler

__all__ = [
    "VDoverScheduler",
    "DoverScheduler",
    "DoverFamilyScheduler",
    "EDFScheduler",
    "AdmissionEDFScheduler",
    "LLFScheduler",
    "FCFSScheduler",
    "GreedyDensityScheduler",
    "GreedyValueScheduler",
    "StretchTransform",
    "edf_result",
    "greedy_admission",
    "is_feasible",
    "is_underloaded",
    "optimal_offline_value",
    "admissibility_report",
    "all_individually_admissible",
    "filter_admissible",
    "is_individually_admissible",
]
