"""Invariant watchdog over the multiprocessor engine.

The monitors read per-processor traces/capacities (``engine.proc_traces``
/ ``engine.capacities``) and fall back to the single-processor view on
engines that only expose ``trace`` / ``capacity`` — so the same battery
guards both engines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.capacity import TwoStateMarkovCapacity
from repro.capacity.piecewise import PiecewiseConstantCapacity
from repro.cloud.cluster import LeastWorkDispatcher
from repro.core import VDoverScheduler
from repro.errors import InvariantViolationError
from repro.multi import (
    GlobalEDFScheduler,
    GlobalVDoverScheduler,
    PartitionedScheduler,
    simulate_multi,
)
from repro.sim import InvariantWatchdog
from repro.sim.invariants import AdmissibilityMonitor, default_monitors
from repro.sim.job import Job
from repro.workload.poisson import PoissonWorkload

POLICIES = [
    pytest.param(lambda: GlobalEDFScheduler(), id="g-edf"),
    pytest.param(lambda: GlobalVDoverScheduler(k=7.0), id="g-vdover"),
    pytest.param(
        lambda: PartitionedScheduler(
            LeastWorkDispatcher(), lambda: VDoverScheduler(k=7.0)
        ),
        id="part-lw",
    ),
]


def _instance(seed: int = 5, horizon: float = 12.0, m: int = 3):
    workload = PoissonWorkload(
        lam=8.0, horizon=horizon, density_range=(1.0, 7.0), c_lower=1.0
    )
    jobs = workload.generate(np.random.default_rng(seed))
    capacities = [
        TwoStateMarkovCapacity(
            1.0,
            35.0,
            mean_sojourn=horizon / 4.0,
            rng=np.random.default_rng(seed + 1 + p),
        )
        for p in range(m)
    ]
    return jobs, capacities


@pytest.mark.parametrize("make_policy", POLICIES)
def test_clean_multi_run_has_zero_violations(make_policy):
    jobs, capacities = _instance()
    watchdog = InvariantWatchdog(paranoid=True)  # first violation raises
    simulate_multi(jobs, capacities, make_policy(), watchdog=watchdog)
    assert watchdog.total_violations == 0
    assert watchdog.summary() == {}


def test_watchdog_survives_multi_crash_recovery():
    from repro.faults import EngineCrashPlan

    jobs, capacities = _instance(seed=9)
    watchdog = InvariantWatchdog(paranoid=True)
    result = simulate_multi(
        jobs,
        capacities,
        GlobalVDoverScheduler(k=7.0),
        faults=[EngineCrashPlan(at_event=20)],
        snapshot_every=8,
        recover=True,
        watchdog=watchdog,
    )
    assert result.recoveries == 1
    assert watchdog.total_violations == 0


def test_admissibility_monitor_uses_best_fleet_floor():
    """Definition 4, multiprocessor reading: admissible iff *some* single
    machine can guarantee the job alone (c* = max_p floor).  A job that
    needs rate 2 is admissible on a fleet whose strongest floor is 3 —
    and inadmissible on an all-floor-1 fleet."""
    job = Job(jid=0, release=0.0, workload=4.0, deadline=2.0, value=4.0)

    def fleet(floors):
        return [
            PiecewiseConstantCapacity([0.0], [5.0], lower=f, upper=5.0)
            for f in floors
        ]

    strong = InvariantWatchdog(
        [AdmissibilityMonitor()] + default_monitors(), paranoid=True
    )
    simulate_multi([job], fleet([1.0, 3.0]), GlobalEDFScheduler(), watchdog=strong)
    assert strong.total_violations == 0

    weak = InvariantWatchdog([AdmissibilityMonitor()])
    simulate_multi([job], fleet([1.0, 1.0]), GlobalEDFScheduler(), watchdog=weak)
    assert weak.counts.get("admissibility") == 1

    with pytest.raises(InvariantViolationError):
        simulate_multi(
            [job],
            fleet([1.0, 1.0]),
            GlobalEDFScheduler(),
            watchdog=InvariantWatchdog([AdmissibilityMonitor()], paranoid=True),
        )
