"""Unit tests for the MMPP bursty workload."""

import numpy as np
import pytest

from repro.errors import InvalidInstanceError
from repro.workload import MMPPWorkload


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(quiet_rate=0.0, burst_rate=5.0, mean_phase=1.0, horizon=10.0),
            dict(quiet_rate=5.0, burst_rate=5.0, mean_phase=1.0, horizon=10.0),
            dict(quiet_rate=1.0, burst_rate=5.0, mean_phase=0.0, horizon=10.0),
            dict(quiet_rate=1.0, burst_rate=5.0, mean_phase=1.0, horizon=0.0),
            dict(
                quiet_rate=1.0,
                burst_rate=5.0,
                mean_phase=1.0,
                horizon=10.0,
                density_range=(3.0, 2.0),
            ),
        ],
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(InvalidInstanceError):
            MMPPWorkload(**kwargs)


class TestGeneration:
    def test_deterministic(self):
        wl = MMPPWorkload(1.0, 10.0, mean_phase=5.0, horizon=50.0)
        assert wl.generate(3) == wl.generate(3)

    def test_sorted_and_within_horizon(self):
        wl = MMPPWorkload(1.0, 10.0, mean_phase=5.0, horizon=50.0)
        jobs = wl.generate(5)
        assert all(0.0 <= j.release < 50.0 for j in jobs)
        releases = [j.release for j in jobs]
        assert releases == sorted(releases)

    def test_mean_rate_between_phase_rates(self):
        wl = MMPPWorkload(1.0, 9.0, mean_phase=10.0, horizon=400.0)
        counts = [len(wl.generate(seed)) for seed in range(10)]
        mean_rate = np.mean(counts) / 400.0
        assert 1.0 < mean_rate < 9.0
        assert mean_rate == pytest.approx(5.0, abs=1.5)  # symmetric phases

    def test_burstier_than_poisson(self):
        """Index of dispersion of counts must exceed 1 (Poisson's value)."""
        wl = MMPPWorkload(0.5, 15.0, mean_phase=20.0, horizon=200.0)
        counts = np.array([len(wl.generate(seed)) for seed in range(40)])
        dispersion = counts.var() / counts.mean()
        assert dispersion > 2.0

    def test_zero_laxity_deadlines(self):
        jobs = MMPPWorkload(1.0, 10.0, mean_phase=5.0, horizon=50.0).generate(7)
        for job in jobs:
            assert job.relative_deadline == pytest.approx(job.workload)
