"""The Directory abstraction: real filesystem and the power-loss model.

`MemoryDirectory` is the foundation the whole durability suite stands
on, so its crash semantics are pinned here first: content becomes
durable only via ``fsync``, entries only via ``fsync_dir``, and
:meth:`crash` reverts every volatile bit.
"""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.store.directory import MemoryDirectory, OsDirectory


class TestOsDirectory:
    def test_roundtrip(self, tmp_path):
        d = OsDirectory(tmp_path / "store")
        h = d.create("a.bin")
        h.write(b"hello")
        h.fsync()
        h.close()
        assert d.read_bytes("a.bin") == b"hello"
        assert d.exists("a.bin")
        assert d.listdir() == ["a.bin"]

    def test_rename_and_remove(self, tmp_path):
        d = OsDirectory(tmp_path)
        h = d.create("x.tmp")
        h.write(b"data")
        h.close()
        d.rename("x.tmp", "x.bin")
        d.fsync_dir()
        assert d.listdir() == ["x.bin"]
        d.remove("x.bin")
        assert d.listdir() == []

    def test_truncate(self, tmp_path):
        d = OsDirectory(tmp_path)
        h = d.create("t.bin")
        h.write(b"0123456789")
        h.close()
        d.truncate("t.bin", 4)
        assert d.read_bytes("t.bin") == b"0123"

    def test_subdir(self, tmp_path):
        d = OsDirectory(tmp_path)
        sub = d.subdir("inner")
        h = sub.create("f")
        h.write(b"x")
        h.close()
        assert (tmp_path / "inner" / "f").read_bytes() == b"x"

    def test_append(self, tmp_path):
        d = OsDirectory(tmp_path)
        h = d.create("a")
        h.write(b"one")
        h.close()
        h = d.open_append("a")
        h.write(b"two")
        h.close()
        assert d.read_bytes("a") == b"onetwo"


class TestMemoryDirectory:
    def test_unsynced_content_lost_on_crash(self):
        d = MemoryDirectory()
        h = d.create("f")
        d.fsync_dir()  # the entry survives ...
        h.write(b"volatile")
        d.crash()
        assert d.exists("f")
        assert d.read_bytes("f") == b""  # ... the bytes do not

    def test_fsynced_prefix_survives_crash(self):
        d = MemoryDirectory()
        h = d.create("f")
        d.fsync_dir()
        h.write(b"durable")
        h.fsync()
        h.write(b"-volatile")
        d.crash()
        assert d.read_bytes("f") == b"durable"

    def test_entry_without_dir_fsync_lost_on_crash(self):
        d = MemoryDirectory()
        h = d.create("f")
        h.write(b"x")
        h.fsync()  # file content fsynced, entry never was
        d.crash()
        assert not d.exists("f")

    def test_rename_without_dir_fsync_reverts(self):
        d = MemoryDirectory()
        h = d.create("f.tmp")
        h.write(b"x")
        h.fsync()
        d.fsync_dir()
        d.rename("f.tmp", "f")
        d.crash()  # the rename was never dir-fsynced
        assert d.exists("f.tmp")
        assert not d.exists("f")

    def test_rename_with_dir_fsync_sticks(self):
        d = MemoryDirectory()
        h = d.create("f.tmp")
        h.write(b"x")
        h.fsync()
        d.rename("f.tmp", "f")
        d.fsync_dir()
        d.crash()
        assert d.exists("f")
        assert d.read_bytes("f") == b"x"

    def test_handle_outlives_crash_raises(self):
        d = MemoryDirectory()
        h = d.create("f")
        d.crash()
        with pytest.raises(StorageError, match="outlived"):
            h.write(b"late")

    def test_closed_handle_raises(self):
        d = MemoryDirectory()
        h = d.create("f")
        h.close()
        with pytest.raises(StorageError, match="closed"):
            h.write(b"late")

    def test_sync_all_models_sigkill(self):
        # SIGKILL loses nothing the OS already has: sync_all then crash
        # is a no-op for state.
        d = MemoryDirectory()
        h = d.create("f")
        h.write(b"handed to the OS")
        d.sync_all()
        d.crash()
        assert d.read_bytes("f") == b"handed to the OS"

    def test_crash_recurses_into_subdirs(self):
        d = MemoryDirectory()
        sub = d.subdir("inner")
        h = sub.create("f")
        sub.fsync_dir()
        h.write(b"volatile")
        d.crash()
        assert sub.read_bytes("f") == b""

    def test_missing_file_errors(self):
        d = MemoryDirectory()
        with pytest.raises(StorageError):
            d.read_bytes("nope")
        with pytest.raises(StorageError):
            d.open_append("nope")
        with pytest.raises(StorageError):
            d.remove("nope")
        with pytest.raises(StorageError):
            d.rename("nope", "other")
