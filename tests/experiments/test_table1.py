"""Tests for the Table-I harness (small-scale; the benchmark runs it big)."""

import pytest

from repro.experiments import Table1Config, run_table1


@pytest.fixture(scope="module")
def small_result():
    # Scaled-down but statistically meaningful: at 20 paired runs of ~300
    # jobs the paired gain CI is ~±4%, well below the true gain of 5-12%.
    config = Table1Config(
        lambdas=(4.0, 8.0),
        n_runs=20,
        expected_jobs=300.0,
        seed=3,
        workers=2,
    )
    return run_table1(config)


class TestStructure:
    def test_one_row_per_lambda(self, small_result):
        assert [row.lam for row in small_result.rows] == [4.0, 8.0]

    def test_all_dover_columns_present(self, small_result):
        for row in small_result.rows:
            assert set(row.dover_percent) == {1.0, 10.5, 24.5, 35.0}

    def test_percentages_in_range(self, small_result):
        for row in small_result.rows:
            for summary in row.dover_percent.values():
                assert 0.0 <= summary.mean <= 100.0
            assert 0.0 <= row.vdover_percent.mean <= 100.0

    def test_best_c_hat_is_argmax(self, small_result):
        for row in small_result.rows:
            best = max(row.dover_percent.values(), key=lambda s: s.mean)
            assert row.best_dover_percent.mean == best.mean


class TestPaperShape:
    def test_vdover_beats_best_dover(self, small_result):
        """The paper's headline: V-Dover >= best Dover in every row."""
        for row in small_result.rows:
            assert row.vdover_percent.mean >= row.best_dover_percent.mean

    def test_gain_is_significantly_positive(self, small_result):
        """The paired gain is positive beyond its 95% CI in every row."""
        for row in small_result.rows:
            assert row.gain_percent.mean - row.gain_percent.ci_half_width > 0.0


class TestResilience:
    CONFIG = dict(lambdas=(6.0,), n_runs=4, expected_jobs=60.0, seed=5, workers=1)

    def test_checkpointed_run_matches_plain(self, tmp_path):
        plain = run_table1(Table1Config(**self.CONFIG))
        ckpt = run_table1(Table1Config(**self.CONFIG), checkpoint_dir=tmp_path)
        assert ckpt.render() == plain.render()
        assert (tmp_path / "table1_lam6.ckpt.jsonl").exists()
        # resuming an already-complete run re-executes nothing and agrees
        resumed = run_table1(Table1Config(**self.CONFIG), checkpoint_dir=tmp_path)
        assert resumed.render() == plain.render()

    def test_no_failures_on_clean_run(self, small_result):
        assert small_result.failures == {}
        assert small_result.n_failed == 0
        assert "failed" not in small_result.render()


class TestRendering:
    def test_render_contains_rows_and_marker(self, small_result):
        text = small_result.render()
        assert "Table I" in text
        assert "V-Dover" in text
        assert "*" in text  # best-Dover marker
        assert "Gain" in text
