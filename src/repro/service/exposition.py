"""HTTP exposition of the live telemetry plane.

A deliberately tiny asyncio HTTP/1.0 responder (no framework, no
dependency) that serves the same fleet scrape the ``metrics`` wire
message returns, in scraper-friendly clothes:

* ``GET /metrics`` — Prometheus text format 0.0.4
  (:func:`repro.obs.telemetry.render_prometheus`; linted in CI by
  :func:`repro.obs.telemetry.lint_prometheus`);
* ``GET /metrics.json`` — the raw JSON fleet scrape
  (``{"tenants": {...}}`` — what ``repro top`` polls);
* ``GET /health`` — ``{"health": {tenant: state}}`` from the supervisor
  ladder (``ok`` / ``degraded`` / ``restarting`` / ``circuit_open``).

Reads are served from the event loop thread via
:meth:`repro.service.supervisor.ScheduleService.scrape`, which bypasses
the per-tenant queues — a scrape answers even while every tenant is mid
restart ladder.  A scrape failure returns a 500 with the error text; it
never kills the listener.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from repro.obs.telemetry import render_prometheus
from repro.service.supervisor import ScheduleService

__all__ = ["TelemetryExposition"]

_MAX_REQUEST_BYTES = 8192


class TelemetryExposition:
    """One HTTP listener exposing a service's telemetry plane."""

    def __init__(self, service: ScheduleService) -> None:
        self.service = service
        self._server: "asyncio.AbstractServer | None" = None

    # ------------------------------------------------------------------
    def render(self, path: str) -> Tuple[int, str, str]:
        """Route one request path → (status, content-type, body)."""
        try:
            if path in ("/metrics", "/metrics/"):
                fleet = self.service.scrape()
                return (
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    render_prometheus(fleet),
                )
            if path in ("/metrics.json", "/scrape"):
                fleet = self.service.scrape()
                return (
                    200,
                    "application/json",
                    json.dumps({"tenants": fleet}) + "\n",
                )
            if path in ("/health", "/health/"):
                return (
                    200,
                    "application/json",
                    json.dumps({"health": self.service.health()}) + "\n",
                )
            return (404, "text/plain; charset=utf-8", "not found\n")
        except Exception as exc:  # noqa: BLE001 - a scrape must not kill us
            return (500, "text/plain; charset=utf-8", f"scrape failed: {exc}\n")

    # ------------------------------------------------------------------
    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            request = await reader.readline()
            if not request:
                return
            if len(request) > _MAX_REQUEST_BYTES:
                return
            parts = request.decode("latin-1", errors="replace").split()
            method = parts[0] if parts else ""
            path = parts[1] if len(parts) > 1 else "/"
            # Drain (and ignore) the header block.
            while True:
                header = await reader.readline()
                if not header or header in (b"\r\n", b"\n"):
                    break
            if method not in ("GET", "HEAD"):
                status, ctype, body = (
                    405,
                    "text/plain; charset=utf-8",
                    "method not allowed\n",
                )
            else:
                status, ctype, body = self.render(path.split("?", 1)[0])
            payload = body.encode("utf-8")
            reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed"}
            head = (
                f"HTTP/1.0 {status} {reason.get(status, 'Error')}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
            writer.write(head if method == "HEAD" else head + payload)
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - client bailed
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> asyncio.AbstractServer:
        """Start the listener (port 0 = ephemeral); returns the server."""
        self._server = await asyncio.start_server(self._handle, host, port)
        return self._server

    @property
    def port(self) -> Optional[int]:
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
