"""Graceful degradation of schedulers consuming a faulty capacity sensor.

The invariants under test (docs/ROBUSTNESS.md):

* no fault model makes a scheduler *crash* — degraded estimates, never
  unhandled exceptions;
* V-Dover and Dover with a fixed ĉ never read the sensor, so
  noise/staleness/dropout leave their schedules bit-identical;
* ``Dover(sensed)`` reads through :meth:`Scheduler.sense_capacity`, whose
  ladder clamps out-of-band readings, falls back to last-known-good during
  dropouts, and raises :class:`~repro.errors.EstimateError` only when the
  declared band itself is unusable.
"""

import numpy as np
import pytest

from repro.capacity import PiecewiseConstantCapacity, TwoStateMarkovCapacity
from repro.core import DoverScheduler, VDoverScheduler
from repro.errors import EstimateError, ReproError
from repro.faults import (
    BiasedBoundsCapacity,
    DropoutCapacity,
    NoisyCapacity,
    StaleCapacity,
)
from repro.sim import simulate
from repro.workload import PoissonWorkload


def make_instance(seed=0, lam=6.0, jobs=120.0):
    rng = np.random.default_rng(seed)
    horizon = jobs / lam
    workload = PoissonWorkload(lam=lam, horizon=horizon, density_range=(1.0, 7.0))
    job_rng, cap_rng = rng.spawn(2)
    job_list = workload.generate(job_rng)
    capacity = TwoStateMarkovCapacity(
        1.0, 35.0, mean_sojourn=horizon / 4.0, rng=cap_rng
    )
    return job_list, capacity


FAULTS = {
    "noise": lambda cap: NoisyCapacity(cap, sigma=0.5, seed=1),
    "stale": lambda cap: StaleCapacity(cap, delay=2.0),
    "dropout": lambda cap: DropoutCapacity(cap, mean_up=2.0, mean_down=1.0, seed=1),
}


class TestImmuneSchedulers:
    """Schedulers that never consult the sensor are bit-identical under
    sensing faults (the experiment's headline robustness property)."""

    @pytest.mark.parametrize("fault", sorted(FAULTS))
    @pytest.mark.parametrize(
        "make_sched",
        [lambda: VDoverScheduler(k=7.0), lambda: DoverScheduler(k=7.0, c_hat=1.0)],
        ids=["vdover", "dover-fixed"],
    )
    def test_value_identical_under_sensing_faults(self, fault, make_sched):
        jobs, capacity = make_instance(seed=3)
        clean = simulate(jobs, capacity, make_sched())
        jobs, capacity = make_instance(seed=3)
        faulty = simulate(jobs, FAULTS[fault](capacity), make_sched())
        assert faulty.value == clean.value
        assert faulty.n_completed == clean.n_completed

    def test_bias_moves_vdover(self):
        jobs, capacity = make_instance(seed=3)
        clean = simulate(jobs, capacity, VDoverScheduler(k=7.0))
        jobs, capacity = make_instance(seed=3)
        biased = simulate(
            jobs, BiasedBoundsCapacity(capacity, lower=18.0), VDoverScheduler(k=7.0)
        )
        # The declared band is V-Dover's one capacity input; lifting c̲
        # changes its conservative laxities, hence its schedule.
        assert biased.value != clean.value


class TestSensedDover:
    def test_no_fault_model_crashes_it(self):
        for name, wrap in FAULTS.items():
            jobs, capacity = make_instance(seed=5)
            result = simulate(jobs, wrap(capacity), DoverScheduler(k=7.0, c_hat="sensed"))
            assert result.value >= 0.0, name

    def test_sensor_health_counters(self):
        jobs, capacity = make_instance(seed=5)
        sched = DoverScheduler(k=7.0, c_hat="sensed")
        simulate(
            jobs,
            NoisyCapacity(
                DropoutCapacity(capacity, mean_up=2.0, mean_down=1.0, seed=2),
                sigma=1.0,
                seed=2,
            ),
            sched,
        )
        health = sched.sensor_health
        assert health["reads"] > 0
        assert health["dropouts"] > 0  # the renewal process did go dark
        assert health["clamped"] > 0  # σ=1 noise leaves the band often
        assert health["dropouts"] + health["clamped"] <= health["reads"]

    def test_health_reset_between_runs(self):
        jobs, capacity = make_instance(seed=5)
        sched = DoverScheduler(k=7.0, c_hat="sensed")
        simulate(jobs, NoisyCapacity(capacity, sigma=1.0, seed=2), sched)
        jobs, capacity = make_instance(seed=5)
        simulate(jobs, capacity, sched)
        assert sched.sensor_health["clamped"] == 0

    def test_sensed_tracks_clean_sensor(self):
        # With an honest sensor, Dover(sensed) follows the true trajectory;
        # it must match Dover pinned at the constant true rate.
        jobs, _ = make_instance(seed=7)
        flat = PiecewiseConstantCapacity([0.0], [4.0], lower=1.0, upper=35.0)
        sensed = simulate(jobs, flat, DoverScheduler(k=7.0, c_hat="sensed"))
        pinned = simulate(jobs, flat, DoverScheduler(k=7.0, c_hat=4.0))
        assert sensed.value == pinned.value

    def test_rejects_unknown_rate_mode(self):
        with pytest.raises(ReproError):
            DoverScheduler(k=7.0, c_hat="psychic")


class _StubCtx:
    """Minimal SchedulerContext stand-in for exercising the sensing ladder."""

    def __init__(self, bounds, readings):
        self.bounds = bounds
        self._readings = list(readings)

    def capacity_now(self):
        reading = self._readings.pop(0)
        if isinstance(reading, Exception):
            raise reading
        return reading


class TestDegradationLadder:
    def test_unusable_band_raises_estimate_error(self):
        # A band this broken cannot come from a CapacityFunction (the base
        # class validates its own bounds); the ladder still refuses to
        # invent an estimate if a context ever hands one over.
        sched = DoverScheduler(k=7.0, c_hat=1.0)
        sched.ctx = _StubCtx((0.0, 35.0), [4.0])
        with pytest.raises(EstimateError):
            sched.sense_capacity()
        sched.ctx = _StubCtx((float("nan"), 35.0), [4.0])
        with pytest.raises(EstimateError):
            sched.sense_capacity()

    def test_ladder_order_clamp_then_last_good_then_lower(self):
        from repro.errors import CapacityReadError

        sched = DoverScheduler(k=7.0, c_hat=1.0)
        sched.ctx = _StubCtx(
            (1.0, 35.0),
            [
                50.0,  # out of band -> clamped to 35
                CapacityReadError(1.0),  # dropout -> last good (35)
                float("nan"),  # garbage -> last good (35)
                2.0,  # honest in-band reading
            ],
        )
        assert sched.sense_capacity() == 35.0
        assert sched.sense_capacity() == 35.0
        assert sched.sense_capacity() == 35.0
        assert sched.sense_capacity() == 2.0
        assert sched.sensor_health == {"reads": 4, "dropouts": 2, "clamped": 1}

    def test_no_last_good_falls_back_to_lower(self):
        from repro.errors import CapacityReadError

        sched = DoverScheduler(k=7.0, c_hat=1.0)
        sched.ctx = _StubCtx((3.0, 35.0), [CapacityReadError(0.0)])
        assert sched.sense_capacity() == 3.0

    def test_dropout_from_start_falls_back_to_lower_bound(self):
        # Sensor dark for the whole run: every read degrades to c̲ = 1, so
        # Dover(sensed) must behave exactly like Dover(c=1).
        jobs, capacity = make_instance(seed=11)
        dark = DropoutCapacity(capacity, windows=[(0.0, 1e9)])
        sensed = simulate(jobs, dark, DoverScheduler(k=7.0, c_hat="sensed"))
        jobs, capacity = make_instance(seed=11)
        fixed = simulate(jobs, capacity, DoverScheduler(k=7.0, c_hat=1.0))
        assert sensed.value == fixed.value
