"""Tests for the Global V-Dover extension."""

import pytest

from repro.capacity import ConstantCapacity, PiecewiseConstantCapacity
from repro.errors import SchedulingError
from repro.multi import GlobalEDFScheduler, GlobalVDoverScheduler, simulate_multi
from repro.sim import Job


def J(jid, r, p, d, v=1.0):
    return Job(jid, r, p, d, v)


def procs(n=2, rate=1.0):
    return [ConstantCapacity(rate)] * n


class TestConstruction:
    def test_default_beta(self):
        assert GlobalVDoverScheduler(k=4.0).beta == pytest.approx(3.0)

    def test_rejects_bad_params(self):
        with pytest.raises(SchedulingError):
            GlobalVDoverScheduler(k=0.5)
        with pytest.raises(SchedulingError):
            GlobalVDoverScheduler(k=4.0, beta=1.0)


class TestRegularCore:
    def test_reduces_to_global_edf_when_feasible(self):
        jobs = [J(0, 0.0, 2.0, 8.0), J(1, 0.0, 2.0, 6.0), J(2, 1.0, 2.0, 9.0)]
        gvd = simulate_multi(jobs, procs(), GlobalVDoverScheduler(k=7.0), validate=True)
        gedf = simulate_multi(jobs, procs(), GlobalEDFScheduler(), validate=True)
        assert gvd.completed_ids == gedf.completed_ids
        assert gvd.value == pytest.approx(gedf.value)

    def test_triage_preempts_cheapest_running_job(self):
        """All processors busy with zero-slack work; the urgent valuable
        arrival must evict the *cheapest* running job."""
        jobs = [
            J(0, 0.0, 6.0, 6.0, v=1.0),   # cheapest: the victim
            J(1, 0.0, 6.0, 6.0, v=50.0),
            J(2, 0.5, 5.5, 6.0, v=100.0),  # zero laxity at release, huge value
        ]
        r = simulate_multi(jobs, procs(), GlobalVDoverScheduler(k=100.0), validate=True)
        assert 2 in r.completed_ids
        assert 1 in r.completed_ids
        assert 0 in r.failed_ids

    def test_urgent_low_value_job_demoted(self):
        jobs = [
            J(0, 0.0, 6.0, 6.0, v=50.0),
            J(1, 0.0, 6.0, 6.0, v=50.0),
            J(2, 0.5, 5.5, 6.0, v=1.0),  # urgent but worthless
        ]
        r = simulate_multi(jobs, procs(), GlobalVDoverScheduler(k=100.0), validate=True)
        assert sorted(r.completed_ids) == [0, 1]

    def test_urgent_job_takes_idle_processor_free(self):
        jobs = [
            J(0, 0.0, 6.0, 6.0, v=50.0),
            J(1, 0.5, 5.5, 6.0, v=1.0),  # urgent, but a proc is idle
        ]
        r = simulate_multi(jobs, procs(), GlobalVDoverScheduler(k=100.0), validate=True)
        assert sorted(r.completed_ids) == [0, 1]


class TestSupplements:
    def test_supplement_rides_spare_processor(self):
        caps = [
            PiecewiseConstantCapacity([0.0, 2.0], [1.0, 5.0]),
            ConstantCapacity(1.0),
        ]
        jobs = [
            J(0, 0.0, 12.0, 13.0, v=10.0),
            J(1, 0.0, 12.0, 13.0, v=10.0),
            J(2, 1.0, 4.0, 5.0, v=1.0),   # demoted at release+0... supplement
        ]
        r = simulate_multi(jobs, caps, GlobalVDoverScheduler(k=10.0), validate=True)
        # Job 0/1 occupy both procs; once the spike finishes one of them,
        # the supplement gets the free processor and completes by 5.
        assert 2 in r.completed_ids

    def test_supplement_preempted_by_regular_arrival(self):
        caps = [PiecewiseConstantCapacity([0.0, 1.0], [1.0, 10.0])]
        jobs = [
            J(0, 0.0, 3.0, 3.0, v=10.0),
            J(1, 0.1, 2.9, 3.0, v=1.0),   # demoted to supplement
            J(2, 1.5, 1.0, 4.0, v=5.0),   # regular arrival preempts supp
        ]
        r = simulate_multi(jobs, caps, GlobalVDoverScheduler(k=10.0), validate=True)
        assert 0 in r.completed_ids
        assert 2 in r.completed_ids


class TestDominance:
    def test_beats_global_edf_under_overload(self):
        from repro.workload import PoissonWorkload
        from repro.capacity import TwoStateMarkovCapacity

        total_gvd = total_gedf = 0.0
        for seed in range(5):
            jobs = PoissonWorkload(lam=30.0, horizon=20.0).generate(seed)
            mk = lambda: [
                TwoStateMarkovCapacity(1.0, 10.0, mean_sojourn=5.0, rng=seed * 10 + i)
                for i in range(3)
            ]
            total_gvd += simulate_multi(jobs, mk(), GlobalVDoverScheduler(k=7.0)).value
            total_gedf += simulate_multi(jobs, mk(), GlobalEDFScheduler()).value
        assert total_gvd > total_gedf
