"""Exception hierarchy for :mod:`repro`.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the package with a single ``except`` clause
while still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by the :mod:`repro` package."""


class CapacityError(ReproError):
    """Raised for invalid capacity functions or out-of-domain queries.

    Examples: a capacity model whose lower bound is non-positive, a piecewise
    model with unsorted breakpoints, or an ``integrate`` query with a
    reversed interval.
    """


class InvalidInstanceError(ReproError):
    """Raised when a problem instance (job set and/or capacity) is malformed.

    Examples: a job with negative workload, a deadline earlier than the
    release time, or a non-positive value.
    """


class SchedulingError(ReproError):
    """Raised when a scheduler is driven outside its contract.

    Examples: scheduling a job that was never released, resuming a completed
    job, or an interrupt handler returning a job unknown to the engine.
    """


class SimulationError(ReproError):
    """Raised when the discrete-event engine detects an internal
    inconsistency (events out of order, negative remaining workload beyond
    tolerance, a trace that fails validation, ...)."""


class AnalysisError(ReproError):
    """Raised for invalid analysis queries (e.g. the competitive-ratio
    formula of Theorem 3 evaluated at ``delta <= 1``, where ``f(k, delta)``
    is undefined)."""
