"""Metrics and validation for multiprocessor runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.capacity.base import CapacityFunction
from repro.errors import SimulationError
from repro.sim.job import Job, JobStatus, total_value
from repro.sim.trace import ScheduleTrace

__all__ = ["MultiSimulationResult", "multi_results_bit_identical"]


@dataclass
class MultiSimulationResult:
    """Outcome of one multiprocessor simulation."""

    scheduler_name: str
    jobs: Sequence[Job]
    horizon: float
    #: one execution trace per processor
    proc_traces: List[ScheduleTrace]
    #: combined outcome/value record (no segments)
    combined: ScheduleTrace
    #: crash→restore cycles survived (``simulate_multi(..., recover=True)``)
    recoveries: int = 0

    # ------------------------------------------------------------------
    @property
    def n_procs(self) -> int:
        return len(self.proc_traces)

    @property
    def value(self) -> float:
        return self.combined.value_points[-1][1] if self.combined.value_points else 0.0

    @property
    def generated_value(self) -> float:
        return total_value(self.jobs)

    @property
    def normalized_value(self) -> float:
        gen = self.generated_value
        return self.value / gen if gen > 0.0 else 0.0

    @property
    def completed_ids(self) -> List[int]:
        return sorted(
            jid
            for jid, st in self.combined.outcomes.items()
            if st is JobStatus.COMPLETED
        )

    @property
    def failed_ids(self) -> List[int]:
        return sorted(
            jid
            for jid, st in self.combined.outcomes.items()
            if st in (JobStatus.FAILED, JobStatus.ABANDONED)
        )

    @property
    def n_completed(self) -> int:
        return len(self.completed_ids)

    @property
    def busy_time(self) -> float:
        return sum(trace.busy_time() for trace in self.proc_traces)

    @property
    def executed_work(self) -> float:
        return sum(trace.total_work() for trace in self.proc_traces)

    def work_by_job(self) -> Dict[int, float]:
        acc: Dict[int, float] = {}
        for trace in self.proc_traces:
            for jid, work in trace.work_by_job().items():
                acc[jid] = acc.get(jid, 0.0) + work
        return acc

    def migrations(self) -> int:
        """Number of processor changes across all jobs (a job's segments
        interleaved across processors, counted chronologically)."""
        timeline: list[tuple[float, int, int]] = []
        for proc, trace in enumerate(self.proc_traces):
            for seg in trace.segments:
                timeline.append((seg.start, seg.jid, proc))
        timeline.sort()
        last_proc: Dict[int, int] = {}
        count = 0
        for _start, jid, proc in timeline:
            if jid in last_proc and last_proc[jid] != proc:
                count += 1
            last_proc[jid] = proc
        return count

    def value_series(self) -> list[tuple[float, float]]:
        return self.combined.value_series(self.horizon)

    # ------------------------------------------------------------------
    def validate(
        self, capacities: Sequence[CapacityFunction], *, tol: float = 1e-6
    ) -> None:
        """Re-check legality: per-processor validity, no intra-job
        parallelism, and full workload for completed jobs."""
        if len(capacities) != self.n_procs:
            raise SimulationError(
                f"{len(capacities)} capacities for {self.n_procs} traces"
            )
        # Per-processor: segments legal against that processor's capacity.
        for trace, capacity in zip(self.proc_traces, capacities):
            # outcomes live in `combined`; validate segments only by
            # passing an outcome-free shallow copy.
            seg_only = ScheduleTrace(segments=trace.segments)
            seg_only.validate(self.jobs, capacity, tol=tol)

        # No intra-job parallelism: a job's segments must not overlap
        # across processors.
        per_job: Dict[int, list[tuple[float, float]]] = {}
        for trace in self.proc_traces:
            for seg in trace.segments:
                per_job.setdefault(seg.jid, []).append((seg.start, seg.end))
        for jid, intervals in per_job.items():
            intervals.sort()
            for (s0, e0), (s1, _e1) in zip(intervals, intervals[1:]):
                if s1 < e0 - tol:
                    raise SimulationError(
                        f"job {jid} ran on two processors at once "
                        f"([{s0},{e0}] overlaps [{s1},...])"
                    )

        # Completed jobs received their full workload (across processors).
        # Execution faults (job kills) can destroy progress a job already
        # legally received; that work was really executed, so the per-job
        # budget is workload + lost (mirroring ScheduleTrace.validate).
        work = self.work_by_job()
        by_id = {j.jid: j for j in self.jobs}
        for jid, status in self.combined.outcomes.items():
            job = by_id[jid]
            done = work.get(jid, 0.0)
            budget = job.workload + self.combined.lost_work.get(jid, 0.0)
            if status is JobStatus.COMPLETED:
                if abs(done - budget) > tol * max(1.0, budget):
                    raise SimulationError(
                        f"job {jid} completed with work {done} != "
                        f"workload-plus-lost {budget}"
                    )
            elif done > budget + tol * max(1.0, budget):
                raise SimulationError(
                    f"job {jid} over-served ({done} > {budget}) yet failed"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MultiSimulationResult({self.scheduler_name!r}, m={self.n_procs}, "
            f"value={self.value:.4g}, completed={self.n_completed}/{len(self.jobs)})"
        )


def multi_results_bit_identical(a: "MultiSimulationResult", b: "MultiSimulationResult") -> bool:
    """True iff two multiprocessor results are bit-identical: same
    scheduler, horizon, per-processor segments (``==`` on floats, no
    tolerance), outcomes, completion times, value points and lost work —
    the multiprocessor analogue of
    :func:`repro.sim.journal.results_bit_identical`."""
    return (
        a.scheduler_name == b.scheduler_name
        and a.horizon == b.horizon
        and a.n_procs == b.n_procs
        and all(
            ta.segments == tb.segments
            for ta, tb in zip(a.proc_traces, b.proc_traces)
        )
        and a.combined.outcomes == b.combined.outcomes
        and a.combined.completion_times == b.combined.completion_times
        and a.combined.value_points == b.combined.value_points
        and a.combined.lost_work == b.combined.lost_work
    )
