"""E7 — ablation: the value threshold β.

Theorem 3's proof optimises β = 1 + sqrt(k/f(k, δ)) for the *worst case*;
this sweep measures average-case sensitivity on the paper's workload.  The
expected shape: performance is flat-ish near the optimum and degrades for
large β (a huge threshold never grants the processor to urgent valuable
jobs, reverting to pure EDF behaviour under overload).
"""

from __future__ import annotations

import pytest

from conftest import expected_jobs
from repro.analysis.theory import optimal_beta
from repro.experiments import run_beta_sweep
from repro.experiments.runner import default_mc_runs


def test_beta_ablation(archive, benchmark):
    beta_star = optimal_beta(7.0, 35.0)
    betas = (1.05, round(beta_star, 3), 2.0, 4.0, 16.0, 64.0)
    sweep = run_beta_sweep(
        betas=betas,
        lam=8.0,
        n_runs=default_mc_runs(30),
        expected_jobs=min(500.0, expected_jobs()),
    )
    text = sweep.render() + f"\n(theory-optimal beta* = {beta_star:.4f})"
    archive("ablation_beta", text)

    means = [s.mean for s in sweep.percents["V-Dover"]]
    near_optimum = means[1]
    # The theory-optimal beta must be competitive with every other setting
    # (within noise) ...
    assert near_optimum >= max(means) - 2.0
    # ... and a wildly conservative threshold must not dominate it.
    assert means[-1] <= near_optimum + 2.0

    benchmark.pedantic(
        lambda: run_beta_sweep(betas=(2.0,), n_runs=3, expected_jobs=150.0, workers=1),
        rounds=1,
        iterations=1,
    )
