"""Tests for the experiment result store."""

import json

import pytest

from repro.errors import AnalysisError
from repro.experiments import Table1Config, run_beta_sweep, run_table1
from repro.experiments.runner import FailedReplication
from repro.experiments.store import (
    diff_table1,
    load_sweep,
    load_table1,
    save_sweep,
    save_table1,
)


@pytest.fixture(scope="module")
def small_table1():
    return run_table1(
        Table1Config(lambdas=(6.0,), n_runs=4, expected_jobs=80.0, workers=1)
    )


class TestTable1Store:
    def test_roundtrip(self, small_table1, tmp_path):
        path = tmp_path / "t1.json"
        save_table1(path, small_table1)
        loaded = load_table1(path)
        assert loaded.config == small_table1.config
        assert len(loaded.rows) == len(small_table1.rows)
        for a, b in zip(loaded.rows, small_table1.rows):
            assert a.lam == b.lam
            assert a.vdover_percent == b.vdover_percent
            assert a.dover_percent == b.dover_percent
            assert a.gain_percent == b.gain_percent
        assert loaded.render() == small_table1.render()

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"kind": "other", "schema": 1}')
        with pytest.raises(AnalysisError):
            load_table1(path)

    def test_diff_same_run_is_zero(self, small_table1):
        records = diff_table1(small_table1, small_table1)
        assert len(records) == 1
        assert records[0]["vdover_drift"] == 0.0
        assert records[0]["significant"] is False

    def test_diff_detects_drift(self, small_table1):
        other = run_table1(
            Table1Config(lambdas=(6.0,), n_runs=4, expected_jobs=80.0, seed=99, workers=1)
        )
        records = diff_table1(small_table1, other)
        assert len(records) == 1
        assert "vdover_drift" in records[0]


class TestSweepStore:
    def test_roundtrip(self, tmp_path):
        sweep = run_beta_sweep(betas=(2.0, 4.0), n_runs=3, expected_jobs=60.0, workers=1)
        path = tmp_path / "sweep.json"
        save_sweep(path, sweep)
        loaded = load_sweep(path)
        assert loaded.sweep_name == sweep.sweep_name
        assert loaded.swept_values == sweep.swept_values
        assert loaded.render() == sweep.render()

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"kind": "table1", "schema": 1}')
        with pytest.raises(AnalysisError):
            load_sweep(path)


FAILURE = FailedReplication(
    index=3,
    error_type="ReplicationTimeout",
    message="replication exceeded its 5s wall-clock budget",
    attempts=2,
    traceback="Traceback (most recent call last): ...",
)


class TestSchemaV2:
    """Schema v2 carries failure metadata; v1 files stay loadable."""

    def test_saved_files_declare_schema_2(self, small_table1, tmp_path):
        path = tmp_path / "t1.json"
        save_table1(path, small_table1)
        assert json.loads(path.read_text())["schema"] == 2

    def test_table1_failures_roundtrip(self, small_table1, tmp_path):
        small_table1.failures[6.0] = [FAILURE]
        try:
            path = tmp_path / "t1.json"
            save_table1(path, small_table1)
            loaded = load_table1(path)
            assert loaded.failures == {6.0: [FAILURE]}
            assert loaded.n_failed == 1
            assert "1 replication(s) failed" in loaded.render()
        finally:
            small_table1.failures.clear()  # module-scoped fixture

    def test_sweep_failures_roundtrip(self, tmp_path):
        sweep = run_beta_sweep(betas=(2.0,), n_runs=2, expected_jobs=60.0, workers=1)
        sweep.failures.append((2.0, FAILURE))
        path = tmp_path / "sweep.json"
        save_sweep(path, sweep)
        loaded = load_sweep(path)
        assert loaded.failures == [(2.0, FAILURE)]

    def test_v1_table1_still_loads(self, small_table1, tmp_path):
        """Satellite: stored baselines predate failure metadata and must
        keep loading unchanged."""
        path = tmp_path / "t1.json"
        save_table1(path, small_table1)
        doc = json.loads(path.read_text())
        doc["schema"] = 1
        del doc["failures"]  # a v1 writer never emitted the key
        path.write_text(json.dumps(doc))
        loaded = load_table1(path)
        assert loaded.failures == {}
        assert loaded.render() == small_table1.render()

    def test_v1_sweep_still_loads(self, tmp_path):
        sweep = run_beta_sweep(betas=(2.0,), n_runs=2, expected_jobs=60.0, workers=1)
        path = tmp_path / "sweep.json"
        save_sweep(path, sweep)
        doc = json.loads(path.read_text())
        doc["schema"] = 1
        del doc["failures"]
        path.write_text(json.dumps(doc))
        loaded = load_sweep(path)
        assert loaded.failures == []
        assert loaded.render() == sweep.render()

    def test_unknown_schema_rejected(self, small_table1, tmp_path):
        path = tmp_path / "t1.json"
        save_table1(path, small_table1)
        doc = json.loads(path.read_text())
        doc["schema"] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(AnalysisError, match="unsupported schema"):
            load_table1(path)
