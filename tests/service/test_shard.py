"""TenantShard tests: incremental drive parity, fault injection,
crash recovery via the op log, and the shed bookkeeping."""

from __future__ import annotations

import pytest

from repro.errors import MessageError, ServiceError, SimulatedCrash
from repro.service import (
    Advance,
    CapacitySpec,
    Close,
    InjectFault,
    Submit,
    TenantShard,
    TenantSpec,
    make_scheduler,
    replay_tenant,
)
from repro.sim.engine import simulate
from repro.sim.job import Job
from repro.sim.journal import results_bit_identical


def _spec(**kw):
    base = dict(
        tenant="t0",
        horizon=30.0,
        scheduler="vdover",
        capacity=CapacitySpec("constant", {"rate": 1.0}),
        queue_budget=64,
        snapshot_every=4,
        flush_every=2,
    )
    base.update(kw)
    return TenantSpec(**base)


def _jobs(n=8, start=1.0, gap=2.0):
    return [
        Job(
            jid=i + 1,
            release=start + gap * i,
            workload=1.0,
            deadline=start + gap * i + 4.0,
            value=float(i + 1),
        )
        for i in range(n)
    ]


class TestSpecs:
    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ServiceError, match="unknown scheduler"):
            make_scheduler("magic")

    def test_unknown_capacity_kind_rejected(self):
        with pytest.raises(ServiceError, match="capacity kind"):
            CapacitySpec("quantum")

    def test_crash_start_faults_refused(self):
        from repro.faults.execution import ExecutionFaultSpec

        with pytest.raises(ServiceError, match="crash plans"):
            _spec(
                start_faults=(
                    ExecutionFaultSpec("crash", options={"at_event": 3}),
                )
            )

    def test_capacity_specs_build(self):
        assert CapacitySpec("constant", {"rate": 2.0}).build().value(1.0) == 2.0
        assert (
            CapacitySpec(
                "piecewise", {"breakpoints": [0.0, 5.0], "rates": [1.0, 3.0]}
            )
            .build()
            .value(6.0)
            == 3.0
        )
        markov = CapacitySpec(
            "markov2", {"low": 1.0, "high": 8.0, "mean_sojourn": 2.0}, seed=3
        ).build()
        assert markov.lower == 1.0


class TestIncrementalParity:
    """A shard fed submissions one by one must equal the batch run."""

    def test_matches_batch_simulate(self):
        spec = _spec()
        jobs = _jobs()
        shard = TenantShard(spec)
        for job in jobs:
            shard.handle(Submit("t0", job))
        report = shard.close()
        reference = simulate(
            jobs,
            spec.build_capacity(),
            spec.build_scheduler(),
            horizon=spec.horizon,
            event_queue="heap",
        )
        assert results_bit_identical(report.result, reference)
        assert report.lost_jids == ()

    def test_interleaved_advances_change_nothing(self):
        spec = _spec()
        jobs = _jobs()
        shard = TenantShard(spec)
        for i, job in enumerate(jobs):
            shard.handle(Submit("t0", job))
            if i % 2:
                shard.handle(Advance("t0", job.release))
        report = shard.close()
        reference = simulate(
            jobs,
            spec.build_capacity(),
            spec.build_scheduler(),
            horizon=spec.horizon,
            event_queue="heap",
        )
        assert results_bit_identical(report.result, reference)

    def test_closed_shard_refuses_messages(self):
        shard = TenantShard(_spec())
        shard.handle(Close("t0"))
        with pytest.raises(ServiceError, match="closed"):
            shard.handle(Advance("t0", 5.0))


class TestInjection:
    def test_kill_and_evict_recorded_for_replay(self):
        shard = TenantShard(_spec())
        for job in _jobs(4):
            shard.handle(Submit("t0", job))
        shard.handle(InjectFault("t0", "kill", 9.0, retain=0.5))
        shard.handle(InjectFault("t0", "evict", 12.0))
        report = shard.close()
        assert report.injected == (
            (9.0, ("kill", -1, 0.5)),
            (12.0, ("evict", -1)),
        )
        check = replay_tenant(report)
        assert check.ok, check.failures

    def test_fault_behind_frontier_rejected(self):
        shard = TenantShard(_spec())
        shard.handle(
            Submit("t0", Job(jid=1, release=5.0, workload=1.0, deadline=9.0, value=1.0))
        )
        shard.handle(Advance("t0", 10.0))  # dispatches through t=5
        with pytest.raises(MessageError, match="behind the dispatch frontier"):
            shard.handle(InjectFault("t0", "kill", 1.0))

    def test_fault_beyond_horizon_rejected(self):
        shard = TenantShard(_spec())
        with pytest.raises(MessageError, match="outside"):
            shard.handle(InjectFault("t0", "evict", 99.0))

    def test_crash_raises_with_snapshot(self):
        shard = TenantShard(_spec())
        for job in _jobs(6):
            shard.handle(Submit("t0", job))
        with pytest.raises(SimulatedCrash) as exc_info:
            shard.handle(InjectFault("t0", "crash", 11.0))
        crash = exc_info.value
        assert crash.fault_index == -1  # the service's sentinel
        assert crash.at_event is None
        assert crash.snapshot is not None
        assert shard.report().forced_crashes == 1


class TestRecovery:
    def test_recover_then_close_is_bit_identical(self):
        spec = _spec()
        jobs = _jobs(10)
        shard = TenantShard(spec)
        for job in jobs[:7]:
            shard.handle(Submit("t0", job))
        with pytest.raises(SimulatedCrash) as exc_info:
            shard.handle(InjectFault("t0", "crash", 12.0))
        shard.recover(exc_info.value)
        for job in jobs[7:]:
            shard.handle(Submit("t0", job))
        report = shard.close()
        assert report.recoveries == 1
        reference = simulate(
            jobs,
            spec.build_capacity(),
            spec.build_scheduler(),
            horizon=spec.horizon,
            event_queue="heap",
        )
        assert results_bit_identical(report.result, reference)
        assert replay_tenant(report).ok

    def test_double_crash_recovers_twice(self):
        spec = _spec()
        jobs = _jobs(10)
        shard = TenantShard(spec)
        for job in jobs[:5]:
            shard.handle(Submit("t0", job))
        with pytest.raises(SimulatedCrash) as first:
            shard.handle(InjectFault("t0", "crash", 9.0))
        shard.recover(first.value)
        for job in jobs[5:8]:
            shard.handle(Submit("t0", job))
        with pytest.raises(SimulatedCrash) as second:
            shard.handle(InjectFault("t0", "crash", 16.0))
        shard.recover(second.value)
        for job in jobs[8:]:
            shard.handle(Submit("t0", job))
        report = shard.close()
        assert report.recoveries == 2
        assert replay_tenant(report).ok


class TestShedBookkeeping:
    def test_budget_shed_balances_and_replays(self):
        spec = _spec(queue_budget=2)
        shard = TenantShard(spec)
        for i in range(4):  # one contention group of 4, budget 2
            shard.handle(
                Submit(
                    "t0",
                    Job(
                        jid=i + 1,
                        release=2.0,
                        workload=2.0,
                        deadline=12.0,
                        value=float(i + 1),
                    ),
                )
            )
        report = shard.close()
        assert report.submitted == 4
        assert len(report.accepted) == 2
        assert [r.reason for r in report.shed] == ["queue_budget"] * 2
        check = replay_tenant(report)
        assert check.ok, check.failures

    def test_journal_and_shed_log_written(self, tmp_path):
        spec = _spec()
        shard = TenantShard(_spec(queue_budget=1), journal_dir=tmp_path)
        for i in range(3):
            shard.handle(
                Submit(
                    "t0",
                    Job(
                        jid=i + 1,
                        release=1.0,
                        workload=1.0,
                        deadline=8.0,
                        value=1.0 + i,
                    ),
                )
            )
        report = shard.close()
        assert (tmp_path / "t0.journal.jsonl").exists()
        shed_lines = (
            (tmp_path / "t0.shed.jsonl").read_text().strip().splitlines()
        )
        assert len(shed_lines) == len(report.shed) == 2
