"""Simple greedy baselines: value-density, absolute-value, FCFS.

These are not from the paper's evaluation (which compares V-Dover against
Dover) but are the standard strawmen in the overload-scheduling literature
and are used by the extended benchmarks and examples to situate the Dover
family: a value-blind policy (FCFS/EDF) collapses under overload, a
deadline-blind policy (pure greedy) wastes work on jobs that cannot finish.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.sim.batchproto import BatchScheduler, BatchView
from repro.sim.job import Job
from repro.sim.queues import JobQueue
from repro.sim.scheduler import Scheduler

__all__ = [
    "GreedyDensityScheduler",
    "GreedyValueScheduler",
    "FCFSScheduler",
]


class _PriorityPreemptiveScheduler(BatchScheduler, Scheduler):
    """Run the ready job with the best static priority, preemptively.

    Subclasses provide the priority key (smaller = better).  A newly
    released job preempts if and only if it strictly beats the running one.
    """

    def _key(self, job: Job) -> tuple:
        raise NotImplementedError

    def reset(self) -> None:
        self._ready: JobQueue[Job] = JobQueue(self._key, name=f"{self.name}-ready")

    def _on_release_from(
        self, cur: Optional[Job], job: Job
    ) -> Tuple[Optional[Job], Optional[tuple]]:
        if cur is None:
            return job, (self.name, "admit.idle", job.jid, None)
        if self._key(job) < self._key(cur):
            self._ready.insert(cur)
            return job, (
                self.name,
                "preempt.priority",
                job.jid,
                {"preempted": cur.jid},
            )
        self._ready.insert(job)
        return cur, (self.name, "enqueue.ready", job.jid, None)

    def on_release(self, job: Job) -> Optional[Job]:
        cur, payload = self._on_release_from(self.ctx.current_job(), job)
        self._emit_decision(payload)
        return cur

    def on_completions(self, view: BatchView) -> None:
        remove = self._ready.remove
        for job in view.jobs:
            remove(job)

    def on_job_end(self, job: Job, completed: bool) -> Optional[Job]:
        current = self.ctx.current_job()
        if current is not None:
            self._ready.remove(job)
            return current
        self._ready.remove(job)
        obs = self.ctx.obs
        if self._ready:
            chosen = self._ready.dequeue()
            if obs is not None:
                obs.decision(
                    self.name, "resume.priority", self.ctx.now(), chosen.jid
                )
            return chosen
        if obs is not None:
            obs.decision(self.name, "idle", self.ctx.now())
        return None

    def on_eviction(self, job: Job) -> Optional[Job]:
        self._ready.insert(job)
        chosen = self._ready.dequeue()
        obs = self.ctx.obs
        if obs is not None:
            obs.decision(
                self.name, "requeue.evicted", self.ctx.now(), chosen.jid
            )
        return chosen

    # -- snapshot / restore --------------------------------------------
    def _policy_state(self) -> dict:
        return {"ready": self._ready.live_jids()}

    def _restore_policy_state(self, state: dict, jobs_by_id) -> None:
        for jid in state["ready"]:
            self._ready.insert(jobs_by_id[jid])


class GreedyDensityScheduler(_PriorityPreemptiveScheduler):
    """Highest value-density first (``v_i / p_i``), preemptive.

    Skips jobs that provably cannot finish even at the *optimistic* bound
    ``c̄`` (running them is pure waste)."""

    name = "GreedyDensity"

    def _key(self, job: Job) -> tuple:
        return (-job.density, job.jid)

    def _hopeless(self, job: Job) -> bool:
        _lo, hi = self.ctx.bounds
        return self.ctx.remaining(job) / hi > job.deadline - self.ctx.now()

    def on_job_end(self, job: Job, completed: bool) -> Optional[Job]:
        current = self.ctx.current_job()
        if current is not None:
            self._ready.remove(job)
            return current
        self._ready.remove(job)
        obs = self.ctx.obs
        while self._ready:
            candidate = self._ready.dequeue()
            if not self._hopeless(candidate):
                if obs is not None:
                    obs.decision(
                        self.name, "resume.priority", self.ctx.now(), candidate.jid
                    )
                return candidate
            if obs is not None:
                obs.decision(
                    self.name, "skip.hopeless", self.ctx.now(), candidate.jid
                )
        if obs is not None:
            obs.decision(self.name, "idle", self.ctx.now())
        return None


class GreedyValueScheduler(_PriorityPreemptiveScheduler):
    """Highest absolute value first, preemptive."""

    name = "GreedyValue"

    def _key(self, job: Job) -> tuple:
        return (-job.value, job.jid)


class FCFSScheduler(BatchScheduler, Scheduler):
    """First come, first served; run-to-completion (no preemption).

    The running job is never preempted; waiting jobs queue in release
    order.  The classic cycle-stealing strawman (Condor-style systems
    without deadline awareness behave like this).
    """

    name = "FCFS"

    def reset(self) -> None:
        self._fifo: JobQueue[Job] = JobQueue(
            lambda job: (job.release, job.jid), name="fcfs-fifo"
        )

    def _on_release_from(
        self, cur: Optional[Job], job: Job
    ) -> Tuple[Optional[Job], Optional[tuple]]:
        if cur is None:
            return job, (self.name, "admit.idle", job.jid, None)
        self._fifo.insert(job)
        return cur, (self.name, "enqueue.fifo", job.jid, None)

    def on_release(self, job: Job) -> Optional[Job]:
        cur, payload = self._on_release_from(self.ctx.current_job(), job)
        self._emit_decision(payload)
        return cur

    def on_completions(self, view: BatchView) -> None:
        remove = self._fifo.remove
        for job in view.jobs:
            remove(job)

    def on_job_end(self, job: Job, completed: bool) -> Optional[Job]:
        current = self.ctx.current_job()
        if current is not None:
            self._fifo.remove(job)
            return current
        self._fifo.remove(job)
        obs = self.ctx.obs
        if self._fifo:
            chosen = self._fifo.dequeue()
            if obs is not None:
                obs.decision(self.name, "resume.fifo", self.ctx.now(), chosen.jid)
            return chosen
        if obs is not None:
            obs.decision(self.name, "idle", self.ctx.now())
        return None

    def on_eviction(self, job: Job) -> Optional[Job]:
        # The evicted job re-queues at its release-order slot (it keeps any
        # retained progress; FCFS has no other preference to express).
        self._fifo.insert(job)
        return self._fifo.dequeue()

    # -- snapshot / restore --------------------------------------------
    def _policy_state(self) -> dict:
        return {"fifo": self._fifo.live_jids()}

    def _restore_policy_state(self, state: dict, jobs_by_id) -> None:
        for jid in state["fifo"]:
            self._fifo.insert(jobs_by_id[jid])
