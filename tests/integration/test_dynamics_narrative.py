"""The paper's Section III-D narrative, verified as one integration test.

The paper describes V-Dover's lifecycle prose-first: "initially the system
is underloaded and the jobs are finished in an EDF manner; from a certain
moment, the job arrival gets heavier and accumulates to an overload; after
some period of time, the overload is detected by the scheduler and
resolved by selecting the jobs according to their value; later ... some of
the jobs not selected previously may get scheduled ... provided they have
not passed their deadlines yet."

This test constructs exactly that storyboard and checks each phase through
the scheduler's instrumentation and the trace.
"""

import pytest

from repro.capacity import PiecewiseConstantCapacity
from repro.core import VDoverScheduler
from repro.sim import Job, simulate


def J(jid, r, p, d, v=1.0):
    return Job(jid, r, p, d, v)


class TestLifecycleNarrative:
    def test_four_phase_story(self):
        # Capacity: floor 1 until t=30, then a spike to 5 (the recovery).
        capacity = PiecewiseConstantCapacity(
            [0.0, 30.0], [1.0, 5.0], lower=1.0, upper=5.0
        )

        jobs = [
            # Phase 1 — underloaded prologue: loose jobs, plain EDF.
            J(0, 0.0, 2.0, 8.0, v=2.0),
            J(1, 1.0, 2.0, 12.0, v=2.0),
            # Phase 2 — the overload: a burst of tight jobs at t=10.
            J(2, 10.0, 8.0, 18.0, v=3.0),    # admitted, claims the slack
            J(3, 10.5, 6.0, 16.5, v=30.0),   # urgent + valuable: wins D
            J(4, 11.0, 7.0, 18.0, v=1.0),    # urgent + cheap: demoted
            # Phase 4 — salvage material: demoted early, deadline after the
            # capacity spike so the supplement queue can rescue it.
            J(5, 12.0, 20.0, 35.0, v=2.0),   # huge: hopeless at floor rate
        ]
        scheduler = VDoverScheduler(k=15.0, beta=2.0)
        result = simulate(jobs, capacity, scheduler, validate=True)
        stats = scheduler.stats

        # Phase 1: the prologue completes under plain EDF — no interrupts.
        assert result.trace.completion_times[0] == pytest.approx(2.0)
        assert {0, 1} <= set(result.completed_ids)

        # Phase 2/3: overload is detected through zero-laxity interrupts
        # and resolved by value: the expensive urgent job preempts, the
        # cheap one is demoted.
        assert stats["zero_laxity_interrupts"] >= 2
        assert stats["zero_laxity_wins"] >= 1
        assert stats["supplement_labels"] >= 1
        assert 3 in result.completed_ids       # the valuable one won
        assert 4 in result.failed_ids          # the cheap one was sacrificed

        # Phase 4: the capacity spike arrives before job 5's deadline and
        # the supplement queue converts it — value the Dover baseline
        # (which abandons at demotion) cannot collect.
        assert 5 in result.completed_ids
        from repro.core import DoverScheduler

        dover = simulate(
            jobs, capacity, DoverScheduler(k=15.0, c_hat=1.0, beta=2.0),
            validate=True,
        )
        assert 5 in dover.failed_ids
        assert result.value > dover.value

    def test_regular_intervals_cover_the_story(self):
        """Definition-6 instrumentation slices the same run into regular
        intervals whose value accounting matches the trace totals."""
        capacity = PiecewiseConstantCapacity(
            [0.0, 30.0], [1.0, 5.0], lower=1.0, upper=5.0
        )
        jobs = [
            J(0, 0.0, 2.0, 8.0, v=2.0),
            J(1, 1.0, 2.0, 12.0, v=2.0),
            J(2, 10.0, 8.0, 18.0, v=3.0),
            J(3, 10.5, 6.0, 16.5, v=30.0),
            J(4, 11.0, 7.0, 18.0, v=1.0),
            J(5, 12.0, 20.0, 35.0, v=2.0),
        ]
        scheduler = VDoverScheduler(k=15.0, beta=2.0)
        result = simulate(jobs, capacity, scheduler, validate=True)
        intervals = scheduler.regular_intervals
        assert intervals, "the run must produce regular intervals"
        # Interval value accounting never exceeds the run's total value.
        assert sum(iv.regval for iv in intervals) <= result.value + 1e-9
        # And Lemma 1 holds on every interval of the story.
        for iv in intervals:
            assert capacity.integrate(iv.start, iv.end) <= iv.lemma1_bound(
                scheduler.beta
            ) + 1e-6
