"""E9 — end-to-end cloud substrate: primary-driven capacity + spot market.

The paper's abstract ``c(t)`` is replaced by residual capacity from a
simulated primary VM population (offered primary load > capacity, so the
residual frequently sits at the guaranteed floor — the regime the paper
targets), and the secondary jobs by spot-market requests whose bids define
the value densities.

Reproduction finding (see EXPERIMENTS.md): the *worst-case-optimal*
threshold β* = 1 + sqrt(k/f(k, δ)) of Theorem 3 is close to 1 and is not
average-case optimal on this substrate — it grants too many zero-laxity
preemptions.  V-Dover with the classical β = 1 + √k matches or beats every
Dover anchor; both V-Dover variants are reported so the sensitivity stays
visible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import render_table
from repro.analysis.theory import dover_beta
from repro.cloud import (
    PrimaryOccupancyModel,
    SpotMarket,
    SpotPriceProcess,
    requests_to_jobs,
)
from repro.core import DoverScheduler, EDFScheduler, VDoverScheduler
from repro.experiments.runner import default_mc_runs
from repro.sim import simulate


def test_cloud_substrate(archive, benchmark):
    runs = default_mc_runs(15)
    # Offered primary load (24 VM-equivalents) exceeds the primary cap
    # (15), so the residual spends most of its time at the floor with
    # occasional spikes toward the full server — a cloud-shaped analogue
    # of the paper's two-state process.
    primary = PrimaryOccupancyModel(
        total_capacity=16.0,
        floor=1.0,
        arrival_rate=6.0,
        mean_holding=4.0,
        vm_size=1.0,
    )
    price = SpotPriceProcess(floor=0.5, ceiling=3.5)
    k = price.importance_ratio_bound
    market = SpotMarket(price, request_rate=8.0, floor_capacity=primary.floor)
    horizon = 120.0

    policies = {
        "V-Dover(beta=1+sqrt(k))": lambda: VDoverScheduler(k=k, beta=dover_beta(k)),
        "V-Dover(beta=beta*)": lambda: VDoverScheduler(k=k),
        "Dover(c=floor)": lambda: DoverScheduler(k=k, c_hat=primary.floor),
        "Dover(c=total)": lambda: DoverScheduler(k=k, c_hat=primary.total_capacity),
        "EDF": lambda: EDFScheduler(),
    }
    totals = {name: 0.0 for name in policies}
    offered = 0.0
    for seed in range(runs):
        root = np.random.SeedSequence(seed)
        req_rng, cap_rng = [np.random.default_rng(s) for s in root.spawn(2)]
        requests, _, _ = market.generate_requests(horizon, req_rng)
        jobs = requests_to_jobs(requests)
        residual = primary.sample_residual(horizon * 2.0, cap_rng)
        offered += sum(j.value for j in jobs)
        for name, make in policies.items():
            totals[name] += simulate(jobs, residual, make()).value

    rows = [
        [name, value / runs, 100.0 * value / offered]
        for name, value in sorted(totals.items(), key=lambda kv: -kv[1])
    ]
    archive(
        "cloud_substrate",
        render_table(
            ["policy", "mean revenue", "% of offered"],
            rows,
            title=(
                f"Cloud substrate — spot-market revenue on primary-residual "
                f"capacity (n={runs} runs, k={k:g})"
            ),
        ),
    )

    best_dover = max(totals["Dover(c=floor)"], totals["Dover(c=total)"])
    best_vdover = max(
        totals["V-Dover(beta=1+sqrt(k))"], totals["V-Dover(beta=beta*)"]
    )
    assert best_vdover >= best_dover - 1e-9
    # The conservative-estimate family must dominate the optimistic anchor
    # and EDF in the floor-bound regime.
    assert best_vdover > totals["Dover(c=total)"]
    assert best_vdover > totals["EDF"]

    requests, _, _ = market.generate_requests(horizon, np.random.default_rng(0))
    jobs = requests_to_jobs(requests)
    residual = primary.sample_residual(horizon * 2.0, np.random.default_rng(1))
    benchmark(
        lambda: simulate(jobs, residual, VDoverScheduler(k=k, beta=dover_beta(k))).value
    )
