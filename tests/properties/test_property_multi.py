"""Property tests: multiprocessor schedules are always legal.

The multi validator re-derives per-processor legality, cross-processor
non-parallelism and workload accounting from first principles; hypothesis
drives random instances, processor counts and capacity paths through both
global policies and the partitioned adapter.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capacity import ConstantCapacity, PiecewiseConstantCapacity
from repro.cloud import LeastWorkDispatcher, RoundRobinDispatcher, run_cluster
from repro.core import VDoverScheduler
from repro.multi import (
    GlobalDensityScheduler,
    GlobalEDFScheduler,
    PartitionedScheduler,
    simulate_multi,
)
from repro.sim import Job


@st.composite
def instances(draw):
    n = draw(st.integers(min_value=1, max_value=14))
    jobs = []
    for i in range(n):
        release = draw(st.floats(min_value=0.0, max_value=20.0))
        workload = draw(st.floats(min_value=0.1, max_value=6.0))
        slack = draw(st.floats(min_value=1.0, max_value=4.0))
        density = draw(st.floats(min_value=1.0, max_value=7.0))
        jobs.append(
            Job(i, release, workload, release + slack * workload, density * workload)
        )
    return jobs


@st.composite
def processor_sets(draw):
    m = draw(st.integers(min_value=1, max_value=4))
    caps = []
    for i in range(m):
        if draw(st.booleans()):
            caps.append(ConstantCapacity(draw(st.floats(min_value=0.5, max_value=4.0))))
        else:
            b = draw(st.floats(min_value=1.0, max_value=10.0))
            caps.append(
                PiecewiseConstantCapacity(
                    [0.0, b], [draw(st.floats(0.5, 4.0)), draw(st.floats(0.5, 4.0))]
                )
            )
    return caps


POLICIES = [
    lambda: GlobalEDFScheduler(),
    lambda: GlobalDensityScheduler(),
    lambda: PartitionedScheduler(
        RoundRobinDispatcher(), lambda: VDoverScheduler(k=7.0)
    ),
]


@settings(max_examples=40, deadline=None)
@given(
    jobs=instances(),
    caps=processor_sets(),
    which=st.integers(0, len(POLICIES) - 1),
)
def test_multi_schedules_are_legal(jobs, caps, which):
    result = simulate_multi(jobs, caps, POLICIES[which](), validate=True)
    assert len(result.completed_ids) + len(result.failed_ids) == len(jobs)
    assert set(result.completed_ids).isdisjoint(result.failed_ids)
    assert 0.0 <= result.normalized_value <= 1.0 + 1e-12
    total_capacity = sum(c.integrate(0.0, result.horizon) for c in caps)
    assert result.executed_work <= total_capacity + 1e-6


@settings(max_examples=25, deadline=None)
@given(jobs=instances(), m=st.integers(1, 3))
def test_partitioned_multi_equals_run_cluster(jobs, m):
    """Cross-engine differential property: the multi engine running the
    partitioned adapter must agree with m independent single-processor
    engines, job for job."""
    caps = [ConstantCapacity(1.0 + 0.5 * i) for i in range(m)]
    multi = simulate_multi(
        jobs,
        caps,
        PartitionedScheduler(LeastWorkDispatcher(), lambda: VDoverScheduler(k=7.0)),
        validate=True,
    )
    cluster = run_cluster(
        jobs,
        [ConstantCapacity(1.0 + 0.5 * i) for i in range(m)],
        lambda: VDoverScheduler(k=7.0),
        LeastWorkDispatcher(),
    )
    assert multi.value == pytest.approx(cluster.value)
    assert multi.completed_ids == sorted(
        jid for r in cluster.per_server for jid in r.completed_ids
    )


@settings(max_examples=25, deadline=None)
@given(jobs=instances(), m=st.integers(1, 4))
def test_global_edf_never_worse_than_single_processor_edf(jobs, m):
    """Adding identical processors cannot lose completions for EDF-type
    policies on the same stream (weak sanity; not a theorem for value,
    asserted on completions of the m=1 baseline)."""
    from repro.core import EDFScheduler
    from repro.sim import simulate

    single = simulate(jobs, ConstantCapacity(1.0), EDFScheduler())
    multi = simulate_multi(
        jobs, [ConstantCapacity(1.0)] * m, GlobalEDFScheduler(), validate=True
    )
    if m >= 1:
        # with m == 1 global EDF degenerates to EDF exactly
        if m == 1:
            assert multi.value == pytest.approx(single.value)
