"""Request-scoped trace correlation (`repro obs trace`): store + trace
reconstruction, including across a simulated kill -9 cold start."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs.correlate import correlate_request, render_request_trace
from repro.service import CapacitySpec, InjectFault, Submit, TenantShard, TenantSpec
from repro.sim.job import Job
from repro.store.tenant import TenantStore


def _spec(tenant="t0", **kw):
    base = dict(
        tenant=tenant,
        horizon=40.0,
        scheduler="edf",
        capacity=CapacitySpec("constant", {"rate": 1.0}),
        queue_budget=4,
        snapshot_every=4,
        flush_every=2,
        fsync=False,
    )
    base.update(kw)
    return TenantSpec(**base)


def _job(jid, release, workload=1.0, value=1.0):
    return Job(
        jid=jid,
        release=release,
        workload=workload,
        deadline=release + 6.0,
        value=value,
    )


def _populate(store_dir, *, telemetry=False):
    """Drive a shard with rid-tagged traffic, overflowing the queue so at
    least one submit is shed; flush state to disk and return the shard."""
    shard = TenantShard(
        _spec(), store=TenantStore(store_dir / "t0", fsync=False),
        telemetry=telemetry,
    )
    for i in range(8):
        shard.handle(Submit("t0", _job(i, release=1.0 + 0.1 * i), rid=f"r{i}"))
    shard.handle(InjectFault("t0", "kill", time=2.0, rid="f0"))
    shard.persist_now()
    return shard


class TestStoreCorrelation:
    def test_requires_a_source(self):
        with pytest.raises(ObservabilityError):
            correlate_request("r0")

    def test_unknown_rid_not_found(self, tmp_path):
        shard = _populate(tmp_path)
        shard.close()
        result = correlate_request("nope", store_dir=tmp_path)
        assert result["found"] is False
        assert "not found" in render_request_trace(result)

    def test_admitted_request_resolves_to_jid_and_journal(self, tmp_path):
        shard = _populate(tmp_path)
        shard.close()  # runs the kernel to the horizon -> WAL has outcomes
        result = correlate_request("r0", store_dir=tmp_path)
        assert result["found"] is True
        assert result["tenant"] == "t0"
        assert result["jid"] == 0
        assert result["outcome"] == "accepted"
        stage_kinds = {s["stage"] for s in result["stages"]}
        assert "admission" in stage_kinds
        assert "journal" in stage_kinds  # dispatch records via the WAL
        text = render_request_trace(result)
        assert "request 'r0'" in text and "[journal]" in text

    def test_shed_request_reports_reason(self, tmp_path):
        shard = _populate(tmp_path)
        shard.close()
        # queue_budget=4 -> the later submits were shed
        result = correlate_request("r7", store_dir=tmp_path)
        assert result["found"] is True
        assert result["outcome"] == "shed"
        sheds = [s for s in result["stages"] if s["stage"] == "admission"]
        assert sheds and sheds[0]["op"] == "shed"

    def test_fault_request_found(self, tmp_path):
        shard = _populate(tmp_path)
        shard.close()
        result = correlate_request("f0", store_dir=tmp_path)
        assert result["found"] is True
        assert result["outcome"] == "injected"

    def test_survives_cold_start(self, tmp_path):
        # Abandon the live shard without closing (the in-process stand-in
        # for kill -9), cold-start a new one, keep working, and correlate
        # from disk: the rid must still resolve through the restart.
        _populate(tmp_path)  # not closed: snapshot + op log are on disk
        revived = TenantShard(
            _spec(), store=TenantStore(tmp_path / "t0", fsync=False),
            resume=True,
        )
        revived.handle(Submit("t0", _job(20, release=9.0), rid="late"))
        revived.persist_now()
        revived.close()

        early = correlate_request("r1", store_dir=tmp_path)
        assert early["found"] is True and early["jid"] == 1
        assert early["recoveries"] == 1
        late = correlate_request("late", store_dir=tmp_path)
        assert late["found"] is True and late["jid"] == 20
        assert "survived 1 recovery" in render_request_trace(early)

    def test_tenant_filter(self, tmp_path):
        shard = _populate(tmp_path)
        shard.close()
        assert correlate_request("r0", store_dir=tmp_path, tenant="ghost")[
            "found"
        ] is False
        assert correlate_request("r0", store_dir=tmp_path, tenant="t0")[
            "found"
        ] is True


class TestTraceCorrelation:
    def test_lifecycle_events_join_the_path(self, tmp_path):
        # A lifecycle trace (service.request events carry the rid) can be
        # the sole source, or enrich the store view.
        trace = {
            "events": [
                {
                    "kind": "service.request",
                    "t": 1.0,
                    "data": {"rid": "r0", "tenant": "t0", "outcome": "accepted"},
                },
                {"kind": "job.release", "t": 1.0, "data": {"jid": 0}},
                {"kind": "other", "t": 2.0, "data": {"rid": "zzz"}},
            ]
        }
        result = correlate_request("r0", trace=trace)
        assert result["found"] is True
        assert result["outcome"] == "accepted"
        assert all(s["stage"] == "trace" for s in result["stages"])

        shard = _populate(tmp_path)
        shard.close()
        both = correlate_request("r0", store_dir=tmp_path, trace=trace)
        kinds = {s["stage"] for s in both["stages"]}
        assert {"trace", "admission", "journal"} <= kinds
        # jid resolved from the store pulls job.* replay events in too
        assert any(
            s.get("kind") == "job.release" and s["stage"] == "trace"
            for s in both["stages"]
        )
