"""Unit tests for SimulationResult metrics."""

import pytest

from repro.capacity import ConstantCapacity
from repro.core import EDFScheduler
from repro.sim import Job, simulate
from repro.sim.job import JobStatus


def run(jobs, rate=1.0, **kw):
    return simulate(jobs, ConstantCapacity(rate), EDFScheduler(), **kw)


class TestValueMetrics:
    def test_all_complete(self):
        jobs = [Job(0, 0.0, 1.0, 5.0, 2.0), Job(1, 1.0, 1.0, 6.0, 3.0)]
        r = run(jobs)
        assert r.value == 5.0
        assert r.generated_value == 5.0
        assert r.normalized_value == 1.0
        assert r.completion_ratio == 1.0

    def test_partial_completion(self):
        jobs = [Job(0, 0.0, 2.0, 2.0, 4.0), Job(1, 0.0, 2.0, 2.0, 1.0)]
        r = run(jobs)
        assert r.value == 4.0  # only the earlier-id job (EDF tie-break) fits
        assert r.normalized_value == pytest.approx(0.8)
        assert r.n_completed == 1
        assert r.n_failed == 1

    def test_empty_instance(self):
        r = run([])
        assert r.value == 0.0
        assert r.normalized_value == 0.0
        assert r.completion_ratio == 0.0

    def test_value_falls_back_to_outcomes(self):
        # Regression: a trace whose cumulative value series is missing
        # (hand-assembled / partially restored) must not report 0.0 when
        # jobs demonstrably completed — the outcomes are authoritative.
        jobs = [Job(0, 0.0, 1.0, 5.0, 2.0), Job(1, 1.0, 1.0, 6.0, 3.0)]
        r = run(jobs)
        assert r.value == 5.0
        r.trace.value_points.clear()
        assert r.value == 5.0  # recovered from outcomes, not 0.0
        assert r.normalized_value == 1.0
        # ...and with no completions the fallback still reports zero.
        r.trace.outcomes = {jid: JobStatus.FAILED for jid in r.trace.outcomes}
        assert r.value == 0.0


class TestResourceMetrics:
    def test_utilization(self):
        jobs = [Job(0, 0.0, 2.0, 10.0, 1.0)]
        r = run(jobs, **{"horizon": 10.0})
        assert r.busy_time == pytest.approx(2.0)
        assert r.utilization == pytest.approx(0.2)

    def test_wasted_work(self):
        # Job 1 gets 1 unit of work before failing at its deadline.
        jobs = [Job(0, 0.0, 3.0, 3.0, 5.0), Job(1, 3.0, 2.0, 4.0, 1.0)]
        r = run(jobs)
        assert r.wasted_work == pytest.approx(1.0)
        assert r.executed_work == pytest.approx(4.0)

    def test_summary_keys(self):
        r = run([Job(0, 0.0, 1.0, 5.0, 2.0)])
        summary = r.summary()
        for key in (
            "value",
            "generated_value",
            "normalized_value",
            "n_jobs",
            "n_completed",
            "n_failed",
            "completion_ratio",
            "utilization",
            "wasted_work",
        ):
            assert key in summary

    def test_value_series_shape(self):
        jobs = [Job(0, 0.0, 1.0, 5.0, 2.0), Job(1, 1.0, 1.0, 6.0, 3.0)]
        r = run(jobs)
        series = r.value_series()
        assert series[0] == (0.0, 0.0)
        assert series[-1][1] == 5.0
        values = [v for _, v in series]
        assert values == sorted(values)  # cumulative -> non-decreasing
