"""Request-scoped trace correlation: ``repro obs trace <request_id>``.

Every wire message may carry a ``request_id`` (client-chosen, or minted
at the ingress).  The id is threaded through the whole causal path —
wire → admission decision → shard op log → kernel dispatch → journal
record — but **never** into the replay event domain: the op log and the
snapshot dedup map are the durable witnesses, and the kernel WAL links
in through the decided jid.  That is what makes correlation survive a
``kill -9``: this module reconstructs the path from the tenant store
alone (no live process required), optionally enriched by a lifecycle
trace export.

The reconstruction reads, per tenant directory:

* the **snapshot payload** — the dedup map (rid → outcome) and the
  rid → jid index, which survive op-log compaction;
* the **op log** — surviving ``admit``/``shed``/``push``/``crash_mark``
  records carrying the rid (the admission stage);
* the **kernel WAL** (``wal.jsonl``) — every dispatched
  release/completion/deadline record for the decided jid (the dispatch
  and journal stages), incarnation-spanning because the WAL is resumed,
  not rewritten, across cold starts;
* the **shed sidecar** — the human-readable shed record, when present.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import ObservabilityError

__all__ = ["correlate_request", "render_request_trace"]


def _event_kind_name(kind: int) -> str:
    from repro.sim.events import EventKind

    try:
        return EventKind(kind).name.lower()
    except ValueError:  # pragma: no cover - future kinds
        return f"kind{kind}"


def _tenant_dirs(store_dir: Path, tenant: Optional[str]) -> List[Path]:
    from repro.store.tenant import SPEC_FILE

    if tenant is not None:
        sub = store_dir / tenant
        return [sub] if (sub / SPEC_FILE).exists() else []
    if not store_dir.is_dir():
        return []
    return sorted(
        sub
        for sub in store_dir.iterdir()
        if sub.is_dir() and (sub / SPEC_FILE).exists()
    )


def _scan_tenant_store(
    tenant_dir: Path, rid: str
) -> Optional[Dict[str, Any]]:
    """One tenant's view of a request id, from disk alone."""
    from repro.store.tenant import TenantStore

    store = TenantStore(tenant_dir, fsync=False)
    try:
        stages: List[Dict[str, Any]] = []
        outcome: Optional[str] = None
        jid: Optional[int] = None

        loaded = store.load_snapshot()
        if loaded is not None:
            payload, _anchor = loaded
            if isinstance(payload, dict):
                dedup = payload.get("dedup") or {}
                if rid in dedup:
                    outcome = str(dedup[rid])
                rid_jids = payload.get("rid_jids") or {}
                if rid in rid_jids:
                    jid = int(rid_jids[rid])

        for seq, doc in store.ops():
            if doc.get("rid") != rid:
                continue
            op = str(doc.get("op"))
            stage: Dict[str, Any] = {"stage": "admission", "op": op, "seq": seq}
            if op == "admit":
                job = doc.get("job") or {}
                jid = int(job.get("jid", -1))
                stage.update(
                    jid=jid,
                    release=job.get("release"),
                    deadline=job.get("deadline"),
                    value=job.get("value"),
                    dc=doc.get("dc"),
                )
                outcome = outcome or "accepted"
            elif op == "shed":
                rec = doc.get("rec") or {}
                jid = int(rec.get("jid", -1))
                stage.update(
                    jid=jid,
                    reason=rec.get("reason"),
                    time=rec.get("time"),
                )
                outcome = outcome or "shed"
            elif op == "push":
                stage.update(
                    time=doc.get("time"), payload=doc.get("payload")
                )
                outcome = outcome or "injected"
            elif op == "crash_mark":
                outcome = outcome or "crash"
            stages.append(stage)

        if outcome is None and not stages:
            return None

        if jid is not None and jid >= 0:
            stages.extend(_wal_stages(store.wal_path, jid))
            stages.extend(_shed_stages(store.shed_path, jid))
        return {
            "tenant": tenant_dir.name,
            "jid": jid,
            "outcome": outcome,
            "stages": stages,
        }
    finally:
        store.close()


def _wal_stages(wal_path: Optional[Path], jid: int) -> List[Dict[str, Any]]:
    """Dispatch/journal records for a jid from the kernel WAL."""
    from repro.sim.journal import EventJournal

    if wal_path is None or not wal_path.exists():
        return []
    try:
        journal = EventJournal.load(wal_path)
    except Exception:  # noqa: BLE001 - a missing stage, not a crash
        return []
    key = f"jid:{jid}"
    alarm_prefix = f"alarm:{jid}:"
    stages: List[Dict[str, Any]] = []
    for record in journal.records:
        if (
            record.key == key
            or record.key.startswith(key + "@")
            or record.key.startswith(alarm_prefix)
        ):
            stages.append(
                {
                    "stage": "journal",
                    "index": record.index,
                    "time": record.time,
                    "event": _event_kind_name(record.kind),
                    "key": record.key,
                }
            )
    return stages


def _shed_stages(
    shed_path: Optional[Path], jid: int
) -> List[Dict[str, Any]]:
    if shed_path is None or not shed_path.exists():
        return []
    stages: List[Dict[str, Any]] = []
    try:
        for line in shed_path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue
            if rec.get("jid") == jid:
                stages.append(
                    {
                        "stage": "shed_sidecar",
                        "reason": rec.get("reason"),
                        "time": rec.get("time"),
                    }
                )
    except OSError:
        return []
    return stages


def _trace_stages(
    trace: Mapping[str, Any], rid: str, jid: Optional[int]
) -> List[Dict[str, Any]]:
    """Lifecycle events mentioning the rid (plus, when the jid is known,
    replay events for that job) from a loaded trace export."""
    stages: List[Dict[str, Any]] = []
    for event in trace.get("events") or []:
        data = event.get("data") or {}
        if data.get("rid") == rid:
            stages.append(
                {
                    "stage": "trace",
                    "kind": event.get("kind"),
                    "t": event.get("t"),
                    "data": data,
                }
            )
        elif (
            jid is not None
            and data.get("jid") == jid
            and str(event.get("kind", "")).startswith("job.")
        ):
            stages.append(
                {
                    "stage": "trace",
                    "kind": event.get("kind"),
                    "t": event.get("t"),
                }
            )
    return stages


def correlate_request(
    rid: str,
    *,
    store_dir: "str | Path | None" = None,
    trace: Optional[Mapping[str, Any]] = None,
    tenant: Optional[str] = None,
) -> Dict[str, Any]:
    """Reconstruct one request's causal path across crash-resume.

    At least one source is required: a tenant ``store_dir`` (the durable
    witness — works after any number of ``kill -9``) and/or a loaded
    lifecycle ``trace`` (:func:`repro.obs.trace.load_trace`).  Returns::

        {"request_id": ..., "found": bool, "tenant": ..., "jid": ...,
         "outcome": ..., "recoveries": int | None, "stages": [...]}
    """
    if store_dir is None and trace is None:
        raise ObservabilityError(
            "correlate_request needs a store directory and/or a trace file"
        )
    result: Dict[str, Any] = {
        "request_id": rid,
        "found": False,
        "tenant": tenant,
        "jid": None,
        "outcome": None,
        "recoveries": None,
        "stages": [],
    }
    if store_dir is not None:
        root = Path(store_dir)
        for tenant_dir in _tenant_dirs(root, tenant):
            hit = _scan_tenant_store(tenant_dir, rid)
            if hit is None:
                continue
            result["found"] = True
            result["tenant"] = hit["tenant"]
            result["jid"] = hit["jid"]
            result["outcome"] = hit["outcome"]
            result["stages"].extend(hit["stages"])
            result["recoveries"] = _tenant_recoveries(tenant_dir)
            break
    if trace is not None:
        stages = _trace_stages(trace, rid, result["jid"])
        if stages:
            result["found"] = True
            result["stages"] = stages + result["stages"]
            if result["outcome"] is None:
                for stage in stages:
                    outcome = (stage.get("data") or {}).get("outcome")
                    if outcome:
                        result["outcome"] = outcome
                        break
    return result


def _tenant_recoveries(tenant_dir: Path) -> Optional[int]:
    from repro.store.tenant import TenantStore

    store = TenantStore(tenant_dir, fsync=False)
    try:
        loaded = store.load_snapshot()
        if loaded is None:
            return None
        payload, _ = loaded
        if isinstance(payload, dict):
            return int(payload.get("recoveries", 0))
        return None
    finally:
        store.close()


def render_request_trace(result: Mapping[str, Any]) -> str:
    """Human-readable causal path (what ``repro obs trace`` prints)."""
    rid = result.get("request_id")
    if not result.get("found"):
        return f"request {rid!r}: not found (undecided, or wrong store/trace?)"
    lines = [
        "request %r: tenant=%s jid=%s outcome=%s%s"
        % (
            rid,
            result.get("tenant"),
            result.get("jid") if result.get("jid") is not None else "-",
            result.get("outcome") or "?",
            (
                "  (survived %d recover%s)"
                % (
                    result["recoveries"],
                    "y" if result["recoveries"] == 1 else "ies",
                )
                if result.get("recoveries")
                else ""
            ),
        )
    ]
    for stage in result.get("stages") or []:
        kind = stage.get("stage", "?")
        extras = " ".join(
            f"{k}={_fmt(v)}"
            for k, v in sorted(stage.items())
            if k not in ("stage", "data") and v is not None
        )
        data = stage.get("data")
        if data:
            extras += (" " if extras else "") + " ".join(
                f"{k}={_fmt(v)}" for k, v in sorted(data.items())
            )
        lines.append(f"  [{kind}] {extras}".rstrip())
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)
