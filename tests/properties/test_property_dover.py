"""Differential property tests for the Dover family.

The strongest cheap oracle we have: Section IV states V-Dover *reduces to
Dover* under constant capacity (given the same threshold β), because the
conservative estimate is exact and supplement jobs are provably dead.  We
drive both through random instances and demand identical outcomes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.intervals import lemma1_report
from repro.capacity import ConstantCapacity, PiecewiseConstantCapacity
from repro.core import DoverScheduler, VDoverScheduler
from repro.sim import Job, simulate


@st.composite
def admissible_instances(draw):
    """Random instances, individually admissible at c̲ = 1."""
    n = draw(st.integers(min_value=1, max_value=15))
    jobs = []
    for i in range(n):
        release = draw(st.floats(min_value=0.0, max_value=25.0))
        workload = draw(st.floats(min_value=0.1, max_value=5.0))
        slack = draw(st.floats(min_value=1.0, max_value=3.0))
        density = draw(st.floats(min_value=1.0, max_value=7.0))
        jobs.append(
            Job(i, release, workload, release + slack * workload, density * workload)
        )
    return jobs


@settings(max_examples=60, deadline=None)
@given(jobs=admissible_instances(), beta=st.floats(min_value=1.1, max_value=6.0))
def test_vdover_reduces_to_dover_at_constant_capacity(jobs, beta):
    """Same β, capacity pinned at c = c̲ = ĉ: identical completions and
    value.  (Schedules may differ by *futile* supplement work: V-Dover
    keeps demoted jobs running on otherwise-idle time, but at constant
    conservative capacity a negative-laxity job provably cannot finish, so
    the outcome is unchanged — that equivalence is exactly Section IV's
    reduction claim.)"""
    cap = ConstantCapacity(1.0)
    vd_sched = VDoverScheduler(k=7.0, beta=beta)
    vd = simulate(jobs, cap, vd_sched, validate=True)
    dv = simulate(jobs, cap, DoverScheduler(k=7.0, c_hat=1.0, beta=beta), validate=True)
    assert vd.completed_ids == dv.completed_ids
    assert vd.value == pytest.approx(dv.value)
    if vd_sched.stats["supplement_labels"] == 0:
        # No demotions at all: then the runs must be literally identical.
        assert vd.trace.segments == dv.trace.segments


@settings(max_examples=40, deadline=None)
@given(jobs=admissible_instances())
def test_supplements_never_hurt(jobs):
    """Structural invariant: the supplement queue only consumes capacity no
    regular job wants, so disabling it can never *increase* value on the
    same instance."""
    cap = PiecewiseConstantCapacity([0.0, 7.0, 14.0], [1.0, 4.0, 1.0])
    full = simulate(jobs, cap, VDoverScheduler(k=7.0, beta=2.0), validate=True)
    ablated = simulate(
        jobs, cap, VDoverScheduler(k=7.0, beta=2.0, supplement=False), validate=True
    )
    assert full.value >= ablated.value - 1e-9


@settings(max_examples=40, deadline=None)
@given(jobs=admissible_instances(), seed=st.integers(0, 1000))
def test_lemma1_property(jobs, seed):
    """Lemma 1 holds on arbitrary admissible instances over arbitrary
    piecewise capacity (min density >= 1 by construction)."""
    cap = PiecewiseConstantCapacity(
        [0.0, 5.0 + (seed % 7), 15.0], [1.0, 1.0 + (seed % 5), 2.0]
    )
    sched = VDoverScheduler(k=7.0)
    simulate(jobs, cap, sched)
    report = lemma1_report(sched, cap)
    assert report.holds, str(report)
