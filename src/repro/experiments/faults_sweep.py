"""Experiment E15: Table-I-style comparison under capacity-sensor faults.

The paper assumes the scheduler learns the *current* capacity exactly the
moment it changes.  Real cloud telemetry is noisy, stale, and occasionally
absent.  This experiment replays the paper's Figure-1 configuration
(λ = 6, c ∈ {1, 35}, k = 7) while the capacity *sensing channel* is
corrupted by one of the fault models in :mod:`repro.faults`:

* ``noise`` — multiplicative Gaussian noise of relative σ = severity;
* ``staleness`` — readings delayed by Δ = severity time units;
* ``dropout`` — readings unavailable a fraction = severity of the time;
* ``bias`` — the declared lower bound c̲ mis-reported upward by
  severity × (c̄ − c̲).

The physics channel (what the engine actually executes against) stays
truthful throughout — only what schedulers *observe* is corrupted, which is
exactly the separation :class:`repro.faults.CapacitySensorFault` enforces.

Compared schedulers:

* **V-Dover** — trusts only the declared c̲, so by construction it is
  *immune* to noise/staleness/dropout and only the ``bias`` fault can move
  it.  A flat curve here is the experiment's headline robustness result.
* **Dover(sensed)** — Dover whose rate estimate tracks the sensed
  capacity; the sensor-consuming baseline that the faults actually hurt.
* **Dover(c=1)** — the conservative clairvoyant-free anchor; immune like
  V-Dover, but weaker in absolute value.

Crash-isolation: replications run through
:meth:`~repro.experiments.runner.MonteCarloRunner.run_report`, so a fault
configuration harsh enough to break a scheduler yields structured
:class:`~repro.experiments.runner.FailedReplication` records in
``SweepResult.failures`` instead of aborting the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.analysis.stats import summarize
from repro.core.dover import DoverScheduler
from repro.core.vdover import VDoverScheduler
from repro.errors import ExperimentError
from repro.faults import FAULT_KINDS, FaultSpec
from repro.experiments.runner import (
    MonteCarloRunner,
    PaperInstanceFactory,
    SchedulerSpec,
)
from repro.experiments.sweeps import SweepResult
from repro.workload.poisson import PoissonWorkload

__all__ = [
    "FaultyInstanceFactory",
    "default_fault_severities",
    "run_faults_sweep",
    "run_faults_grid",
]

#: Severity grids per fault kind (0 = fault-free anchor point).
_DEFAULT_SEVERITIES: Mapping[str, tuple[float, ...]] = {
    "noise": (0.0, 0.1, 0.3, 0.6, 1.0),  # relative σ
    "staleness": (0.0, 0.5, 2.0, 8.0),  # delay Δ (time units)
    "dropout": (0.0, 0.1, 0.3, 0.6),  # unavailable fraction
    "bias": (0.0, 0.1, 0.3, 0.6),  # c̲ inflation fraction of (c̄ − c̲)
}


def default_fault_severities(kind: str) -> tuple[float, ...]:
    """The default severity grid swept for ``kind``."""
    try:
        return _DEFAULT_SEVERITIES[kind]
    except KeyError:
        raise ExperimentError(
            f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
        ) from None


@dataclass(frozen=True)
class FaultyInstanceFactory:
    """Wrap an instance factory so every capacity path gets a sensor fault.

    Picklable (frozen dataclass of picklable fields), so it travels to pool
    workers like any other factory.  The inner factory draws the instance
    *first* and the fault seed afterwards, so for a fixed replication seed
    the (jobs, true-capacity) pair is identical across severities — sweeps
    over severity are paired comparisons, not independent redraws.
    """

    inner: PaperInstanceFactory
    spec: FaultSpec

    def make(self, rng: np.random.Generator):
        jobs, capacity = self.inner.make(rng)
        fault_seed = int(rng.integers(0, 2**31 - 1))
        return jobs, self.spec.apply(capacity, seed=fault_seed)


def _figure1_factory(
    lam: float, k: float, expected_jobs: float
) -> PaperInstanceFactory:
    horizon = expected_jobs / lam
    return PaperInstanceFactory(
        workload=PoissonWorkload(
            lam=lam,
            horizon=horizon,
            density_range=(1.0, k),
            c_lower=1.0,
        ),
        low=1.0,
        high=35.0,
        sojourn=horizon / 4.0,
    )


def _fault_specs(k: float) -> list[SchedulerSpec]:
    return [
        SchedulerSpec("V-Dover", VDoverScheduler, {"k": k}),
        SchedulerSpec("Dover(sensed)", DoverScheduler, {"k": k, "c_hat": "sensed"}),
        SchedulerSpec("Dover(c=1)", DoverScheduler, {"k": k, "c_hat": 1.0}),
    ]


def run_faults_sweep(
    kind: str,
    severities: Sequence[float] | None = None,
    *,
    lam: float = 6.0,
    k: float = 7.0,
    n_runs: int = 30,
    seed: int = 29,
    workers: int | None = None,
    expected_jobs: float = 500.0,
    timeout: float | None = None,
    max_retries: int = 0,
    backoff: float = 0.0,
) -> SweepResult:
    """Sweep one fault ``kind`` over a severity grid on the Figure-1 setup.

    Returns a :class:`~repro.experiments.sweeps.SweepResult` whose
    ``failures`` list carries structured records for any replication lost
    to a crash or timeout (the sweep itself never aborts on one bad cell
    unless *every* replication of that cell failed).
    """
    if severities is None:
        severities = default_fault_severities(kind)
    base = _figure1_factory(lam, k, expected_jobs)
    specs = _fault_specs(k)
    result = SweepResult(sweep_name=f"{kind} severity")
    for severity in severities:
        factory = FaultyInstanceFactory(
            inner=base, spec=FaultSpec(kind=kind, severity=float(severity))
        )
        runner = MonteCarloRunner(factory, specs)
        # Same seed at every severity: the fault seed is drawn *after* the
        # instance, so each replication sees the identical (jobs, capacity)
        # pair across the grid — the sweep is a paired comparison.
        report = runner.run_report(
            n_runs,
            seed=seed,
            workers=workers,
            timeout=timeout,
            max_retries=max_retries,
            backoff=backoff,
        )
        for failure in report.failure_records():
            result.failures.append((float(severity), failure))
        outcomes = report.survivors
        if not outcomes:
            raise ExperimentError(
                f"fault sweep {kind!r} severity={severity:g}: every "
                f"replication failed ({report.failure_records()[0]})"
            )
        result.swept_values.append(float(severity))
        for spec in specs:
            result.percents.setdefault(spec.name, []).append(
                summarize([100.0 * o.normalized(spec.name) for o in outcomes])
            )
    return result


def run_faults_grid(
    kinds: Sequence[str] = FAULT_KINDS,
    *,
    lam: float = 6.0,
    k: float = 7.0,
    n_runs: int = 30,
    seed: int = 29,
    workers: int | None = None,
    expected_jobs: float = 500.0,
) -> dict[str, SweepResult]:
    """One :func:`run_faults_sweep` per fault kind (default severity grids)."""
    return {
        kind: run_faults_sweep(
            kind,
            lam=lam,
            k=k,
            n_runs=n_runs,
            seed=seed,
            workers=workers,
            expected_jobs=expected_jobs,
        )
        for kind in kinds
    }
