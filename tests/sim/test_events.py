"""Unit tests for the event queue ordering semantics."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim import Event, EventKind, EventQueue


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push(Event(2.0, EventKind.RELEASE, "b"))
        q.push(Event(1.0, EventKind.RELEASE, "a"))
        assert q.pop().payload == "a"
        assert q.pop().payload == "b"

    def test_kind_priority_at_same_time(self):
        """COMPLETION < DEADLINE < RELEASE < ALARM < TIMER < END."""
        q = EventQueue()
        for kind in (
            EventKind.END,
            EventKind.ALARM,
            EventKind.RELEASE,
            EventKind.COMPLETION,
            EventKind.TIMER,
            EventKind.DEADLINE,
        ):
            q.push(Event(5.0, kind))
        kinds = [q.pop().kind for _ in range(6)]
        assert kinds == sorted(kinds, key=int)
        assert kinds[0] is EventKind.COMPLETION
        assert kinds[-1] is EventKind.END

    def test_fifo_within_same_time_and_kind(self):
        q = EventQueue()
        q.push(Event(1.0, EventKind.RELEASE, "first"))
        q.push(Event(1.0, EventKind.RELEASE, "second"))
        assert q.pop().payload == "first"
        assert q.pop().payload == "second"

    def test_completion_beats_deadline_tie(self):
        """A job finishing exactly at its deadline must succeed."""
        q = EventQueue()
        q.push(Event(3.0, EventKind.DEADLINE, "dl"))
        q.push(Event(3.0, EventKind.COMPLETION, "done"))
        assert q.pop().kind is EventKind.COMPLETION


class TestQueueMechanics:
    def test_len(self):
        q = EventQueue()
        assert len(q) == 0
        q.push(Event(1.0, EventKind.RELEASE))
        assert len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(Event(4.0, EventKind.RELEASE))
        q.push(Event(2.0, EventKind.RELEASE))
        assert q.peek_time() == 2.0

    def test_nan_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(Event(math.nan, EventKind.RELEASE))
