"""Columnar (struct-of-arrays) job state: the kernel's ground truth.

Historically the kernel kept per-job execution state in ``Dict[int, float]``
/ ``Dict[int, JobStatus]`` maps.  :class:`JobTable` replaces those with a
column layout:

* **immutable parameter columns** — ``release``, ``workload``, ``deadline``,
  ``value`` and ``jid`` as numpy ``float64``/``int64`` arrays, built once
  from the instance.  Whole-population passes (bootstrap event seeding,
  laxity recomputation, feasibility chains, wind-down sweeps) become single
  vectorized expressions instead of per-job Python loops.
* **mutable hot columns** — ``remaining`` (float) and ``status`` (int code,
  see :data:`repro.sim.job.CODE_STATUS`) as plain Python lists indexed by
  row.  The event loop reads and writes these one scalar at a time, and
  CPython list indexing both beats numpy scalar indexing (which boxes every
  element into ``np.float64``) and guarantees native ``float``/``int``
  values at the serialization boundaries (``json`` in the journal mirror,
  pickle in snapshots).  Vector views are materialized on demand by
  :meth:`remaining_array` / :meth:`status_array`.

Existing :class:`~repro.sim.job.Job` objects stay the API surface —
schedulers, event payloads and traces keep passing them around; the table
maps ``jid → row`` once and the kernel touches columns by row.

State snapshots become near-memcpy column copies (:meth:`copy_state` /
:meth:`load_state_columns`): two ``list.copy()`` calls instead of
rebuilding keyed dicts.  The jid-keyed dict exports used by the on-disk
:class:`~repro.sim.journal.EngineSnapshot` schema (unchanged, schema 2)
are derived from the columns only when a snapshot is actually taken.

Bit-identity note: every vectorized helper performs *element-wise*
arithmetic only (no reductions), in the same expression order as the
scalar code it replaces — so columnar and scalar results agree to the bit.
Order-sensitive *reductions* (e.g. V-Dover's protected-value sum over
Qedf) deliberately stay scalar; see docs/PERFORMANCE.md ("Summation-order
audit").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.sim.job import (
    CODE_STATUS,
    STATUS_CODE,
    Job,
    JobStatus,
)

__all__ = ["JobTable"]

_PENDING = STATUS_CODE[JobStatus.PENDING]
_READY = STATUS_CODE[JobStatus.READY]
_RUNNING = STATUS_CODE[JobStatus.RUNNING]
#: Codes at or above this are terminal (COMPLETED / FAILED / ABANDONED) —
#: relies on the CODE_STATUS ordering, which is append-only by contract.
_TERMINAL_MIN = STATUS_CODE[JobStatus.COMPLETED]


class JobTable:
    """Column store for one instance's per-job execution state.

    Attributes (all indexed by *row*, the position of the job in the
    instance order):

    ``jobs``
        The row-ordered :class:`Job` views (tuple).
    ``row_of``
        ``jid → row`` mapping (dict).
    ``jid``, ``release``, ``workload``, ``deadline``, ``value``
        Immutable numpy parameter columns.
    ``remaining``, ``status``
        Mutable hot columns (Python lists); the kernel mutates them in
        place by row.  ``status`` holds int codes (``STATUS_CODE``).
    """

    __slots__ = (
        "jobs",
        "row_of",
        "jid",
        "release",
        "workload",
        "deadline",
        "value",
        "remaining",
        "status",
    )

    def __init__(self, jobs: Sequence[Job]) -> None:
        self.jobs: Tuple[Job, ...] = tuple(jobs)
        n = len(self.jobs)
        self.row_of: Dict[int, int] = {
            job.jid: row for row, job in enumerate(self.jobs)
        }
        if len(self.row_of) != n:
            raise SimulationError("duplicate job ids in JobTable")
        self.jid = np.fromiter(
            (j.jid for j in self.jobs), dtype=np.int64, count=n
        )
        self.release = np.fromiter(
            (j.release for j in self.jobs), dtype=np.float64, count=n
        )
        self.workload = np.fromiter(
            (j.workload for j in self.jobs), dtype=np.float64, count=n
        )
        self.deadline = np.fromiter(
            (j.deadline for j in self.jobs), dtype=np.float64, count=n
        )
        self.value = np.fromiter(
            (j.value for j in self.jobs), dtype=np.float64, count=n
        )
        self.remaining: List[float] = [0.0] * n
        self.status: List[int] = [_PENDING] * n

    # ------------------------------------------------------------------
    def append_job(self, job: Job) -> None:
        """Grow the table by one job (live-service admission).

        The immutable parameter columns are rebuilt (``np.append`` copies,
        O(n)) — admission is the cold path and nothing holds references to
        them.  The mutable hot columns and the ``row_of`` map are extended
        *in place*: the kernel aliases those (``_rem``/``_st``/``_row``)
        and the aliases must survive admission, exactly as they survive
        :meth:`load_state_columns`.
        """
        if job.jid in self.row_of:
            raise SimulationError(f"duplicate job id {job.jid} in JobTable")
        row = len(self.jobs)
        self.jobs = self.jobs + (job,)
        self.row_of[job.jid] = row
        self.jid = np.append(self.jid, np.int64(job.jid))
        self.release = np.append(self.release, np.float64(job.release))
        self.workload = np.append(self.workload, np.float64(job.workload))
        self.deadline = np.append(self.deadline, np.float64(job.deadline))
        self.value = np.append(self.value, np.float64(job.value))
        self.remaining.append(0.0)
        self.status.append(_PENDING)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.jobs)

    def job_at(self, row: int) -> Job:
        return self.jobs[row]

    def status_of(self, jid: int) -> Optional[JobStatus]:
        """Status as the enum (``None`` for unknown jids) — the diagnostic
        view; the kernel compares int codes directly."""
        row = self.row_of.get(jid)
        return None if row is None else CODE_STATUS[self.status[row]]

    # ------------------------------------------------------------------
    # Vector views (materialized on demand)
    # ------------------------------------------------------------------
    def remaining_array(self) -> np.ndarray:
        return np.asarray(self.remaining, dtype=np.float64)

    def status_array(self) -> np.ndarray:
        return np.asarray(self.status, dtype=np.int64)

    def rows_released_by(self, horizon: float) -> np.ndarray:
        """Rows of jobs released within ``[0, horizon]`` (bootstrap
        seeding)."""
        return np.nonzero(self.release <= horizon)[0]

    def rows_unresolved(self) -> np.ndarray:
        """Rows still READY or RUNNING — the wind-down failure sweep."""
        st = self.status_array()
        return np.nonzero((st == _READY) | (st == _RUNNING))[0]

    def rows_ready(self) -> np.ndarray:
        return np.nonzero(self.status_array() == _READY)[0]

    def laxities(
        self,
        now: float,
        rate: float,
        rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Vectorized :meth:`Job.laxity`: ``d − now − remaining/rate`` for
        every row (or the given rows), element-wise in the exact expression
        order of the scalar method — bit-identical per element."""
        if rows is None:
            deadline = self.deadline
            remaining = self.remaining_array()
        else:
            deadline = self.deadline[rows]
            remaining = self.remaining_array()[rows]
        return deadline - now - remaining / rate

    def zero_laxity_times(
        self,
        rate: float,
        rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Instants at which laxity reaches zero under constant ``rate``:
        ``d − remaining/rate`` (the kernel's alarm arming expression)."""
        if rows is None:
            deadline = self.deadline
            remaining = self.remaining_array()
        else:
            deadline = self.deadline[rows]
            remaining = self.remaining_array()[rows]
        return deadline - remaining / rate

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def copy_state(self) -> Tuple[List[float], List[int]]:
        """Near-memcpy image of the mutable columns (``list.copy``)."""
        return (self.remaining.copy(), self.status.copy())

    def load_state_columns(
        self, remaining: Sequence[float], status: Sequence[int]
    ) -> None:
        """Inverse of :meth:`copy_state`."""
        if len(remaining) != len(self.jobs) or len(status) != len(self.jobs):
            raise SimulationError("column snapshot length mismatch")
        # In-place: the kernel holds direct references to these lists.
        self.remaining[:] = remaining
        self.status[:] = status

    def export_remaining(self) -> Dict[int, float]:
        """jid → remaining for *released* jobs — the historical
        ``EngineSnapshot.remaining`` dict (schema 2, unchanged)."""
        status = self.status
        return {
            job.jid: self.remaining[row]
            for row, job in enumerate(self.jobs)
            if status[row] != _PENDING
        }

    def export_status(self) -> Dict[int, str]:
        """jid → status *name* for every job (``EngineSnapshot.status``)."""
        return {
            job.jid: CODE_STATUS[self.status[row]].name
            for row, job in enumerate(self.jobs)
        }

    def load_state_dicts(
        self, remaining: Dict[int, float], status: Dict[int, str]
    ) -> None:
        """Load the jid-keyed snapshot dicts back into the columns."""
        # In-place: the kernel holds direct references to these lists.
        self.remaining[:] = [0.0] * len(self.jobs)
        self.status[:] = [_PENDING] * len(self.jobs)
        row_of = self.row_of
        for jid, name in status.items():
            self.status[row_of[jid]] = STATUS_CODE[JobStatus[name]]
        for jid, rem in remaining.items():
            self.remaining[row_of[jid]] = rem

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JobTable(n={len(self.jobs)})"
