"""The observability gate: session stacking, and — the subsystem's hard
requirement — proof that enabling it never perturbs simulation results."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.capacity import TwoStateMarkovCapacity
from repro.core import DoverScheduler, EDFScheduler, VDoverScheduler
from repro.errors import ObservabilityError
from repro.multi import GlobalEDFScheduler, simulate_multi
from repro.sim import simulate
from repro.workload import PoissonWorkload


def _instance(seed: int = 11, lam: float = 6.0, horizon: float = 25.0):
    ss = np.random.SeedSequence(seed)
    job_seed, cap_seed = ss.spawn(2)
    jobs = PoissonWorkload(lam=lam, horizon=horizon).generate(job_seed)
    capacity = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=1.0, rng=cap_seed)
    return jobs, capacity


class TestGate:
    def test_disabled_by_default(self):
        assert obs.current() is None
        assert not obs.enabled()

    def test_session_scopes_context(self):
        with obs.session() as octx:
            assert obs.current() is octx
        assert obs.current() is None

    def test_sessions_nest(self):
        with obs.session() as outer:
            with obs.session() as inner:
                assert obs.current() is inner
            assert obs.current() is outer
        assert obs.current() is None

    def test_disable_without_enable_raises(self):
        with pytest.raises(ObservabilityError):
            obs.disable()

    def test_metrics_only_mode(self):
        with obs.session(trace=False) as octx:
            assert octx.sink is None
            jobs, capacity = _instance()
            simulate(jobs, capacity, EDFScheduler())
            assert octx.metrics.counter("kernel.events").n > 0


class TestNonPerturbation:
    """Figure-1 bit-identity requirement: tracing observes, never perturbs."""

    @pytest.mark.parametrize(
        "make",
        [
            lambda: VDoverScheduler(k=7.0),
            lambda: DoverScheduler(k=7.0, c_hat=10.5),
            lambda: EDFScheduler(),
        ],
        ids=["vdover", "dover", "edf"],
    )
    def test_single_processor_results_identical(self, make):
        jobs, capacity = _instance()
        baseline = simulate(jobs, capacity, make())
        with obs.session(profile=True):
            observed = simulate(jobs, capacity, make())
        assert observed.value == baseline.value
        assert observed.trace.segments == baseline.trace.segments
        assert observed.trace.outcomes == baseline.trace.outcomes
        assert observed.trace.value_points == baseline.trace.value_points

    def test_multiprocessor_results_identical(self):
        ss = np.random.SeedSequence(23)
        job_seed, c1, c2 = ss.spawn(3)
        jobs = PoissonWorkload(lam=8.0, horizon=20.0).generate(job_seed)
        caps = [
            TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=1.0, rng=c1),
            TwoStateMarkovCapacity(1.0, 20.0, mean_sojourn=1.0, rng=c2),
        ]
        baseline = simulate_multi(jobs, caps, GlobalEDFScheduler())
        with obs.session():
            observed = simulate_multi(jobs, caps, GlobalEDFScheduler())
        assert observed.value == baseline.value
        assert observed.combined.outcomes == baseline.combined.outcomes
        assert [t.segments for t in observed.proc_traces] == [
            t.segments for t in baseline.proc_traces
        ]


class TestEmission:
    def test_kernel_and_scheduler_events_recorded(self):
        jobs, capacity = _instance()
        with obs.session() as octx:
            simulate(jobs, capacity, VDoverScheduler(k=7.0))
        kinds = {e.kind for e in octx.sink.events()}
        assert {"run.start", "job.release", "job.start", "decision", "run.end"} <= kinds
        counters = octx.metrics.snapshot()["counters"]
        assert counters["kernel.events"] > 0
        assert any(k.startswith("scheduler.decisions.") for k in counters)

    def test_profile_populates_latency_histograms(self):
        jobs, capacity = _instance()
        with obs.session(profile=True) as octx:
            simulate(jobs, capacity, EDFScheduler())
        hists = octx.metrics.snapshot()["histograms"]
        assert any(k.startswith("kernel.dispatch_latency_s.") for k in hists)

    def test_unprofiled_session_has_no_latency_histograms(self):
        jobs, capacity = _instance()
        with obs.session() as octx:
            simulate(jobs, capacity, EDFScheduler())
        hists = octx.metrics.snapshot()["histograms"]
        assert not any(k.startswith("kernel.dispatch_latency_s.") for k in hists)
