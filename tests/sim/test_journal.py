"""EventJournal / JournalRecord / describe_payload unit tests."""

from __future__ import annotations

import json

import pytest

from repro.errors import RecoveryError
from repro.sim import EventJournal, Job, JournalRecord
from repro.sim.events import EventKind
from repro.sim.journal import describe_payload


def _record(i: int, **kw) -> JournalRecord:
    base = dict(index=i, time=float(i), kind=2, key=f"jid:{i}", version=0)
    base.update(kw)
    return JournalRecord(**base)


class TestDescribePayload:
    def test_job_events(self):
        job = Job(7, 0.0, 1.0, 5.0, 1.0)
        for kind in (EventKind.RELEASE, EventKind.COMPLETION, EventKind.DEADLINE):
            assert describe_payload(int(kind), job) == "jid:7"

    def test_alarm(self):
        job = Job(3, 0.0, 1.0, 5.0, 1.0)
        assert describe_payload(int(EventKind.ALARM), (job, "claxity")) == (
            "alarm:3:claxity"
        )

    def test_timer_end_fault(self):
        assert describe_payload(int(EventKind.TIMER), "tick") == "timer:tick"
        assert describe_payload(int(EventKind.END), None) == "end"
        assert describe_payload(int(EventKind.FAULT), ("kill", 0, 0.5)) == (
            "fault:kill:0:0.5"
        )


class TestJournalRecord:
    def test_dict_roundtrip(self):
        rec = _record(4, key="alarm:1:claxity", version=3)
        assert JournalRecord.from_dict(rec.to_dict()) == rec

    def test_version_defaults(self):
        d = _record(0).to_dict()
        del d["version"]
        assert JournalRecord.from_dict(d).version == 0


class TestEventJournal:
    def test_append_and_get(self):
        journal = EventJournal()
        for i in range(5):
            journal.append(_record(i))
        assert len(journal) == 5
        assert journal.get(3) == _record(3)
        assert journal.records == tuple(_record(i) for i in range(5))

    def test_out_of_order_append_rejected(self):
        journal = EventJournal()
        journal.append(_record(0))
        with pytest.raises(RecoveryError, match="out of order"):
            journal.append(_record(2))

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "run.journal"
        journal = EventJournal(path)
        for i in range(4):
            journal.append(_record(i))
        journal.close()
        loaded = EventJournal.load(path)
        assert loaded.records == journal.records

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "run.journal"
        journal = EventJournal(path)
        for i in range(4):
            journal.append(_record(i))
        journal.close()
        # Simulate a crash mid-append: truncate the last line.
        text = path.read_text()
        path.write_text(text[: text.rindex('{"index": 3') + 10])
        loaded = EventJournal.load(path)
        assert len(loaded) == 3

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "run.journal"
        journal = EventJournal(path)
        for i in range(4):
            journal.append(_record(i))
        journal.close()
        lines = path.read_text().splitlines()
        lines[2] = '{"index": 1, "time": BROKEN'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(RecoveryError, match="corrupt record at line 3"):
            EventJournal.load(path)

    def test_load_rejects_non_journal(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "something_else"}) + "\n")
        with pytest.raises(RecoveryError, match="not an event journal"):
            EventJournal.load(path)

    def test_load_rejects_bad_schema(self, tmp_path):
        path = tmp_path / "future.journal"
        path.write_text(
            json.dumps({"kind": "event_journal", "schema": 999}) + "\n"
        )
        with pytest.raises(RecoveryError, match="unsupported schema"):
            EventJournal.load(path)

    def test_load_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.journal"
        path.write_text("")
        with pytest.raises(RecoveryError, match="empty"):
            EventJournal.load(path)


class TestFlushBatching:
    def test_flush_every_validated(self):
        with pytest.raises(RecoveryError, match="flush_every"):
            EventJournal(flush_every=0)

    def test_flush_is_noop_in_memory(self):
        journal = EventJournal()
        journal.append(_record(0))
        journal.flush()  # must not raise without a file
        journal.flush(sync=True)

    def test_batched_appends_buffered_until_boundary(self, tmp_path):
        """With flush_every=N, a hard crash between boundaries loses at
        most the last N-1 records — and none once flush() is called."""
        path = tmp_path / "batched.journal"
        journal = EventJournal(path, flush_every=4)
        for i in range(6):  # one full batch (4) + 2 buffered
            journal.append(_record(i))
        # Read the file *without* closing: what a post-crash reader sees.
        on_disk = EventJournal.load(path)
        assert len(on_disk) == 4  # records 4,5 still in the buffer
        journal.flush()
        assert len(EventJournal.load(path)) == 6
        journal.close()

    def test_torn_tail_at_flush_boundary(self, tmp_path):
        """Crash signature under batching: the file ends exactly at a
        flush boundary plus a torn partial line; load() must keep every
        whole record and drop only the tear."""
        path = tmp_path / "torn.journal"
        journal = EventJournal(path, flush_every=3)
        for i in range(6):  # flushes after records 2 and 5
            journal.append(_record(i))
        journal.append(_record(6))  # buffered, then torn below
        journal.flush()
        journal.close()
        text = path.read_text()
        # Tear mid-way through the last record's line.
        path.write_text(text[: text.rindex('{"index": 6') + 10])
        loaded = EventJournal.load(path)
        assert len(loaded) == 6
        assert loaded.records == journal.records[:6]

    def test_explicit_sync_flush(self, tmp_path):
        path = tmp_path / "sync.journal"
        journal = EventJournal(path, flush_every=100, fsync=True)
        for i in range(3):
            journal.append(_record(i))
        journal.flush()  # constructor fsync flag applies
        assert len(EventJournal.load(path)) == 3
        journal.append(_record(3))
        journal.flush(sync=False)  # suppress the fsync, still flushes
        assert len(EventJournal.load(path)) == 4
        journal.close()


class TestDirFsync:
    """Regression: a freshly created journal *file entry* is only durable
    once the parent directory is fsynced — exactly once, at the first
    durability point."""

    def test_eager_dir_sync_with_fsync_true(self, tmp_path):
        journal = EventJournal(tmp_path / "j.jsonl", fsync=True)
        assert journal._dir_synced is True
        journal.close()

    def test_deferred_dir_sync_with_fsync_false(self, tmp_path):
        journal = EventJournal(tmp_path / "j.jsonl", fsync=False)
        assert journal._dir_synced is False
        journal.append(_record(0))
        journal.flush()  # plain flush: still no durability point
        assert journal._dir_synced is False
        journal.flush(sync=True)  # first explicit durability point
        assert journal._dir_synced is True
        journal.close()

    def test_in_memory_journal_never_needs_it(self):
        journal = EventJournal()
        assert journal._dir_synced is True
        journal.append(_record(0))
        journal.flush(sync=True)  # no file: a no-op, not an error

    def test_sync_dir_is_one_time(self, tmp_path, monkeypatch):
        import repro.sim.journal as journal_mod

        journal = EventJournal(tmp_path / "j.jsonl", fsync=True)
        calls = []
        monkeypatch.setattr(
            journal_mod.os,
            "open",
            lambda *a, **k: calls.append(a) or (_ for _ in ()).throw(
                AssertionError("dir fsync repeated")
            ),
        )
        journal.append(_record(0))
        journal.flush(sync=True)  # must not re-open the directory
        assert calls == []


class TestResume:
    def _written(self, tmp_path, n=3):
        path = tmp_path / "j.jsonl"
        journal = EventJournal(path, fsync=True)
        for i in range(n):
            journal.append(_record(i))
        journal.close()
        return path

    def test_clean_resume_appends_in_place(self, tmp_path):
        path = self._written(tmp_path, n=3)
        journal = EventJournal.resume(path, fsync=True)
        assert len(journal) == 3
        journal.append(_record(3))
        journal.close()
        loaded = EventJournal.load(path)
        assert [r.index for r in loaded.records] == [0, 1, 2, 3]

    def test_torn_final_line_truncated_then_extended(self, tmp_path):
        path = self._written(tmp_path, n=3)
        with path.open("ab") as fh:
            fh.write(b'{"index": 3, "time":')  # torn mid-append
        journal = EventJournal.resume(path)
        assert len(journal) == 2 + 1  # the three complete records
        journal.append(_record(3))
        journal.close()
        # The tear is gone from disk; the file parses cleanly end to end.
        loaded = EventJournal.load(path)
        assert [r.index for r in loaded.records] == [0, 1, 2, 3]

    def test_record_missing_newline_truncated(self, tmp_path):
        # A parseable record without its newline would be corrupted by
        # the next append ("{...}{...}" on one line): resume truncates it
        # and the kernel regenerates it deterministically.
        path = self._written(tmp_path, n=3)
        data = path.read_bytes()
        path.write_bytes(data[:-1])  # strip the final newline only
        journal = EventJournal.resume(path)
        assert len(journal) == 2
        journal.append(_record(2))
        journal.close()
        loaded = EventJournal.load(path)
        assert [r.index for r in loaded.records] == [0, 1, 2]

    def test_mid_file_corruption_refuses(self, tmp_path):
        path = self._written(tmp_path, n=3)
        lines = path.read_text().splitlines()
        lines[2] = '{"index": 1, BROKEN'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(RecoveryError, match="mid-file"):
            EventJournal.resume(path)

    def test_corrupt_header_refuses(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("{broken\n")
        with pytest.raises(RecoveryError, match="header"):
            EventJournal.resume(path)

    def test_foreign_file_refuses(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text(json.dumps({"kind": "mc_checkpoint", "schema": 1}) + "\n")
        with pytest.raises(RecoveryError, match="not an event journal"):
            EventJournal.resume(path)

    def test_missing_file_refuses(self, tmp_path):
        with pytest.raises(RecoveryError, match="cannot read"):
            EventJournal.resume(tmp_path / "absent.jsonl")
