"""Terminal line charts — Figure 1 without a plotting stack.

Renders one or more ``(x, y)`` series onto a character grid with per-series
markers, axis labels and a legend.  Series are treated as step functions
(the natural reading for cumulative-value curves) and sampled per column.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import AnalysisError

__all__ = ["render_line_chart"]

_MARKERS = "*o+x#@%&"


def _step_at(series: Sequence[tuple[float, float]], x: float) -> float:
    """Step-function value of the series at x (last point at or before x)."""
    val = series[0][1]
    for px, py in series:
        if px <= x:
            val = py
        else:
            break
    return val


def render_line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 70,
    height: int = 18,
    title: str | None = None,
    x_label: str = "t",
    y_label: str = "value",
) -> str:
    """Render step-function series as an ASCII chart.

    Parameters
    ----------
    series:
        Name -> list of (x, y) points, each non-empty with ascending x.
    width, height:
        Plot-area size in characters (axes and legend are extra).
    """
    if not series:
        raise AnalysisError("no series to plot")
    if width < 10 or height < 4:
        raise AnalysisError(f"chart too small: {width}x{height}")
    for name, pts in series.items():
        if not pts:
            raise AnalysisError(f"series {name!r} is empty")
        xs = [x for x, _ in pts]
        if xs != sorted(xs):
            raise AnalysisError(f"series {name!r} has non-ascending x")

    x_min = min(pts[0][0] for pts in series.values())
    x_max = max(pts[-1][0] for pts in series.values())
    y_min = 0.0
    y_max = max(max(y for _, y in pts) for pts in series.values())
    if x_max <= x_min:
        x_max = x_min + 1.0
    if y_max <= y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for col in range(width):
            x = x_min + (col + 0.5) * (x_max - x_min) / width
            y = _step_at(pts, x)
            frac = (y - y_min) / (y_max - y_min)
            row = height - 1 - min(height - 1, max(0, int(round(frac * (height - 1)))))
            if grid[row][col] == " ":
                grid[row][col] = marker
            elif grid[row][col] != marker:
                grid[row][col] = "="  # overlap of different series

    lines = []
    if title:
        lines.append(title)
    y_top = f"{y_max:.4g}"
    y_bot = f"{y_min:.4g}"
    label_w = max(len(y_top), len(y_bot), len(y_label)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            label = y_top
        elif i == height - 1:
            label = y_bot
        elif i == height // 2:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{label_w}} |{''.join(row)}")
    lines.append(f"{'':>{label_w}} +{'-' * width}")
    x_left = f"{x_min:.4g}"
    x_right = f"{x_max:.4g}"
    pad = width - len(x_left) - len(x_right) - len(x_label)
    lines.append(
        f"{'':>{label_w}}  {x_left}{' ' * (max(1, pad // 2))}{x_label}"
        f"{' ' * (max(1, pad - pad // 2))}{x_right}"
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"{'':>{label_w}}  legend: {legend}   (= overlap)")
    return "\n".join(lines)
