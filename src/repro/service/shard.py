"""Tenant shards: one live, restartable scheduling kernel per tenant.

A :class:`TenantShard` is the synchronous, deterministic heart of the
service — the asyncio layers (:mod:`repro.service.supervisor`,
:mod:`repro.service.ingress`) only route messages to it.  Each shard
wraps a :class:`~repro.sim.engine.SimulationEngine` driven
*incrementally* through the kernel's service-mode API
(``start``/``admit_job``/``run_until``) instead of a closed-horizon
``run()``:

* **submissions** buffer into contention groups (one release instant per
  group); when a group flushes, the kernel first dispatches everything
  strictly before the release, then the
  :class:`~repro.service.admission.AdmissionController` decides the
  group against the live backlog, and survivors are admitted in
  submission order;
* **fault injections** push recorded ``kill``/``evict`` events (exact
  payloads kept for the replay), and ``crash`` raises a genuine
  :class:`~repro.errors.SimulatedCrash` carrying the last periodic
  snapshot — the supervisor's restart ladder takes it from there;
* **recovery** rebuilds a fresh engine with exactly the jobs the
  snapshot knows, restores it (which re-verifies the WAL tail), and
  re-applies the shard's op log — admissions and fault pushes recorded
  with the dispatch count at which they were applied; ops at or past the
  snapshot's dispatch count are exactly the ones the snapshot cannot
  know about.

Replay equivalence is the design invariant: the accepted jobs (in
admission order), the spec-built world, and the recorded fault pushes,
re-run through the closed-horizon engine, must reproduce the service
journal and result bit-identically (:mod:`repro.service.replay`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import obs as _obs
from repro.capacity.base import CapacityFunction
from repro.capacity.markov import TwoStateMarkovCapacity
from repro.capacity.piecewise import PiecewiseConstantCapacity
from repro.errors import (
    MessageError,
    RecoveryError,
    ServiceError,
    SimulatedCrash,
)
from repro.faults.execution import (
    ExecutionFault,
    ExecutionFaultSpec,
    apply_fault_transforms,
)
from repro.faults.spec import FaultSpec
from repro.service.admission import AdmissionController, ShedRecord
from repro.service.messages import (
    Advance,
    Close,
    InjectFault,
    Message,
    Submit,
)
from repro.sim.engine import SimulationEngine
from repro.sim.job import Job
from repro.sim.journal import EventJournal
from repro.sim.metrics import SimulationResult

__all__ = [
    "CapacitySpec",
    "TenantSpec",
    "TenantReport",
    "TenantShard",
    "make_scheduler",
    "SCHEDULER_FACTORIES",
]

_EPS = 1e-9


def _scheduler_factories() -> Dict[str, Any]:
    from repro.core import (
        AdmissionEDFScheduler,
        DoverScheduler,
        EDFScheduler,
        FCFSScheduler,
        GreedyDensityScheduler,
        LLFScheduler,
        VDoverScheduler,
    )

    return {
        "vdover": VDoverScheduler,
        "dover": DoverScheduler,
        "edf": EDFScheduler,
        "edf-ac": AdmissionEDFScheduler,
        "llf": LLFScheduler,
        "greedy": GreedyDensityScheduler,
        "fcfs": FCFSScheduler,
    }


#: Name → scheduler class (the CLI's policy names).
SCHEDULER_FACTORIES = _scheduler_factories


def make_scheduler(name: str, **kwargs: Any):
    """Build a fresh scheduler by CLI name (used twice per tenant: live
    shard and closed-horizon replay — both sides must construct
    identically)."""
    factories = _scheduler_factories()
    if name not in factories:
        raise ServiceError(
            f"unknown scheduler {name!r}; expected one of "
            f"{tuple(sorted(factories))}"
        )
    if name in ("vdover", "dover"):
        kwargs.setdefault("k", 7.0)  # the CLI's importance-ratio default
    if name == "dover":
        kwargs.setdefault("c_hat", 1.0)
    return factories[name](**kwargs)


@dataclass(frozen=True)
class CapacitySpec:
    """A rebuildable recipe for a tenant's capacity trajectory.

    The service must be able to construct the *same* stochastic world
    twice — once for the live shard and once for the closed-horizon
    replay — so tenants declare capacity as data, not as an object:

    * ``markov2`` — :class:`~repro.capacity.markov.TwoStateMarkovCapacity`
      with params ``low``, ``high``, ``mean_sojourn`` and the spec's seed;
    * ``constant`` — a flat :class:`PiecewiseConstantCapacity` at
      ``rate`` (optional declared ``lower``/``upper`` band);
    * ``piecewise`` — explicit ``breakpoints``/``rates`` lists.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("markov2", "constant", "piecewise"):
            raise ServiceError(
                f"unknown capacity kind {self.kind!r}; expected "
                "markov2 | constant | piecewise"
            )

    def build(self) -> CapacityFunction:
        p = dict(self.params)
        if self.kind == "markov2":
            return TwoStateMarkovCapacity(
                low=float(p.get("low", 1.0)),
                high=float(p.get("high", 35.0)),
                mean_sojourn=float(p.get("mean_sojourn", 1.0)),
                rng=np.random.default_rng(self.seed),
            )
        if self.kind == "constant":
            rate = float(p.get("rate", 1.0))
            return PiecewiseConstantCapacity(
                [0.0],
                [rate],
                lower=p.get("lower"),
                upper=p.get("upper"),
            )
        return PiecewiseConstantCapacity(
            list(p["breakpoints"]),
            list(p["rates"]),
            lower=p.get("lower"),
            upper=p.get("upper"),
        )


@dataclass(frozen=True)
class TenantSpec:
    """Everything needed to build one tenant's world — twice, identically.

    ``sensor_faults`` wrap what the tenant's scheduler observes
    (:class:`~repro.faults.spec.FaultSpec`, seeded ``fault_seed + i``);
    ``start_faults`` are execution faults armed at start
    (:class:`~repro.faults.execution.ExecutionFaultSpec` — kills and
    revocations; ``crash`` plans are refused here, forced crashes arrive
    through the ingress instead).
    """

    tenant: str
    horizon: float
    scheduler: str = "vdover"
    scheduler_kwargs: Mapping[str, Any] = field(default_factory=dict)
    capacity: CapacitySpec = field(
        default_factory=lambda: CapacitySpec("constant", {"rate": 1.0})
    )
    sensor_faults: Tuple[FaultSpec, ...] = ()
    start_faults: Tuple[ExecutionFaultSpec, ...] = ()
    fault_seed: int = 0
    queue_budget: int = 256
    snapshot_every: int = 32
    flush_every: int = 8
    fsync: bool = False

    def __post_init__(self) -> None:
        if not self.horizon > 0.0:
            raise ServiceError(f"horizon must be > 0, got {self.horizon!r}")
        for spec in self.start_faults:
            if spec.kind == "crash":
                raise ServiceError(
                    "crash plans cannot be start faults; inject forced "
                    "crashes through the ingress (fault op 'crash')"
                )

    # -- world construction (shared by live shard and replay) ----------
    def build_scheduler(self):
        return make_scheduler(self.scheduler, **dict(self.scheduler_kwargs))

    def build_capacity(self) -> CapacityFunction:
        """Fresh raw physics (execution-fault transforms apply to this;
        sensor wrappers go on top afterwards — see :meth:`wrap_sensors`)."""
        return self.capacity.build()

    def wrap_sensors(self, capacity: CapacityFunction) -> CapacityFunction:
        """Corrupt the sensing channel, deterministic per-fault seeds.

        Applied *after* execution-fault transforms: revocations change
        the physics, the sensors observe the changed physics."""
        for i, fault in enumerate(self.sensor_faults):
            capacity = fault.apply(capacity, seed=self.fault_seed + i)
        return capacity

    def build_start_faults(self) -> List[ExecutionFault]:
        faults: List[ExecutionFault] = []
        for i, spec in enumerate(self.start_faults):
            fault = spec.build(seed=self.fault_seed + 101 * (i + 1))
            if fault is not None:
                faults.append(fault)
        return faults


@dataclass
class TenantReport:
    """What one closed tenant hands back (input to the replay check)."""

    tenant: str
    spec: TenantSpec
    result: Optional[SimulationResult]
    accepted: Tuple[Job, ...]
    shed: Tuple[ShedRecord, ...]
    injected: Tuple[Tuple[float, tuple], ...]
    submitted: int
    recoveries: int
    forced_crashes: int
    journal: Optional[EventJournal]
    journal_path: Optional[Path]
    restarts: int = 0
    backoffs: Tuple[float, ...] = ()

    @property
    def lost_jids(self) -> Tuple[int, ...]:
        """Accepted jobs with no recorded outcome — must be empty for a
        healthy close (the zero-accepted-then-lost criterion)."""
        if self.result is None:
            return tuple(job.jid for job in self.accepted)
        outcomes = self.result.trace.outcomes
        return tuple(
            job.jid for job in self.accepted if job.jid not in outcomes
        )


class TenantShard:
    """One tenant's live kernel plus its admission and op-log state."""

    def __init__(
        self,
        spec: TenantSpec,
        *,
        journal_dir: "str | Path | None" = None,
    ) -> None:
        self.spec = spec
        self._journal_path: Optional[Path] = None
        self._shed_fh = None
        if journal_dir is not None:
            base = Path(journal_dir)
            base.mkdir(parents=True, exist_ok=True)
            self._journal_path = base / f"{spec.tenant}.journal.jsonl"
            self._shed_fh = (base / f"{spec.tenant}.shed.jsonl").open(
                "w", encoding="utf-8"
            )
        self._journal = EventJournal(
            self._journal_path,
            flush_every=spec.flush_every,
            fsync=spec.fsync,
        )
        self._built_faults = spec.build_start_faults()
        capacity = spec.build_capacity()
        self._admission = AdmissionController(
            spec.tenant,
            queue_budget=spec.queue_budget,
            c_lower=capacity.lower,
        )

        self._accepted: List[Job] = []
        self._accepted_jids: set = set()
        self._shed: List[ShedRecord] = []
        self._injected: List[Tuple[float, tuple]] = []
        # Op log: (dispatch_count at application, kind, data).  Recovery
        # re-applies every op at or past the restored snapshot's count.
        self._ops: List[Tuple[int, str, Any]] = []
        self._pending: List[Job] = []
        self._submitted = 0
        self._recoveries = 0
        self._forced_crashes = 0
        self._result: Optional[SimulationResult] = None
        self._closed = False

        self._engine = self._build_engine([], capacity)
        self._engine.kernel.start()

    # ------------------------------------------------------------------
    def _build_engine(
        self,
        jobs: Sequence[Job],
        capacity: Optional[CapacityFunction] = None,
    ) -> SimulationEngine:
        if capacity is None:
            # Recovery path: restore() replaces the capacity object from
            # the snapshot pickle, so a fresh spec-built one is only a
            # structurally-correct placeholder.
            capacity = self.spec.build_capacity()
        caps = apply_fault_transforms(
            [capacity], self._built_faults, self.spec.horizon
        )
        return SimulationEngine(
            jobs,
            self.spec.wrap_sensors(caps[0]),
            self.spec.build_scheduler(),
            horizon=self.spec.horizon,
            faults=self._built_faults,
            journal=self._journal,
            snapshot_every=self.spec.snapshot_every,
            event_queue="heap",
        )

    # -- accessors ------------------------------------------------------
    @property
    def kernel(self):
        return self._engine.kernel

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def depth(self) -> int:
        """Live backlog: accepted jobs without a recorded outcome."""
        return len(self._accepted) - len(self.kernel.trace.outcomes)

    @property
    def accepted_count(self) -> int:
        return len(self._accepted)

    @property
    def shed_count(self) -> int:
        return len(self._shed)

    # -- metrics helpers ------------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        octx = _obs.current()
        if octx is not None:
            octx.metrics.counter(name).inc(n)

    def _journal_shed(self, records: Sequence[ShedRecord]) -> None:
        if not records:
            return
        self._shed.extend(records)
        octx = _obs.current()
        for record in records:
            if self._shed_fh is not None:
                self._shed_fh.write(json.dumps(record.to_dict()) + "\n")
            if octx is not None:
                octx.metrics.counter("service.shed").inc()
                octx.metrics.counter(
                    "service.shed." + record.reason
                ).inc()
                octx.emit(
                    "service.shed",
                    record.time,
                    record.to_dict(),
                    replay=False,
                )
        if self._shed_fh is not None:
            self._shed_fh.flush()

    # ------------------------------------------------------------------
    # Message handling (synchronous, deterministic; may raise
    # SimulatedCrash — the supervisor owns recovery and retry)
    # ------------------------------------------------------------------
    def handle(self, message: Message) -> None:
        if self._closed:
            raise ServiceError(
                f"tenant {self.tenant!r} is closed; no further messages"
            )
        if isinstance(message, Submit):
            self.submit(message.job)
        elif isinstance(message, InjectFault):
            self.inject(message.op, message.time, retain=message.retain)
        elif isinstance(message, Advance):
            self.advance(message.time)
        elif isinstance(message, Close):
            self.close()
        else:  # pragma: no cover - defensive
            raise MessageError(f"unhandled message {message!r}")

    def submit(self, job: Job) -> None:
        """Buffer one submission into the current contention group.

        Groups are keyed by release instant: a submission at a new
        release flushes the previous group first, so shedding decisions
        always see the whole group that competes for the same slots."""
        self._submitted += 1
        self._count("service.submitted")
        if self._pending and self._pending[0].release != job.release:
            self._flush_pending()
        self._pending.append(job)

    def advance(self, time: float) -> None:
        """Flush the open group, then dispatch strictly before ``time``."""
        self._flush_pending()
        self.kernel.run_until(float(time))

    def inject(self, op: str, time: float, *, retain: float = 0.0) -> None:
        """Inject one execution fault at virtual ``time``.

        ``kill``/``evict`` push a FAULT event with the service's sentinel
        fault index (−1: the kernel's kill/evict handlers never consult
        the fault list) and record the exact payload for the replay.
        ``crash`` advances to ``time`` and dies for real — a
        :class:`~repro.errors.SimulatedCrash` carrying the last periodic
        snapshot propagates to the supervisor."""
        self._flush_pending()
        time = float(time)
        kernel = self.kernel
        if op == "crash":
            kernel.run_until(time)
            self._forced_crashes += 1
            self._count("service.injected.crash")
            raise SimulatedCrash(
                time=kernel.now,
                at_event=None,
                fault_index=-1,
                snapshot=kernel.last_snapshot,
            )
        if time < kernel.now - _EPS:
            raise MessageError(
                f"fault time {time:g} is behind the dispatch frontier "
                f"({kernel.now:g})"
            )
        if not 0.0 <= time <= self.spec.horizon:
            raise MessageError(
                f"fault time {time:g} outside [0, {self.spec.horizon:g}]"
            )
        if op == "kill":
            payload: tuple = ("kill", -1, float(retain))
        elif op == "evict":
            payload = ("evict", -1)
        else:  # pragma: no cover - parse_message guards
            raise MessageError(f"unknown fault op {op!r}")
        kernel.push_fault_event(time, payload)
        self._injected.append((time, payload))
        self._ops.append((kernel.dispatch_count, "push", (time, payload)))
        self._count("service.injected." + op)

    def close(self) -> TenantReport:
        """Finish the tenant: run to the horizon and build the report."""
        self._flush_pending()
        self._result = self._engine.run()
        self._closed = True
        self._journal.flush()
        if self._shed_fh is not None:
            self._shed_fh.close()
            self._shed_fh = None
        self._count("service.closed")
        return self.report()

    def report(self) -> TenantReport:
        return TenantReport(
            tenant=self.tenant,
            spec=self.spec,
            result=self._result,
            accepted=tuple(self._accepted),
            shed=tuple(self._shed),
            injected=tuple(self._injected),
            submitted=self._submitted,
            recoveries=self._recoveries,
            forced_crashes=self._forced_crashes,
            journal=self._journal,
            journal_path=self._journal_path,
        )

    # ------------------------------------------------------------------
    def _flush_pending(self) -> None:
        """Decide and admit the open contention group."""
        if not self._pending:
            return
        release = self._pending[0].release
        kernel = self.kernel
        # Resolve everything strictly before the group's release so the
        # backlog the admission decision sees is current.  A crash in
        # here leaves the group buffered — the supervisor's retry
        # re-runs the flush idempotently after recovery.
        kernel.run_until(release)
        batch = self._pending
        admit, shed = self._admission.plan(
            batch,
            depth=self.depth,
            frontier=kernel.now,
            horizon=self.spec.horizon,
            known_jids=self._accepted_jids,
        )
        self._pending = []
        self._journal_shed(shed)
        for job in admit:
            self._ops.append((kernel.dispatch_count, "admit", job))
            kernel.admit_job(job)
            self._accepted.append(job)
            self._accepted_jids.add(job.jid)
        self._count("service.admitted", len(admit))

    def shed_all_pending(self, reason: str) -> None:
        """Shed the open group without admitting (degraded shard)."""
        if self._pending:
            batch, self._pending = self._pending, []
            self._journal_shed(
                self._admission.shed_all(batch, reason, self.kernel.now)
            )

    def shed_one(self, job: Job, reason: str) -> None:
        """Record one out-of-band shed decision (circuit-open path)."""
        self._submitted += 1
        self._count("service.submitted")
        self._journal_shed(
            self._admission.shed_all([job], reason, self.kernel.now)
        )

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self, crash: BaseException) -> None:
        """Restore the last periodic snapshot and re-apply the op log.

        The fresh engine gets exactly the accepted jobs the snapshot
        knows about (in admission order); restoring re-verifies the WAL
        tail.  Ops recorded at or past the snapshot's dispatch count are
        the ones applied after it was taken — admissions and fault
        pushes the snapshot cannot contain — and are re-applied in
        order.  Everything else (events between the snapshot and the
        crash) re-materialises lazily on the next ``run_until``,
        verified record-by-record against the journal."""
        snapshot = getattr(crash, "snapshot", None)
        if snapshot is None:
            snapshot = self.kernel.last_snapshot
        if snapshot is None:
            raise RecoveryError(
                f"tenant {self.tenant!r} crashed before the first "
                "snapshot; nothing to restore from"
            ) from crash
        jobs = [
            job for job in self._accepted if job.jid in snapshot.status
        ]
        engine = self._build_engine(jobs)
        engine.restore(snapshot)
        kernel = engine.kernel
        base = snapshot.dispatch_count
        for dc, kind, data in self._ops:
            if dc < base:
                continue
            if kind == "admit":
                kernel.admit_job(data)
            else:  # "push"
                kernel.push_fault_event(*data)
        self._engine = engine
        self._recoveries += 1
        self._count("service.recoveries")
        octx = _obs.current()
        if octx is not None:
            octx.emit(
                "service.recover",
                kernel.now,
                {
                    "tenant": self.tenant,
                    "snapshot_dispatch": base,
                    "ops_reapplied": sum(
                        1 for dc, _, _ in self._ops if dc >= base
                    ),
                },
                replay=False,
            )
