"""The observability gate and the context instrumented code sees.

**Zero overhead when off.**  The whole subsystem hides behind one
module-level gate: :func:`current` returns the active :class:`ObsContext`
or ``None``.  Instrumented code captures it once (the kernel at
construction, schedulers through their binding context) and guards every
emission with a single ``if obs is not None`` — when observability is
disabled (the default) the hot path pays exactly that attribute check and
nothing else: no string formatting, no dict lookups, no allocation.  The
benchmark ``benchmarks/test_obs_overhead.py`` pins the cost of those
checks under 5% of the per-event dispatch budget, and the Figure-1
regression values are bit-identical with the gate open or closed (the
trace layer observes; it never perturbs).

Usage::

    from repro import obs

    with obs.session(ring=65536, profile=True) as octx:
        result = simulate(jobs, capacity, VDoverScheduler(k=7.0))
    octx.sink.export_jsonl("run.jsonl", metrics=octx.metrics.snapshot())

Sessions nest (a stack): the Monte-Carlo worker opens a per-replication
session even when the caller already holds one, and :func:`disable`
restores the outer context.  ``REPRO_OBS=1`` in the environment opens a
default session at import time (useful for ad-hoc CLI tracing).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceSink

__all__ = [
    "ObsContext",
    "ObsSpec",
    "current",
    "enabled",
    "enable",
    "disable",
    "session",
]


@dataclass(frozen=True)
class ObsSpec:
    """Picklable recipe for opening an observability session elsewhere
    (e.g. inside a Monte-Carlo worker process).

    Attributes
    ----------
    ring:
        Trace ring size for the worker-side sink.
    profile:
        Enable wall-clock dispatch-latency sampling.
    tail:
        How many trailing trace events to attach to a
        :class:`~repro.experiments.runner.FailedReplication`.
    """

    ring: int = 4096
    profile: bool = False
    tail: int = 25


class ObsContext:
    """What instrumented code holds: a trace sink, a metrics registry and
    the profiling flag.  Built by :func:`enable`; read-only thereafter."""

    __slots__ = ("sink", "metrics", "profile", "clock")

    def __init__(
        self,
        sink: Optional[TraceSink],
        metrics: MetricsRegistry,
        profile: bool = False,
    ) -> None:
        self.sink = sink
        self.metrics = metrics
        self.profile = bool(profile)
        #: monotonic wall clock used by the profiler (patchable in tests)
        self.clock = time.perf_counter

    # -- emission helpers ------------------------------------------------
    def emit(
        self,
        kind: str,
        t: float,
        data: Optional[Dict[str, Any]] = None,
        *,
        replay: bool = True,
    ) -> None:
        sink = self.sink
        if sink is not None:
            sink.emit(kind, t, data, replay=replay)

    def decision(
        self,
        policy: str,
        action: str,
        t: float,
        jid: Optional[int] = None,
        **extra: Any,
    ) -> None:
        """A scheduler decision with its reason (the trace's main course).

        ``action`` is a dotted verb like ``"admit.idle"``,
        ``"preempt.edf"``, ``"zero_laxity.demote"``,
        ``"revive.supplement"``; ``jid`` names the job acted on (when
        any).  Counted under ``scheduler.decisions.<action>`` as well, so
        decision mixes survive into merged Monte-Carlo metrics where the
        ring-bounded trace may not."""
        data: Dict[str, Any] = {"policy": policy, "action": action}
        if jid is not None:
            data["jid"] = jid
        if extra:
            data.update(extra)
        sink = self.sink
        if sink is not None:
            sink.emit("decision", t, data)
        self.metrics.counter("scheduler.decisions." + action).inc()

    @contextmanager
    def decisions(self, t: float) -> Iterator[None]:
        """Batch every trace emission in the block into **one** ring record.

        The batch kernel wraps each multi-event interrupt group in this
        context: releases, decision records and segment transitions emitted
        while it is open are buffered into a single ``kind="decisions"``
        container event (one ring slot per batch).  The container is
        exploded lazily on read/export (:class:`~repro.obs.trace.TraceSink`),
        so exported traces stay byte-identical with the scalar per-event
        path.  Metrics counters are unaffected — they increment per call as
        always.  No-op in metrics-only sessions (no sink)."""
        sink = self.sink
        if sink is None:
            yield
            return
        sink.begin_group(t)
        try:
            yield
        finally:
            sink.end_group()

    def snapshot_metrics(self) -> Dict[str, Any]:
        return self.metrics.snapshot()


#: Stack of active contexts; the top is what :func:`current` returns.
_STACK: List[ObsContext] = []


def current() -> Optional[ObsContext]:
    """The active context, or ``None`` when observability is off."""
    return _STACK[-1] if _STACK else None


def enabled() -> bool:
    return bool(_STACK)


def enable(
    *,
    ring: int = 65536,
    profile: bool = False,
    trace: bool = True,
) -> ObsContext:
    """Open a session and make it the active context (stacked).

    ``trace=False`` runs metrics-only (no ring buffer) — the cheapest
    enabled mode, used by metrics-only Monte-Carlo sweeps."""
    octx = ObsContext(
        TraceSink(ring=ring) if trace else None,
        MetricsRegistry(),
        profile=profile,
    )
    _STACK.append(octx)
    return octx


def disable() -> None:
    """Close the innermost session (restoring the enclosing one)."""
    if not _STACK:
        raise ObservabilityError("observability is not enabled")
    _STACK.pop()


@contextmanager
def session(
    *,
    ring: int = 65536,
    profile: bool = False,
    trace: bool = True,
) -> Iterator[ObsContext]:
    """Scoped :func:`enable` / :func:`disable` pair."""
    octx = enable(ring=ring, profile=profile, trace=trace)
    try:
        yield octx
    finally:
        # Pop *this* session specifically even if callees leaked one.
        while _STACK and _STACK[-1] is not octx:
            _STACK.pop()
        if _STACK:
            _STACK.pop()


def _maybe_enable_from_env() -> None:  # pragma: no cover - import-time knob
    raw = os.environ.get("REPRO_OBS", "")
    if raw and raw not in ("0", "false", "no", "off"):
        enable(profile=os.environ.get("REPRO_OBS_PROFILE", "") not in ("", "0"))


_maybe_enable_from_env()
