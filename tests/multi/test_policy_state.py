"""Snapshot-state protocol units: policies and dispatchers round-trip.

The end-to-end crash-recovery suites prove bit-identity through the
engine; these units pin the protocol itself — ``get_state`` is picklable
plain data, ``set_state`` restores it exactly, and cross-type restores
fail loudly instead of silently corrupting a recovery.
"""

from __future__ import annotations

import pickle

import pytest

from repro.cloud.cluster import (
    BestFitDispatcher,
    LeastWorkDispatcher,
    RoundRobinDispatcher,
)
from repro.errors import RecoveryError
from repro.sim.job import Job


def _job(jid: int, release: float, workload: float = 2.0) -> Job:
    return Job(
        jid=jid,
        release=release,
        workload=workload,
        deadline=release + 10.0,
        value=workload,
    )


class TestDispatcherState:
    def test_round_robin_roundtrip(self):
        d = RoundRobinDispatcher()
        d.reset(3, [1.0, 1.0, 1.0])
        routed = [d.route(_job(i, float(i))) for i in range(4)]
        assert routed == [0, 1, 2, 0]

        state = pickle.loads(pickle.dumps(d.get_state()))
        clone = RoundRobinDispatcher()
        clone.reset(3, [1.0, 1.0, 1.0])
        clone.set_state(state)
        assert [clone.route(_job(10 + i, 5.0)) for i in range(3)] == [
            d.route(_job(20 + i, 5.0)) for i in range(3)
        ]

    @pytest.mark.parametrize("cls", [LeastWorkDispatcher, BestFitDispatcher])
    def test_backlog_dispatchers_roundtrip(self, cls):
        d = cls()
        d.reset(2, [1.0, 2.0])
        for i in range(6):
            d.route(_job(i, 0.5 * i, workload=1.0 + i))

        state = pickle.loads(pickle.dumps(d.get_state()))
        clone = cls()
        clone.reset(2, [1.0, 2.0])
        clone.set_state(state)
        assert clone._backlog == d._backlog
        assert clone._last_t == d._last_t
        # Identical future decisions.
        probe = _job(99, 4.0, workload=3.0)
        assert clone.route(probe) == d.route(probe)

    def test_cross_type_restore_rejected(self):
        d = RoundRobinDispatcher()
        d.reset(2, [1.0, 1.0])
        state = d.get_state()
        other = LeastWorkDispatcher()
        other.reset(2, [1.0, 1.0])
        with pytest.raises(RecoveryError):
            other.set_state(state)


class TestMultiSchedulerState:
    def _bound(self, scheduler, jobs, m: int = 2):
        """Bind ``scheduler`` to a real engine context without running."""
        from repro.capacity.piecewise import PiecewiseConstantCapacity
        from repro.multi import MultiprocessorEngine

        caps = [
            PiecewiseConstantCapacity([0.0], [5.0], lower=1.0, upper=5.0)
            for _ in range(m)
        ]
        engine = MultiprocessorEngine(jobs, caps, scheduler)
        # Bind outside run_loop, exactly as restore() does.
        kernel = engine.kernel
        scheduler.bind(kernel._make_context(kernel))
        return scheduler

    def test_global_policy_state_is_plain_data(self):
        from repro.multi import GlobalEDFScheduler

        jobs = [_job(i, float(i)) for i in range(4)]
        sched = self._bound(GlobalEDFScheduler(), jobs)
        for job in jobs[:3]:
            sched.on_release(job)
        state = sched.get_state()
        assert state["scheduler"] == "GlobalEDFScheduler"
        assert state["policy"]["ready"] == sorted(state["policy"]["ready"])
        pickle.dumps(state)  # must be picklable plain data

        clone = self._bound(GlobalEDFScheduler(), jobs)
        clone.set_state(state, {j.jid: j for j in jobs})
        assert clone.get_state() == state

    def test_global_vdover_state_roundtrip(self):
        from repro.multi import GlobalVDoverScheduler

        jobs = [_job(i, 0.0) for i in range(5)]
        sched = self._bound(GlobalVDoverScheduler(k=7.0), jobs)
        state = sched.get_state()
        assert state["scheduler"] == "GlobalVDoverScheduler"
        assert set(state["policy"]) == {"regular", "supp", "supp_ids", "rate"}
        pickle.dumps(state)

        # Hand-build a mid-run state and restore it: queues must be
        # repopulated with the exact Job objects, pool membership intact.
        state["policy"]["regular"] = [0, 2]
        state["policy"]["supp"] = [1]
        state["policy"]["supp_ids"] = [1]
        clone = self._bound(GlobalVDoverScheduler(k=7.0), jobs)
        clone.set_state(state, {j.jid: j for j in jobs})
        assert clone.get_state() == state

    def test_partitioned_state_nests_dispatcher_and_subs(self):
        from repro.core import VDoverScheduler
        from repro.multi import PartitionedScheduler

        jobs = [_job(i, float(i)) for i in range(6)]
        sched = self._bound(
            PartitionedScheduler(
                RoundRobinDispatcher(), lambda: VDoverScheduler(k=7.0)
            ),
            jobs,
        )
        state = sched.get_state()
        assert state["policy"]["dispatcher"]["dispatcher"] == "RoundRobinDispatcher"
        assert len(state["policy"]["subs"]) == 2
        assert all(
            s["scheduler"] == "VDoverScheduler" for s in state["policy"]["subs"]
        )
        assert state["policy"]["proc_of"] == {}
        pickle.dumps(state)

    def test_cross_scheduler_restore_rejected(self):
        from repro.multi import GlobalDensityScheduler, GlobalEDFScheduler

        jobs = [_job(0, 0.0)]
        sched = self._bound(GlobalEDFScheduler(), jobs)
        state = sched.get_state()
        other = self._bound(GlobalDensityScheduler(), jobs)
        with pytest.raises(RecoveryError):
            other.set_state(state, {0: jobs[0]})
