"""Multiprocessor scheduling interface.

The paper's model is a single processor; its closing remark points at
"cloud-wise scheduling ... with extensions".  :mod:`repro.cloud.cluster`
covers the *partitioned* extension (route once, schedule locally); this
package covers the *global* one — m processors, one ready pool, free
preemption **and migration** (the standard fluid assumptions of global
real-time scheduling).

A :class:`MultiScheduler` handles the same interrupt types as the
single-processor :class:`~repro.sim.scheduler.Scheduler` — releases, job
ends, alarms, timers and (under execution-fault injection) evictions —
but each handler returns a full **assignment**: a sequence of length
``n_procs`` whose ``p``-th entry is the job processor ``p`` should run
(``None`` = idle).  A job may appear at most once per assignment (no
intra-job parallelism — the kernel enforces it).

Since the engines share one scheduling kernel (:mod:`repro.kernel`),
multiprocessor policies also participate in crash recovery: they expose
the same :meth:`~MultiScheduler.get_state` / :meth:`~MultiScheduler.set_state`
jid-keyed snapshot protocol as the seven single-processor schedulers.

:class:`SingleProcessorAdapter` lifts any single-processor
:class:`~repro.sim.scheduler.Scheduler` to the ``m = 1`` multiprocessor
interface — the kernel-parity suite uses it to prove the multi engine at
``m = 1`` is bit-identical to the historical single-processor engine.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence, Tuple

from repro.errors import RecoveryError
from repro.sim.job import Job
from repro.sim.scheduler import Scheduler, SchedulerContext

__all__ = [
    "MultiSchedulerContext",
    "MultiScheduler",
    "Assignment",
    "SingleProcessorAdapter",
]

#: One job (or idle) per processor.
Assignment = Sequence[Optional[Job]]


class MultiSchedulerContext(abc.ABC):
    """Online information available to a global scheduler."""

    #: Active observability context (:class:`repro.obs.ObsContext`) or
    #: ``None`` when tracing is disabled (the default) — the same contract
    #: as :attr:`repro.sim.scheduler.SchedulerContext.obs`.
    obs = None

    @abc.abstractmethod
    def now(self) -> float: ...

    @property
    @abc.abstractmethod
    def n_procs(self) -> int: ...

    @abc.abstractmethod
    def remaining(self, job: Job) -> float:
        """Remaining workload of a released, unfinished job."""

    @abc.abstractmethod
    def running(self) -> Tuple[Optional[Job], ...]:
        """Current assignment (job per processor, ``None`` = idle)."""

    @abc.abstractmethod
    def capacity_now(self, proc: int) -> float:
        """Instantaneous rate of processor ``proc``."""

    @abc.abstractmethod
    def bounds(self, proc: int) -> Tuple[float, float]:
        """Declared ``(c̲, c̄)`` of processor ``proc``."""

    @abc.abstractmethod
    def set_alarm(self, job: Job, time: float, tag: str = "alarm") -> None: ...

    @abc.abstractmethod
    def cancel_alarm(self, job: Job) -> None: ...

    @abc.abstractmethod
    def set_timer(self, time: float, tag: str) -> None:
        """Arm a job-independent timer interrupt (``on_timer``)."""


class MultiScheduler(abc.ABC):
    """Base class for global multiprocessor policies."""

    name = "multi-scheduler"

    #: Batch-protocol gating flags (see :mod:`repro.sim.batchproto`).
    #: Conservative defaults: a multi policy must opt in to ``plan()``
    #: by setting ``batch_capable`` and implementing it with assignment
    #: decisions.
    batch_capable = False
    batch_obs_exact = False
    batch_pure_completions = False

    def __init__(self) -> None:
        self.ctx: MultiSchedulerContext = None  # type: ignore[assignment]

    def bind(self, ctx: MultiSchedulerContext) -> None:
        self.ctx = ctx
        self.reset()

    def reset(self) -> None:
        """Reinitialise per-run state."""

    @abc.abstractmethod
    def on_release(self, job: Job) -> Assignment: ...

    @abc.abstractmethod
    def on_job_end(self, job: Job, completed: bool) -> Assignment: ...

    def on_alarm(self, job: Job, tag: str) -> Assignment:
        return self.ctx.running()

    def on_timer(self, tag: str) -> Assignment:
        """A job-independent timer fired.  Default: keep current."""
        return self.ctx.running()

    def on_eviction(self, job: Job) -> Assignment:
        """``job`` was forcibly evicted from its processor by an execution
        fault (VM revocation, job kill with retained progress).  The kernel
        has already closed the running segment and returned the job to
        READY; the scheduler must requeue it and pick successors.

        Default: treat the evicted job like a fresh arrival — correct for
        stateless ready-pool policies whose release handler just inserts
        and re-evaluates.  Policies with admission side effects override
        this."""
        return self.on_release(job)

    # ------------------------------------------------------------------
    # Snapshot/restore protocol (crash recovery; mirrors Scheduler)
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Capture the policy's per-run state for an engine snapshot.

        Returns a picklable dict; job references are stored as jids so the
        restoring side re-binds them to its own job objects."""
        return {
            "scheduler": type(self).__name__,
            "policy": self._policy_state(),
        }

    def set_state(self, state: dict, jobs_by_id: "dict[int, Job]") -> None:
        """Restore per-run state captured by :meth:`get_state`.

        Must be called after :meth:`bind` (so queues exist, freshly
        reset)."""
        if state.get("scheduler") != type(self).__name__:
            raise RecoveryError(
                f"snapshot was taken from {state.get('scheduler')!r}, "
                f"cannot restore into {type(self).__name__}"
            )
        self._restore_policy_state(state["policy"], jobs_by_id)

    def _policy_state(self) -> dict:
        """Subclass hook: capture policy-specific per-run state (ready
        pools, partitions, rate estimates) as a picklable, jid-keyed
        dict."""
        raise RecoveryError(
            f"{type(self).__name__} does not support snapshot/restore"
        )

    def _restore_policy_state(
        self, state: dict, jobs_by_id: "dict[int, Job]"
    ) -> None:
        """Subclass hook: inverse of :meth:`_policy_state`."""
        raise RecoveryError(
            f"{type(self).__name__} does not support snapshot/restore"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class _SingleProcessorView(SchedulerContext):
    """Present processor 0 of a multiprocessor context as the whole world."""

    def __init__(self, mctx: MultiSchedulerContext) -> None:
        self._mctx = mctx
        self.obs = mctx.obs  # pass the observability gate through the view

    def now(self) -> float:
        return self._mctx.now()

    def remaining(self, job: Job) -> float:
        return self._mctx.remaining(job)

    def capacity_now(self) -> float:
        return self._mctx.capacity_now(0)

    @property
    def bounds(self) -> Tuple[float, float]:
        return self._mctx.bounds(0)

    def current_job(self) -> Optional[Job]:
        return self._mctx.running()[0]

    def set_alarm(self, job: Job, time: float, tag: str = "claxity") -> None:
        self._mctx.set_alarm(job, time, tag)

    def cancel_alarm(self, job: Job) -> None:
        self._mctx.cancel_alarm(job)

    def set_timer(self, time: float, tag: str) -> None:
        self._mctx.set_timer(time, tag)


class SingleProcessorAdapter(MultiScheduler):
    """Run a single-processor :class:`~repro.sim.scheduler.Scheduler` on
    processor 0 of an ``m = 1`` multiprocessor engine.

    Every interrupt is forwarded to the wrapped policy through a
    processor-0 view of the context, and its ``Optional[Job]`` decision is
    lifted to the one-slot assignment ``[decision]``.  Because the engines
    share one kernel, the resulting run is *bit-identical* to the
    single-processor engine driving the same policy (the parity suite in
    ``tests/multi/test_kernel_parity.py`` pins this)."""

    def __init__(self, inner: Scheduler) -> None:
        super().__init__()
        self.inner = inner
        self.name = inner.name

    def bind(self, ctx: MultiSchedulerContext) -> None:
        if ctx.n_procs != 1:
            raise RecoveryError(
                f"SingleProcessorAdapter requires m = 1, got m = {ctx.n_procs}"
            )
        self.ctx = ctx
        self.inner.bind(_SingleProcessorView(ctx))
        self.name = self.inner.name
        self.reset()

    def on_release(self, job: Job) -> Assignment:
        return [self.inner.on_release(job)]

    def on_job_end(self, job: Job, completed: bool) -> Assignment:
        return [self.inner.on_job_end(job, completed)]

    def on_alarm(self, job: Job, tag: str) -> Assignment:
        return [self.inner.on_alarm(job, tag)]

    def on_timer(self, tag: str) -> Assignment:
        return [self.inner.on_timer(tag)]

    def on_eviction(self, job: Job) -> Assignment:
        return [self.inner.on_eviction(job)]

    # -- batch protocol (forwarded when the inner policy supports it) ----
    @property
    def batch_capable(self) -> bool:  # type: ignore[override]
        return bool(getattr(self.inner, "batch_capable", False))

    @property
    def batch_obs_exact(self) -> bool:  # type: ignore[override]
        return bool(getattr(self.inner, "batch_obs_exact", False))

    @property
    def batch_pure_completions(self) -> bool:  # type: ignore[override]
        return bool(getattr(self.inner, "batch_pure_completions", False))

    def plan(self, view):
        """Lift the inner policy's batch decisions to one-slot assignments."""
        from repro.sim.batchproto import BatchDecisions

        decisions = self.inner.plan(view)
        return BatchDecisions(
            [[d] for d in decisions.desired], decisions.obs
        )

    def on_completions(self, view) -> None:
        self.inner.on_completions(view)

    def _policy_state(self) -> dict:
        return {"inner": self.inner.get_state()}

    def _restore_policy_state(
        self, state: dict, jobs_by_id: "dict[int, Job]"
    ) -> None:
        self.inner.set_state(state["inner"], jobs_by_id)
