"""Deterministic admission control and load shedding for tenant shards.

When a shard is degraded (circuit breaker open) or its backlog exceeds
its queue budget, new work must be *shed* — and shed deterministically,
so a service-mode run stays replay-equivalent and two operators looking
at the same journal agree on why each job was rejected.

The policy mirrors V-Dover's value reasoning: when a contention group
(all submissions sharing one release instant) does not fit in the
remaining budget, the jobs shed first are the ones V-Dover would bet on
last — **lowest value density** (``value / workload``) first, breaking
ties toward **largest laxity** (the slackest job loses: it has the best
chance of being resubmitted and still making its deadline), then toward
largest jid.  Structural rejections (duplicate jid, release behind the
dispatch frontier, release past the horizon) are decided per job before
the density ranking and are deterministic by construction.

Every decision is a :class:`ShedRecord` — the shard journals them all
and counts them in :mod:`repro.obs` metrics; the replay-parity check
uses the records to prove shed accounting (``submitted = accepted +
shed``, no shed job in the outcomes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.sim.job import Job

__all__ = ["ShedRecord", "AdmissionController", "SHED_REASONS"]

#: The closed set of shed reasons (stable strings: journaled and counted).
SHED_REASONS = (
    "queue_budget",
    "circuit_open",
    "duplicate_jid",
    "stale_release",
    "beyond_horizon",
)


@dataclass(frozen=True)
class ShedRecord:
    """One journaled shed decision."""

    tenant: str
    jid: int
    reason: str  # one of SHED_REASONS
    time: float  # dispatch frontier when the decision was made
    value: float
    workload: float
    density: float
    laxity: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant,
            "jid": self.jid,
            "reason": self.reason,
            "time": self.time,
            "value": self.value,
            "workload": self.workload,
            "density": self.density,
            "laxity": self.laxity,
        }


class AdmissionController:
    """Pure admission policy for one tenant shard.

    Parameters
    ----------
    tenant:
        Label stamped on every shed record.
    queue_budget:
        Maximum backlog (admitted-but-unresolved jobs) the shard will
        carry.  A contention group that would push the backlog past the
        budget is trimmed by the lowest-laxity-density rule.
    c_lower:
        The tenant capacity's guaranteed floor ``c̲`` — laxity at release
        is ``deadline − release − workload / c̲``, the same conservative
        measure the paper's schedulers use.
    """

    def __init__(
        self, tenant: str, *, queue_budget: int, c_lower: float
    ) -> None:
        if queue_budget < 1:
            raise ValueError(f"queue_budget must be >= 1, got {queue_budget!r}")
        if not c_lower > 0.0:
            raise ValueError(f"c_lower must be > 0, got {c_lower!r}")
        self.tenant = tenant
        self.queue_budget = int(queue_budget)
        self.c_lower = float(c_lower)

    # ------------------------------------------------------------------
    def _record(self, job: Job, reason: str, frontier: float) -> ShedRecord:
        return ShedRecord(
            tenant=self.tenant,
            jid=job.jid,
            reason=reason,
            time=frontier,
            value=job.value,
            workload=job.workload,
            density=job.value / job.workload,
            laxity=job.deadline - job.release - job.workload / self.c_lower,
        )

    def shed_all(
        self, batch: Sequence[Job], reason: str, frontier: float
    ) -> List[ShedRecord]:
        """Unconditionally shed a whole batch (degraded shard)."""
        return [self._record(job, reason, frontier) for job in batch]

    def plan(
        self,
        batch: Sequence[Job],
        *,
        depth: int,
        frontier: float,
        horizon: float,
        known_jids: "set[int]",
    ) -> Tuple[List[Job], List[ShedRecord]]:
        """Decide one contention group: returns ``(admit, shed)``.

        ``depth`` is the shard's current backlog, ``frontier`` the
        kernel's dispatch frontier, ``known_jids`` every jid accepted so
        far.  ``admit`` preserves submission order — the order jobs are
        admitted into the kernel, which the replay contract relies on.
        """
        shed: List[ShedRecord] = []
        eligible: List[Job] = []
        seen_in_batch: set = set()
        for job in batch:
            if job.jid in known_jids or job.jid in seen_in_batch:
                shed.append(self._record(job, "duplicate_jid", frontier))
                continue
            if job.release < frontier:
                shed.append(self._record(job, "stale_release", frontier))
                continue
            if job.release > horizon:
                shed.append(self._record(job, "beyond_horizon", frontier))
                continue
            seen_in_batch.add(job.jid)
            eligible.append(job)

        slots = self.queue_budget - depth
        if slots < len(eligible):
            # Rank shed candidates: lowest density first, then largest
            # laxity, then largest jid.  Deterministic and total.
            overflow = len(eligible) - max(slots, 0)
            ranked = sorted(
                eligible,
                key=lambda j: (
                    j.value / j.workload,
                    -(j.deadline - j.release - j.workload / self.c_lower),
                    -j.jid,
                ),
            )
            dropped = {job.jid for job in ranked[:overflow]}
            shed.extend(
                self._record(job, "queue_budget", frontier)
                for job in eligible
                if job.jid in dropped
            )
            eligible = [job for job in eligible if job.jid not in dropped]
        return eligible, shed
