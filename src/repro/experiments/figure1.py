"""Experiment E2: the paper's Figure 1 — value versus time, λ = 6.

Four panels, one per Dover estimate ``ĉ ∈ {1, 10.5, 24.5, 35}``; each panel
plots the cumulative value accrued over time by V-Dover and by Dover(ĉ) on
the *same* realized instance.  The qualitative signatures the paper reads
off the figure (and the regression tests assert):

* panel ĉ = 1: identical trajectories while ``c(t) = 1`` (V-Dover reduces
  to Dover at constant conservative capacity), V-Dover pulling ahead while
  ``c(t) = 35`` (supplement jobs ride the spike);
* panels ĉ ∈ {10.5, 24.5, 35}: similar trajectories while ``c(t) = 35``,
  Dover falling behind while ``c(t) = 1`` (it overestimates the capacity
  and overcommits);
* V-Dover ends at or above Dover in every panel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.analysis.tables import render_series
from repro.capacity.markov import TwoStateMarkovCapacity
from repro.core.dover import DoverScheduler
from repro.core.vdover import VDoverScheduler
from repro.sim.engine import simulate
from repro.sim.job import total_value
from repro.workload.poisson import PoissonWorkload

__all__ = ["Figure1Config", "Figure1Panel", "Figure1Result", "run_figure1"]


@dataclass(frozen=True)
class Figure1Config:
    lam: float = 6.0
    c_hats: Sequence[float] = (1.0, 10.5, 24.5, 35.0)
    k: float = 7.0
    low: float = 1.0
    high: float = 35.0
    expected_jobs: float = 2000.0
    seed: int = 1106
    #: Scheduler dispatch protocol (``"scalar"`` / ``"batch"`` / ``"auto"``,
    #: see :mod:`repro.sim.batchproto`).  Results are bit-identical under
    #: every choice; the batch path trades per-event handler calls for
    #: vectorized group decisions.
    protocol: str = "scalar"

    @property
    def horizon(self) -> float:
        return self.expected_jobs / self.lam


@dataclass
class Figure1Panel:
    """One sub-figure: the paired trajectories for one ĉ."""

    c_hat: float
    vdover_series: list[tuple[float, float]]
    dover_series: list[tuple[float, float]]
    generated_value: float
    capacity_path: list[tuple[float, float, float]]  # (start, end, rate)

    @property
    def vdover_final(self) -> float:
        return self.vdover_series[-1][1]

    @property
    def dover_final(self) -> float:
        return self.dover_series[-1][1]

    def lead_series(self) -> list[tuple[float, float]]:
        """V-Dover's cumulative lead over Dover, sampled at the union of
        both series' time points (step interpolation)."""
        times = sorted({t for t, _ in self.vdover_series} | {t for t, _ in self.dover_series})

        def at(series: list[tuple[float, float]], t: float) -> float:
            val = 0.0
            for when, cum in series:
                if when <= t:
                    val = cum
                else:
                    break
            return val

        return [(t, at(self.vdover_series, t) - at(self.dover_series, t)) for t in times]

    def render(self, max_points: int = 15) -> str:
        head = (
            f"Figure 1 panel ĉ={self.c_hat:g}: "
            f"V-Dover final={self.vdover_final:.1f}, "
            f"Dover final={self.dover_final:.1f}, "
            f"generated={self.generated_value:.1f}"
        )
        body = [
            render_series(self.vdover_series, name="  V-Dover", max_points=max_points),
            render_series(self.dover_series, name=f"  Dover(ĉ={self.c_hat:g})", max_points=max_points),
        ]
        return "\n".join([head] + body)


@dataclass
class Figure1Result:
    config: Figure1Config
    panels: list[Figure1Panel] = field(default_factory=list)

    def render(self) -> str:
        return "\n\n".join(panel.render() for panel in self.panels)


def run_figure1(config: Figure1Config | None = None) -> Figure1Result:
    """Reproduce Figure 1: a single seeded instance per panel, with the
    same instance shared by both algorithms within a panel."""
    config = config or Figure1Config()
    out = Figure1Result(config=config)
    workload = PoissonWorkload(
        lam=config.lam,
        horizon=config.horizon,
        density_range=(1.0, config.k),
        c_lower=config.low,
    )
    root = np.random.SeedSequence(config.seed)
    for panel_seed, c_hat in zip(root.spawn(len(config.c_hats)), config.c_hats):
        job_seed, cap_seed = panel_seed.spawn(2)
        jobs = workload.generate(np.random.default_rng(job_seed))
        capacity = TwoStateMarkovCapacity(
            config.low,
            config.high,
            mean_sojourn=config.horizon / 4.0,
            rng=np.random.default_rng(cap_seed),
        )
        vd = simulate(
            jobs, capacity, VDoverScheduler(k=config.k), protocol=config.protocol
        )
        dv = simulate(
            jobs,
            capacity,
            DoverScheduler(k=config.k, c_hat=c_hat),
            protocol=config.protocol,
        )
        out.panels.append(
            Figure1Panel(
                c_hat=c_hat,
                vdover_series=vd.value_series(),
                dover_series=dv.value_series(),
                generated_value=total_value(jobs),
                capacity_path=capacity.realized_path(vd.horizon),
            )
        )
    return out
