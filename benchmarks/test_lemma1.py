"""E10 — empirical verification of Lemma 1 (the analysis workhorse).

Lemma 1 bounds the capacity available in each *regular interval* by the
value V-Dover banked in it: ``∫ c <= regval + clval/(β − 1)``.  The lemma
is the step that converts capacity into value in the competitive-ratio
proof; here it is checked interval-by-interval over many Monte-Carlo runs
of the paper's workload, and the tightness of the bound is reported.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import render_table
from repro.capacity import TwoStateMarkovCapacity
from repro.core import VDoverScheduler
from repro.experiments.runner import default_mc_runs
from repro.sim import simulate
from repro.workload import PoissonWorkload


def test_lemma1_empirical(archive, benchmark):
    runs = default_mc_runs(30)
    rows = []
    grand_total = 0
    for lam in (4.0, 8.0, 12.0):
        H = 400.0 / lam
        slacks = []
        n_intervals = 0
        for seed in range(runs):
            jobs = PoissonWorkload(lam=lam, horizon=H).generate(seed)
            capacity = TwoStateMarkovCapacity(
                1.0, 35.0, mean_sojourn=H / 4, rng=seed + 7_000
            )
            sched = VDoverScheduler(k=7.0)
            simulate(jobs, capacity, sched)
            for iv in sched.regular_intervals:
                work = capacity.integrate(iv.start, iv.end)
                bound = iv.lemma1_bound(sched.beta)
                assert work <= bound + 1e-6, (
                    f"Lemma 1 violated (lam={lam}, seed={seed}): "
                    f"work={work}, bound={bound}"
                )
                if bound > 0:
                    slacks.append(work / bound)
                n_intervals += 1
        grand_total += n_intervals
        rows.append(
            [
                f"{lam:g}",
                n_intervals,
                float(np.mean(slacks)),
                float(np.quantile(slacks, 0.95)),
                float(np.max(slacks)),
            ]
        )

    archive(
        "lemma1",
        render_table(
            ["lambda", "intervals", "mean work/bound", "p95", "max"],
            rows,
            title=(
                f"Lemma 1 — interval workload vs value bound over "
                f"{grand_total} regular intervals (must stay <= 1)"
            ),
        ),
    )

    jobs = PoissonWorkload(lam=8.0, horizon=50.0).generate(0)
    capacity = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=12.5, rng=1)

    def run_and_collect():
        sched = VDoverScheduler(k=7.0)
        simulate(jobs, capacity, sched)
        return len(sched.regular_intervals)

    benchmark(run_and_collect)
