"""Diurnal (sinusoidal) capacity, discretised onto a piecewise grid.

Cloud residual capacity commonly follows a day/night pattern: primary load
peaks during business hours, leaving little room for secondary jobs, and
ebbs at night.  :class:`SinusoidalCapacity` models this as

    c(t) = mid - amp * sin(2π (t - phase) / period)

(so capacity is *low* when primary load is high early in the period), then
samples it onto a uniform piecewise-constant grid so that all engine
queries stay exact.  The grid resolution trades fidelity for speed; the
default of 64 steps per period keeps the discretisation error of the
integral under 0.1% for the experiments shipped here.

Because the quantised approximation is periodic, its prefix-sum capacity
index (see :mod:`repro.capacity.prefix`) collapses to a *segment cache*
over a single period: a cumulative-work array ``pref[i] = ∫₀^{i·dt} c``
plus the total work per period.  ``cumulative`` is then O(1) (whole
periods in closed form, the remainder via the cache) and ``advance`` is
one :func:`bisect.bisect_right` inside the cached period — no linear
rescan of grid cells, no matter how far out the query lands.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterator

from repro.capacity.base import CapacityFunction, Piece
from repro.errors import CapacityError

__all__ = ["SinusoidalCapacity"]


class SinusoidalCapacity(CapacityFunction):
    """Periodic piecewise-constant approximation of a sinusoid.

    Parameters
    ----------
    low, high:
        Extremes of the sinusoid; these are also the declared bounds.
        Step values are clamped into ``[low, high]`` so that 1-ulp
        arithmetic drift in ``mid ± amp·sin(…)`` can never violate the
        declared band.
    period:
        Period of the oscillation.
    phase:
        Time offset of the pattern.
    steps_per_period:
        Number of constant pieces used to discretise one period.
    """

    supports_prefix_index = True

    def __init__(
        self,
        low: float,
        high: float,
        period: float,
        *,
        phase: float = 0.0,
        steps_per_period: int = 64,
    ) -> None:
        if low <= 0.0 or high <= low:
            raise CapacityError(f"need 0 < low < high, got low={low!r}, high={high!r}")
        if period <= 0.0:
            raise CapacityError(f"period must be positive: {period!r}")
        if steps_per_period < 2:
            raise CapacityError("steps_per_period must be at least 2")
        super().__init__(low, high)
        self._mid = 0.5 * (low + high)
        self._amp = 0.5 * (high - low)
        self._period = float(period)
        self._phase = float(phase)
        self._n = int(steps_per_period)
        self._dt = self._period / self._n
        # Precompute one period of step values (midpoint rule per step),
        # clamped into the declared band (audit: derived floats may drift
        # one ulp past [low, high]).
        self._steps = [
            min(max(self._analytic(self._dt * (i + 0.5)), low), high)
            for i in range(self._n)
        ]
        # Segment cache: prefix sums over one period's grid cells.
        # pref[i] = ∫_0^{i·dt} c;  pref[n] = work per full period.
        pref = [0.0]
        for v in self._steps:
            pref.append(pref[-1] + self._dt * v)
        self._pref = pref
        self._period_work = pref[-1]

    def _analytic(self, t: float) -> float:
        return self._mid - self._amp * math.sin(
            2.0 * math.pi * (t - self._phase) / self._period
        )

    def _cell(self, rem: float) -> int:
        """Grid-cell index of a period remainder, in ``[0, n]``.

        Cell boundaries are the floats ``fl(i·dt)``, which can land an ulp
        *below* the real product; re-dividing such a boundary by ``dt``
        then yields a quotient a few ulps under ``i`` and a truncating
        ``int`` would misfile the whole next cell under the previous step.
        The snap is therefore *relative* (one part in 10⁹ of a cell), so
        every routine that needs "which cell is ``rem`` in" — ``value``,
        ``pieces``, ``cumulative``, ``next_change`` — agrees at boundary
        slivers.  A return of ``n`` means "the period boundary itself"
        (callers wrap it into period ``k + 1``, cell 0).
        """
        i = int(rem / self._dt)
        if (i + 1) * self._dt - rem <= 1e-9 * self._dt:
            i += 1
        return min(i, self._n)

    def _step_index(self, t: float) -> int:
        return self._cell(t % self._period) % self._n

    def _split(self, t: float) -> tuple[int, float]:
        """Decompose ``t`` into (whole periods, remainder ∈ [0, period))."""
        rem = t % self._period  # exact (fmod) for t >= 0
        k = int(round((t - rem) / self._period))
        return k, rem

    # ------------------------------------------------------------------
    def value(self, t: float) -> float:
        if t < 0.0:
            raise CapacityError(f"capacity undefined for t < 0: {t!r}")
        return self._steps[self._step_index(t)]

    def pieces(self, t0: float, t1: float) -> Iterator[Piece]:
        if t1 <= t0:
            return
        if t0 < 0.0:
            raise CapacityError(f"capacity undefined for t < 0: {t0!r}")
        # Walk (period, cell) pairs explicitly instead of re-deriving the
        # cell from each float start: boundary arithmetic then agrees with
        # `cumulative`'s cell decomposition by construction.
        k, rem = self._split(t0)
        i = self._cell(rem)
        if i >= self._n:
            k, i = k + 1, 0
        start = t0
        while start < t1:
            if i + 1 >= self._n:
                end = (k + 1) * self._period
            else:
                end = k * self._period + (i + 1) * self._dt
            if end > t1:
                end = t1
            if end > start:
                yield (start, end, self._steps[i])
                start = end
            i += 1
            if i >= self._n:
                k, i = k + 1, 0

    # ------------------------------------------------------------------
    # Indexed queries via the periodic segment cache
    # ------------------------------------------------------------------
    def cumulative(self, t: float) -> float:
        """Prefix integral ``∫₀^t c`` of the quantised approximation, O(1):
        whole periods in closed form plus one cache lookup."""
        if t < 0.0:
            raise CapacityError(f"capacity undefined for t < 0: {t!r}")
        k, rem = self._split(t)
        i = self._cell(rem)
        if i >= self._n:  # boundary sliver: a whole number of periods
            return (k + 1) * self._period_work
        frac = rem - i * self._dt
        if frac < 0.0:  # numeric guard at cell boundaries
            frac = 0.0
        return k * self._period_work + self._pref[i] + frac * self._steps[i]

    def integrate(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise CapacityError(f"reversed interval: [{t0}, {t1}]")
        return self.cumulative(t1) - self.cumulative(t0)

    def advance(self, t0: float, work: float, horizon: float = math.inf) -> float:
        if work < 0.0:
            raise CapacityError(f"negative workload: {work!r}")
        if work == 0.0:
            return t0
        target = self.cumulative(t0) + work
        k = math.floor(target / self._period_work)
        rem_w = target - k * self._period_work
        if rem_w < 0.0:  # numeric guards at period boundaries
            k -= 1
            rem_w += self._period_work
        elif rem_w >= self._period_work:
            k += 1
            rem_w -= self._period_work
        i = min(self._n - 1, max(0, bisect_right(self._pref, rem_w) - 1))
        t = k * self._period + i * self._dt + (rem_w - self._pref[i]) / self._steps[i]
        t = max(t0, t)
        return t if t <= horizon else math.inf

    def next_change(self, t: float, horizon: float) -> float:
        k, rem = self._split(t)
        i = self._cell(rem)
        if i >= self._n:
            k, i = k + 1, 0
        if i + 1 >= self._n:
            nc = (k + 1) * self._period
        else:
            nc = k * self._period + (i + 1) * self._dt
        if nc <= t:  # numeric guard at cell boundaries
            nc = t + self._dt
        return nc if nc < horizon else horizon

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SinusoidalCapacity(low={self.lower:g}, high={self.upper:g}, "
            f"period={self._period:g})"
        )
