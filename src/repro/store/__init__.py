"""Crash-safe durable state store for the always-on service.

Layered bottom-up (each layer is testable on its own):

* :mod:`repro.store.directory` — the :class:`Directory` filesystem
  protocol, with a real (:class:`OsDirectory`) and an in-memory
  power-loss-modelling (:class:`MemoryDirectory`) implementation;
* :mod:`repro.store.faults` — :class:`FaultyDirectory`, the composable
  storage fault injector (torn writes, bit flips, ENOSPC, fsync lies);
* :mod:`repro.store.log` — :class:`SegmentedLog`, CRC32-framed records
  in bounded segments with torn-tail truncation and corrupt-segment
  quarantine;
* :mod:`repro.store.snapshots` — :class:`SnapshotStore`, manifest-
  committed snapshot blobs (partial snapshots invisible by
  construction) anchoring op-log compaction;
* :mod:`repro.store.tenant` — :class:`TenantStore`, one tenant's spec +
  op log + snapshots, the unit :class:`repro.service.shard.TenantShard`
  persists through and :meth:`repro.service.supervisor.ScheduleService.
  cold_start` rebuilds from.

Durability guarantees and the what-survives-what matrix live in
docs/ROBUSTNESS.md §12.
"""

from repro.store.directory import Directory, FileHandle, MemoryDirectory, OsDirectory
from repro.store.faults import STORAGE_FAULT_KINDS, FaultyDirectory, StorageFaultSpec
from repro.store.log import SegmentedLog
from repro.store.snapshots import SnapshotStore
from repro.store.tenant import TenantStore

__all__ = [
    "Directory",
    "FileHandle",
    "MemoryDirectory",
    "OsDirectory",
    "FaultyDirectory",
    "StorageFaultSpec",
    "STORAGE_FAULT_KINDS",
    "SegmentedLog",
    "SnapshotStore",
    "TenantStore",
]
