"""V-Dover — the paper's proposed online scheduler (Section III-D).

V-Dover handles overload under time-varying capacity by combining EDF with
value-based triage at zero-*conservative*-laxity instants, plus a
supplement queue that keeps triaged-out jobs alive in case the capacity
runs above the conservative bound ``c̲``.

Under individual admissibility (Definition 4) V-Dover achieves the
asymptotically optimal competitive ratio ``1 / ((√k + √f(k,δ))² + 1)``
(Theorem 3(2)), with the value threshold ``β = 1 + sqrt(k / f(k, δ))``.
"""

from __future__ import annotations

from repro.analysis.theory import optimal_beta
from repro.core.dover_family import DoverFamilyScheduler
from repro.errors import SchedulingError

__all__ = ["VDoverScheduler"]


class VDoverScheduler(DoverFamilyScheduler):
    """The paper's V-Dover.

    Parameters
    ----------
    k:
        Upper bound on the importance ratio of the input set (the paper's
        simulation uses ``k = 7``).  Used, together with ``delta``, to set
        the optimal β when ``beta`` is not given explicitly.
    delta:
        Capacity-variation bound ``c̄/c̲`` used for the optimal β.  ``None``
        defers to the bounds declared by the capacity at bind time.
    beta:
        Explicit value threshold, overriding the optimal choice (used by
        the β-ablation benchmark).
    supplement:
        Keep the supplement queue (the paper's delta (ii)).  Disabling it
        yields the "V-Dover minus supplements" ablation: conservative
        laxities but Dover-style abandonment.
    """

    name = "V-Dover"

    def __init__(
        self,
        k: float,
        *,
        delta: float | None = None,
        beta: float | None = None,
        supplement: bool = True,
    ) -> None:
        if k < 1.0:
            raise SchedulingError(f"importance ratio bound must be >= 1, got {k!r}")
        self._k = float(k)
        self._delta_cfg = delta
        self._beta_cfg = beta
        # beta is finalised in reset() (it may need the bound from the
        # capacity the run is bound to); pass a provisional valid value.
        super().__init__(
            beta if beta is not None else 2.0,
            rate_estimate=None,  # conservative bound c̲ from the context
            supplement=supplement,
        )
        if not supplement:
            self.name = "V-Dover(no-supp)"

    def reset(self) -> None:
        super().reset()
        if self._beta_cfg is not None:
            self._beta = float(self._beta_cfg)
        else:
            lo, hi = self.ctx.bounds
            delta = self._delta_cfg if self._delta_cfg is not None else hi / lo
            if delta <= 1.0:
                # Constant capacity: V-Dover degenerates to Dover; use the
                # Koren–Shasha threshold.
                self._beta = 1.0 + self._k**0.5
            else:
                self._beta = optimal_beta(self._k, delta)
        if self._beta <= 1.0:  # pragma: no cover - formulas guarantee > 1
            raise SchedulingError(f"derived beta {self._beta} must exceed 1")

    @property
    def beta(self) -> float:
        """The threshold in effect (after the last bind)."""
        return self._beta
