"""Unit tests for instance replay and (de)serialisation."""

import pytest

from repro.capacity import PiecewiseConstantCapacity
from repro.errors import InvalidInstanceError
from repro.sim import Job
from repro.workload import (
    ReplayWorkload,
    jobs_from_records,
    jobs_to_records,
    load_instance,
    save_instance,
)


JOBS = [
    Job(1, 2.0, 1.0, 5.0, 3.0),
    Job(0, 0.0, 2.0, 4.0, 1.5),
]


class TestRecords:
    def test_roundtrip(self):
        assert jobs_from_records(jobs_to_records(JOBS)) == JOBS

    def test_missing_field(self):
        with pytest.raises(InvalidInstanceError):
            jobs_from_records([{"jid": 0, "release": 0.0}])

    def test_invalid_values_validated(self):
        records = jobs_to_records(JOBS)
        records[0]["workload"] = -1.0
        with pytest.raises(InvalidInstanceError):
            jobs_from_records(records)


class TestReplayWorkload:
    def test_returns_sorted_copy(self):
        wl = ReplayWorkload(JOBS)
        out = wl.generate()
        assert [j.jid for j in out] == [0, 1]  # sorted by release
        assert wl.generate() == out  # stable across calls

    def test_ignores_rng(self):
        wl = ReplayWorkload(JOBS)
        assert wl.generate(1) == wl.generate(999)


class TestFileRoundtrip:
    def test_jobs_only(self, tmp_path):
        path = tmp_path / "instance.json"
        save_instance(path, JOBS)
        jobs, capacity = load_instance(path)
        assert jobs == JOBS
        assert capacity is None

    def test_with_capacity(self, tmp_path):
        path = tmp_path / "instance.json"
        cap = PiecewiseConstantCapacity([0.0, 5.0], [1.0, 3.0], lower=0.5, upper=4.0)
        save_instance(path, JOBS, cap)
        jobs, loaded = load_instance(path)
        assert loaded is not None
        assert loaded.breakpoints == cap.breakpoints
        assert loaded.rates == cap.rates
        assert (loaded.lower, loaded.upper) == (0.5, 4.0)
