"""Wire-format tests: parse_message / encode_message round-trips and
strict rejection of malformed lines."""

from __future__ import annotations

import json

import pytest

from repro.errors import MessageError
from repro.service import (
    Advance,
    Close,
    HealthQuery,
    InjectFault,
    MetricsQuery,
    Submit,
    encode_message,
    parse_message,
)
from repro.sim.job import Job


class TestParse:
    def test_submit_roundtrip(self):
        message = Submit(
            "t0", Job(jid=7, release=1.5, workload=2.0, deadline=4.5, value=6.0)
        )
        parsed = parse_message(encode_message(message))
        assert parsed == message

    def test_fault_roundtrips(self):
        for message in (
            InjectFault("t1", "kill", 3.0, retain=0.5),
            InjectFault("t1", "evict", 4.0),
            InjectFault("t1", "crash", 9.0),
        ):
            assert parse_message(encode_message(message)) == message

    def test_advance_and_close_roundtrip(self):
        assert parse_message(encode_message(Advance("a", 10.0))) == Advance(
            "a", 10.0
        )
        assert parse_message(encode_message(Close("a"))) == Close("a")

    def test_accepts_bytes_and_dicts(self):
        line = encode_message(Close("t0"))
        assert parse_message(line.encode()) == Close("t0")
        assert parse_message(json.loads(line)) == Close("t0")

    def test_metrics_and_health_roundtrip(self):
        for message in (
            MetricsQuery("t0"),
            MetricsQuery("*"),  # fleet scrape
            HealthQuery("t0"),
            HealthQuery("*"),
        ):
            assert parse_message(encode_message(message)) == message
        assert json.loads(encode_message(MetricsQuery("*"))) == {
            "type": "metrics",
            "tenant": "*",
        }

    def test_metrics_and_health_still_require_a_tenant(self):
        with pytest.raises(MessageError, match="tenant"):
            parse_message('{"type": "metrics"}')
        with pytest.raises(MessageError, match="non-empty"):
            parse_message('{"type": "health", "tenant": ""}')


class TestRejection:
    @pytest.mark.parametrize(
        "raw, hint",
        [
            ("not json", "undecodable"),
            ("[1, 2]", "JSON object"),
            ('{"tenant": "t"}', "type"),
            ('{"type": "warp", "tenant": "t"}', "unknown message type"),
            ('{"type": "close"}', "tenant"),
            ('{"type": "close", "tenant": ""}', "non-empty"),
            ('{"type": "submit", "tenant": "t"}', "job"),
            ('{"type": "submit", "tenant": "t", "job": [1]}', "object"),
            (
                '{"type": "submit", "tenant": "t", "job": {"jid": 1}}',
                "missing required field",
            ),
            (
                '{"type": "submit", "tenant": "t", "job": {"jid": 1, '
                '"release": 0, "workload": -1, "deadline": 5, "value": 1}}',
                "invalid job",
            ),
            ('{"type": "fault", "tenant": "t", "op": "melt", "time": 1}', "op"),
            (
                '{"type": "fault", "tenant": "t", "op": "kill", "time": "x"}',
                "number",
            ),
            (
                '{"type": "fault", "tenant": "t", "op": "kill", "time": 1, '
                '"retain": 1.5}',
                "retain",
            ),
            ('{"type": "advance", "tenant": "t", "time": true}', "number"),
        ],
    )
    def test_bad_lines_raise_message_error(self, raw, hint):
        with pytest.raises(MessageError, match=hint):
            parse_message(raw)

    def test_encode_rejects_foreign_objects(self):
        with pytest.raises(MessageError, match="cannot encode"):
            encode_message(object())
