"""Tenant shards: one live, restartable scheduling kernel per tenant.

A :class:`TenantShard` is the synchronous, deterministic heart of the
service — the asyncio layers (:mod:`repro.service.supervisor`,
:mod:`repro.service.ingress`) only route messages to it.  Each shard
wraps a :class:`~repro.sim.engine.SimulationEngine` driven
*incrementally* through the kernel's service-mode API
(``start``/``admit_job``/``run_until``) instead of a closed-horizon
``run()``:

* **submissions** buffer into contention groups (one release instant per
  group); when a group flushes, the kernel first dispatches everything
  strictly before the release, then the
  :class:`~repro.service.admission.AdmissionController` decides the
  group against the live backlog, and survivors are admitted in
  submission order;
* **fault injections** push recorded ``kill``/``evict`` events (exact
  payloads kept for the replay), and ``crash`` raises a genuine
  :class:`~repro.errors.SimulatedCrash` carrying the last periodic
  snapshot — the supervisor's restart ladder takes it from there;
* **recovery** rebuilds a fresh engine with exactly the jobs the
  snapshot knows, restores it (which re-verifies the WAL tail), and
  re-applies the shard's op log — admissions and fault pushes recorded
  with the dispatch count at which they were applied; ops at or past the
  snapshot's dispatch count are exactly the ones the snapshot cannot
  know about.

Replay equivalence is the design invariant: the accepted jobs (in
admission order), the spec-built world, and the recorded fault pushes,
re-run through the closed-horizon engine, must reproduce the service
journal and result bit-identically (:mod:`repro.service.replay`).

With a :class:`~repro.store.tenant.TenantStore` attached the shard is
also *durable*: every admission/shed/push decision is fsynced into the
store's op log **before** the kernel sees it (write-ahead), periodic
kernel snapshots are committed as manifest-anchored state images, and
``TenantShard(spec, store=..., resume=True)`` rebuilds the exact live
state from disk after a ``SIGKILL`` — the cold-start half of
:meth:`repro.service.supervisor.ScheduleService.cold_start`.  Client
``request_id`` strings ride along into the op log, so a traffic log
replayed against a cold-started shard acks duplicates instead of
double-admitting.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import obs as _obs
from repro.obs.telemetry import SloTracker, WindowRing
from repro.capacity.base import CapacityFunction
from repro.capacity.markov import TwoStateMarkovCapacity
from repro.capacity.piecewise import PiecewiseConstantCapacity
from repro.errors import (
    MessageError,
    RecoveryError,
    ServiceError,
    SimulatedCrash,
)
from repro.faults.execution import (
    ExecutionFault,
    ExecutionFaultSpec,
    apply_fault_transforms,
)
from repro.faults.spec import FaultSpec
from repro.service.admission import AdmissionController, ShedRecord
from repro.service.messages import (
    Advance,
    Close,
    InjectFault,
    Message,
    Stat,
    Submit,
)
from repro.sim.engine import SimulationEngine
from repro.sim.job import Job, JobStatus
from repro.sim.journal import EngineSnapshot, EventJournal
from repro.sim.metrics import SimulationResult
from repro.store.tenant import TenantStore

__all__ = [
    "CapacitySpec",
    "TenantSpec",
    "TenantReport",
    "TenantShard",
    "make_scheduler",
    "tenant_spec_to_dict",
    "tenant_spec_from_dict",
    "SCHEDULER_FACTORIES",
]

_EPS = 1e-9


def _scheduler_factories() -> Dict[str, Any]:
    from repro.core import (
        AdmissionEDFScheduler,
        DoverScheduler,
        EDFScheduler,
        FCFSScheduler,
        GreedyDensityScheduler,
        LLFScheduler,
        VDoverScheduler,
    )

    return {
        "vdover": VDoverScheduler,
        "dover": DoverScheduler,
        "edf": EDFScheduler,
        "edf-ac": AdmissionEDFScheduler,
        "llf": LLFScheduler,
        "greedy": GreedyDensityScheduler,
        "fcfs": FCFSScheduler,
    }


#: Name → scheduler class (the CLI's policy names).
SCHEDULER_FACTORIES = _scheduler_factories


def make_scheduler(name: str, **kwargs: Any):
    """Build a fresh scheduler by CLI name (used twice per tenant: live
    shard and closed-horizon replay — both sides must construct
    identically)."""
    factories = _scheduler_factories()
    if name not in factories:
        raise ServiceError(
            f"unknown scheduler {name!r}; expected one of "
            f"{tuple(sorted(factories))}"
        )
    if name in ("vdover", "dover"):
        kwargs.setdefault("k", 7.0)  # the CLI's importance-ratio default
    if name == "dover":
        kwargs.setdefault("c_hat", 1.0)
    return factories[name](**kwargs)


@dataclass(frozen=True)
class CapacitySpec:
    """A rebuildable recipe for a tenant's capacity trajectory.

    The service must be able to construct the *same* stochastic world
    twice — once for the live shard and once for the closed-horizon
    replay — so tenants declare capacity as data, not as an object:

    * ``markov2`` — :class:`~repro.capacity.markov.TwoStateMarkovCapacity`
      with params ``low``, ``high``, ``mean_sojourn`` and the spec's seed;
    * ``constant`` — a flat :class:`PiecewiseConstantCapacity` at
      ``rate`` (optional declared ``lower``/``upper`` band);
    * ``piecewise`` — explicit ``breakpoints``/``rates`` lists.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("markov2", "constant", "piecewise"):
            raise ServiceError(
                f"unknown capacity kind {self.kind!r}; expected "
                "markov2 | constant | piecewise"
            )

    def build(self) -> CapacityFunction:
        p = dict(self.params)
        if self.kind == "markov2":
            return TwoStateMarkovCapacity(
                low=float(p.get("low", 1.0)),
                high=float(p.get("high", 35.0)),
                mean_sojourn=float(p.get("mean_sojourn", 1.0)),
                rng=np.random.default_rng(self.seed),
            )
        if self.kind == "constant":
            rate = float(p.get("rate", 1.0))
            return PiecewiseConstantCapacity(
                [0.0],
                [rate],
                lower=p.get("lower"),
                upper=p.get("upper"),
            )
        return PiecewiseConstantCapacity(
            list(p["breakpoints"]),
            list(p["rates"]),
            lower=p.get("lower"),
            upper=p.get("upper"),
        )


@dataclass(frozen=True)
class TenantSpec:
    """Everything needed to build one tenant's world — twice, identically.

    ``sensor_faults`` wrap what the tenant's scheduler observes
    (:class:`~repro.faults.spec.FaultSpec`, seeded ``fault_seed + i``);
    ``start_faults`` are execution faults armed at start
    (:class:`~repro.faults.execution.ExecutionFaultSpec` — kills and
    revocations; ``crash`` plans are refused here, forced crashes arrive
    through the ingress instead).
    """

    tenant: str
    horizon: float
    scheduler: str = "vdover"
    scheduler_kwargs: Mapping[str, Any] = field(default_factory=dict)
    capacity: CapacitySpec = field(
        default_factory=lambda: CapacitySpec("constant", {"rate": 1.0})
    )
    sensor_faults: Tuple[FaultSpec, ...] = ()
    start_faults: Tuple[ExecutionFaultSpec, ...] = ()
    fault_seed: int = 0
    queue_budget: int = 256
    snapshot_every: int = 32
    flush_every: int = 8
    fsync: bool = False
    protocol: str = "scalar"

    def __post_init__(self) -> None:
        if not self.horizon > 0.0:
            raise ServiceError(f"horizon must be > 0, got {self.horizon!r}")
        if self.protocol not in ("scalar", "batch", "auto"):
            raise ServiceError(
                f"unknown scheduler protocol {self.protocol!r}; expected "
                "scalar | batch | auto"
            )
        for spec in self.start_faults:
            if spec.kind == "crash":
                raise ServiceError(
                    "crash plans cannot be start faults; inject forced "
                    "crashes through the ingress (fault op 'crash')"
                )

    # -- world construction (shared by live shard and replay) ----------
    def build_scheduler(self):
        return make_scheduler(self.scheduler, **dict(self.scheduler_kwargs))

    def build_capacity(self) -> CapacityFunction:
        """Fresh raw physics (execution-fault transforms apply to this;
        sensor wrappers go on top afterwards — see :meth:`wrap_sensors`)."""
        return self.capacity.build()

    def wrap_sensors(self, capacity: CapacityFunction) -> CapacityFunction:
        """Corrupt the sensing channel, deterministic per-fault seeds.

        Applied *after* execution-fault transforms: revocations change
        the physics, the sensors observe the changed physics."""
        for i, fault in enumerate(self.sensor_faults):
            capacity = fault.apply(capacity, seed=self.fault_seed + i)
        return capacity

    def build_start_faults(self) -> List[ExecutionFault]:
        faults: List[ExecutionFault] = []
        for i, spec in enumerate(self.start_faults):
            fault = spec.build(seed=self.fault_seed + 101 * (i + 1))
            if fault is not None:
                faults.append(fault)
        return faults


def _job_to_dict(job: Job) -> Dict[str, Any]:
    return {
        "jid": job.jid,
        "release": job.release,
        "workload": job.workload,
        "deadline": job.deadline,
        "value": job.value,
    }


def tenant_spec_to_dict(spec: TenantSpec) -> Dict[str, Any]:
    """JSON-safe image of a :class:`TenantSpec`.

    Floats survive a JSON round trip exactly (shortest-repr encoding),
    so a spec rebuilt from this document constructs a bit-identical
    world — the property :meth:`TenantStore.ensure_spec` relies on when
    it compares the stored spec against the running one."""
    return {
        "tenant": spec.tenant,
        "horizon": spec.horizon,
        "scheduler": spec.scheduler,
        "scheduler_kwargs": dict(spec.scheduler_kwargs),
        "capacity": {
            "kind": spec.capacity.kind,
            "params": dict(spec.capacity.params),
            "seed": spec.capacity.seed,
        },
        "sensor_faults": [
            {"kind": f.kind, "severity": f.severity, "options": dict(f.options)}
            for f in spec.sensor_faults
        ],
        "start_faults": [
            {"kind": f.kind, "severity": f.severity, "options": dict(f.options)}
            for f in spec.start_faults
        ],
        "fault_seed": spec.fault_seed,
        "queue_budget": spec.queue_budget,
        "snapshot_every": spec.snapshot_every,
        "flush_every": spec.flush_every,
        "fsync": spec.fsync,
        "protocol": spec.protocol,
    }


def tenant_spec_from_dict(doc: Mapping[str, Any]) -> TenantSpec:
    """Inverse of :func:`tenant_spec_to_dict` (cold-start path)."""
    try:
        cap = doc["capacity"]
        return TenantSpec(
            tenant=str(doc["tenant"]),
            horizon=float(doc["horizon"]),
            scheduler=str(doc.get("scheduler", "vdover")),
            scheduler_kwargs=dict(doc.get("scheduler_kwargs", {})),
            capacity=CapacitySpec(
                kind=str(cap["kind"]),
                params=dict(cap.get("params", {})),
                seed=int(cap.get("seed", 0)),
            ),
            sensor_faults=tuple(
                FaultSpec(
                    kind=str(f["kind"]),
                    severity=float(f.get("severity", 0.0)),
                    options=dict(f.get("options", {})),
                )
                for f in doc.get("sensor_faults", ())
            ),
            start_faults=tuple(
                ExecutionFaultSpec(
                    kind=str(f["kind"]),
                    severity=float(f.get("severity", 0.0)),
                    options=dict(f.get("options", {})),
                )
                for f in doc.get("start_faults", ())
            ),
            fault_seed=int(doc.get("fault_seed", 0)),
            queue_budget=int(doc.get("queue_budget", 256)),
            snapshot_every=int(doc.get("snapshot_every", 32)),
            flush_every=int(doc.get("flush_every", 8)),
            fsync=bool(doc.get("fsync", False)),
            protocol=str(doc.get("protocol", "scalar")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"invalid tenant spec document: {exc}") from exc


@dataclass
class TenantReport:
    """What one closed tenant hands back (input to the replay check)."""

    tenant: str
    spec: TenantSpec
    result: Optional[SimulationResult]
    accepted: Tuple[Job, ...]
    shed: Tuple[ShedRecord, ...]
    injected: Tuple[Tuple[float, tuple], ...]
    submitted: int
    recoveries: int
    forced_crashes: int
    journal: Optional[EventJournal]
    journal_path: Optional[Path]
    restarts: int = 0
    backoffs: Tuple[float, ...] = ()

    @property
    def lost_jids(self) -> Tuple[int, ...]:
        """Accepted jobs with no recorded outcome — must be empty for a
        healthy close (the zero-accepted-then-lost criterion)."""
        if self.result is None:
            return tuple(job.jid for job in self.accepted)
        outcomes = self.result.trace.outcomes
        return tuple(
            job.jid for job in self.accepted if job.jid not in outcomes
        )


class TenantShard:
    """One tenant's live kernel plus its admission and op-log state."""

    def __init__(
        self,
        spec: TenantSpec,
        *,
        journal_dir: "str | Path | None" = None,
        store: Optional[TenantStore] = None,
        resume: bool = False,
        telemetry: bool = False,
    ) -> None:
        self.spec = spec
        self._store = store
        # Telemetry plane (docs/OBSERVABILITY.md §live-service telemetry):
        # decision-plane SLO counters, off by default so the disabled
        # path stays inside the PR 5 overhead budget.
        self._slo: Optional[SloTracker] = (
            SloTracker(spec.tenant, spec.horizon) if telemetry else None
        )
        # request id -> decided jid (admission correlation index; rides
        # the snapshot payload so `repro obs trace` survives op-log
        # compaction and kill -9).
        self._rid_jid: Dict[str, int] = {}
        self._journal_path: Optional[Path] = None
        self._shed_fh = None
        shed_path: Optional[Path] = None
        if store is not None:
            # Round-tripping the stored doc fills in spec fields added
            # after the store was written (at their defaults), so old
            # tenant directories keep resuming across upgrades.
            store.ensure_spec(
                tenant_spec_to_dict(spec),
                normalize=lambda doc: tenant_spec_to_dict(
                    tenant_spec_from_dict(doc)
                ),
            )
            self._journal_path = store.wal_path
            shed_path = store.shed_path
        elif journal_dir is not None:
            base = Path(journal_dir)
            base.mkdir(parents=True, exist_ok=True)
            self._journal_path = base / f"{spec.tenant}.journal.jsonl"
            shed_path = base / f"{spec.tenant}.shed.jsonl"

        self._built_faults = spec.build_start_faults()
        capacity = spec.build_capacity()
        self._admission = AdmissionController(
            spec.tenant,
            queue_budget=spec.queue_budget,
            c_lower=capacity.lower,
        )

        self._accepted: List[Job] = []
        self._accepted_jids: set = set()
        self._shed: List[ShedRecord] = []
        self._injected: List[Tuple[float, tuple]] = []
        # Op log: (dispatch_count at application, kind, data).  Recovery
        # re-applies every op at or past the restored snapshot's count.
        self._ops: List[Tuple[int, str, Any]] = []
        self._pending: List[Job] = []
        self._submitted = 0
        self._recoveries = 0
        self._forced_crashes = 0
        self._result: Optional[SimulationResult] = None
        self._closed = False
        # Idempotency: decided request ids -> outcome ("accepted" |
        # "shed" | "injected" | "crash"); in-flight ids sit in
        # _pending_rids until the contention group is decided.
        self._dedup: Dict[str, str] = {}
        self._pending_rids: Dict[str, int] = {}
        self._rid_queue: Dict[int, List[str]] = {}
        # Dispatch count of the newest durably persisted snapshot.
        self._persist_anchor = -1

        if resume and store is not None and store.has_state():
            self._resume_from_store()
        else:
            self._journal = EventJournal(
                self._journal_path,
                flush_every=spec.flush_every,
                fsync=spec.fsync,
            )
            self._engine = self._build_engine([], capacity)
            self._engine.kernel.start()

        if self._slo is not None:
            # WAL fsync latency feeds the SLO histogram (wall clock —
            # never in the replay or parity domain).
            self._journal.sync_observer = self._slo.observe_fsync

        if shed_path is not None:
            # Rebuilt on resume: the sidecar is a human-readable mirror
            # of self._shed, which the op log owns durably.
            self._shed_fh = shed_path.open("w", encoding="utf-8")
            for record in self._shed:
                self._shed_fh.write(json.dumps(record.to_dict()) + "\n")
            self._shed_fh.flush()

    # ------------------------------------------------------------------
    def _build_engine(
        self,
        jobs: Sequence[Job],
        capacity: Optional[CapacityFunction] = None,
    ) -> SimulationEngine:
        if capacity is None:
            # Recovery path: restore() replaces the capacity object from
            # the snapshot pickle, so a fresh spec-built one is only a
            # structurally-correct placeholder.
            capacity = self.spec.build_capacity()
        caps = apply_fault_transforms(
            [capacity], self._built_faults, self.spec.horizon
        )
        return SimulationEngine(
            jobs,
            self.spec.wrap_sensors(caps[0]),
            self.spec.build_scheduler(),
            horizon=self.spec.horizon,
            faults=self._built_faults,
            journal=self._journal,
            snapshot_every=self.spec.snapshot_every,
            event_queue="heap",
            protocol=self.spec.protocol,
        )

    # -- accessors ------------------------------------------------------
    @property
    def kernel(self):
        return self._engine.kernel

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def depth(self) -> int:
        """Live backlog: accepted jobs without a recorded outcome."""
        return len(self._accepted) - len(self.kernel.trace.outcomes)

    @property
    def accepted_count(self) -> int:
        return len(self._accepted)

    @property
    def shed_count(self) -> int:
        return len(self._shed)

    # -- metrics helpers ------------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        octx = _obs.current()
        if octx is not None:
            octx.metrics.counter(name).inc(n)

    def _append_ops(self, docs: Sequence[Mapping[str, Any]]) -> None:
        """Fsync op docs, timing the durability point when telemetry is on."""
        if self._slo is None:
            self._store.append_ops(docs, sync=True)
            return
        t0 = perf_counter()
        self._store.append_ops(docs, sync=True)
        self._slo.observe_fsync(perf_counter() - t0)

    def _note_request(
        self,
        rid: "str | None",
        jid: Optional[int],
        outcome: str,
        time: float,
    ) -> None:
        """Record a request id's decision: dedup outcome, rid → jid
        correlation index, and a lifecycle (never replay) trace event."""
        if rid is None:
            return
        self._dedup[rid] = outcome
        if jid is not None:
            self._rid_jid[rid] = int(jid)
        octx = _obs.current()
        if octx is not None:
            data: Dict[str, Any] = {
                "rid": rid,
                "tenant": self.tenant,
                "outcome": outcome,
            }
            if jid is not None:
                data["jid"] = int(jid)
            octx.emit("service.request", float(time), data, replay=False)

    def _journal_shed(self, records: Sequence[ShedRecord]) -> None:
        if not records:
            return
        self._shed.extend(records)
        if self._slo is not None:
            for record in records:
                self._slo.observe(record.time, "shed")
                self._slo.observe(record.time, "shed." + record.reason)
        octx = _obs.current()
        for record in records:
            if self._shed_fh is not None:
                self._shed_fh.write(json.dumps(record.to_dict()) + "\n")
            if octx is not None:
                octx.metrics.counter("service.shed").inc()
                octx.metrics.counter(
                    "service.shed." + record.reason
                ).inc()
                octx.emit(
                    "service.shed",
                    record.time,
                    record.to_dict(),
                    replay=False,
                )
        if self._shed_fh is not None:
            self._shed_fh.flush()

    # ------------------------------------------------------------------
    # Message handling (synchronous, deterministic; may raise
    # SimulatedCrash — the supervisor owns recovery and retry)
    # ------------------------------------------------------------------
    def handle(self, message: Message) -> Optional[Dict[str, Any]]:
        """Dispatch one message; returns extra ack fields (or None).

        ``stat`` works even on a closed shard — it is how the kill -9
        soak audits counters across restart boundaries."""
        if isinstance(message, Stat):
            return self.stats()
        if self._closed:
            raise ServiceError(
                f"tenant {self.tenant!r} is closed; no further messages"
            )
        result: Optional[Dict[str, Any]] = None
        if isinstance(message, Submit):
            result = self.submit(message.job, rid=message.rid)
        elif isinstance(message, InjectFault):
            result = self.inject(
                message.op,
                message.time,
                retain=message.retain,
                rid=message.rid,
            )
        elif isinstance(message, Advance):
            self.advance(message.time)
        elif isinstance(message, Close):
            self.close()
        else:  # pragma: no cover - defensive
            raise MessageError(f"unhandled message {message!r}")
        self.maybe_persist()
        return result

    # -- idempotency ----------------------------------------------------
    def dedup_outcome(self, rid: "str | None") -> Optional[str]:
        """The recorded outcome for a request id, if already decided
        (``"pending"`` while its contention group is still buffered)."""
        if rid is None:
            return None
        if rid in self._dedup:
            return self._dedup[rid]
        if rid in self._pending_rids:
            return "pending"
        return None

    def _duplicate_ack(self, rid: "str | None") -> Optional[Dict[str, Any]]:
        outcome = self.dedup_outcome(rid)
        if outcome is None:
            return None
        self._count("service.duplicates")
        if self._slo is not None:
            self._slo.count("duplicates")
        return {"duplicate": True, "outcome": outcome}

    def _take_rid(self, jid: int) -> Optional[str]:
        """Consume the oldest pending request id for a jid (decision
        time: the group member is about to be admitted or shed)."""
        queue = self._rid_queue.get(jid)
        if not queue:
            return None
        rid = queue.pop(0)
        if not queue:
            self._rid_queue.pop(jid, None)
        self._pending_rids.pop(rid, None)
        return rid

    def submit(
        self, job: Job, rid: "str | None" = None
    ) -> Optional[Dict[str, Any]]:
        """Buffer one submission into the current contention group.

        Groups are keyed by release instant: a submission at a new
        release flushes the previous group first, so shedding decisions
        always see the whole group that competes for the same slots.
        A redelivered ``rid`` (client retry, or a traffic log replayed
        after a restart) acks its recorded outcome without re-buffering."""
        dup = self._duplicate_ack(rid)
        if dup is not None:
            return dup
        self._submitted += 1
        self._count("service.submitted")
        if self._pending and self._pending[0].release != job.release:
            self._flush_pending()
        self._pending.append(job)
        if rid is not None:
            self._pending_rids[rid] = job.jid
            self._rid_queue.setdefault(job.jid, []).append(rid)
        return None

    def advance(self, time: float) -> None:
        """Flush the open group, then dispatch strictly before ``time``."""
        self._flush_pending()
        self.kernel.run_until(float(time))

    def inject(
        self,
        op: str,
        time: float,
        *,
        retain: float = 0.0,
        rid: "str | None" = None,
    ) -> Optional[Dict[str, Any]]:
        """Inject one execution fault at virtual ``time``.

        ``kill``/``evict`` push a FAULT event with the service's sentinel
        fault index (−1: the kernel's kill/evict handlers never consult
        the fault list) and record the exact payload for the replay.
        ``crash`` advances to ``time`` and dies for real — a
        :class:`~repro.errors.SimulatedCrash` carrying the last periodic
        snapshot propagates to the supervisor.  With a store attached,
        the push record is fsynced before the kernel mutates (and a
        crash leaves a durable mark, so a redelivered crash request is
        acked, not re-crashed)."""
        dup = self._duplicate_ack(rid)
        if dup is not None:
            return dup
        self._flush_pending()
        time = float(time)
        kernel = self.kernel
        if op == "crash":
            kernel.run_until(time)
            self._forced_crashes += 1
            self._count("service.injected.crash")
            if self._slo is not None:
                self._slo.observe(time, "crashes")
            if self._store is not None:
                self._append_ops(
                    [{"op": "crash_mark", "time": time, "rid": rid}]
                )
            self._note_request(rid, None, "crash", time)
            raise SimulatedCrash(
                time=kernel.now,
                at_event=None,
                fault_index=-1,
                snapshot=kernel.last_snapshot,
            )
        if time < kernel.now - _EPS:
            raise MessageError(
                f"fault time {time:g} is behind the dispatch frontier "
                f"({kernel.now:g})"
            )
        if not 0.0 <= time <= self.spec.horizon:
            raise MessageError(
                f"fault time {time:g} outside [0, {self.spec.horizon:g}]"
            )
        if op == "kill":
            payload: tuple = ("kill", -1, float(retain))
        elif op == "evict":
            payload = ("evict", -1)
        else:  # pragma: no cover - parse_message guards
            raise MessageError(f"unknown fault op {op!r}")
        dc = kernel.dispatch_count
        if self._store is not None:
            self._append_ops(
                [
                    {
                        "op": "push",
                        "dc": dc,
                        "time": time,
                        "payload": list(payload),
                        "rid": rid,
                    }
                ]
            )
        kernel.push_fault_event(time, payload)
        self._injected.append((time, payload))
        self._ops.append((dc, "push", (time, payload)))
        if self._slo is not None:
            self._slo.observe(time, "injected." + op)
        self._note_request(rid, None, "injected", time)
        self._count("service.injected." + op)
        return None

    def close(self) -> TenantReport:
        """Finish the tenant: run to the horizon and build the report."""
        self._flush_pending()
        self._result = self._engine.run()
        self._closed = True
        self._journal.flush()
        if self._shed_fh is not None:
            self._shed_fh.close()
            self._shed_fh = None
        self._count("service.closed")
        return self.report()

    def report(self) -> TenantReport:
        return TenantReport(
            tenant=self.tenant,
            spec=self.spec,
            result=self._result,
            accepted=tuple(self._accepted),
            shed=tuple(self._shed),
            injected=tuple(self._injected),
            submitted=self._submitted,
            recoveries=self._recoveries,
            forced_crashes=self._forced_crashes,
            journal=self._journal,
            journal_path=self._journal_path,
        )

    # ------------------------------------------------------------------
    def _flush_pending(self) -> None:
        """Decide and admit the open contention group.

        With a store attached, the whole group's decisions (admits and
        sheds alike) are fsynced into the op log *before* the kernel
        mutates — SIGKILL between the fsync and the admit loop replays
        the same decisions from disk on cold start."""
        if not self._pending:
            return
        release = self._pending[0].release
        kernel = self.kernel
        # Resolve everything strictly before the group's release so the
        # backlog the admission decision sees is current.  A crash in
        # here leaves the group buffered — the supervisor's retry
        # re-runs the flush idempotently after recovery.
        kernel.run_until(release)
        batch = self._pending
        admit, shed = self._admission.plan(
            batch,
            depth=self.depth,
            frontier=kernel.now,
            horizon=self.spec.horizon,
            known_jids=self._accepted_jids,
        )
        self._pending = []
        admit_rids = [self._take_rid(job.jid) for job in admit]
        shed_rids = [self._take_rid(rec.jid) for rec in shed]
        dc = kernel.dispatch_count
        if self._store is not None:
            docs = [
                {"op": "admit", "dc": dc, "job": _job_to_dict(job), "rid": rid}
                for job, rid in zip(admit, admit_rids)
            ] + [
                {"op": "shed", "rec": rec.to_dict(), "rid": rid}
                for rec, rid in zip(shed, shed_rids)
            ]
            if docs:
                self._append_ops(docs)
        self._journal_shed(shed)
        for rec, rid in zip(shed, shed_rids):
            self._note_request(rid, rec.jid, "shed", rec.time)
        for job, rid in zip(admit, admit_rids):
            self._ops.append((dc, "admit", job))
            kernel.admit_job(job)
            self._accepted.append(job)
            self._accepted_jids.add(job.jid)
            if self._slo is not None:
                self._slo.observe(job.release, "admitted")
            self._note_request(rid, job.jid, "accepted", release)
        if self._slo is not None:
            self._slo.set_depth(self.depth)
        self._count("service.admitted", len(admit))

    def _log_shed_ops(
        self,
        records: Sequence[ShedRecord],
        rids: Sequence[Optional[str]],
    ) -> None:
        if self._store is None or not records:
            return
        self._append_ops(
            [
                {"op": "shed", "rec": rec.to_dict(), "rid": rid}
                for rec, rid in zip(records, rids)
            ]
        )

    def shed_all_pending(self, reason: str) -> None:
        """Shed the open group without admitting (degraded shard)."""
        if self._pending:
            batch, self._pending = self._pending, []
            records = self._admission.shed_all(batch, reason, self.kernel.now)
            rids = [self._take_rid(rec.jid) for rec in records]
            self._log_shed_ops(records, rids)
            self._journal_shed(records)
            for rec, rid in zip(records, rids):
                self._note_request(rid, rec.jid, "shed", rec.time)

    def shed_one(
        self, job: Job, reason: str, rid: "str | None" = None
    ) -> Optional[Dict[str, Any]]:
        """Record one out-of-band shed decision (circuit-open path)."""
        dup = self._duplicate_ack(rid)
        if dup is not None:
            return dup
        self._submitted += 1
        self._count("service.submitted")
        records = self._admission.shed_all([job], reason, self.kernel.now)
        self._log_shed_ops(records, [rid])
        self._journal_shed(records)
        for rec in records:
            self._note_request(rid, rec.jid, "shed", rec.time)
        return None

    def stats(self) -> Dict[str, Any]:
        """Read-only counters (the ``stat`` message; no persist, no
        mutation).  ``accepted_crc`` fingerprints the accepted jid
        sequence so restart-boundary audits compare one integer."""
        blob = ",".join(str(job.jid) for job in self._accepted)
        out = {
            "tenant": self.tenant,
            "submitted": self._submitted,
            "accepted": len(self._accepted),
            "shed": len(self._shed),
            "pending": len(self._pending),
            "accepted_crc": zlib.crc32(blob.encode()) & 0xFFFFFFFF,
            "recoveries": self._recoveries,
            "forced_crashes": self._forced_crashes,
            "frontier": self.kernel.now,
            "closed": self._closed,
        }
        if self._slo is not None:
            out["slo"] = self._slo.snapshot()
        return out

    def slo_view(self) -> Dict[str, Any]:
        """The scrape-time SLO document: the tracker snapshot plus a
        ``"live"`` block of kernel-derived facts (completions, deadline
        misses, attained value per executed work).  The live block is a
        pure function of the kernel trace — computed here on demand, so
        a snapshot restore can never double-count it.  Works with
        telemetry off too (tracker fields absent, live block present)."""
        doc = self._slo.snapshot() if self._slo is not None else {}
        trace = self.kernel.trace
        completions = 0
        misses = 0
        for status in trace.outcomes.values():
            if status is JobStatus.COMPLETED:
                completions += 1
            elif status in (JobStatus.FAILED, JobStatus.ABANDONED):
                misses += 1
        decided = completions + misses
        attained = trace.value_points[-1][1] if trace.value_points else 0.0
        executed = trace.total_work()
        doc["live"] = {
            "completions": completions,
            "deadline_misses": misses,
            "miss_rate": misses / decided if decided else 0.0,
            "attained_value": attained,
            "executed_work": executed,
            "value_per_capacity": attained / executed if executed > 0 else 0.0,
            "depth": self.depth,
            "frontier": self.kernel.now,
        }
        if self._slo is not None:
            # Windowed kernel outcomes over the same ring geometry
            # (recomputed per scrape — deterministic in virtual time).
            ring = self._slo.ring
            win = WindowRing(ring.width, ring.slots)
            for jid, t in trace.completion_times.items():
                win.observe(t, "completions")
            by_jid = {job.jid: job for job in self._accepted}
            for jid, status in trace.outcomes.items():
                if status in (JobStatus.FAILED, JobStatus.ABANDONED):
                    job = by_jid.get(jid)
                    if job is not None:
                        win.observe(job.deadline, "deadline_misses")
            doc["live"]["window"] = win.snapshot()
        return doc

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self, crash: BaseException) -> None:
        """Restore the last periodic snapshot and re-apply the op log.

        The fresh engine gets exactly the accepted jobs the snapshot
        knows about (in admission order); restoring re-verifies the WAL
        tail.  Ops recorded at or past the snapshot's dispatch count are
        the ones applied after it was taken — admissions and fault
        pushes the snapshot cannot contain — and are re-applied in
        order.  Everything else (events between the snapshot and the
        crash) re-materialises lazily on the next ``run_until``,
        verified record-by-record against the journal."""
        snapshot = getattr(crash, "snapshot", None)
        if snapshot is None:
            snapshot = self.kernel.last_snapshot
        if snapshot is None:
            raise RecoveryError(
                f"tenant {self.tenant!r} crashed before the first "
                "snapshot; nothing to restore from"
            ) from crash
        jobs = [
            job for job in self._accepted if job.jid in snapshot.status
        ]
        engine = self._build_engine(jobs)
        engine.restore(snapshot)
        kernel = engine.kernel
        base = snapshot.dispatch_count
        for dc, kind, data in self._ops:
            if dc < base:
                continue
            if kind == "admit":
                kernel.admit_job(data)
            else:  # "push"
                kernel.push_fault_event(*data)
        self._engine = engine
        self._recoveries += 1
        self._count("service.recoveries")
        if self._slo is not None:
            self._slo.count("recoveries")
            self._journal.sync_observer = self._slo.observe_fsync
        octx = _obs.current()
        if octx is not None:
            octx.emit(
                "service.recover",
                kernel.now,
                {
                    "tenant": self.tenant,
                    "snapshot_dispatch": base,
                    "ops_reapplied": sum(
                        1 for dc, _, _ in self._ops if dc >= base
                    ),
                },
                replay=False,
            )

    # ------------------------------------------------------------------
    # Durable persistence (store-backed shards only)
    # ------------------------------------------------------------------
    def maybe_persist(self) -> None:
        """Commit the kernel's newest periodic snapshot to the store.

        Called after every handled message; a no-op until the kernel has
        cut a snapshot newer than the last durable anchor, so persist
        frequency tracks ``snapshot_every`` dispatches, not messages."""
        if self._store is None or self._closed:
            return
        snap = self.kernel.last_snapshot
        if snap is None or snap.dispatch_count <= self._persist_anchor:
            return
        self._persist(snap)

    def persist_now(self) -> None:
        """Drain path: decide the open group, cut a snapshot at the
        current dispatch boundary, and make everything durable — after
        this returns, SIGKILL loses nothing."""
        if self._store is None:
            return
        if not self._closed:
            self._flush_pending()
        self._journal.flush(sync=True)
        if self._shed_fh is not None:
            self._shed_fh.flush()
        if self._closed:
            return
        snap = self._engine.snapshot()
        # This snapshot is cut *after* every logged op took effect, so
        # same-dispatch-count ops are already inside it: anchor past the
        # whole op log and persist no re-apply tail.
        self._persist(snap, include_tail=False)

    def _persist(self, snap: EngineSnapshot, *, include_tail: bool = True) -> None:
        base = snap.dispatch_count
        tail: List[List[Any]] = []
        if include_tail:
            for dc, kind, data in self._ops:
                if dc < base:
                    continue
                if kind == "admit":
                    tail.append([dc, "admit", _job_to_dict(data)])
                else:  # "push"
                    tail.append([dc, "push", [data[0], list(data[1])]])
        payload = {
            "version": 1,
            "engine": snap,
            "accepted": [_job_to_dict(job) for job in self._accepted],
            "injected": [[t, list(p)] for t, p in self._injected],
            "shed": [rec.to_dict() for rec in self._shed],
            "dedup": dict(self._dedup),
            "recoveries": self._recoveries,
            "forced_crashes": self._forced_crashes,
            "ops_tail": tail,
            # Telemetry plane (absent pre-PR 10 payloads read back fine
            # via .get): the SLO tracker snapshot — anchored at the same
            # op_seq as the rest, so the cold-start refold of post-anchor
            # ops is exact — and the rid → jid correlation index.
            "slo": None if self._slo is None else self._slo.snapshot(),
            "rid_jids": dict(self._rid_jid),
        }
        self._store.write_snapshot(payload, op_seq=self._store.op_seq)
        self._persist_anchor = base
        self._count("service.persisted")

    def _resume_from_store(self) -> None:
        """Cold start: rebuild the live shard from disk alone.

        The snapshot payload carries everything decided up to its op-log
        anchor; op records at or past the anchor are folded back in.
        The engine restores from the pickled kernel image and re-applies
        the post-snapshot op tail — exactly the in-process
        :meth:`recover` dance, with the disk as the only witness."""
        store = self._store
        assert store is not None
        loaded = store.load_snapshot()
        snap: Optional[EngineSnapshot] = None
        tail: List[Tuple[int, str, Any]] = []
        anchor_seq = 0
        if loaded is not None:
            payload, anchor_seq = loaded
            if not isinstance(payload, dict) or payload.get("version") != 1:
                raise RecoveryError(
                    f"tenant {self.tenant!r}: unrecognised snapshot "
                    "payload (schema drift?)"
                )
            self._accepted = [Job(**d) for d in payload["accepted"]]
            self._accepted_jids = {job.jid for job in self._accepted}
            self._injected = [
                (float(t), tuple(p)) for t, p in payload["injected"]
            ]
            self._shed = [ShedRecord(**r) for r in payload["shed"]]
            self._dedup = dict(payload["dedup"])
            self._recoveries = int(payload["recoveries"])
            self._forced_crashes = int(payload["forced_crashes"])
            self._rid_jid = {
                str(k): int(v)
                for k, v in (payload.get("rid_jids") or {}).items()
            }
            slo_doc = payload.get("slo")
            if self._slo is not None and slo_doc:
                self._slo = SloTracker.restore(slo_doc)
            snap = payload["engine"]
            by_jid = {job.jid: job for job in self._accepted}
            for dc, kind, data in payload["ops_tail"]:
                if kind == "admit":
                    # Re-bind to the accepted-list Job so identity is
                    # shared between the admission record and the op.
                    tail.append((int(dc), "admit", by_jid[int(data["jid"])]))
                else:
                    tail.append(
                        (int(dc), "push", (float(data[0]), tuple(data[1])))
                    )

        outcome_by_op = {
            "admit": "accepted",
            "push": "injected",
            "shed": "shed",
            "crash_mark": "crash",
        }
        for seq, doc in store.ops():
            if seq < anchor_seq:
                continue
            op = str(doc.get("op"))
            jid: Optional[int] = None
            if op == "admit":
                job = Job(**doc["job"])
                jid = job.jid
                self._accepted.append(job)
                self._accepted_jids.add(job.jid)
                tail.append((int(doc["dc"]), "admit", job))
                if self._slo is not None:
                    self._slo.observe(job.release, "admitted")
            elif op == "push":
                entry = (float(doc["time"]), tuple(doc["payload"]))
                self._injected.append(entry)
                tail.append((int(doc["dc"]), "push", entry))
                if self._slo is not None:
                    self._slo.observe(entry[0], "injected." + str(entry[1][0]))
            elif op == "shed":
                rec = ShedRecord(**doc["rec"])
                jid = rec.jid
                self._shed.append(rec)
                if self._slo is not None:
                    self._slo.observe(rec.time, "shed")
                    self._slo.observe(rec.time, "shed." + rec.reason)
            elif op == "crash_mark":
                self._forced_crashes += 1
                if self._slo is not None:
                    when = doc.get("time")
                    if when is None:  # pre-PR 10 op docs
                        self._slo.count("crashes")
                    else:
                        self._slo.observe(float(when), "crashes")
            else:
                raise RecoveryError(
                    f"tenant {self.tenant!r}: unknown op record {op!r} "
                    "in the op log"
                )
            rid = doc.get("rid")
            if rid:
                self._dedup[str(rid)] = outcome_by_op[op]
                if jid is not None:
                    self._rid_jid[str(rid)] = int(jid)

        # Undecided buffering (pending groups) is never durable, so
        # every reconstructed submission is a decided one.
        self._submitted = len(self._accepted) + len(self._shed)
        self._ops = list(tail)

        if snap is None:
            # Never persisted a snapshot: replay the whole op log onto a
            # fresh world.  The WAL (if any survived) describes a run we
            # are about to regenerate identically — start it over.
            self._journal = EventJournal(
                self._journal_path,
                flush_every=self.spec.flush_every,
                fsync=self.spec.fsync,
            )
            engine = self._build_engine([])
            engine.kernel.start()
            for _dc, kind, data in tail:
                if kind == "admit":
                    engine.kernel.admit_job(data)
                else:
                    engine.kernel.push_fault_event(*data)
        else:
            if self._journal_path is not None and self._journal_path.exists():
                self._journal = EventJournal.resume(
                    self._journal_path,
                    flush_every=self.spec.flush_every,
                    fsync=self.spec.fsync,
                )
            else:
                self._journal = EventJournal(
                    self._journal_path,
                    flush_every=self.spec.flush_every,
                    fsync=self.spec.fsync,
                )
            if len(self._journal) < snap.dispatch_count:
                raise RecoveryError(
                    f"tenant {self.tenant!r}: WAL holds "
                    f"{len(self._journal)} records but the snapshot was "
                    f"cut at dispatch {snap.dispatch_count} — the journal "
                    "tail was lost (power loss without fsync=True?)"
                )
            jobs = [
                job for job in self._accepted if job.jid in snap.status
            ]
            engine = self._build_engine(jobs)
            engine.restore(snap)
            base = snap.dispatch_count
            for dc, kind, data in tail:
                if dc < base:
                    continue
                if kind == "admit":
                    engine.kernel.admit_job(data)
                else:
                    engine.kernel.push_fault_event(*data)

        self._engine = engine
        self._recoveries += 1
        self._persist_anchor = -1 if snap is None else snap.dispatch_count
        if self._slo is not None:
            # Depth gauge is deliberately *not* refreshed here: the
            # restored values are the persisted ones, so drain → cold
            # start round-trips the parity view bit-identically.
            self._slo.count("recoveries")
            self._slo.count("cold_starts")
        self._count("service.cold_starts")
        octx = _obs.current()
        if octx is not None:
            octx.emit(
                "service.cold_start",
                engine.kernel.now,
                {
                    "tenant": self.tenant,
                    "accepted": len(self._accepted),
                    "shed": len(self._shed),
                    "ops_reapplied": len(tail),
                    "had_snapshot": snap is not None,
                },
                replay=False,
            )
