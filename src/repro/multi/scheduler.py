"""Multiprocessor scheduling interface.

The paper's model is a single processor; its closing remark points at
"cloud-wise scheduling ... with extensions".  :mod:`repro.cloud.cluster`
covers the *partitioned* extension (route once, schedule locally); this
package covers the *global* one — m processors, one ready pool, free
preemption **and migration** (the standard fluid assumptions of global
real-time scheduling).

A :class:`MultiScheduler` handles the same interrupt types as the
single-processor :class:`~repro.sim.scheduler.Scheduler`, but each handler
returns a full **assignment**: a sequence of length ``n_procs`` whose
``p``-th entry is the job processor ``p`` should run (``None`` = idle).
A job may appear at most once per assignment (no intra-job parallelism —
the engine enforces it).
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence, Tuple

from repro.sim.job import Job

__all__ = ["MultiSchedulerContext", "MultiScheduler", "Assignment"]

#: One job (or idle) per processor.
Assignment = Sequence[Optional[Job]]


class MultiSchedulerContext(abc.ABC):
    """Online information available to a global scheduler."""

    @abc.abstractmethod
    def now(self) -> float: ...

    @property
    @abc.abstractmethod
    def n_procs(self) -> int: ...

    @abc.abstractmethod
    def remaining(self, job: Job) -> float:
        """Remaining workload of a released, unfinished job."""

    @abc.abstractmethod
    def running(self) -> Tuple[Optional[Job], ...]:
        """Current assignment (job per processor, ``None`` = idle)."""

    @abc.abstractmethod
    def capacity_now(self, proc: int) -> float:
        """Instantaneous rate of processor ``proc``."""

    @abc.abstractmethod
    def bounds(self, proc: int) -> Tuple[float, float]:
        """Declared ``(c̲, c̄)`` of processor ``proc``."""

    @abc.abstractmethod
    def set_alarm(self, job: Job, time: float, tag: str = "alarm") -> None: ...

    @abc.abstractmethod
    def cancel_alarm(self, job: Job) -> None: ...


class MultiScheduler(abc.ABC):
    """Base class for global multiprocessor policies."""

    name = "multi-scheduler"

    def __init__(self) -> None:
        self.ctx: MultiSchedulerContext = None  # type: ignore[assignment]

    def bind(self, ctx: MultiSchedulerContext) -> None:
        self.ctx = ctx
        self.reset()

    def reset(self) -> None:
        """Reinitialise per-run state."""

    @abc.abstractmethod
    def on_release(self, job: Job) -> Assignment: ...

    @abc.abstractmethod
    def on_job_end(self, job: Job, completed: bool) -> Assignment: ...

    def on_alarm(self, job: Job, tag: str) -> Assignment:
        return self.ctx.running()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
