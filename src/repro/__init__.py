"""repro — reproduction of *Secondary Job Scheduling in the Cloud with
Deadlines* (Chen, He, Wong, Lee, Tong; IPPS 2011).

Public API tour:

* :mod:`repro.sim` — discrete-event kernel: :class:`~repro.sim.Job`,
  :func:`~repro.sim.simulate`, traces, metrics;
* :mod:`repro.capacity` — time-varying capacity models (the paper's
  ``C(c̲, c̄)``), incl. the Section-IV two-state CTMC;
* :mod:`repro.core` — the schedulers: :class:`~repro.core.VDoverScheduler`
  (the contribution), :class:`~repro.core.DoverScheduler`, EDF, LLF,
  greedy baselines; the offline stretch transformation and exact optimum;
* :mod:`repro.workload` — stochastic generators and the adversarial
  instance families of the negative results;
* :mod:`repro.analysis` — competitive-ratio formulas and empirical
  estimators, Monte-Carlo statistics;
* :mod:`repro.cloud` — the motivating substrate: primary-job occupancy,
  spot market, servers, cluster dispatch;
* :mod:`repro.faults` — capacity-sensing fault injection (noise,
  staleness, dropout, mis-declared bounds) with true physics;
* :mod:`repro.experiments` — one harness per paper table/figure, plus the
  crash-isolated, checkpoint/resume Monte-Carlo harness.

Quickstart::

    from repro import Job, simulate, VDoverScheduler, TwoStateMarkovCapacity

    jobs = [Job(0, release=0.0, workload=2.0, deadline=4.0, value=5.0)]
    capacity = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=10.0, rng=0)
    result = simulate(jobs, capacity, VDoverScheduler(k=7.0))
    print(result.value, result.completed_ids)
"""

from repro.capacity import (
    CapacityFunction,
    ConstantCapacity,
    MarkovModulatedCapacity,
    PiecewiseConstantCapacity,
    SinusoidalCapacity,
    TraceCapacity,
    TwoStateMarkovCapacity,
)
from repro.core import (
    DoverScheduler,
    EDFScheduler,
    FCFSScheduler,
    GreedyDensityScheduler,
    GreedyValueScheduler,
    LLFScheduler,
    StretchTransform,
    VDoverScheduler,
    is_feasible,
    is_underloaded,
    optimal_offline_value,
)
from repro.errors import (
    AnalysisError,
    CapacityError,
    CapacityReadError,
    CheckpointError,
    EstimateError,
    ExperimentError,
    FaultConfigError,
    FaultInjectionError,
    InvalidInstanceError,
    ReplicationTimeout,
    ReproError,
    SchedulingError,
    SimulationError,
)
from repro.faults import (
    BiasedBoundsCapacity,
    CapacitySensorFault,
    DropoutCapacity,
    FaultSpec,
    NoisyCapacity,
    StaleCapacity,
    unwrap_faults,
)
from repro.sim import (
    Job,
    JobStatus,
    Scheduler,
    SimulationEngine,
    SimulationResult,
    simulate,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # capacity
    "CapacityFunction",
    "ConstantCapacity",
    "MarkovModulatedCapacity",
    "PiecewiseConstantCapacity",
    "SinusoidalCapacity",
    "TraceCapacity",
    "TwoStateMarkovCapacity",
    # core
    "DoverScheduler",
    "EDFScheduler",
    "FCFSScheduler",
    "GreedyDensityScheduler",
    "GreedyValueScheduler",
    "LLFScheduler",
    "StretchTransform",
    "VDoverScheduler",
    "is_feasible",
    "is_underloaded",
    "optimal_offline_value",
    # errors
    "AnalysisError",
    "CapacityError",
    "CapacityReadError",
    "CheckpointError",
    "EstimateError",
    "ExperimentError",
    "FaultConfigError",
    "FaultInjectionError",
    "InvalidInstanceError",
    "ReplicationTimeout",
    "ReproError",
    "SchedulingError",
    "SimulationError",
    # faults
    "BiasedBoundsCapacity",
    "CapacitySensorFault",
    "DropoutCapacity",
    "FaultSpec",
    "NoisyCapacity",
    "StaleCapacity",
    "unwrap_faults",
    # sim
    "Job",
    "JobStatus",
    "Scheduler",
    "SimulationEngine",
    "SimulationResult",
    "simulate",
]
