"""Tests for the ablation sweeps (small-scale)."""

import pytest

from repro.experiments import (
    run_beta_sweep,
    run_delta_sweep,
    run_policy_sweep,
    run_supplement_ablation,
)


class TestPolicySweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_policy_sweep(
            lambdas=(4.0, 10.0), n_runs=4, expected_jobs=100.0, workers=1
        )

    def test_structure(self, sweep):
        assert sweep.swept_values == [4.0, 10.0]
        assert "V-Dover" in sweep.percents
        assert "EDF" in sweep.percents
        for summaries in sweep.percents.values():
            assert len(summaries) == 2

    def test_vdover_wins_under_load(self, sweep):
        assert sweep.best_at(1) == "V-Dover"

    def test_render(self, sweep):
        assert "lambda" in sweep.render()


class TestSupplementAblation:
    def test_supplement_helps(self):
        sweep = run_supplement_ablation(
            lambdas=(8.0,), n_runs=5, expected_jobs=150.0, workers=1
        )
        with_supp = sweep.percents["V-Dover"][0].mean
        without = sweep.percents["V-Dover(no-supp)"][0].mean
        assert with_supp >= without


class TestBetaSweep:
    def test_structure(self):
        sweep = run_beta_sweep(
            betas=(1.2, 3.0), n_runs=3, expected_jobs=80.0, workers=1
        )
        assert sweep.swept_values == [1.2, 3.0]
        assert len(sweep.percents["V-Dover"]) == 2


class TestDeltaSweep:
    def test_structure_and_ranges(self):
        sweep = run_delta_sweep(
            highs=(2.0, 35.0), n_runs=3, expected_jobs=80.0, workers=1
        )
        assert sweep.swept_values == [2.0, 35.0]
        for summaries in sweep.percents.values():
            for s in summaries:
                assert 0.0 <= s.mean <= 100.0


class TestKMisestimationSweep:
    def test_structure_and_flatness(self):
        from repro.experiments import run_k_misestimation_sweep

        sweep = run_k_misestimation_sweep(
            believed_ks=(3.0, 7.0, 21.0),
            n_runs=5,
            expected_jobs=120.0,
            workers=1,
        )
        assert sweep.swept_values == [3.0, 7.0, 21.0]
        means = [s.mean for s in sweep.percents["V-Dover"]]
        assert all(0.0 <= m <= 100.0 for m in means)
        # benign misestimation: no cliff between adjacent beliefs
        assert max(means) - min(means) < 15.0


class TestSlackSweep:
    def test_convergence_with_slack(self):
        from repro.experiments import run_slack_sweep

        sweep = run_slack_sweep(
            slacks=(1.0, 6.0), n_runs=5, expected_jobs=120.0, workers=1
        )
        assert sweep.swept_values == [1.0, 6.0]
        # Loose deadlines: all policies land close together.
        loose = [s[1].mean for s in sweep.percents.values()]
        assert max(loose) - min(loose) < 10.0
        # Tight deadlines: Dover(c=1) trails V-Dover.
        assert sweep.percents["V-Dover"][0].mean >= sweep.percents["Dover(c=1)"][0].mean
