"""Tests for the terminal line charts."""

import pytest

from repro.analysis.plots import render_line_chart
from repro.errors import AnalysisError


RAMP = [(0.0, 0.0), (5.0, 5.0), (10.0, 10.0)]
FLAT = [(0.0, 0.0), (10.0, 2.0)]


class TestValidation:
    def test_empty_series_dict(self):
        with pytest.raises(AnalysisError):
            render_line_chart({})

    def test_empty_series(self):
        with pytest.raises(AnalysisError):
            render_line_chart({"a": []})

    def test_non_ascending(self):
        with pytest.raises(AnalysisError):
            render_line_chart({"a": [(1.0, 0.0), (0.5, 1.0)]})

    def test_too_small(self):
        with pytest.raises(AnalysisError):
            render_line_chart({"a": RAMP}, width=3, height=2)


class TestRendering:
    def test_contains_markers_and_legend(self):
        text = render_line_chart({"up": RAMP, "flat": FLAT})
        assert "*" in text and "o" in text
        assert "legend: * up   o flat" in text

    def test_monotone_series_descends_left_to_right_visually(self):
        text = render_line_chart({"up": RAMP}, width=20, height=10)
        rows = [l.split("|", 1)[1] for l in text.splitlines() if "|" in l]
        cols = {}
        for r, row in enumerate(rows):
            for c, ch in enumerate(row):
                if ch == "*":
                    cols[c] = r
        # Higher x -> higher y -> smaller row index (charts grow upward).
        ordered = [cols[c] for c in sorted(cols)]
        assert ordered == sorted(ordered, reverse=True)

    def test_axis_labels(self):
        text = render_line_chart(
            {"a": RAMP}, title="T", x_label="time", y_label="val"
        )
        assert text.splitlines()[0] == "T"
        assert "time" in text
        assert "val" in text
        assert "10" in text  # y max

    def test_overlap_marker(self):
        text = render_line_chart({"a": RAMP, "b": RAMP[:]})
        # identical series overlap everywhere -> '=' cells appear
        assert "=" in text

    def test_step_semantics(self):
        """A single step must render as two levels, not a ramp."""
        step = [(0.0, 0.0), (5.0, 0.0), (5.0, 10.0), (10.0, 10.0)]
        text = render_line_chart({"s": step}, width=20, height=10)
        rows = [l.split("|", 1)[1] for l in text.splitlines() if "|" in l]
        marks = [(r, c) for r, row in enumerate(rows) for c, ch in enumerate(row) if ch == "*"]
        used_rows = {r for r, _ in marks}
        assert used_rows == {0, 9}  # only bottom and top levels
