"""Unit tests for the diurnal sinusoidal capacity."""

import numpy as np
import pytest

from repro.capacity import SinusoidalCapacity
from repro.errors import CapacityError


class TestConstruction:
    def test_bounds(self):
        cap = SinusoidalCapacity(1.0, 5.0, period=24.0)
        assert cap.lower == 1.0
        assert cap.upper == 5.0

    @pytest.mark.parametrize(
        "low,high,period",
        [(0.0, 5.0, 24.0), (5.0, 1.0, 24.0), (1.0, 5.0, 0.0)],
    )
    def test_rejects_bad_params(self, low, high, period):
        with pytest.raises(CapacityError):
            SinusoidalCapacity(low, high, period=period)

    def test_rejects_tiny_grid(self):
        with pytest.raises(CapacityError):
            SinusoidalCapacity(1.0, 5.0, period=24.0, steps_per_period=1)


class TestShape:
    def test_values_within_bounds(self):
        cap = SinusoidalCapacity(1.0, 5.0, period=10.0)
        for t in np.linspace(0, 40, 401):
            v = cap.value(float(t))
            assert 1.0 - 1e-9 <= v <= 5.0 + 1e-9

    def test_low_in_first_half_high_in_second(self):
        # c = mid - amp*sin(...): capacity dips in the first half-period
        # (primary load peak) and rises in the second.
        cap = SinusoidalCapacity(1.0, 5.0, period=10.0, steps_per_period=100)
        assert cap.value(2.5) == pytest.approx(1.0, abs=0.05)
        assert cap.value(7.5) == pytest.approx(5.0, abs=0.05)

    def test_periodicity(self):
        cap = SinusoidalCapacity(1.0, 5.0, period=10.0)
        for t in (0.3, 2.7, 6.1):
            assert cap.value(t) == pytest.approx(cap.value(t + 10.0))
            assert cap.value(t) == pytest.approx(cap.value(t + 30.0))

    def test_mean_close_to_midpoint(self):
        cap = SinusoidalCapacity(1.0, 5.0, period=10.0)
        assert cap.mean(0.0, 10.0) == pytest.approx(3.0, rel=1e-3)

    def test_integral_matches_numeric(self):
        cap = SinusoidalCapacity(2.0, 6.0, period=7.0, steps_per_period=64)
        ts = np.linspace(1.0, 15.0, 20001)
        numeric = np.trapezoid([cap.value(float(t)) for t in ts], ts)
        assert cap.integrate(1.0, 15.0) == pytest.approx(numeric, rel=1e-3)

    def test_pieces_contiguous(self):
        cap = SinusoidalCapacity(1.0, 5.0, period=10.0)
        pieces = list(cap.pieces(0.7, 23.4))
        assert pieces[0][0] == pytest.approx(0.7)
        assert pieces[-1][1] == pytest.approx(23.4)
        for (s0, e0, _), (s1, _, _) in zip(pieces, pieces[1:]):
            assert e0 == pytest.approx(s1)

    def test_advance_inverse(self):
        cap = SinusoidalCapacity(1.0, 5.0, period=10.0)
        t = cap.advance(0.5, 12.0)
        assert cap.integrate(0.5, t) == pytest.approx(12.0, rel=1e-9)
