"""E5 — the offline reduction (Section III-A).

Verifies, over random varying-capacity instances, that the exact offline
optimum computed directly on the varying-capacity system equals the
optimum of the stretched instance on the constant-capacity system — the
value-preserving bijection the paper proves.  Also benchmarks the
branch-and-bound optimum (the expensive half of the comparison).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import render_table
from repro.capacity import TwoStateMarkovCapacity
from repro.core import StretchTransform, optimal_offline_value
from repro.experiments.runner import default_mc_runs
from repro.workload import PoissonWorkload


def _random_instance(seed: int):
    capacity = TwoStateMarkovCapacity(1.0, 6.0, mean_sojourn=5.0, rng=seed)
    # Overloaded-ish small instance: the optimum is a strict subset.
    jobs = PoissonWorkload(lam=1.0, horizon=12.0, deadline_slack=1.5).generate(
        np.random.default_rng(seed + 999)
    )
    return jobs[:12], capacity


def test_offline_reduction_preserves_optimum(archive, benchmark):
    runs = min(default_mc_runs(15), 25)
    rows = []
    for seed in range(runs):
        jobs, capacity = _random_instance(seed)
        if not jobs:
            continue
        direct = optimal_offline_value(jobs, capacity)
        transform = StretchTransform(capacity)
        image = transform.transform_instance(jobs)
        via_image = optimal_offline_value(image.jobs, image.capacity)
        rows.append([seed, len(jobs), direct, via_image, abs(direct - via_image)])
        assert direct == pytest.approx(via_image, rel=1e-9, abs=1e-9), (
            f"seed {seed}: stretch transformation changed the optimum"
        )

    archive(
        "transform_reduction",
        render_table(
            ["seed", "n jobs", "optimum (varying)", "optimum (stretched)", "|diff|"],
            rows,
            title=(
                "Section III-A — offline optimum is invariant under the "
                "time-stretch reduction"
            ),
            float_fmt="{:.6f}",
        ),
    )

    jobs, capacity = _random_instance(0)
    benchmark(lambda: optimal_offline_value(jobs, capacity))
