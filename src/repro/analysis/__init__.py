"""Analysis layer: theoretical formulas, empirical ratios, statistics,
table rendering."""

from repro.analysis.competitive import RatioEstimate, empirical_ratio, worst_case_ratio
from repro.analysis.intervals import Lemma1Report, lemma1_report
from repro.analysis.plots import render_line_chart
from repro.analysis.stats import Summary, paired_gain_percent, summarize
from repro.analysis.tables import render_series, render_table
from repro.analysis.theory import (
    asymptotic_optimality_gap,
    dover_beta,
    dover_competitive_ratio,
    f_overload,
    optimal_beta,
    varying_capacity_upper_bound,
    vdover_competitive_ratio,
)

__all__ = [
    "RatioEstimate",
    "Lemma1Report",
    "lemma1_report",
    "empirical_ratio",
    "worst_case_ratio",
    "Summary",
    "paired_gain_percent",
    "summarize",
    "render_series",
    "render_line_chart",
    "render_table",
    "asymptotic_optimality_gap",
    "dover_beta",
    "dover_competitive_ratio",
    "f_overload",
    "optimal_beta",
    "varying_capacity_upper_bound",
    "vdover_competitive_ratio",
]
