"""Kernel parity: an m=1 multiprocessor run *is* the single-processor run.

Both engines are façades over the same :class:`repro.kernel.
SchedulingKernel`; this suite pins the strongest consequence — wrapping
any single-processor scheduler in :class:`~repro.multi.
SingleProcessorAdapter` and running it through a one-processor
:class:`~repro.multi.MultiprocessorEngine` reproduces the
:class:`~repro.sim.SimulationEngine` run **bit-identically**: same
values, same trace segments, same outcomes, and the same dispatched
event order (verified through the write-ahead journals, modulo the
``@p0`` processor tag multi payload keys carry).

The workloads are the paper's Figure-1 regime (λ = 6, c ∈ {1, 35},
densities in [1, k]) under EDF, Dover and V-Dover — the exact policies
the acceptance criteria name.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.capacity import TwoStateMarkovCapacity
from repro.core import DoverScheduler, EDFScheduler, VDoverScheduler
from repro.multi import (
    MultiprocessorEngine,
    SingleProcessorAdapter,
    simulate_multi,
)
from repro.sim import EventJournal, SimulationEngine, simulate
from repro.workload.poisson import PoissonWorkload

SCHEDULERS = [
    pytest.param(lambda: EDFScheduler(), id="edf"),
    pytest.param(lambda: DoverScheduler(k=7.0, c_hat=1.0), id="dover-c1"),
    pytest.param(lambda: DoverScheduler(k=7.0, c_hat=35.0), id="dover-c35"),
    pytest.param(lambda: VDoverScheduler(k=7.0), id="vdover"),
]


def _instance(seed: int, lam: float = 6.0, horizon: float = 12.0):
    workload = PoissonWorkload(
        lam=lam, horizon=horizon, density_range=(1.0, 7.0), c_lower=1.0
    )
    jobs = workload.generate(np.random.default_rng(seed))
    capacity = TwoStateMarkovCapacity(
        1.0,
        35.0,
        mean_sojourn=horizon / 4.0,
        rng=np.random.default_rng(seed + 1),
    )
    return jobs, capacity


def _strip_proc_tag(key: str) -> str:
    """Multi COMPLETION payload keys carry ``@p<proc>``; on one processor
    the tag is always ``@p0`` and is the only allowed difference."""
    return key[: -len("@p0")] if key.endswith("@p0") else key


@pytest.mark.parametrize("make_scheduler", SCHEDULERS)
@pytest.mark.parametrize("seed", [3, 21])
def test_m1_multi_bit_identical_to_single(make_scheduler, seed):
    jobs, capacity = _instance(seed)

    single_journal = EventJournal()
    ref = simulate(
        jobs, capacity, make_scheduler(), journal=single_journal
    )

    multi_journal = EventJournal()
    got = simulate_multi(
        jobs,
        [capacity],
        SingleProcessorAdapter(make_scheduler()),
        journal=multi_journal,
    )

    # Exact value/outcome identity (== on floats, no tolerance).
    assert got.value == ref.value
    assert got.n_completed == ref.n_completed
    assert got.combined.outcomes == ref.trace.outcomes
    assert got.combined.completion_times == ref.trace.completion_times
    assert got.combined.value_points == ref.trace.value_points

    # The one processor's trace is the single engine's trace, segment by
    # segment (dataclass equality — start, end, jid and work all exact).
    assert got.proc_traces[0].segments == ref.trace.segments

    # Same dispatched event order: (time, kind, key) streams match once
    # the @p0 tag is stripped from the multi payload keys.
    assert len(multi_journal) == len(single_journal)
    for mine, theirs in zip(multi_journal.records, single_journal.records):
        assert mine.time == theirs.time
        assert mine.kind == theirs.kind
        assert _strip_proc_tag(mine.key) == theirs.key


@pytest.mark.parametrize("make_scheduler", SCHEDULERS)
def test_m1_parity_survives_crash_recovery(make_scheduler):
    """Parity is preserved through the snapshot/restore machinery too:
    crash the m=1 multi engine mid-run, resume it, and it still lands on
    the single-processor reference bit-for-bit."""
    from repro.faults import EngineCrashPlan

    jobs, capacity = _instance(seed=5)
    ref = simulate(jobs, capacity, make_scheduler())

    got = simulate_multi(
        jobs,
        [capacity],
        SingleProcessorAdapter(make_scheduler()),
        faults=[EngineCrashPlan(at_event=17)],
        snapshot_every=8,
        recover=True,
    )
    assert got.recoveries == 1
    assert got.value == ref.value
    assert got.proc_traces[0].segments == ref.trace.segments
    assert got.combined.outcomes == ref.trace.outcomes


def test_engines_share_the_kernel():
    """No duplicated event loop: both engines run the same kernel class."""
    from repro.kernel import SchedulingKernel

    jobs, capacity = _instance(seed=3)
    single = SimulationEngine(jobs, capacity, EDFScheduler())
    multi = MultiprocessorEngine(
        jobs, [capacity], SingleProcessorAdapter(EDFScheduler())
    )
    assert type(single.kernel) is SchedulingKernel
    assert type(multi.kernel) is SchedulingKernel


def test_adapter_rejects_more_than_one_processor():
    from repro.errors import RecoveryError

    jobs, capacity = _instance(seed=3)
    capacity2 = TwoStateMarkovCapacity(
        1.0, 35.0, mean_sojourn=3.0, rng=np.random.default_rng(99)
    )
    with pytest.raises(RecoveryError):
        simulate_multi(
            jobs,
            [capacity, capacity2],
            SingleProcessorAdapter(EDFScheduler()),
        )
