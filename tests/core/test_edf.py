"""Unit tests for the EDF scheduler."""

import pytest

from repro.capacity import ConstantCapacity, PiecewiseConstantCapacity
from repro.core import EDFScheduler
from repro.sim import Job, simulate


def J(jid, r, p, d, v=1.0):
    return Job(jid, r, p, d, v)


class TestEdfOrdering:
    def test_runs_earliest_deadline(self):
        jobs = [J(0, 0.0, 5.0, 20.0), J(1, 0.0, 1.0, 2.0)]
        r = simulate(jobs, ConstantCapacity(1.0), EDFScheduler(), validate=True)
        # Job 1 (deadline 2) must run first and complete at t=1.
        assert r.trace.completion_times[1] == pytest.approx(1.0)
        assert r.trace.completion_times[0] == pytest.approx(6.0)

    def test_preempts_on_earlier_deadline_arrival(self):
        jobs = [J(0, 0.0, 4.0, 20.0), J(1, 1.0, 1.0, 3.0)]
        r = simulate(jobs, ConstantCapacity(1.0), EDFScheduler(), validate=True)
        segs = [(s.jid, s.start, s.end) for s in r.trace.segments]
        assert segs == [(0, 0.0, 1.0), (1, 1.0, 2.0), (0, 2.0, 5.0)]

    def test_no_preemption_on_later_deadline(self):
        jobs = [J(0, 0.0, 4.0, 5.0), J(1, 1.0, 1.0, 20.0)]
        r = simulate(jobs, ConstantCapacity(1.0), EDFScheduler(), validate=True)
        assert r.trace.segments[0].jid == 0
        assert r.trace.segments[0].end == pytest.approx(4.0)

    def test_deadline_tie_keeps_running_job(self):
        jobs = [J(0, 0.0, 4.0, 5.0), J(1, 1.0, 1.0, 5.0)]
        r = simulate(jobs, ConstantCapacity(1.0), EDFScheduler(), validate=True)
        assert r.trace.segments[0].jid == 0


class TestEdfOptimality:
    def test_feasible_set_all_complete(self):
        """On an underloaded instance EDF completes everything (Thm 2's
        constant-capacity ancestor)."""
        jobs = [
            J(0, 0.0, 2.0, 9.0),
            J(1, 0.0, 2.0, 4.0),
            J(2, 3.0, 1.0, 6.0),
            J(3, 5.0, 2.0, 9.0),
        ]
        r = simulate(jobs, ConstantCapacity(1.0), EDFScheduler(), validate=True)
        assert r.n_completed == 4

    def test_feasible_under_varying_capacity(self):
        """Theorem 2: EDF stays optimal with time-varying capacity."""
        cap = PiecewiseConstantCapacity([0.0, 2.0, 4.0], [1.0, 3.0, 1.0])
        # Total work 2+6 = 8 available on [0,4]; demand 7 with deadlines
        # arranged feasibly.
        jobs = [J(0, 0.0, 2.0, 2.0), J(1, 0.0, 5.0, 4.0)]
        r = simulate(jobs, cap, EDFScheduler(), validate=True)
        assert r.n_completed == 2

    def test_expired_waiting_job_is_purged(self):
        # Deadline tie: job 0 keeps the processor (id tie-break) and
        # completes exactly at t=5; job 1 expires *waiting* at the same
        # instant (completion outranks deadline in the event order).
        jobs = [J(0, 0.0, 5.0, 5.0), J(1, 1.0, 1.0, 5.0)]
        r = simulate(jobs, ConstantCapacity(1.0), EDFScheduler(), validate=True)
        assert r.completed_ids == [0]
        assert 1 in r.failed_ids

    def test_overload_pathology_exists(self):
        """EDF is value-blind: it loses a huge-value later-deadline job to a
        worthless earlier-deadline one under overload."""
        jobs = [
            J(0, 0.0, 2.0, 2.0, v=0.1),   # earliest deadline, tiny value
            J(1, 0.0, 2.0, 2.5, v=100.0),  # cannot fit after job 0
        ]
        r = simulate(jobs, ConstantCapacity(1.0), EDFScheduler(), validate=True)
        assert r.value == pytest.approx(0.1)
