"""Multiprocessor scheduling: migration vs partitioned value triage.

Four servers, each with its own independently fluctuating residual
capacity.  Two philosophies compete on one secondary-job stream:

* global scheduling (one pool, free migration) — work chases whichever
  server is currently fast;
* partitioned scheduling (route once, V-Dover locally) — no migration,
  but overload-safe value triage per server.

Sweep the load and watch the crossover: migration wins while capacity is
the bottleneck you can dodge; triage wins once overload makes *choosing*
jobs matter more than *placing* them.

Run:  python examples/multiprocessor.py [runs]
"""

import sys

import numpy as np

from repro.analysis import render_table
from repro.capacity import TwoStateMarkovCapacity
from repro.cloud import LeastWorkDispatcher
from repro.core import VDoverScheduler
from repro.multi import (
    GlobalDensityScheduler,
    GlobalEDFScheduler,
    GlobalVDoverScheduler,
    PartitionedScheduler,
    simulate_multi,
)
from repro.workload import PoissonWorkload

M = 4


def policies():
    return [
        ("Global-EDF", lambda: GlobalEDFScheduler()),
        ("Global-Density", lambda: GlobalDensityScheduler()),
        ("Global-V-Dover", lambda: GlobalVDoverScheduler(k=7.0)),
        (
            "Partitioned V-Dover",
            lambda: PartitionedScheduler(
                LeastWorkDispatcher(), lambda: VDoverScheduler(k=7.0)
            ),
        ),
    ]


def main(runs: int = 6) -> None:
    lambdas = (8.0, 16.0, 24.0, 32.0, 40.0)
    print(
        f"{M} servers, capacity CTMC over {{1, 10}} per server "
        f"(independent paths), k = 7, {runs} Monte-Carlo runs per point\n"
    )
    rows = []
    for lam in lambdas:
        horizon = 1200.0 / lam
        captured = {name: [] for name, _ in policies()}
        migrations = []
        for seed in range(runs):
            jobs = PoissonWorkload(lam=lam, horizon=horizon).generate(seed)
            generated = sum(j.value for j in jobs)
            for name, make in policies():
                caps = [
                    TwoStateMarkovCapacity(
                        1.0, 10.0, mean_sojourn=horizon / 4, rng=seed * 10 + i
                    )
                    for i in range(M)
                ]
                result = simulate_multi(jobs, caps, make())
                captured[name].append(100.0 * result.value / generated)
                if name == "Global-EDF":
                    migrations.append(result.migrations() / max(1, len(jobs)))
        row = [f"{lam:g}"]
        row += [f"{np.mean(captured[name]):6.2f}" for name, _ in policies()]
        row.append(f"{np.mean(migrations):.2f}")
        rows.append(row)

    print(
        render_table(
            ["lambda"]
            + [name for name, _ in policies()]
            + ["G-EDF migrations/job"],
            rows,
            title="% of offered value captured",
        )
    )
    print(
        "\nReading: migration lets global policies ride whichever server is "
        "currently fast;\nunder heavy overload value-blind Global-EDF "
        "collapses below partitioned V-Dover —\nGlobal-V-Dover (this library's "
        "extension) dominates both parents."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6)
