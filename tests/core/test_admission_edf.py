"""Unit tests for the admission-controlled EDF baseline."""

import pytest

from repro.capacity import ConstantCapacity, PiecewiseConstantCapacity
from repro.core import AdmissionEDFScheduler, EDFScheduler
from repro.sim import Job, simulate
from repro.workload import locke_trap


def J(jid, r, p, d, v=1.0):
    return Job(jid, r, p, d, v)


class TestAdmission:
    def test_admits_feasible_stream(self):
        jobs = [J(0, 0.0, 1.0, 3.0), J(1, 0.5, 1.0, 4.0), J(2, 1.0, 1.0, 5.0)]
        r = simulate(jobs, ConstantCapacity(1.0), AdmissionEDFScheduler(), validate=True)
        assert r.n_completed == 3

    def test_rejects_overloading_job(self):
        # Job 1 cannot fit alongside job 0; it must be turned away so job 0
        # is untouched (plain EDF would preempt and kill job 0 too).
        jobs = [J(0, 0.0, 3.0, 3.0, v=5.0), J(1, 1.0, 1.5, 2.8, v=1.0)]
        ac = simulate(jobs, ConstantCapacity(1.0), AdmissionEDFScheduler(), validate=True)
        assert ac.completed_ids == [0]
        edf = simulate(jobs, ConstantCapacity(1.0), EDFScheduler(), validate=True)
        assert edf.value < ac.value  # EDF loses both

    def test_no_wasted_work_on_rejects(self):
        jobs = [J(0, 0.0, 3.0, 3.0), J(1, 1.0, 1.5, 2.8)]
        r = simulate(jobs, ConstantCapacity(1.0), AdmissionEDFScheduler(), validate=True)
        assert r.wasted_work == pytest.approx(0.0)

    def test_admitted_jobs_never_fail_at_floor_capacity(self):
        """The admission test is exact at the floor: every admitted job
        completes when the capacity sits exactly at c̲."""
        jobs = [
            J(i, 0.4 * i, 0.5 + 0.1 * (i % 3), 0.4 * i + 2.0 + (i % 5), 1.0)
            for i in range(25)
        ]
        r = simulate(jobs, ConstantCapacity(1.0), AdmissionEDFScheduler(), validate=True)
        assert r.wasted_work == pytest.approx(0.0)

    def test_conservative_under_varying_capacity(self):
        """Admission uses c̲; a capacity spike can only help, so admitted
        jobs still never fail."""
        cap = PiecewiseConstantCapacity([0.0, 3.0], [1.0, 4.0])
        jobs = [J(i, 0.3 * i, 0.8, 0.3 * i + 2.5, 1.0) for i in range(20)]
        r = simulate(jobs, cap, AdmissionEDFScheduler(), validate=True)
        assert r.wasted_work == pytest.approx(0.0)

    def test_fixes_edf_wasted_work_but_stays_value_blind(self):
        """On the Locke trap: admission control keeps the big job (it came
        first), unlike EDF — but only by arrival luck, not by value."""
        jobs, cap = locke_trap(10)
        ac = simulate(jobs, cap, AdmissionEDFScheduler(), validate=True)
        assert 0 in ac.completed_ids
        assert ac.value == pytest.approx(10.0)

    def test_rejection_counter(self):
        sched = AdmissionEDFScheduler()
        jobs = [J(0, 0.0, 3.0, 3.0), J(1, 1.0, 1.5, 2.8), J(2, 1.2, 1.5, 2.9)]
        simulate(jobs, ConstantCapacity(1.0), sched, validate=True)
        assert sched.n_rejected >= 0  # counter decays as rejects expire

    def test_explicit_rate_estimate(self):
        sched = AdmissionEDFScheduler(rate_estimate=2.0)
        jobs = [J(0, 0.0, 4.0, 2.5)]
        r = simulate(jobs, ConstantCapacity(2.0), sched, validate=True)
        assert r.completed_ids == [0]
