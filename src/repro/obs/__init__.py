"""Runtime observability for the scheduling stack: structured tracing,
a mergeable metrics registry, and opt-in profiling — all behind one
module-level gate that costs a single ``is not None`` check when off.

See ``docs/OBSERVABILITY.md`` for the trace schema, the metric-name
catalogue and the overhead guarantee.
"""

from repro.obs.core import (
    ObsContext,
    ObsSpec,
    current,
    disable,
    enable,
    enabled,
    session,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.correlate import correlate_request, render_request_trace
from repro.obs.report import decision_stream, diff_traces, render_report, render_tail
from repro.obs.telemetry import (
    HEALTH_STATES,
    SloTracker,
    WindowRing,
    lint_prometheus,
    render_prometheus,
    render_top,
    slo_parity_view,
)
from repro.obs.trace import TRACE_SCHEMA, TraceEvent, TraceSink, load_trace

__all__ = [
    "ObsContext",
    "ObsSpec",
    "current",
    "enabled",
    "enable",
    "disable",
    "session",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "TraceEvent",
    "TraceSink",
    "TRACE_SCHEMA",
    "load_trace",
    "render_report",
    "render_tail",
    "diff_traces",
    "decision_stream",
    "WindowRing",
    "SloTracker",
    "slo_parity_view",
    "render_prometheus",
    "lint_prometheus",
    "render_top",
    "HEALTH_STATES",
    "correlate_request",
    "render_request_trace",
]
