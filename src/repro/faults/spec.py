"""Picklable fault *descriptions* for the experiment harness.

Monte-Carlo worker payloads must be plain picklable data, so the fault
sweep ships a :class:`FaultSpec` (kind + severity + options) to workers and
materializes the actual wrapper per replication via :meth:`FaultSpec.apply`
with a replication-local seed — the same recipe-vs-instance split as
:class:`~repro.experiments.runner.SchedulerSpec`.

Severity conventions (``severity = 0`` is always the identity):

* ``noise`` — relative Gaussian noise width σ (0.2 → ±20 % readings);
* ``staleness`` — sensor lag Δ in time units;
* ``dropout`` — long-run sensor *unavailability fraction* in [0, 1), with
  mean outage length ``mean_down`` (option, default 1.0);
* ``bias`` — optimistic inflation of the declared conservative bound:
  ``c̲' = c̲ + severity · (c̄ − c̲)`` (severity 1 declares c̲ = c̄).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.capacity.base import CapacityFunction
from repro.errors import FaultConfigError
from repro.faults.models import (
    BiasedBoundsCapacity,
    DropoutCapacity,
    NoisyCapacity,
    StaleCapacity,
)

__all__ = ["FaultSpec", "FAULT_KINDS"]

#: The supported fault families, in presentation order.
FAULT_KINDS = ("noise", "staleness", "dropout", "bias")


@dataclass(frozen=True)
class FaultSpec:
    """A serializable recipe for one sensing fault.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS` (or ``"none"`` for the explicit
        identity).
    severity:
        Fault strength on the per-kind scale documented in the module
        docstring.  ``0`` always means "no fault".
    options:
        Kind-specific extras (e.g. ``mean_down`` for ``dropout``,
        ``relative`` for ``noise``).
    """

    kind: str
    severity: float = 0.0
    options: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS and self.kind != "none":
            raise FaultConfigError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{('none',) + FAULT_KINDS}"
            )
        if not self.severity >= 0.0:
            raise FaultConfigError(f"severity must be >= 0, got {self.severity!r}")
        if self.kind == "dropout" and not self.severity < 1.0:
            raise FaultConfigError(
                f"dropout severity is an unavailability fraction and must be "
                f"< 1, got {self.severity!r}"
            )

    @property
    def label(self) -> str:
        if self.kind == "none" or self.severity == 0.0:
            return "no-fault"
        return f"{self.kind}={self.severity:g}"

    def apply(self, capacity: CapacityFunction, seed: int = 0) -> CapacityFunction:
        """Wrap ``capacity`` according to this spec (identity at severity 0)."""
        if self.kind == "none" or self.severity == 0.0:
            return capacity
        if self.kind == "noise":
            return NoisyCapacity(
                capacity,
                sigma=self.severity,
                relative=bool(self.options.get("relative", True)),
                seed=seed,
            )
        if self.kind == "staleness":
            return StaleCapacity(capacity, delay=self.severity)
        if self.kind == "dropout":
            p = self.severity
            mean_down = float(self.options.get("mean_down", 1.0))
            # Unavailability fraction p = mean_down / (mean_up + mean_down).
            mean_up = mean_down * (1.0 - p) / p
            return DropoutCapacity(
                capacity, mean_up=mean_up, mean_down=mean_down, seed=seed
            )
        if self.kind == "bias":
            span = capacity.upper - capacity.lower
            return BiasedBoundsCapacity(
                capacity, lower=capacity.lower + self.severity * span
            )
        raise FaultConfigError(f"unknown fault kind {self.kind!r}")  # pragma: no cover
