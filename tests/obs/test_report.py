"""Renderer tests: report, tail and the first-divergent-decision diff."""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.capacity import TwoStateMarkovCapacity
from repro.core import DoverScheduler, EDFScheduler, VDoverScheduler
from repro.obs import diff_traces, load_trace, render_report, render_tail
from repro.obs.report import decision_stream
from repro.sim import simulate
from repro.workload import PoissonWorkload


def _instance(seed: int = 47, lam: float = 6.0, horizon: float = 20.0):
    ss = np.random.SeedSequence(seed)
    job_seed, cap_seed = ss.spawn(2)
    jobs = PoissonWorkload(lam=lam, horizon=horizon).generate(job_seed)
    capacity = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=1.0, rng=cap_seed)
    return jobs, capacity


def _traced_run(tmp_path, scheduler, name, profile=False):
    jobs, capacity = _instance()
    with obs.session(profile=profile) as octx:
        simulate(jobs, capacity, scheduler)
        path = tmp_path / f"{name}.jsonl"
        octx.sink.export_jsonl(path, metrics=octx.snapshot_metrics())
    return load_trace(path)


class TestReport:
    def test_sections(self, tmp_path):
        trace = _traced_run(tmp_path, VDoverScheduler(k=7.0), "v", profile=True)
        text = render_report(trace)
        assert "events by kind:" in text
        assert "job.release" in text
        assert "decisions:" in text
        assert "V-Dover" in text
        assert "dispatch latency by event kind (profiled):" in text
        assert "kernel.events" in text  # metric counters section
        assert "fault/recovery timeline: 0 event(s)" in text

    def test_unprofiled_report_omits_latency(self, tmp_path):
        trace = _traced_run(tmp_path, EDFScheduler(), "e")
        assert "dispatch latency" not in render_report(trace)


class TestTail:
    def test_tail_window(self, tmp_path):
        trace = _traced_run(tmp_path, EDFScheduler(), "e")
        text = render_tail(trace, n=3)
        assert text.startswith("last 3 of ")
        assert len(text.splitlines()) == 4
        assert "run.end" in text  # the final event is always run.end


class TestDiff:
    def test_identical_traces_agree(self, tmp_path):
        a = _traced_run(tmp_path, EDFScheduler(), "a")
        b = _traced_run(tmp_path, EDFScheduler(), "b")
        assert "traces agree on all" in diff_traces(a, b)

    def test_first_behavioural_divergence(self, tmp_path):
        # V-Dover vs Dover(c-hat) on the same instance: the diff must skip
        # over identically-behaving prefix decisions (policy names differ
        # but are excluded) and pinpoint the first real divergence.
        a = _traced_run(tmp_path, VDoverScheduler(k=7.0), "v")
        b = _traced_run(tmp_path, DoverScheduler(k=7.0, c_hat=10.5), "d")
        text = diff_traces(a, b, names=("V-Dover", "Dover"))
        assert "first divergence at decision #" in text
        assert "V-Dover:" in text and "Dover:" in text
        # And it is not decision #0 — the early admits behave identically.
        assert "first divergence at decision #0:" not in text


def _decision(t, jid, action="admit"):
    return {
        "kind": "decision",
        "t": t,
        "data": {"action": action, "jid": jid, "policy": "EDF"},
    }


def _container(t, items):
    """A batched-protocol ``decisions`` container as the trace ring holds
    it (item shape from :meth:`repro.obs.trace.TraceSink.end_group`)."""
    return {
        "kind": "decisions",
        "t": t,
        "data": {
            "items": [
                {"kind": "decision", "t": it["t"], "d": i, "data": it["data"]}
                for i, it in enumerate(items)
            ],
            "n": len(items),
        },
    }


class TestBatchedDecisionContainers:
    """The batched scheduler protocol packs same-instant decision bursts
    into one ``kind="decisions"`` container event.  Diff and decision-mix
    tooling must see through the container — a whole batch is never one
    opaque event."""

    def test_decision_stream_explodes_containers(self):
        events = [
            _decision(1.0, 1),
            _container(2.0, [_decision(2.0, 2), _decision(2.0, 3, "evict")]),
            {"kind": "job.release", "t": 3.0, "data": {"jid": 9}},
            _decision(4.0, 4),
        ]
        stream = decision_stream(events)
        assert len(stream) == 4
        assert [d["data"]["jid"] for d in stream] == [1, 2, 3, 4]
        assert all(d["kind"] == "decision" for d in stream)

    def test_container_without_items_is_skipped(self):
        assert decision_stream([{"kind": "decisions", "t": 0.0}]) == []
        assert decision_stream(
            [{"kind": "decisions", "t": 0.0, "data": {"items": []}}]
        ) == []

    def test_diff_pinpoints_divergence_inside_a_batch(self):
        # The second item of the second batch differs; the diff must name
        # the individual decision index (#2), not the container.
        a = {
            "events": [
                _container(1.0, [_decision(1.0, 1)]),
                _container(2.0, [_decision(2.0, 2), _decision(2.0, 3)]),
            ]
        }
        b = {
            "events": [
                _container(1.0, [_decision(1.0, 1)]),
                _container(
                    2.0, [_decision(2.0, 2), _decision(2.0, 3, "evict")]
                ),
            ]
        }
        text = diff_traces(a, b, names=("batched-a", "batched-b"))
        assert "batched-a: 3 decision(s); batched-b: 3 decision(s)" in text
        assert "first divergence at decision #2:" in text

    def test_diff_scalar_vs_batched_same_decisions_agree(self):
        # A scalar-protocol trace and its batched twin must diff clean.
        scalar = {
            "events": [_decision(1.0, 1), _decision(2.0, 2), _decision(2.0, 3)]
        }
        batched = {
            "events": [
                _decision(1.0, 1),
                _container(2.0, [_decision(2.0, 2), _decision(2.0, 3)]),
            ]
        }
        assert "traces agree on all 3 decision(s)" in diff_traces(
            scalar, batched
        )
