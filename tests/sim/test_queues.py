"""Unit tests for the scheduler job queues (Qedf/Qother/Qsupp semantics)."""

import pytest

from repro.errors import SchedulingError
from repro.sim import Job, JobQueue, edf_key, latest_deadline_key


def J(jid, deadline):
    return Job(jid, 0.0, 1.0, deadline, 1.0)


class TestEdfOrder:
    def test_earliest_deadline_first(self):
        q = JobQueue(edf_key)
        q.insert(J(0, 5.0))
        q.insert(J(1, 2.0))
        q.insert(J(2, 8.0))
        assert q.dequeue().deadline == 2.0
        assert q.dequeue().deadline == 5.0
        assert q.dequeue().deadline == 8.0

    def test_tie_breaks_by_id(self):
        q = JobQueue(edf_key)
        q.insert(J(5, 3.0))
        q.insert(J(1, 3.0))
        assert q.dequeue().jid == 1

    def test_first_does_not_remove(self):
        q = JobQueue(edf_key)
        q.insert(J(0, 5.0))
        assert q.first().jid == 0
        assert len(q) == 1


class TestLatestDeadlineOrder:
    def test_latest_first(self):
        """Qsupp serves the job with the most remaining deadline room."""
        q = JobQueue(latest_deadline_key)
        q.insert(J(0, 5.0))
        q.insert(J(1, 2.0))
        q.insert(J(2, 8.0))
        assert q.dequeue().deadline == 8.0
        assert q.dequeue().deadline == 5.0


class TestRemoval:
    def test_remove_member(self):
        q = JobQueue(edf_key)
        a, b = J(0, 5.0), J(1, 2.0)
        q.insert(a)
        q.insert(b)
        assert q.remove(b) is b
        assert b not in q
        assert q.dequeue() is a

    def test_remove_absent_returns_none(self):
        q = JobQueue(edf_key)
        assert q.remove(J(9, 1.0)) is None

    def test_tombstones_are_purged(self):
        q = JobQueue(edf_key)
        jobs = [J(i, float(i + 1)) for i in range(10)]
        for job in jobs:
            q.insert(job)
        for job in jobs[:5]:
            q.remove(job)
        assert q.dequeue() is jobs[5]

    def test_reinsert_after_remove(self):
        q = JobQueue(edf_key)
        a = J(0, 5.0)
        q.insert(a)
        q.remove(a)
        q.insert(a)  # must not raise
        assert q.dequeue() is a

    def test_double_insert_raises(self):
        q = JobQueue(edf_key)
        a = J(0, 5.0)
        q.insert(a)
        with pytest.raises(SchedulingError):
            q.insert(a)


class TestEntryQueues:
    def test_tuple_entries(self):
        """Qedf stores (job, t_insert, cslack) tuples keyed by the job."""
        q = JobQueue(edf_key, entry_job=lambda e: e[0], name="Qedf")
        a, b = J(0, 5.0), J(1, 2.0)
        q.insert((a, 1.0, 3.0))
        q.insert((b, 2.0, 4.0))
        job, t_ins, cslack = q.dequeue()
        assert job is b and t_ins == 2.0 and cslack == 4.0

    def test_remove_by_job(self):
        q = JobQueue(edf_key, entry_job=lambda e: e[0])
        a = J(0, 5.0)
        q.insert((a, 1.0, 3.0))
        assert q.remove(a) == (a, 1.0, 3.0)


class TestBulk:
    def test_drain_in_order(self):
        q = JobQueue(edf_key)
        for i, d in enumerate([5.0, 2.0, 8.0, 1.0]):
            q.insert(J(i, d))
        drained = q.drain()
        assert [j.deadline for j in drained] == [1.0, 2.0, 5.0, 8.0]
        assert len(q) == 0

    def test_empty_operations_raise(self):
        q = JobQueue(edf_key)
        with pytest.raises(SchedulingError):
            q.first()
        with pytest.raises(SchedulingError):
            q.dequeue()

    def test_jobs_iteration(self):
        q = JobQueue(edf_key)
        q.insert(J(0, 5.0))
        q.insert(J(1, 2.0))
        assert {j.jid for j in q.jobs()} == {0, 1}

    def test_clear(self):
        q = JobQueue(edf_key)
        q.insert(J(0, 5.0))
        q.clear()
        assert not q


class TestCompaction:
    """Tombstone hygiene: the heap stays bounded under removal churn."""

    def test_compact_drops_tombstones(self):
        q = JobQueue(edf_key)
        jobs = [J(i, float(i + 1)) for i in range(8)]
        for job in jobs:
            q.insert(job)
        # Remove below the auto-trigger threshold, then compact manually.
        q.remove(jobs[0])
        assert q.compact() >= 0
        assert q.heap_size == len(q)

    def test_remove_auto_compacts_at_half(self):
        q = JobQueue(edf_key)
        jobs = [J(i, float(i + 1)) for i in range(10)]
        for job in jobs:
            q.insert(job)
        for job in jobs[:6]:
            q.remove(job)
        # Tombstones can never outnumber half the heap for long: the
        # churn-ratio trigger (tombstones * 2 > heap) fires during the
        # removal sequence and rebuilds from the 4..9 survivors.
        assert q.heap_size <= 2 * len(q)
        assert [j.jid for j in q.drain()] == [6, 7, 8, 9]

    def test_heap_bounded_under_churn(self):
        """Insert/remove cycles leave the heap ~2x the live size, not the
        cumulative number of removals (the unbounded-growth regression)."""
        q = JobQueue(edf_key)
        live = [J(i, float(i + 1)) for i in range(16)]
        for job in live:
            q.insert(job)
        high_water = q.heap_size
        for round_ in range(100):
            victim = J(1000 + round_, 0.5)
            q.insert(victim)
            q.remove(victim)
            high_water = max(high_water, q.heap_size)
        assert len(q) == 16
        assert high_water <= 2 * 17 + 1
        assert [j.jid for j in q.drain()] == list(range(16))

    def test_compaction_preserves_tie_break_order(self):
        """Surviving entries keep their insertion counters, so equal-key
        ties pop in insertion order even across a compaction."""
        q = JobQueue(edf_key, entry_job=lambda e: e[0])
        a, b = J(0, 3.0), J(1, 3.0)  # distinct jids: key ties break by jid
        fill = [J(i, 9.0) for i in range(2, 12)]
        q.insert((a, "first",))
        q.insert((b, "second",))
        for job in fill:
            q.insert((job, "fill"))
        for job in fill:
            q.remove(job)  # triggers auto-compaction mid-sequence
        assert q.heap_size == 2
        assert q.dequeue()[0] is a
        assert q.dequeue()[0] is b


class TestDrainSinglePass:
    """drain() restructure: one purge + sort, not n re-purging dequeues."""

    def test_drain_ignores_tombstones(self):
        q = JobQueue(edf_key)
        jobs = [J(i, float(10 - i)) for i in range(10)]
        for job in jobs:
            q.insert(job)
        for job in jobs[::2]:
            q.remove(job)
        drained = q.drain()
        assert [j.jid for j in drained] == [9, 7, 5, 3, 1]
        assert len(q) == 0 and q.heap_size == 0

    def test_drain_matches_repeated_dequeue(self):
        """Timing-free correctness: drain() returns exactly the sequence
        repeated dequeue() calls would, on an identically-built twin."""
        import random

        rng = random.Random(7)
        q1 = JobQueue(edf_key)
        q2 = JobQueue(edf_key)
        jobs = [J(i, rng.choice([1.0, 2.0, 3.0])) for i in range(64)]
        for job in jobs:
            q1.insert(job)
            q2.insert(job)
        removed = rng.sample(jobs, 24)
        for job in removed:
            q1.remove(job)
            q2.remove(job)
        reference = []
        while q2:
            reference.append(q2.dequeue())
        assert q1.drain() == reference

    def test_drain_after_reinsert_uses_new_entry(self):
        q = JobQueue(edf_key)
        a = J(0, 5.0)
        q.insert(a)
        q.remove(a)
        q.insert(a)
        assert q.drain() == [a]
