"""Unit tests for ScheduleTrace recording and validation."""

import pytest

from repro.capacity import ConstantCapacity, PiecewiseConstantCapacity
from repro.errors import SimulationError
from repro.sim import Job, JobStatus, ScheduleTrace


def J(jid, r, p, d, v=1.0):
    return Job(jid, r, p, d, v)


class TestRecording:
    def test_segments_merge_when_contiguous(self):
        tr = ScheduleTrace()
        tr.add_segment(0.0, 1.0, 7, 1.0)
        tr.add_segment(1.0, 2.0, 7, 1.0)
        assert len(tr.segments) == 1
        assert tr.segments[0].work == pytest.approx(2.0)

    def test_segments_do_not_merge_across_jobs(self):
        tr = ScheduleTrace()
        tr.add_segment(0.0, 1.0, 7, 1.0)
        tr.add_segment(1.0, 2.0, 8, 1.0)
        assert len(tr.segments) == 2

    def test_zero_length_segments_dropped(self):
        tr = ScheduleTrace()
        tr.add_segment(1.0, 1.0, 7, 0.0)
        assert tr.segments == []

    def test_reversed_segment_rejected(self):
        tr = ScheduleTrace()
        with pytest.raises(SimulationError):
            tr.add_segment(2.0, 1.0, 7, 1.0)

    def test_value_points_accumulate(self):
        tr = ScheduleTrace()
        tr.record_outcome(J(0, 0, 1, 2, v=3.0), JobStatus.COMPLETED, 1.0)
        tr.record_outcome(J(1, 0, 1, 3, v=2.0), JobStatus.COMPLETED, 2.5)
        assert tr.value_points == [(1.0, 3.0), (2.5, 5.0)]

    def test_failed_jobs_accrue_nothing(self):
        tr = ScheduleTrace()
        tr.record_outcome(J(0, 0, 1, 2, v=3.0), JobStatus.FAILED, 2.0)
        assert tr.value_points == []


class TestQueries:
    def test_work_by_job_and_busy_time(self):
        tr = ScheduleTrace()
        tr.add_segment(0.0, 2.0, 1, 2.0)
        tr.add_segment(3.0, 4.0, 2, 1.0)
        assert tr.work_by_job() == {1: 2.0, 2: 1.0}
        assert tr.busy_time() == pytest.approx(3.0)
        assert tr.total_work() == pytest.approx(3.0)

    def test_value_series_anchors(self):
        tr = ScheduleTrace()
        tr.record_outcome(J(0, 0, 1, 2, v=3.0), JobStatus.COMPLETED, 1.0)
        series = tr.value_series(horizon=10.0)
        assert series[0] == (0.0, 0.0)
        assert series[-1] == (10.0, 3.0)

    def test_value_at(self):
        tr = ScheduleTrace()
        tr.record_outcome(J(0, 0, 1, 2, v=3.0), JobStatus.COMPLETED, 1.0)
        tr.record_outcome(J(1, 0, 1, 9, v=2.0), JobStatus.COMPLETED, 5.0)
        assert tr.value_at(0.5) == 0.0
        assert tr.value_at(1.0) == 3.0
        assert tr.value_at(7.0) == 5.0


class TestValidation:
    def setup_method(self):
        self.cap = ConstantCapacity(1.0)

    def test_valid_trace_passes(self):
        job = J(0, 0.0, 2.0, 3.0)
        tr = ScheduleTrace()
        tr.add_segment(0.0, 2.0, 0, 2.0)
        tr.record_outcome(job, JobStatus.COMPLETED, 2.0)
        tr.validate([job], self.cap)

    def test_overlap_detected(self):
        a, b = J(0, 0.0, 2.0, 9.0), J(1, 0.0, 2.0, 9.0)
        tr = ScheduleTrace()
        tr.add_segment(0.0, 2.0, 0, 2.0)
        tr.add_segment(1.0, 3.0, 1, 2.0)
        with pytest.raises(SimulationError, match="overlap"):
            tr.validate([a, b], self.cap)

    def test_work_conservation_detected(self):
        job = J(0, 0.0, 2.0, 9.0)
        tr = ScheduleTrace()
        tr.add_segment(0.0, 1.0, 0, 2.0)  # claims 2 units in 1 second at rate 1
        with pytest.raises(SimulationError, match="conservation"):
            tr.validate([job], self.cap)

    def test_running_before_release_detected(self):
        job = J(0, 5.0, 1.0, 9.0)
        tr = ScheduleTrace()
        tr.add_segment(0.0, 1.0, 0, 1.0)
        with pytest.raises(SimulationError, match="before release"):
            tr.validate([job], self.cap)

    def test_running_past_deadline_detected(self):
        job = J(0, 0.0, 5.0, 2.0)
        tr = ScheduleTrace()
        tr.add_segment(0.0, 3.0, 0, 3.0)
        with pytest.raises(SimulationError, match="past deadline"):
            tr.validate([job], self.cap)

    def test_completion_without_full_work_detected(self):
        job = J(0, 0.0, 2.0, 9.0)
        tr = ScheduleTrace()
        tr.add_segment(0.0, 1.0, 0, 1.0)
        tr.record_outcome(job, JobStatus.COMPLETED, 1.0)
        with pytest.raises(SimulationError, match="completed"):
            tr.validate([job], self.cap)

    def test_unknown_job_detected(self):
        tr = ScheduleTrace()
        tr.add_segment(0.0, 1.0, 42, 1.0)
        with pytest.raises(SimulationError, match="unknown"):
            tr.validate([], self.cap)

    def test_varying_capacity_conservation(self):
        cap = PiecewiseConstantCapacity([0.0, 1.0], [1.0, 3.0])
        job = J(0, 0.0, 4.0, 9.0)
        tr = ScheduleTrace()
        tr.add_segment(0.0, 2.0, 0, 4.0)  # 1*1 + 1*3 = 4: exact
        tr.record_outcome(job, JobStatus.COMPLETED, 2.0)
        tr.validate([job], cap)
