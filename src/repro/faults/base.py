"""Base machinery of the capacity-sensing fault-injection layer.

The simulation engine consumes a :class:`~repro.capacity.base.
CapacityFunction` through two distinct channels:

* the **physics** channel — :meth:`pieces`, :meth:`integrate`,
  :meth:`advance`, :meth:`cumulative` — the ground truth the engine uses to
  move work and predict completions; and
* the **sensing** channel — :meth:`value` (surfaced to schedulers as
  ``ctx.capacity_now()``) and the declared bounds ``(lower, upper)``
  (surfaced as ``ctx.bounds``) — the only capacity information an online
  scheduler is allowed to consult.

:class:`CapacitySensorFault` is a wrapper that corrupts the *sensing*
channel while delegating the *physics* channel verbatim to the wrapped
function.  Simulating with a faulted capacity therefore keeps the world
honest — jobs complete exactly when the true trajectory says they do —
while the scheduler's view of that world degrades.  Wrappers compose:
``NoisyCapacity(StaleCapacity(markov, delay=1.0), sigma=0.2)`` is a sensor
that is both one second stale and 20 % noisy, and :func:`unwrap_faults`
recovers the pristine innermost model for analysis.

See docs/ROBUSTNESS.md for the full fault taxonomy and the degradation
semantics schedulers apply on the consuming side.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.capacity.base import CapacityFunction, Piece
from repro.errors import CapacityError, FaultConfigError

__all__ = ["CapacitySensorFault", "unwrap_faults"]


class CapacitySensorFault(CapacityFunction):
    """A capacity whose dynamics are true but whose *sensor* lies.

    Subclasses implement :meth:`sense` (the corrupted instantaneous
    reading) and may override the declared ``lower``/``upper`` via the
    constructor (bias faults).  Everything the engine uses for physics
    delegates to the wrapped function, including the O(log n) prefix-sum
    fast path when the wrapped model supports it.

    Parameters
    ----------
    inner:
        The capacity being wrapped — possibly itself a fault wrapper.
    lower, upper:
        Mis-declared bounds to expose through the sensing channel.
        Default: the wrapped function's declared bounds (no bias).
    """

    def __init__(
        self,
        inner: CapacityFunction,
        *,
        lower: float | None = None,
        upper: float | None = None,
    ) -> None:
        if not isinstance(inner, CapacityFunction):
            raise FaultConfigError(
                f"fault wrappers wrap CapacityFunction instances, got {inner!r}"
            )
        lo = inner.lower if lower is None else float(lower)
        hi = inner.upper if upper is None else float(upper)
        if not (math.isfinite(lo) and math.isfinite(hi)):
            raise FaultConfigError(
                f"declared bounds must be finite, got [{lo!r}, {hi!r}]"
            )
        try:
            super().__init__(lo, hi)
        except CapacityError as exc:
            raise FaultConfigError(f"mis-declared band is unusable: {exc}") from exc
        self._inner = inner

    # ------------------------------------------------------------------
    # Sensing channel (corrupted)
    # ------------------------------------------------------------------
    def sense(self, t: float) -> float:
        """The corrupted instantaneous reading at ``t``.  Default: pass the
        wrapped sensor's reading through unchanged (pure bound-bias faults
        corrupt only the declared band)."""
        return self._inner.value(t)

    def value(self, t: float) -> float:
        """The sensing channel: what ``ctx.capacity_now()`` reports.

        Unlike a well-behaved capacity model this may fall outside the
        declared band, may be stale, and may raise
        :class:`~repro.errors.CapacityReadError` during a dropout — that is
        the point of the exercise.
        """
        return self.sense(t)

    # ------------------------------------------------------------------
    # Physics channel (delegated verbatim)
    # ------------------------------------------------------------------
    @property
    def inner(self) -> CapacityFunction:
        """The wrapped capacity (possibly itself a fault wrapper)."""
        return self._inner

    def true_value(self, t: float) -> float:
        """The ground-truth rate ``c(t)`` of the innermost model."""
        return unwrap_faults(self._inner).value(t)

    def pieces(self, t0: float, t1: float) -> Iterator[Piece]:
        return self._inner.pieces(t0, t1)

    def integrate(self, t0: float, t1: float) -> float:
        return self._inner.integrate(t0, t1)

    def advance(self, t0: float, work: float, horizon: float = math.inf) -> float:
        return self._inner.advance(t0, work, horizon)

    def next_change(self, t: float, horizon: float) -> float:
        return self._inner.next_change(t, horizon)

    def mean(self, t0: float, t1: float) -> float:
        return self._inner.mean(t0, t1)

    @property
    def supports_prefix_index(self) -> bool:  # type: ignore[override]
        return bool(getattr(self._inner, "supports_prefix_index", False))

    def cumulative(self, t: float) -> float:
        """Prefix-sum fast path, available iff the wrapped model has it."""
        return self._inner.cumulative(t)  # type: ignore[attr-defined]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self._inner!r})"


def unwrap_faults(capacity: CapacityFunction) -> CapacityFunction:
    """Strip every fault wrapper and return the pristine innermost model."""
    while isinstance(capacity, CapacitySensorFault):
        capacity = capacity.inner
    return capacity
