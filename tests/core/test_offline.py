"""Unit tests for offline feasibility, exact optimum and greedy admission."""

import pytest

from repro.capacity import ConstantCapacity, PiecewiseConstantCapacity
from repro.core import (
    greedy_admission,
    is_feasible,
    is_underloaded,
    optimal_offline_value,
)
from repro.errors import InvalidInstanceError
from repro.sim import Job


def J(jid, r, p, d, v=1.0):
    return Job(jid, r, p, d, v)


class TestFeasibility:
    def test_empty_is_feasible(self):
        assert is_feasible([], ConstantCapacity(1.0))

    def test_simple_feasible(self):
        jobs = [J(0, 0.0, 2.0, 3.0), J(1, 0.0, 2.0, 5.0)]
        assert is_feasible(jobs, ConstantCapacity(1.0))

    def test_simple_infeasible(self):
        jobs = [J(0, 0.0, 2.0, 2.0), J(1, 0.0, 2.0, 2.5)]
        assert not is_feasible(jobs, ConstantCapacity(1.0))

    def test_varying_capacity_rescues_demand(self):
        jobs = [J(0, 0.0, 6.0, 3.0)]
        assert not is_feasible(jobs, ConstantCapacity(1.0))
        spike = PiecewiseConstantCapacity([0.0, 1.0], [1.0, 5.0])
        assert is_feasible(jobs, spike)

    def test_underloaded_alias(self):
        jobs = [J(0, 0.0, 1.0, 2.0)]
        assert is_underloaded(jobs, ConstantCapacity(1.0))


class TestOptimalValue:
    def test_all_fit(self):
        jobs = [J(0, 0.0, 1.0, 5.0, v=2.0), J(1, 0.0, 1.0, 5.0, v=3.0)]
        assert optimal_offline_value(jobs, ConstantCapacity(1.0)) == pytest.approx(5.0)

    def test_picks_best_subset(self):
        # Only one of the two conflicting jobs fits; the optimum takes the
        # valuable one plus the compatible third.
        jobs = [
            J(0, 0.0, 2.0, 2.0, v=1.0),
            J(1, 0.0, 2.0, 2.2, v=10.0),
            J(2, 3.0, 1.0, 5.0, v=2.0),
        ]
        value, chosen = optimal_offline_value(
            jobs, ConstantCapacity(1.0), return_set=True
        )
        assert value == pytest.approx(12.0)
        assert chosen == {1, 2}

    def test_preemptive_interleaving_found(self):
        """The optimum may require preemption: a short tight job nested
        inside a long loose one."""
        jobs = [J(0, 0.0, 4.0, 6.0, v=5.0), J(1, 1.0, 1.0, 2.0, v=5.0)]
        assert optimal_offline_value(jobs, ConstantCapacity(1.0)) == pytest.approx(10.0)

    def test_empty(self):
        assert optimal_offline_value([], ConstantCapacity(1.0)) == 0.0

    def test_max_jobs_guard(self):
        jobs = [J(i, 0.0, 1.0, 100.0) for i in range(25)]
        with pytest.raises(InvalidInstanceError):
            optimal_offline_value(jobs, ConstantCapacity(1.0))

    def test_varying_capacity_optimum(self):
        spike = PiecewiseConstantCapacity([0.0, 2.0], [1.0, 3.0])
        jobs = [
            J(0, 0.0, 2.0, 2.0, v=1.0),   # fills the slow window
            J(1, 2.0, 6.0, 4.0, v=4.0),   # needs the fast window
        ]
        assert optimal_offline_value(jobs, spike) == pytest.approx(5.0)

    def test_optimum_at_least_greedy(self):
        jobs = [
            J(0, 0.0, 2.0, 2.0, v=3.0),
            J(1, 0.0, 2.0, 2.5, v=3.1),
            J(2, 1.0, 2.0, 4.0, v=2.0),
            J(3, 3.0, 1.0, 6.0, v=1.0),
        ]
        cap = ConstantCapacity(1.0)
        greedy_value, _ = greedy_admission(jobs, cap)
        assert optimal_offline_value(jobs, cap) >= greedy_value - 1e-9


class TestGreedyAdmission:
    def test_admits_all_when_feasible(self):
        jobs = [J(0, 0.0, 1.0, 5.0, v=1.0), J(1, 0.0, 1.0, 5.0, v=2.0)]
        value, admitted = greedy_admission(jobs, ConstantCapacity(1.0))
        assert value == pytest.approx(3.0)
        assert len(admitted) == 2

    def test_density_order_default(self):
        # Greedy by density admits the dense short job, rejects the
        # conflicting long one.
        jobs = [J(0, 0.0, 4.0, 4.0, v=4.0), J(1, 0.0, 1.0, 1.0, v=3.0)]
        value, admitted = greedy_admission(jobs, ConstantCapacity(1.0))
        assert [j.jid for j in admitted] == [1]
        assert value == pytest.approx(3.0)

    def test_custom_key(self):
        jobs = [J(0, 0.0, 4.0, 4.0, v=4.0), J(1, 0.0, 1.0, 1.0, v=3.0)]
        value, admitted = greedy_admission(
            jobs, ConstantCapacity(1.0), key=lambda j: (-j.value, j.jid)
        )
        assert [j.jid for j in admitted] == [0]

    def test_greedy_can_be_suboptimal(self):
        """Density-greedy is a heuristic: the dense blocker shuts out two
        jobs whose sum beats it."""
        jobs = [
            J(0, 0.0, 2.0, 2.0, v=3.0),        # density 1.5, blocks [0,2]
            J(1, 0.0, 2.0, 2.0, v=2.0),        # density 1.0
            J(2, 0.0, 2.0, 4.0, v=2.0),        # density 1.0
        ]
        cap = ConstantCapacity(1.0)
        greedy_value, _ = greedy_admission(jobs, cap)
        optimal = optimal_offline_value(jobs, cap)
        assert greedy_value == pytest.approx(5.0)  # {0, 2}
        assert optimal == pytest.approx(5.0)
        # and on this instance they agree; build a disagreement:
        jobs2 = [
            J(0, 0.0, 3.0, 3.0, v=4.5),        # density 1.5, blocks [0,3]
            J(1, 0.0, 2.0, 2.0, v=2.6),        # density 1.3
            J(2, 2.0, 2.0, 4.0, v=2.6),        # density 1.3
        ]
        greedy_value2, _ = greedy_admission(jobs2, cap)
        optimal2 = optimal_offline_value(jobs2, cap)
        assert greedy_value2 < optimal2
