"""Unit tests for ConstantCapacity."""

import math

import pytest

from repro.capacity import ConstantCapacity
from repro.errors import CapacityError


class TestConstruction:
    def test_bounds_equal_rate(self):
        cap = ConstantCapacity(3.5)
        assert cap.lower == cap.upper == cap.rate == 3.5
        assert cap.delta == 1.0

    @pytest.mark.parametrize("rate", [0.0, -1.0])
    def test_rejects_non_positive_rate(self, rate):
        with pytest.raises(CapacityError):
            ConstantCapacity(rate)


class TestQueries:
    def test_value_everywhere(self):
        cap = ConstantCapacity(2.0)
        assert cap.value(0.0) == 2.0
        assert cap.value(1e9) == 2.0

    def test_integrate(self):
        cap = ConstantCapacity(2.0)
        assert cap.integrate(1.0, 4.0) == pytest.approx(6.0)
        assert cap.integrate(5.0, 5.0) == 0.0

    def test_integrate_rejects_reversed_interval(self):
        with pytest.raises(CapacityError):
            ConstantCapacity(1.0).integrate(2.0, 1.0)

    def test_advance_is_inverse_of_integrate(self):
        cap = ConstantCapacity(4.0)
        t = cap.advance(3.0, 10.0)
        assert cap.integrate(3.0, t) == pytest.approx(10.0)

    def test_advance_zero_work(self):
        assert ConstantCapacity(1.0).advance(7.0, 0.0) == 7.0

    def test_advance_respects_horizon(self):
        cap = ConstantCapacity(1.0)
        assert cap.advance(0.0, 100.0, horizon=10.0) == math.inf

    def test_advance_rejects_negative_work(self):
        with pytest.raises(CapacityError):
            ConstantCapacity(1.0).advance(0.0, -1.0)

    def test_pieces_covers_interval(self):
        pieces = list(ConstantCapacity(2.0).pieces(1.0, 5.0))
        assert pieces == [(1.0, 5.0, 2.0)]

    def test_pieces_empty_interval(self):
        assert list(ConstantCapacity(2.0).pieces(5.0, 5.0)) == []

    def test_next_change_is_horizon(self):
        assert ConstantCapacity(1.0).next_change(0.0, 42.0) == 42.0

    def test_mean(self):
        assert ConstantCapacity(3.0).mean(0.0, 10.0) == pytest.approx(3.0)
