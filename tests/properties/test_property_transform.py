"""Property-based tests for the stretch transformation (Section III-A)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capacity import PiecewiseConstantCapacity
from repro.core import EDFScheduler, StretchTransform, is_feasible
from repro.sim import Job, simulate


@st.composite
def varying_capacities(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    gaps = draw(
        st.lists(st.floats(min_value=0.5, max_value=10.0), min_size=n - 1, max_size=n - 1)
    )
    breakpoints = [0.0]
    for g in gaps:
        breakpoints.append(breakpoints[-1] + g)
    rates = draw(
        st.lists(st.floats(min_value=0.5, max_value=8.0), min_size=n, max_size=n)
    )
    return PiecewiseConstantCapacity(breakpoints, rates)


@st.composite
def job_sets(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    jobs = []
    for i in range(n):
        release = draw(st.floats(min_value=0.0, max_value=20.0))
        workload = draw(st.floats(min_value=0.1, max_value=6.0))
        span = draw(st.floats(min_value=0.2, max_value=15.0))
        jobs.append(
            Job(i, release, workload, release + span, draw(st.floats(0.1, 9.0)))
        )
    return jobs


class TestStretchProperties:
    @settings(max_examples=50, deadline=None)
    @given(cap=varying_capacities(), rate=st.floats(0.5, 10.0),
           t=st.floats(0.0, 60.0))
    def test_roundtrip(self, cap, rate, t):
        tr = StretchTransform(cap, rate=rate)
        assert tr.inverse(tr.forward(t)) == pytest.approx(t, rel=1e-9, abs=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(cap=varying_capacities(), rate=st.floats(0.5, 10.0),
           s=st.floats(0.0, 40.0), span=st.floats(0.0, 40.0))
    def test_workload_preservation(self, cap, rate, s, span):
        """∫_s^t c == rate * (T(t) − T(s)) for all s <= t — the identity the
        whole reduction rests on."""
        tr = StretchTransform(cap, rate=rate)
        t = s + span
        assert cap.integrate(s, t) == pytest.approx(
            rate * (tr.forward(t) - tr.forward(s)), rel=1e-9, abs=1e-9
        )

    @settings(max_examples=50, deadline=None)
    @given(cap=varying_capacities(), jobs=job_sets())
    def test_monotone_and_order_preserving(self, cap, jobs):
        tr = StretchTransform(cap)
        times = sorted(
            [j.release for j in jobs] + [j.deadline for j in jobs]
        )
        images = [tr.forward(t) for t in times]
        assert images == sorted(images)

    @settings(max_examples=30, deadline=None)
    @given(cap=varying_capacities(), jobs=job_sets())
    def test_feasibility_invariant_under_transform(self, cap, jobs):
        """The headline reduction: the instance is feasible iff its
        stretched image is feasible on the constant-capacity system."""
        tr = StretchTransform(cap)
        image = tr.transform_instance(jobs)
        assert is_feasible(jobs, cap) == is_feasible(image.jobs, image.capacity)

    @settings(max_examples=30, deadline=None)
    @given(cap=varying_capacities(), jobs=job_sets())
    def test_edf_value_invariant_under_transform(self, cap, jobs):
        """EDF (deadline order is preserved by the monotone map) completes
        exactly the same job set on both sides of the bijection."""
        tr = StretchTransform(cap)
        image = tr.transform_instance(jobs)
        original = simulate(jobs, cap, EDFScheduler())
        mapped = simulate(image.jobs, image.capacity, EDFScheduler())
        assert original.completed_ids == mapped.completed_ids
        assert original.value == pytest.approx(mapped.value)
