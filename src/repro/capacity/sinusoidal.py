"""Diurnal (sinusoidal) capacity, discretised onto a piecewise grid.

Cloud residual capacity commonly follows a day/night pattern: primary load
peaks during business hours, leaving little room for secondary jobs, and
ebbs at night.  :class:`SinusoidalCapacity` models this as

    c(t) = mid - amp * sin(2π (t - phase) / period)

(so capacity is *low* when primary load is high early in the period), then
samples it onto a uniform piecewise-constant grid so that all engine
queries stay exact.  The grid resolution trades fidelity for speed; the
default of 64 steps per period keeps the discretisation error of the
integral under 0.1% for the experiments shipped here.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.capacity.base import CapacityFunction, Piece
from repro.errors import CapacityError

__all__ = ["SinusoidalCapacity"]


class SinusoidalCapacity(CapacityFunction):
    """Periodic piecewise-constant approximation of a sinusoid.

    Parameters
    ----------
    low, high:
        Extremes of the sinusoid; these are also the declared bounds.
    period:
        Period of the oscillation.
    phase:
        Time offset of the pattern.
    steps_per_period:
        Number of constant pieces used to discretise one period.
    """

    def __init__(
        self,
        low: float,
        high: float,
        period: float,
        *,
        phase: float = 0.0,
        steps_per_period: int = 64,
    ) -> None:
        if low <= 0.0 or high <= low:
            raise CapacityError(f"need 0 < low < high, got low={low!r}, high={high!r}")
        if period <= 0.0:
            raise CapacityError(f"period must be positive: {period!r}")
        if steps_per_period < 2:
            raise CapacityError("steps_per_period must be at least 2")
        super().__init__(low, high)
        self._mid = 0.5 * (low + high)
        self._amp = 0.5 * (high - low)
        self._period = float(period)
        self._phase = float(phase)
        self._n = int(steps_per_period)
        self._dt = self._period / self._n
        # Precompute one period of step values (midpoint rule per step).
        self._steps = [
            self._analytic(self._dt * (i + 0.5)) for i in range(self._n)
        ]

    def _analytic(self, t: float) -> float:
        return self._mid - self._amp * math.sin(
            2.0 * math.pi * (t - self._phase) / self._period
        )

    def _step_index(self, t: float) -> int:
        return int((t % self._period) / self._dt) % self._n

    # ------------------------------------------------------------------
    def value(self, t: float) -> float:
        if t < 0.0:
            raise CapacityError(f"capacity undefined for t < 0: {t!r}")
        return self._steps[self._step_index(t)]

    def pieces(self, t0: float, t1: float) -> Iterator[Piece]:
        if t1 <= t0:
            return
        if t0 < 0.0:
            raise CapacityError(f"capacity undefined for t < 0: {t0!r}")
        start = t0
        while start < t1:
            idx = self._step_index(start)
            # End of the grid cell containing `start`.
            cell = math.floor(start / self._dt + 1e-12) + 1
            end = min(cell * self._dt, t1)
            if end <= start:  # numeric guard at cell boundaries
                end = min(start + self._dt, t1)
            yield (start, end, self._steps[idx])
            start = end

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SinusoidalCapacity(low={self.lower:g}, high={self.upper:g}, "
            f"period={self._period:g})"
        )
