"""Unit tests for the cluster dispatch extension."""

import pytest

from repro.capacity import ConstantCapacity, TwoStateMarkovCapacity
from repro.cloud import (
    BestFitDispatcher,
    LeastWorkDispatcher,
    RoundRobinDispatcher,
    run_cluster,
)
from repro.core import VDoverScheduler
from repro.errors import InvalidInstanceError
from repro.sim import Job


def stream(n, spacing=0.5, p=1.0, slack=2.0):
    return [
        Job(i, i * spacing, p, i * spacing + p * slack, 1.0) for i in range(n)
    ]


def scheduler_factory():
    return VDoverScheduler(k=7.0)


class TestRoundRobin:
    def test_cycles_over_servers(self):
        caps = [ConstantCapacity(1.0)] * 3
        result = run_cluster(
            stream(6), caps, scheduler_factory, RoundRobinDispatcher(), validate=True
        )
        servers = [result.assignment[i] for i in range(6)]
        assert servers == [0, 1, 2, 0, 1, 2]

    def test_aggregates_values(self):
        caps = [ConstantCapacity(1.0)] * 2
        result = run_cluster(stream(8), caps, scheduler_factory, RoundRobinDispatcher())
        assert result.value == sum(r.value for r in result.per_server)
        assert result.generated_value == pytest.approx(8.0)
        assert 0.0 <= result.normalized_value <= 1.0


class TestLeastWork:
    def test_prefers_empty_server(self):
        caps = [ConstantCapacity(1.0)] * 2
        jobs = [
            Job(0, 0.0, 10.0, 30.0, 1.0),   # loads server 0
            Job(1, 0.1, 1.0, 3.0, 1.0),     # must go to server 1
        ]
        result = run_cluster(jobs, caps, scheduler_factory, LeastWorkDispatcher())
        assert result.assignment[0] != result.assignment[1]

    def test_backlog_drains_over_time(self):
        caps = [ConstantCapacity(1.0)] * 2
        jobs = [
            Job(0, 0.0, 4.0, 10.0, 1.0),    # server 0
            Job(1, 100.0, 1.0, 103.0, 1.0),  # long after: backlog drained,
        ]                                    # ties to server 0 again
        result = run_cluster(jobs, caps, scheduler_factory, LeastWorkDispatcher())
        assert result.assignment[1] == 0

    def test_spreads_load_beats_single_server(self):
        """Two servers with a dispatcher must beat one server on an
        overloaded stream (sanity of the whole composition)."""
        jobs = stream(40, spacing=0.25, p=1.0, slack=1.5)
        two = run_cluster(
            jobs,
            [ConstantCapacity(1.0), ConstantCapacity(1.0)],
            scheduler_factory,
            LeastWorkDispatcher(),
        )
        one = run_cluster(
            jobs, [ConstantCapacity(1.0)], scheduler_factory, RoundRobinDispatcher()
        )
        assert two.n_completed > one.n_completed


class TestBestFit:
    def test_routes_tight_job_to_light_server(self):
        caps = [ConstantCapacity(1.0)] * 2
        jobs = [
            Job(0, 0.0, 8.0, 20.0, 1.0),
            Job(1, 0.1, 2.0, 2.5, 1.0),  # tight: needs the empty server
        ]
        result = run_cluster(jobs, caps, scheduler_factory, BestFitDispatcher())
        assert result.assignment[1] != result.assignment[0]

    def test_heterogeneous_floors(self):
        caps = [
            TwoStateMarkovCapacity(1.0, 10.0, mean_sojourn=10.0, rng=0),
            TwoStateMarkovCapacity(2.0, 10.0, mean_sojourn=10.0, rng=1),
        ]
        result = run_cluster(
            stream(20, spacing=0.4), caps, scheduler_factory, BestFitDispatcher()
        )
        assert result.n_completed > 0


class TestValidation:
    def test_empty_cluster_rejected(self):
        with pytest.raises(InvalidInstanceError):
            run_cluster(stream(2), [], scheduler_factory, RoundRobinDispatcher())

    def test_bad_route_rejected(self):
        class Rogue(RoundRobinDispatcher):
            def route(self, job):
                return 99

        with pytest.raises(InvalidInstanceError):
            run_cluster(
                stream(1), [ConstantCapacity(1.0)], scheduler_factory, Rogue()
            )
