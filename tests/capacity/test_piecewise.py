"""Unit tests for PiecewiseConstantCapacity."""

import math

import pytest

from repro.capacity import PiecewiseConstantCapacity
from repro.errors import CapacityError


@pytest.fixture
def cap():
    # 1 on [0,10), 4 on [10,20), 2 on [20, inf)
    return PiecewiseConstantCapacity([0.0, 10.0, 20.0], [1.0, 4.0, 2.0])


class TestConstruction:
    def test_realized_bounds(self, cap):
        assert cap.lower == 1.0
        assert cap.upper == 4.0
        assert cap.delta == 4.0

    def test_declared_bounds_may_be_wider(self):
        cap = PiecewiseConstantCapacity([0.0], [2.0], lower=1.0, upper=8.0)
        assert (cap.lower, cap.upper) == (1.0, 8.0)

    def test_declared_bounds_must_contain_rates(self):
        with pytest.raises(CapacityError):
            PiecewiseConstantCapacity([0.0], [2.0], lower=3.0, upper=8.0)
        with pytest.raises(CapacityError):
            PiecewiseConstantCapacity([0.0], [2.0], lower=1.0, upper=1.5)

    def test_first_breakpoint_must_be_zero(self):
        with pytest.raises(CapacityError):
            PiecewiseConstantCapacity([1.0], [2.0])

    def test_breakpoints_strictly_increasing(self):
        with pytest.raises(CapacityError):
            PiecewiseConstantCapacity([0.0, 5.0, 5.0], [1.0, 2.0, 3.0])

    def test_rates_positive(self):
        with pytest.raises(CapacityError):
            PiecewiseConstantCapacity([0.0, 1.0], [1.0, 0.0])

    def test_mismatched_lengths(self):
        with pytest.raises(CapacityError):
            PiecewiseConstantCapacity([0.0, 1.0], [1.0])

    def test_empty(self):
        with pytest.raises(CapacityError):
            PiecewiseConstantCapacity([], [])


class TestValue:
    def test_values_per_piece(self, cap):
        assert cap.value(0.0) == 1.0
        assert cap.value(9.999) == 1.0
        assert cap.value(10.0) == 4.0  # pieces close on the left
        assert cap.value(19.0) == 4.0
        assert cap.value(20.0) == 2.0
        assert cap.value(1000.0) == 2.0

    def test_negative_time_rejected(self, cap):
        with pytest.raises(CapacityError):
            cap.value(-0.1)


class TestIntegrate:
    def test_within_one_piece(self, cap):
        assert cap.integrate(2.0, 5.0) == pytest.approx(3.0)

    def test_across_pieces(self, cap):
        # [5,15]: 5*1 + 5*4 = 25
        assert cap.integrate(5.0, 15.0) == pytest.approx(25.0)

    def test_across_all_pieces(self, cap):
        # [0,30]: 10*1 + 10*4 + 10*2 = 70
        assert cap.integrate(0.0, 30.0) == pytest.approx(70.0)

    def test_cumulative_matches_integrate(self, cap):
        assert cap.cumulative(15.0) == pytest.approx(cap.integrate(0.0, 15.0))

    def test_additivity(self, cap):
        a = cap.integrate(3.0, 12.0)
        b = cap.integrate(12.0, 27.0)
        assert a + b == pytest.approx(cap.integrate(3.0, 27.0))


class TestAdvance:
    def test_within_piece(self, cap):
        assert cap.advance(0.0, 5.0) == pytest.approx(5.0)

    def test_across_boundary(self, cap):
        # 10 units take the whole first piece; 12 needs 0.5 of the second.
        assert cap.advance(0.0, 12.0) == pytest.approx(10.5)

    def test_inverse_property(self, cap):
        for start, work in [(0.0, 3.0), (5.0, 20.0), (18.0, 30.0)]:
            t = cap.advance(start, work)
            assert cap.integrate(start, t) == pytest.approx(work)

    def test_horizon_cuts_off(self, cap):
        assert cap.advance(0.0, 1000.0, horizon=30.0) == math.inf

    def test_exact_boundary_work(self, cap):
        # Exactly the first piece's work completes at the boundary.
        assert cap.advance(0.0, 10.0) == pytest.approx(10.0)


class TestPieces:
    def test_cover_and_order(self, cap):
        pieces = list(cap.pieces(5.0, 25.0))
        assert pieces[0] == (5.0, 10.0, 1.0)
        assert pieces[1] == (10.0, 20.0, 4.0)
        assert pieces[2] == (20.0, 25.0, 2.0)

    def test_contiguity(self, cap):
        pieces = list(cap.pieces(0.0, 40.0))
        for (s0, e0, _), (s1, _, _) in zip(pieces, pieces[1:]):
            assert e0 == s1

    def test_next_change(self, cap):
        assert cap.next_change(0.0, 100.0) == 10.0
        assert cap.next_change(10.0, 100.0) == 20.0
        assert cap.next_change(20.0, 100.0) == 100.0
        assert cap.next_change(5.0, 7.0) == 7.0
