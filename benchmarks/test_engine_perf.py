"""Kernel microbenchmarks: simulation throughput and queue operations.

Not a paper artifact — these watch the substrate's performance so
experiment-scale regressions are caught where they start (the guides'
"profile before optimizing" loop needs a baseline).

The ``TestCapacityIndex`` group benchmarks the prefix-sum capacity index
(docs/PERFORMANCE.md) against the naive linear piece-scan on a long
realized Markov path, and regenerates the before/after comparison
artifact ``benchmarks/results/engine_perf_index.txt`` (the "before"
column is the archived pre-index baseline measured at commit 64b444e,
reproduced in ``PRE_INDEX_BASELINE_MS`` below)."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.capacity import TwoStateMarkovCapacity, naive_advance, naive_integrate
from repro.core import EDFScheduler, VDoverScheduler
from repro.core.transform import StretchTransform
from repro.sim import Job, JobQueue, edf_key, simulate
from repro.workload import PoissonWorkload


@pytest.fixture(scope="module")
def paper_instance():
    lam, horizon = 6.0, 2000.0 / 6.0
    jobs = PoissonWorkload(lam=lam, horizon=horizon).generate(7)
    return jobs, horizon


def test_perf_edf_full_scale(paper_instance, benchmark):
    """EDF over a full paper-scale instance (~2000 jobs)."""
    jobs, horizon = paper_instance

    def run():
        capacity = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=horizon / 4, rng=3)
        return simulate(jobs, capacity, EDFScheduler()).value

    benchmark(run)


def test_perf_vdover_full_scale(paper_instance, benchmark):
    """V-Dover over a full paper-scale instance (~2000 jobs)."""
    jobs, horizon = paper_instance

    def run():
        capacity = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=horizon / 4, rng=3)
        return simulate(jobs, capacity, VDoverScheduler(k=7.0)).value

    benchmark(run)


# ----------------------------------------------------------------------
# Prefix-sum capacity index: indexed vs naive linear scan
# ----------------------------------------------------------------------

#: Pre-index baseline, measured at commit 64b444e (seed code) with the
#: exact workloads below on the same machine that produced
#: ``results/engine_perf_index.txt``.  Kept here so the artifact can be
#: regenerated (the pre-index code itself is gone).
PRE_INDEX_BASELINE_MS = {
    "advance_deep_x2000": 6502.76,     # advance(0, w), no horizon
    "advance_capped_x2000": 1917.555,  # advance(0, w, horizon=1e4), path pre-built
    "integrate_spread_x2000": 4.19,    # integrate(t, t+5)
    "integrate_deep_naive_x200": 40.74,  # base-class scan, integrate(0, t)
    "edf_full_scale": 39.86,
    "vdover_full_scale": 44.40,
    "stretch_roundtrip_x500": 116.12,
    "edf_value": 5007.37367023652,
    "vdover_value": 5391.145120371147,
    "segments": 20037,
}


@pytest.fixture(scope="module")
def indexed_path():
    """~20k-segment realized Markov path, fully materialized up front so
    benchmarks measure query cost, not one-time path sampling."""
    horizon = 10_000.0
    cap = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=0.5, rng=42)
    cap.integrate(0.0, horizon)
    total = cap.integrate(0.0, horizon)
    works = np.linspace(0.01, total * 0.999, 2000)
    ts = np.linspace(0.0, horizon * 0.999, 2000)
    return cap, horizon, works, ts


def test_perf_advance_indexed(indexed_path, benchmark):
    """O(log n) searchsorted advance across the whole 20k-segment path."""
    cap, horizon, works, _ = indexed_path

    def run():
        s = 0.0
        for w in works:
            s += cap.advance(0.0, float(w), horizon=horizon)
        return s

    benchmark(run)


def test_perf_advance_naive(indexed_path, benchmark):
    """The pre-index reference: linear piece-scan advance (200 queries)."""
    cap, horizon, works, _ = indexed_path

    def run():
        s = 0.0
        for w in works[:200]:
            s += naive_advance(cap, 0.0, float(w), horizon=horizon)
        return s

    benchmark(run)


def test_perf_integrate_indexed(indexed_path, benchmark):
    cap, _, _, ts = indexed_path

    def run():
        s = 0.0
        for a in ts:
            s += cap.integrate(0.0, float(a))
        return s

    benchmark(run)


def test_perf_integrate_naive(indexed_path, benchmark):
    cap, _, _, ts = indexed_path

    def run():
        s = 0.0
        for a in ts[:200]:
            s += naive_integrate(cap, 0.0, float(a))
        return s

    benchmark(run)


def test_perf_stretch_roundtrip(indexed_path, benchmark):
    """Lemma-1-shaped hot path: T then T⁻¹ (an advance from 0) x500."""
    cap, _, _, ts = indexed_path
    tr = StretchTransform(cap)

    def run():
        s = 0.0
        for t in ts[:500]:
            s += tr.inverse(tr.forward(float(t)))
        return s

    benchmark(run)


@pytest.mark.perf_smoke
def test_perf_index_artifact(indexed_path, paper_instance, archive):
    """Regenerate ``results/engine_perf_index.txt``: timed indexed-vs-naive
    comparison against the archived pre-index baseline, plus the
    bit-identity check on the Figure-1 simulation values."""
    cap, horizon, works, ts = indexed_path
    pre = PRE_INDEX_BASELINE_MS

    def timed(fn, repeat=1):
        best = float("inf")
        for _ in range(repeat):
            t0 = time.perf_counter()
            out = fn()
            best = min(best, (time.perf_counter() - t0) * 1e3)
        return out, best

    _, t_adv = timed(
        lambda: [cap.advance(0.0, float(w), horizon=horizon) for w in works]
    )
    _, t_integ = timed(lambda: [cap.integrate(float(a), float(a) + 5.0) for a in ts])
    _, t_integ_deep = timed(lambda: [cap.integrate(0.0, float(a)) for a in ts[:200]])
    naive_t, t_adv_naive = timed(
        lambda: [naive_advance(cap, 0.0, float(w), horizon=horizon) for w in works[:200]]
    )
    fast_t = [cap.advance(0.0, float(w), horizon=horizon) for w in works[:200]]
    for f, s in zip(fast_t, naive_t):
        assert f == pytest.approx(s, rel=1e-12)

    jobs, h = paper_instance
    edf_val, t_edf = timed(
        lambda: simulate(
            jobs,
            TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=h / 4, rng=3),
            EDFScheduler(),
        ).value,
        repeat=3,
    )
    vdo_val, t_vdo = timed(
        lambda: simulate(
            jobs,
            TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=h / 4, rng=3),
            VDoverScheduler(k=7.0),
        ).value,
        repeat=3,
    )
    # Acceptance: Figure-1-instance results bit-identical to the seed.
    assert edf_val == pre["edf_value"]
    assert vdo_val == pre["vdover_value"]

    tr = StretchTransform(cap)
    # Warm-up: the first unbounded inverse materializes the lazy path out
    # to w/c_lower; that one-time sampling cost is not query cost.
    tr.inverse(tr.forward(float(ts[499])))
    _, t_tr = timed(
        lambda: [tr.inverse(tr.forward(float(t))) for t in ts[:500]], repeat=2
    )

    n = len(cap.breakpoints_materialized)
    scaled_naive = t_adv_naive * 10.0  # 200 naive queries -> per-2000 estimate
    lines = [
        "Prefix-sum capacity index: before/after (docs/PERFORMANCE.md)",
        "=" * 62,
        f"path: TwoStateMarkovCapacity(1, 35, sojourn=0.5, rng=42); queries "
        f"span [0, {horizon:g}] (~20k segments); {n} segments materialized "
        "in total (unbounded advance must cover t + w/c_lower)",
        "pre-index column: archived baseline at commit 64b444e (seed code)",
        "",
        f"{'query (on the materialized path)':42s} {'pre-index':>10s} {'indexed':>10s} {'speedup':>8s}",
        f"{'advance(0, w, horizon) x2000':42s} {pre['advance_capped_x2000']:9.2f}ms {t_adv:9.2f}ms "
        f"{pre['advance_capped_x2000'] / t_adv:7.0f}x",
        f"{'integrate(t, t+5) x2000':42s} {pre['integrate_spread_x2000']:9.2f}ms {t_integ:9.2f}ms "
        f"{pre['integrate_spread_x2000'] / t_integ:7.1f}x",
        f"{'integrate(0, t) x200 (deep)':42s} {pre['integrate_deep_naive_x200']:9.2f}ms {t_integ_deep:9.2f}ms "
        f"{pre['integrate_deep_naive_x200'] / t_integ_deep:7.0f}x",
        f"{'stretch T, T^-1 round-trip x500':42s} {pre['stretch_roundtrip_x500']:9.2f}ms {t_tr:9.2f}ms "
        f"{pre['stretch_roundtrip_x500'] / t_tr:7.0f}x",
        f"{'naive advance reference x200 (today)':42s} {'-':>10s} {t_adv_naive:9.2f}ms",
        "",
        "(short-span integrate was never the bottleneck: a ~10-piece scan",
        " and two bisects cost about the same; deep queries are the win)",
        "",
        f"{'full-scale simulation':42s} {'pre-index':>10s} {'indexed':>10s}",
        f"{'EDF (~2000 jobs, Figure-1 instance)':42s} {pre['edf_full_scale']:9.2f}ms {t_edf:9.2f}ms",
        f"{'V-Dover (~2000 jobs, Figure-1 instance)':42s} {pre['vdover_full_scale']:9.2f}ms {t_vdo:9.2f}ms",
        "",
        f"EDF value      {edf_val!r}  (bit-identical to pre-index: "
        f"{edf_val == pre['edf_value']})",
        f"V-Dover value  {vdo_val!r}  (bit-identical to pre-index: "
        f"{vdo_val == pre['vdover_value']})",
        "",
        "Acceptance: >= 5x on the long-path microbenchmark "
        f"(measured {pre['advance_capped_x2000'] / t_adv:.0f}x); "
        "indexed == naive to <= 1e-9 (0 ulp on dyadic grids, see",
        "tests/properties/test_property_capacity_index.py); Figure-1 "
        "simulation values unchanged bit for bit.",
    ]
    archive("engine_perf_index", "\n".join(lines))
    assert pre["advance_capped_x2000"] / t_adv >= 5.0


# ----------------------------------------------------------------------
# Columnar hot path: before/after (docs/PERFORMANCE.md)
# ----------------------------------------------------------------------

#: Pre-columnar baseline, measured at commit 0939185 (dict-state kernel,
#: one-event-at-a-time dispatch, no stale filter) with the exact Figure-1
#: workload below — best-of-12 per batch over interleaved old/new batches
#: on the machine that produced ``results/engine_perf_columnar.txt``
#: (interleaving cancels the container's frequency drift; see
#: docs/PERFORMANCE.md for the methodology).
PRE_COLUMNAR_BASELINE = {
    "edf_full_scale_ms": 42.26,
    "vdover_full_scale_ms": 48.67,
    "edf_dispatches": 6285,     # incl. stale no-op pops, all journaled
    "vdover_dispatches": 6510,
    "edf_value": 5007.37367023652,
    "vdover_value": 5391.145120371147,
}


@pytest.mark.perf_smoke
def test_perf_columnar_artifact(paper_instance, archive):
    """Regenerate ``results/engine_perf_columnar.txt``: the columnar
    kernel (JobTable + batched dispatch + pre-journal stale filter)
    against the archived dict-state baseline, with the Figure-1
    bit-identity proof."""
    from repro.sim import SimulationEngine

    jobs, h = paper_instance
    pre = PRE_COLUMNAR_BASELINE

    def measure(make_sched, repeat=9):
        best = float("inf")
        value = dispatches = None
        for _ in range(repeat):
            cap = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=h / 4, rng=3)
            engine = SimulationEngine(jobs, cap, make_sched())
            t0 = time.perf_counter()
            value = engine.run().value
            best = min(best, (time.perf_counter() - t0) * 1e3)
            dispatches = engine.dispatch_count
        return best, value, dispatches

    t_edf, edf_val, d_edf = measure(EDFScheduler)
    t_vdo, vdo_val, d_vdo = measure(lambda: VDoverScheduler(k=7.0))

    # Acceptance: Figure-1 values bit-identical across the refactor.
    assert edf_val == pre["edf_value"]
    assert vdo_val == pre["vdover_value"]

    lines = [
        "Columnar hot path: before/after (docs/PERFORMANCE.md)",
        "=" * 62,
        "instance: Figure-1 (~2016 jobs, PoissonWorkload lam=6 seed 7;",
        "TwoStateMarkovCapacity(1, 35, sojourn=horizon/4, rng=3))",
        "pre-columnar column: archived baseline at commit 0939185",
        "(dict job state, per-event dispatch, stale events journaled)",
        "",
        f"{'full-scale simulation':34s} {'pre-columnar':>12s} {'columnar':>10s} {'speedup':>8s}",
        f"{'EDF wall (best-of-9)':34s} {pre['edf_full_scale_ms']:10.2f}ms {t_edf:8.2f}ms "
        f"{pre['edf_full_scale_ms'] / t_edf:7.2f}x",
        f"{'V-Dover wall (best-of-9)':34s} {pre['vdover_full_scale_ms']:10.2f}ms {t_vdo:8.2f}ms "
        f"{pre['vdover_full_scale_ms'] / t_vdo:7.2f}x",
        f"{'EDF journaled dispatches':34s} {pre['edf_dispatches']:12d} {d_edf:10d} "
        f"{'(stale filtered pre-journal)'}",
        f"{'V-Dover journaled dispatches':34s} {pre['vdover_dispatches']:12d} {d_vdo:10d}",
        "",
        "NOTE: the wall columns compare this run against a baseline from a",
        "different session; container frequency drift is ~+/-40%, so only",
        "the interleaved-batch measurement in docs/PERFORMANCE.md (~1.1x",
        "EDF, ~1.03x V-Dover) is a fair wall-clock comparison.  The",
        "dispatch counts and values above are deterministic.",
        "",
        f"EDF value      {edf_val!r}  (bit-identical: {edf_val == pre['edf_value']})",
        f"V-Dover value  {vdo_val!r}  (bit-identical: {vdo_val == pre['vdover_value']})",
        "",
        "Machine-readable twin: results/BENCH_kernel.json (regenerated by",
        "the tier-1 perf_smoke marker and uploaded as a CI artifact).",
    ]
    archive("engine_perf_columnar", "\n".join(lines))
    # Honest floor only — wall-clock on shared runners is noisy; the
    # dispatch-count reduction is the deterministic part of the win.
    assert d_edf < pre["edf_dispatches"]
    assert d_vdo < pre["vdover_dispatches"]


def test_perf_queue_churn(benchmark):
    """Insert/dequeue/remove churn on the scheduler queue (10k ops)."""
    jobs = [Job(i, 0.0, 1.0, float(i % 97 + 1), 1.0) for i in range(1000)]

    def churn():
        q = JobQueue(edf_key)
        for job in jobs:
            q.insert(job)
        for job in jobs[::2]:
            q.remove(job)
        drained = 0
        while q:
            q.dequeue()
            drained += 1
        return drained

    assert benchmark(churn) == 500
