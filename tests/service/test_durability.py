"""Durable tenant state: cold start, idempotency, drain (in-process).

The kill -9 soak (tests/service/test_soak.py::TestKill9Smoke) proves
the same contracts against a real SIGKILLed child process; these tests
pin them at the shard/supervisor layer where failures are debuggable.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import DrainingError, RecoveryError, StorageError
from repro.service import (
    Advance,
    CapacitySpec,
    Close,
    InjectFault,
    ScheduleService,
    Stat,
    Submit,
    TenantShard,
    TenantSpec,
    replay_tenant,
    tenant_spec_from_dict,
    tenant_spec_to_dict,
)
from repro.sim.job import Job
from repro.store.tenant import TenantStore


def _spec(tenant="t0", **kw):
    base = dict(
        tenant=tenant,
        horizon=40.0,
        scheduler="vdover",
        capacity=CapacitySpec("constant", {"rate": 1.0}),
        queue_budget=64,
        snapshot_every=4,
        flush_every=2,
        fsync=True,
    )
    base.update(kw)
    return TenantSpec(**base)


def _job(jid, release, workload=1.0, value=1.0):
    return Job(
        jid=jid,
        release=release,
        workload=workload,
        deadline=release + 6.0,
        value=value,
    )


def _drive(shard, n=12, rid_prefix="r"):
    """A little deterministic workload with rids; returns the rid list."""
    rids = []
    for i in range(n):
        rid = f"{rid_prefix}{i}"
        shard.handle(Submit("t0", _job(i, release=float(i)), rid=rid))
        rids.append(rid)
    shard.handle(Advance("t0", float(n) + 2.0))
    return rids


def _run(coro):
    return asyncio.run(coro)


class TestSpecRoundtrip:
    def test_dict_roundtrip_identity(self):
        spec = _spec(fault_seed=7)
        doc = tenant_spec_to_dict(spec)
        json.dumps(doc)  # must be pure JSON
        again = tenant_spec_from_dict(doc)
        assert tenant_spec_to_dict(again) == doc

    def test_markov_capacity_roundtrips(self):
        spec = _spec(
            capacity=CapacitySpec(
                "markov2",
                {"low": 1.0, "high": 3.0, "mean_sojourn": 10.0},
                seed=5,
            )
        )
        doc = tenant_spec_to_dict(spec)
        assert tenant_spec_to_dict(tenant_spec_from_dict(doc)) == doc

    def test_pre_upgrade_store_still_resumes(self, tmp_path):
        """A tenant directory written before a defaulted spec field existed
        (here: ``protocol``) must keep resuming — the shard normalizes the
        stored doc through the spec round-trip before comparing."""
        old_doc = tenant_spec_to_dict(_spec())
        del old_doc["protocol"]  # what a pre-upgrade store holds on disk
        store = TenantStore(tmp_path / "t0")
        store.ensure_spec(old_doc)
        store.close()

        revived = TenantShard(
            _spec(), store=TenantStore(tmp_path / "t0"), resume=True
        )
        assert revived.spec.protocol == "scalar"

    def test_changed_spec_still_refuses(self, tmp_path):
        """Normalization only fills defaults; a genuinely different spec
        still refuses to resume."""
        store = TenantStore(tmp_path / "t0")
        TenantShard(_spec(), store=store)
        store.close()

        with pytest.raises(StorageError):
            TenantShard(
                _spec(horizon=999.0),
                store=TenantStore(tmp_path / "t0"),
                resume=True,
            )


class TestColdStartParity:
    def test_stats_bit_identical_after_cold_start(self, tmp_path):
        store = TenantStore(tmp_path / "t0")
        shard = TenantShard(_spec(), store=store)
        _drive(shard, n=12)
        shard.persist_now()
        before = shard.stats()
        store.close()  # the process is gone

        store2 = TenantStore(tmp_path / "t0")
        revived = TenantShard(_spec(), store=store2, resume=True)
        after = revived.stats()
        for key in ("submitted", "accepted", "shed", "accepted_crc"):
            assert after[key] == before[key], key
        assert after["recoveries"] == before["recoveries"] + 1

    def test_replay_parity_after_cold_start(self, tmp_path):
        store = TenantStore(tmp_path / "t0")
        shard = TenantShard(_spec(), store=store)
        _drive(shard, n=10)
        shard.handle(InjectFault("t0", "kill", time=14.0, retain=0.5))
        shard.persist_now()
        store.close()

        revived = TenantShard(
            _spec(), store=TenantStore(tmp_path / "t0"), resume=True
        )
        report = revived.close()
        check = replay_tenant(report)
        assert check.ok, check.failures
        assert report.lost_jids == ()

    def test_unsynced_snapshotless_ops_replay_from_log(self, tmp_path):
        # No persist_now, no periodic snapshot committed yet: the op log
        # alone rebuilds the world (ops are fsynced per decision).
        store = TenantStore(tmp_path / "t0")
        shard = TenantShard(_spec(snapshot_every=10_000), store=store)
        _drive(shard, n=6)
        before = shard.stats()
        store.close()  # SIGKILL: no drain, no snapshot

        revived = TenantShard(
            _spec(snapshot_every=10_000),
            store=TenantStore(tmp_path / "t0"),
            resume=True,
        )
        after = revived.stats()
        for key in ("submitted", "accepted", "shed", "accepted_crc"):
            assert after[key] == before[key], key
        report = revived.close()
        assert replay_tenant(report).ok

    def test_forced_crash_then_cold_start(self, tmp_path):
        from repro.errors import SimulatedCrash

        store = TenantStore(tmp_path / "t0")
        shard = TenantShard(_spec(), store=store)
        _drive(shard, n=8)
        with pytest.raises(SimulatedCrash) as excinfo:
            shard.handle(InjectFault("t0", "crash", time=9.0, rid="c0"))
        shard.recover(excinfo.value)
        shard.handle(Advance("t0", 11.0))
        shard.persist_now()
        before = shard.stats()
        store.close()

        revived = TenantShard(
            _spec(), store=TenantStore(tmp_path / "t0"), resume=True
        )
        after = revived.stats()
        assert after["forced_crashes"] == before["forced_crashes"] == 1
        assert after["accepted_crc"] == before["accepted_crc"]
        # The crash request id was durably decided.
        assert revived.dedup_outcome("c0") == "crash"

    def test_changed_spec_refuses_resume(self, tmp_path):
        store = TenantStore(tmp_path / "t0")
        TenantShard(_spec(), store=store).persist_now()
        store.close()
        with pytest.raises(StorageError, match="differs"):
            TenantShard(
                _spec(queue_budget=1),
                store=TenantStore(tmp_path / "t0"),
                resume=True,
            )

    def test_unknown_snapshot_version_refused(self, tmp_path):
        store = TenantStore(tmp_path / "t0")
        shard = TenantShard(_spec(), store=store)
        _drive(shard, n=4)
        shard.persist_now()
        store.write_snapshot({"version": 99}, op_seq=store.op_seq)
        store.close()
        with pytest.raises(RecoveryError, match="schema drift"):
            TenantShard(
                _spec(), store=TenantStore(tmp_path / "t0"), resume=True
            )


class TestIdempotency:
    def test_full_resend_after_cold_start_all_duplicates(self, tmp_path):
        store = TenantStore(tmp_path / "t0")
        shard = TenantShard(_spec(), store=store)
        rids = _drive(shard, n=10)
        shard.persist_now()
        before = shard.stats()
        store.close()

        revived = TenantShard(
            _spec(), store=TenantStore(tmp_path / "t0"), resume=True
        )
        # A client replaying its whole traffic log: every line acks
        # duplicate, nothing double-admits.
        dups = 0
        for i, rid in enumerate(rids):
            ack = revived.handle(Submit("t0", _job(i, float(i)), rid=rid))
            assert ack is not None and ack.get("duplicate"), rid
            dups += 1
        assert dups == len(rids)
        after = revived.stats()
        assert after["submitted"] == before["submitted"]
        assert after["accepted_crc"] == before["accepted_crc"]

    def test_duplicate_ack_carries_outcome(self, tmp_path):
        store = TenantStore(tmp_path / "t0")
        shard = TenantShard(_spec(), store=store)
        shard.handle(Submit("t0", _job(0, 0.0), rid="s0"))
        shard.handle(Advance("t0", 5.0))  # decides the group
        ack = shard.handle(Submit("t0", _job(0, 0.0), rid="s0"))
        assert ack == {"duplicate": True, "outcome": "accepted"}

    def test_pending_rid_reports_pending(self):
        shard = TenantShard(_spec())
        shard.handle(Submit("t0", _job(0, 0.0), rid="s0"))
        assert shard.dedup_outcome("s0") == "pending"
        assert shard.dedup_outcome("unknown") is None

    def test_duplicate_fault_not_reinjected(self, tmp_path):
        store = TenantStore(tmp_path / "t0")
        shard = TenantShard(_spec(), store=store)
        _drive(shard, n=4)
        shard.handle(InjectFault("t0", "kill", time=8.0, rid="f0"))
        n_injected = len(shard.report().injected)
        ack = shard.handle(InjectFault("t0", "kill", time=8.0, rid="f0"))
        assert ack == {"duplicate": True, "outcome": "injected"}
        assert len(shard.report().injected) == n_injected


class TestStatMessage:
    def test_stat_is_read_only(self):
        shard = TenantShard(_spec())
        _drive(shard, n=5)
        s1 = shard.handle(Stat("t0"))
        s2 = shard.handle(Stat("t0"))
        assert s1 == s2
        assert s1["tenant"] == "t0"
        assert s1["submitted"] == 5

    def test_stat_works_on_closed_shard(self):
        shard = TenantShard(_spec())
        _drive(shard, n=3)
        shard.handle(Close("t0"))
        stats = shard.handle(Stat("t0"))
        assert stats["closed"] is True

    def test_wire_form(self):
        from repro.service import encode_message, parse_message

        line = encode_message(Stat("t0"))
        assert parse_message(line) == Stat("t0")


class TestServiceDrain:
    def test_drain_refuses_new_work_and_flushes(self, tmp_path):
        async def run():
            service = ScheduleService(
                [_spec()], store_dir=tmp_path / "store"
            )
            await service.start()
            for i in range(8):
                await service.dispatch(
                    Submit("t0", _job(i, float(i)), rid=f"r{i}")
                )
            stats = await service.drain()
            assert service.draining
            with pytest.raises(DrainingError):
                await service.dispatch(Submit("t0", _job(99, 20.0)))
            with pytest.raises(DrainingError):
                await service.dispatch(InjectFault("t0", "kill", time=25.0))
            # Reads still work while draining.
            live = await service.dispatch(Stat("t0"))
            assert live["submitted"] == 8
            await service.close()
            return stats

        stats = _run(run())
        assert stats["t0"]["submitted"] == 8
        # Zero accepted-job loss at the drain boundary: every submission
        # was decided, nothing stuck in a buffer.
        assert stats["t0"]["pending"] == 0
        assert (
            stats["t0"]["accepted"] + stats["t0"]["shed"]
            == stats["t0"]["submitted"]
        )

    def test_drained_state_cold_starts_identically(self, tmp_path):
        store_dir = tmp_path / "store"

        async def first():
            service = ScheduleService([_spec()], store_dir=store_dir)
            await service.start()
            for i in range(10):
                await service.dispatch(
                    Submit("t0", _job(i, float(i)), rid=f"r{i}")
                )
            stats = await service.drain()
            await service.close()
            return stats

        async def second():
            service = ScheduleService.cold_start(store_dir)
            await service.start()
            stats = await service.dispatch(Stat("t0"))
            reports = await service.close()
            return stats, reports["t0"]

        before = _run(first())["t0"]
        after, report = _run(second())
        for key in ("submitted", "accepted", "shed", "accepted_crc"):
            assert after[key] == before[key], key
        assert replay_tenant(report).ok
        assert report.lost_jids == ()

    def test_cold_start_requires_state(self, tmp_path):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="no recoverable"):
            ScheduleService.cold_start(tmp_path / "empty")


class TestDaemonSpecs:
    def test_specs_file_forms(self, tmp_path):
        from repro.service.daemon import load_specs_file

        doc = [tenant_spec_to_dict(_spec("a")), tenant_spec_to_dict(_spec("b"))]
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(doc))
        wrapped = tmp_path / "wrapped.json"
        wrapped.write_text(json.dumps({"tenants": doc}))
        assert [s.tenant for s in load_specs_file(bare)] == ["a", "b"]
        assert [s.tenant for s in load_specs_file(wrapped)] == ["a", "b"]

    def test_bad_specs_file_rejected(self, tmp_path):
        from repro.errors import ServiceError
        from repro.service.daemon import load_specs_file

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"tenants": 7}))
        with pytest.raises(ServiceError, match="list"):
            load_specs_file(bad)
