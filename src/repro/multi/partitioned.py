"""Partitioned multiprocessor scheduling inside the multi engine.

Each processor runs its own single-processor scheduler (V-Dover by
default); an online dispatcher (reusing the policies of
:mod:`repro.cloud.cluster`) pins every arriving job to one processor, and
jobs never migrate afterwards.

Besides being the practical deployment mode (migration is rarely free in
real clouds), this adapter is a powerful differential oracle: a
partitioned run inside :class:`~repro.multi.engine.MultiprocessorEngine`
must produce exactly the same outcome as running the same dispatcher +
scheduler through :func:`repro.cloud.cluster.run_cluster` (m independent
single-processor engines) — the cross-engine equivalence test in the suite
leans on this.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.cloud.cluster import Dispatcher
from repro.errors import SchedulingError
from repro.sim.job import Job
from repro.sim.scheduler import Scheduler, SchedulerContext
from repro.multi.scheduler import Assignment, MultiScheduler, MultiSchedulerContext

__all__ = ["PartitionedScheduler"]


class _ProcView(SchedulerContext):
    """Single-processor view of the multi context, for sub-schedulers.

    During a batched release fold (:meth:`PartitionedScheduler.plan`) the
    parent installs a shared *hypothetical* running vector; sub-scheduler
    reads of ``current_job`` then see the fold's per-processor state
    instead of the not-yet-applied kernel assignment."""

    def __init__(self, ctx: MultiSchedulerContext, proc: int) -> None:
        self._ctx = ctx
        self._proc = proc
        self._hypo_running: "Optional[list]" = None
        self.obs = ctx.obs  # pass the observability gate through the view

    def now(self) -> float:
        return self._ctx.now()

    def remaining(self, job: Job) -> float:
        return self._ctx.remaining(job)

    def capacity_now(self) -> float:
        return self._ctx.capacity_now(self._proc)

    @property
    def bounds(self) -> Tuple[float, float]:
        return self._ctx.bounds(self._proc)

    def current_job(self) -> Optional[Job]:
        hypo = self._hypo_running
        if hypo is not None:
            return hypo[self._proc]
        return self._ctx.running()[self._proc]

    def set_alarm(self, job: Job, time: float, tag: str = "claxity") -> None:
        self._ctx.set_alarm(job, time, tag)

    def cancel_alarm(self, job: Job) -> None:
        self._ctx.cancel_alarm(job)

    def set_timer(self, time: float, tag: str) -> None:
        raise SchedulingError(
            "partitioned sub-schedulers cannot use global timers"
        )


class PartitionedScheduler(MultiScheduler):
    """Dispatcher + per-processor single-processor schedulers.

    Parameters
    ----------
    dispatcher:
        Online routing policy (called once per job at its release).
    scheduler_factory:
        Builds one fresh single-processor scheduler per processor.
    """

    name = "Partitioned"

    #: Release bursts fold through :meth:`plan`; the sub-schedulers emit
    #: their decision records directly mid-fold, so tracing keeps the
    #: per-event path (``batch_obs_exact`` stays ``False``).
    batch_capable = True

    def __init__(
        self,
        dispatcher: Dispatcher,
        scheduler_factory: Callable[[], Scheduler],
    ) -> None:
        super().__init__()
        self._dispatcher = dispatcher
        self._factory = scheduler_factory

    def reset(self) -> None:
        m = self.ctx.n_procs
        self._dispatcher.reset(m, [self.ctx.bounds(p)[0] for p in range(m)])
        self._subs: list[Scheduler] = []
        self._views: list[_ProcView] = []
        for proc in range(m):
            sub = self._factory()
            view = _ProcView(self.ctx, proc)
            sub.bind(view)
            self._subs.append(sub)
            self._views.append(view)
        self._proc_of: dict[int, int] = {}
        self.name = f"Partitioned({self._dispatcher.name}/{self._subs[0].name})"

    # ------------------------------------------------------------------
    def _assignment_with(self, proc: int, job: Optional[Job]) -> Assignment:
        desired = list(self.ctx.running())
        desired[proc] = job
        return desired

    def on_release(self, job: Job) -> Assignment:
        proc = self._dispatcher.route(job)
        if not 0 <= proc < self.ctx.n_procs:
            raise SchedulingError(f"dispatcher routed to invalid processor {proc}")
        self._proc_of[job.jid] = proc
        return self._assignment_with(proc, self._subs[proc].on_release(job))

    def plan(self, view) -> "object":
        """Incremental re-plan of one release burst: route each newcomer,
        fold it through its partition's sub-scheduler against the
        hypothetical running vector, and emit one assignment snapshot per
        event — bit-identical to dispatching the releases one at a time
        (the dispatchers read only the job and their own routing state)."""
        from repro.errors import SchedulingError as _SE
        from repro.sim.batchproto import BatchDecisions
        from repro.sim.events import EventKind

        if view.kind != EventKind.RELEASE:
            raise _SE(
                f"{type(self).__name__} batches release groups only, "
                f"got {view.kind!r}"
            )
        n_procs = self.ctx.n_procs
        running = list(self.ctx.running())
        views = self._views
        for pv in views:
            pv._hypo_running = running
        desired: "list" = []
        try:
            for job in view.jobs:
                proc = self._dispatcher.route(job)
                if not 0 <= proc < n_procs:
                    raise SchedulingError(
                        f"dispatcher routed to invalid processor {proc}"
                    )
                self._proc_of[job.jid] = proc
                running[proc] = self._subs[proc].on_release(job)
                desired.append(tuple(running))
        finally:
            for pv in views:
                pv._hypo_running = None
        return BatchDecisions(desired)

    def on_job_end(self, job: Job, completed: bool) -> Assignment:
        proc = self._proc_of.get(job.jid)
        if proc is None:  # pragma: no cover - defensive
            return self.ctx.running()
        return self._assignment_with(
            proc, self._subs[proc].on_job_end(job, completed)
        )

    def on_alarm(self, job: Job, tag: str) -> Assignment:
        proc = self._proc_of.get(job.jid)
        if proc is None:  # pragma: no cover - defensive
            return self.ctx.running()
        return self._assignment_with(proc, self._subs[proc].on_alarm(job, tag))

    def on_eviction(self, job: Job) -> Assignment:
        """An execution fault evicted ``job``: the partition is sticky, so
        the job's own processor's sub-scheduler handles the re-admission
        (no re-dispatch — jobs never migrate in partitioned mode)."""
        proc = self._proc_of.get(job.jid)
        if proc is None:  # pragma: no cover - defensive
            return self.ctx.running()
        return self._assignment_with(proc, self._subs[proc].on_eviction(job))

    # ------------------------------------------------------------------
    # Snapshot protocol (crash recovery)
    # ------------------------------------------------------------------
    def _policy_state(self) -> dict:
        return {
            "dispatcher": self._dispatcher.get_state(),
            "subs": [sub.get_state() for sub in self._subs],
            "proc_of": dict(self._proc_of),
        }

    def _restore_policy_state(self, state: dict, jobs_by_id) -> None:
        if len(state["subs"]) != len(self._subs):
            raise SchedulingError(
                f"snapshot has {len(state['subs'])} partitions, "
                f"engine has {len(self._subs)}"
            )
        self._dispatcher.set_state(state["dispatcher"])
        for sub, sub_state in zip(self._subs, state["subs"]):
            sub.set_state(sub_state, jobs_by_id)
        self._proc_of = {int(jid): int(p) for jid, p in state["proc_of"].items()}
