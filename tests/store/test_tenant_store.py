"""TenantStore: spec pinning, op records, snapshot anchoring, compaction."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.store.directory import MemoryDirectory
from repro.store.tenant import SHED_FILE, SPEC_FILE, WAL_FILE, TenantStore


SPEC = {"tenant": "t0", "seed": 11, "workload": {"lam": 2.0}}


class TestSpec:
    def test_written_once_and_reloadable(self, tmp_path):
        store = TenantStore(tmp_path / "t0")
        assert store.load_spec() is None
        store.ensure_spec(SPEC)
        assert store.load_spec() == SPEC
        # Idempotent with the identical spec.
        store.ensure_spec(SPEC)
        reopened = TenantStore(tmp_path / "t0")
        assert reopened.load_spec() == SPEC

    def test_changed_spec_refused(self, tmp_path):
        store = TenantStore(tmp_path / "t0")
        store.ensure_spec(SPEC)
        with pytest.raises(StorageError, match="differs"):
            store.ensure_spec({**SPEC, "seed": 999})

    def test_corrupt_spec_refused(self, tmp_path):
        store = TenantStore(tmp_path / "t0")
        store.ensure_spec(SPEC)
        spec_path = tmp_path / "t0" / SPEC_FILE
        spec_path.write_text(spec_path.read_text().replace("11", "12"))
        with pytest.raises(StorageError, match="corrupt"):
            TenantStore(tmp_path / "t0").load_spec()

    def test_paths(self, tmp_path):
        store = TenantStore(tmp_path / "t0")
        assert store.wal_path == tmp_path / "t0" / WAL_FILE
        assert store.shed_path == tmp_path / "t0" / SHED_FILE
        mem_store = TenantStore(MemoryDirectory())
        assert mem_store.wal_path is None
        assert mem_store.shed_path is None


class TestOpsAndSnapshots:
    def test_ops_roundtrip(self, tmp_path):
        store = TenantStore(tmp_path / "t0")
        assert store.op_seq == 0
        store.append_ops([{"op": "admit", "jid": 1}, {"op": "shed", "jid": 2}])
        assert store.op_seq == 2
        store.close()
        reopened = TenantStore(tmp_path / "t0")
        assert reopened.ops() == [
            (0, {"op": "admit", "jid": 1}),
            (1, {"op": "shed", "jid": 2}),
        ]

    def test_snapshot_anchors_and_compacts(self, tmp_path):
        store = TenantStore(tmp_path / "t0", segment_bytes=128)
        for i in range(20):
            store.append_ops([{"op": "admit", "jid": i}])
        anchor = store.op_seq
        store.write_snapshot({"accepted": 20}, op_seq=anchor)
        store.append_ops([{"op": "admit", "jid": 20}])
        store.close()

        reopened = TenantStore(tmp_path / "t0", segment_bytes=128)
        state, got_anchor = reopened.load_snapshot()
        assert state == {"accepted": 20}
        assert got_anchor == anchor
        # Compaction dropped whole pre-anchor segments; what remains is
        # post-anchor (plus at most a partially-covered segment).
        post = [doc for seq, doc in reopened.ops() if seq >= anchor]
        assert post == [{"op": "admit", "jid": 20}]
        assert reopened.oplog.base_seq > 0

    def test_has_state(self, tmp_path):
        store = TenantStore(tmp_path / "t0")
        assert not store.has_state()
        store.append_ops([{"op": "admit", "jid": 0}])
        assert store.has_state()

        snap_only = TenantStore(tmp_path / "t1")
        assert not snap_only.has_state()
        snap_only.write_snapshot({"x": 1}, op_seq=0)
        assert snap_only.has_state()

    def test_rebase_after_wholesale_log_loss(self, tmp_path):
        store = TenantStore(tmp_path / "t0")
        for i in range(5):
            store.append_ops([{"i": i}])
        store.write_snapshot({"n": 5}, op_seq=5)
        store.close()
        # Rot the whole op log away: every segment quarantines.
        oplog_dir = tmp_path / "t0" / "oplog"
        for seg in oplog_dir.glob("*.seg"):
            seg.write_bytes(b"\x00" * 16)
        reopened = TenantStore(tmp_path / "t0")
        state, anchor = reopened.load_snapshot()
        assert state == {"n": 5}
        # The empty log was re-anchored at the snapshot: new appends
        # stay ahead of the anchor instead of reusing burned sequences.
        assert reopened.op_seq == anchor == 5
        store2 = reopened
        store2.append_ops([{"i": 5}])
        assert store2.ops()[-1][0] == 5

    def test_power_loss_synced_ops_survive(self):
        mem = MemoryDirectory()
        store = TenantStore(mem, fsync=True)
        store.ensure_spec(SPEC)
        for i in range(4):
            store.append_ops([{"i": i}], sync=True)
        mem.crash()
        recovered = TenantStore(mem)
        assert recovered.load_spec() == SPEC
        assert [doc["i"] for _s, doc in recovered.ops()] == [0, 1, 2, 3]
