"""Multiprocessor discrete-event engine (global scheduling, free migration).

A direct generalisation of :class:`repro.sim.engine.SimulationEngine`:
``m`` processors, each with its own (possibly heterogeneous) capacity
trajectory, one global ready pool.  The scheduler returns a full
assignment after every interrupt; the engine diffs it against the current
one, closes segments for displaced jobs, and re-predicts completions with
each processor's exact inverse integral.

Migration semantics: preemption and migration are free; a preempted job
resumes from its exact remaining workload on any processor (workload is
capacity-units × time, so a job's progress is processor-independent — the
same modelling choice the paper makes for its dynamically-sized VMs).

The validator enforces, on top of the per-processor legality checks, that
no job ever runs on two processors at once (no intra-job parallelism).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.capacity.base import CapacityFunction
from repro.errors import SchedulingError, SimulationError
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.job import Job, JobStatus, validate_jobs
from repro.sim.trace import ScheduleTrace
from repro.multi.metrics import MultiSimulationResult
from repro.multi.scheduler import Assignment, MultiScheduler, MultiSchedulerContext

__all__ = ["MultiprocessorEngine", "simulate_multi"]

_EPS = 1e-9


class _MultiContext(MultiSchedulerContext):
    def __init__(self, engine: "MultiprocessorEngine") -> None:
        self._engine = engine

    def now(self) -> float:
        return self._engine._now

    @property
    def n_procs(self) -> int:
        return len(self._engine._capacities)

    def remaining(self, job: Job) -> float:
        return self._engine._remaining_of(job)

    def running(self) -> Tuple[Optional[Job], ...]:
        return tuple(self._engine._current)

    def capacity_now(self, proc: int) -> float:
        return self._engine._capacities[proc].value(self._engine._now)

    def bounds(self, proc: int) -> Tuple[float, float]:
        cap = self._engine._capacities[proc]
        return (cap.lower, cap.upper)

    def set_alarm(self, job: Job, time: float, tag: str = "alarm") -> None:
        self._engine._set_alarm(job, time, tag)

    def cancel_alarm(self, job: Job) -> None:
        self._engine._cancel_alarm(job)


class MultiprocessorEngine:
    """Run one global scheduler over m processors.

    Parameters mirror the single-processor engine; ``capacities`` carries
    one trajectory per processor.
    """

    def __init__(
        self,
        jobs: Sequence[Job],
        capacities: Sequence[CapacityFunction],
        scheduler: MultiScheduler,
        *,
        horizon: float | None = None,
        validate: bool = False,
    ) -> None:
        validate_jobs(jobs)
        if not capacities:
            raise SimulationError("at least one processor required")
        self._jobs = list(jobs)
        self._capacities = list(capacities)
        self._scheduler = scheduler
        if horizon is None:
            horizon = max((j.deadline for j in jobs), default=0.0) + 1.0
        if not math.isfinite(horizon) or horizon < 0.0:
            raise SimulationError(f"invalid horizon: {horizon!r}")
        self._horizon = float(horizon)
        self._validate = bool(validate)

        m = len(capacities)
        self._now = 0.0
        self._remaining: Dict[int, float] = {}
        self._status: Dict[int, JobStatus] = {}
        self._current: List[Optional[Job]] = [None] * m
        self._seg_start: List[float] = [0.0] * m
        self._seg_remaining0: List[float] = [0.0] * m
        self._proc_of: Dict[int, int] = {}  # jid -> processor while running

        self._events = EventQueue()
        self._completion_version: Dict[int, int] = {}
        self._alarm_version: Dict[int, int] = {}
        self._traces = [ScheduleTrace() for _ in range(m)]
        self._outcomes = ScheduleTrace()  # combined value series & outcomes

    # ------------------------------------------------------------------
    def _remaining_of(self, job: Job) -> float:
        status = self._status.get(job.jid)
        if status is None or status is JobStatus.PENDING:
            raise SchedulingError(f"remaining() for unreleased job {job.jid}")
        proc = self._proc_of.get(job.jid)
        if proc is not None and self._current[proc] is job:
            done = self._capacities[proc].integrate(self._seg_start[proc], self._now)
            return max(0.0, self._seg_remaining0[proc] - done)
        return self._remaining[job.jid]

    def _set_alarm(self, job: Job, time: float, tag: str) -> None:
        if job.jid not in self._status:
            raise SchedulingError(f"alarm for unknown job {job.jid}")
        version = self._alarm_version.get(job.jid, 0) + 1
        self._alarm_version[job.jid] = version
        self._events.push(Event(max(time, self._now), EventKind.ALARM, (job, tag), version))

    def _cancel_alarm(self, job: Job) -> None:
        self._alarm_version[job.jid] = self._alarm_version.get(job.jid, 0) + 1

    # ------------------------------------------------------------------
    # Processor mechanics
    # ------------------------------------------------------------------
    def _close_segment(self, proc: int, t: float) -> None:
        job = self._current[proc]
        if job is None:
            return
        work = self._capacities[proc].integrate(self._seg_start[proc], t)
        new_remaining = self._seg_remaining0[proc] - work
        if new_remaining < -1e-6 * max(1.0, job.workload):
            raise SimulationError(f"job {job.jid} over-executed on proc {proc}")
        self._remaining[job.jid] = max(0.0, new_remaining)
        self._traces[proc].add_segment(self._seg_start[proc], t, job.jid, work)
        self._status[job.jid] = JobStatus.READY
        self._completion_version[job.jid] = (
            self._completion_version.get(job.jid, 0) + 1
        )
        self._current[proc] = None
        del self._proc_of[job.jid]

    def _start_job(self, proc: int, job: Job, t: float) -> None:
        status = self._status.get(job.jid)
        if status is not JobStatus.READY:
            raise SchedulingError(
                f"scheduler assigned job {job.jid} in state {status} to proc {proc}"
            )
        self._current[proc] = job
        self._proc_of[job.jid] = proc
        self._status[job.jid] = JobStatus.RUNNING
        self._seg_start[proc] = t
        self._seg_remaining0[proc] = self._remaining[job.jid]
        finish = self._capacities[proc].advance(t, self._seg_remaining0[proc])
        version = self._completion_version.get(job.jid, 0) + 1
        self._completion_version[job.jid] = version
        if finish <= self._horizon:
            self._events.push(Event(finish, EventKind.COMPLETION, (proc, job), version))

    def _apply_assignment(self, desired: Assignment, t: float) -> None:
        desired = list(desired)
        if len(desired) != len(self._capacities):
            raise SchedulingError(
                f"assignment length {len(desired)} != {len(self._capacities)} processors"
            )
        seen: set[int] = set()
        for job in desired:
            if job is None:
                continue
            if job.jid in seen:
                raise SchedulingError(
                    f"job {job.jid} assigned to two processors at once"
                )
            seen.add(job.jid)
        # Close every processor whose job changes (incl. migrations away).
        for proc, job in enumerate(desired):
            if self._current[proc] is not job:
                self._close_segment(proc, t)
        # Start the new assignments (migrations now find the job READY).
        for proc, job in enumerate(desired):
            if job is not None and self._current[proc] is not job:
                self._start_job(proc, job, t)

    # ------------------------------------------------------------------
    def _complete(self, proc: int, job: Job, t: float) -> None:
        work = self._capacities[proc].integrate(self._seg_start[proc], t)
        self._traces[proc].add_segment(self._seg_start[proc], t, job.jid, work)
        self._remaining[job.jid] = 0.0
        self._status[job.jid] = JobStatus.COMPLETED
        self._current[proc] = None
        del self._proc_of[job.jid]
        self._completion_version[job.jid] = (
            self._completion_version.get(job.jid, 0) + 1
        )
        self._outcomes.record_outcome(job, JobStatus.COMPLETED, t)
        desired = self._scheduler.on_job_end(job, completed=True)
        self._apply_assignment(desired, t)

    def _dispatch(self, event: Event) -> None:
        t = event.time
        kind = event.kind

        if kind is EventKind.RELEASE:
            job: Job = event.payload
            self._status[job.jid] = JobStatus.READY
            self._remaining[job.jid] = job.workload
            self._apply_assignment(self._scheduler.on_release(job), t)
            return

        if kind is EventKind.COMPLETION:
            proc, job = event.payload
            if self._completion_version.get(job.jid, 0) != event.version:
                return
            if self._current[proc] is not job:  # pragma: no cover - defensive
                return
            self._complete(proc, job, t)
            return

        if kind is EventKind.DEADLINE:
            job = event.payload
            status = self._status.get(job.jid)
            if status in (JobStatus.COMPLETED, JobStatus.FAILED, JobStatus.ABANDONED):
                return
            proc = self._proc_of.get(job.jid)
            if proc is not None:
                # Exact-deadline completion tolerance (see the single-proc
                # engine): a running job with ~zero remaining completes.
                done = self._capacities[proc].integrate(self._seg_start[proc], t)
                left = self._seg_remaining0[proc] - done
                if left <= 1e-9 * max(1.0, job.workload):
                    self._complete(proc, job, t)
                    return
                self._close_segment(proc, t)
            self._status[job.jid] = JobStatus.FAILED
            self._outcomes.record_outcome(job, JobStatus.FAILED, t)
            self._apply_assignment(
                self._scheduler.on_job_end(job, completed=False), t
            )
            return

        if kind is EventKind.ALARM:
            job, tag = event.payload
            if self._alarm_version.get(job.jid, 0) != event.version:
                return
            if self._status.get(job.jid) is not JobStatus.READY:
                return
            self._apply_assignment(self._scheduler.on_alarm(job, tag), t)
            return

        raise SimulationError(f"unhandled event kind: {kind!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    def run(self) -> MultiSimulationResult:
        self._scheduler.bind(_MultiContext(self))
        for job in self._jobs:
            self._status[job.jid] = JobStatus.PENDING
            if job.release <= self._horizon:
                self._events.push(Event(job.release, EventKind.RELEASE, job))
                self._events.push(Event(job.deadline, EventKind.DEADLINE, job))
        self._events.push(Event(self._horizon, EventKind.END))

        while len(self._events):
            event = self._events.pop()
            if event.time < self._now - _EPS:
                raise SimulationError(
                    f"time went backwards: {event.time} < {self._now}"
                )
            if event.kind is EventKind.END or event.time > self._horizon:
                self._now = min(event.time, self._horizon)
                break
            self._now = event.time
            self._dispatch(event)

        for proc in range(len(self._capacities)):
            self._close_segment(proc, self._now)
        for job in self._jobs:
            if self._status.get(job.jid) in (JobStatus.READY, JobStatus.RUNNING):
                self._status[job.jid] = JobStatus.FAILED
                self._outcomes.record_outcome(job, JobStatus.FAILED, self._now)

        result = MultiSimulationResult(
            scheduler_name=self._scheduler.name,
            jobs=self._jobs,
            horizon=self._horizon,
            proc_traces=self._traces,
            combined=self._outcomes,
        )
        if self._validate:
            result.validate(self._capacities)
        return result


def simulate_multi(
    jobs: Sequence[Job],
    capacities: Sequence[CapacityFunction],
    scheduler: MultiScheduler,
    *,
    horizon: float | None = None,
    validate: bool = False,
) -> MultiSimulationResult:
    """Convenience wrapper mirroring :func:`repro.sim.simulate`."""
    return MultiprocessorEngine(
        jobs, capacities, scheduler, horizon=horizon, validate=validate
    ).run()
