"""Process entry for the durable service: TCP ingress + SIGTERM drain.

This is the piece the kill -9 soak actually kills: a real child process
running ``python -m repro serve --store DIR [--specs FILE]``.  Lifecycle:

1. **boot** — if the store directory holds recoverable tenant state,
   :meth:`~repro.service.supervisor.ScheduleService.cold_start` rebuilds
   every tenant from disk; otherwise the spec file creates them fresh
   (both can combine: specs seed the first incarnation, the store feeds
   every later one);
2. **hello** — one JSON line on stdout announces readiness::

       {"event": "serving", "port": 49152, "cold_start": true, ...}

   the parent parses it to learn the ephemeral port;
3. **traffic** — JSON-line messages over TCP, one ack per line
   (:class:`~repro.service.ingress.ServiceIngress` with
   ``verify_on_close`` so ``close`` acks carry the replay-parity
   verdict);
4. **SIGTERM/SIGINT** — graceful drain: new submits/faults ack
   ``draining``, queued work finishes, every tenant's snapshot + op log
   + WAL is flushed, a final ``{"event": "drained", ...}`` line reports
   the per-tenant stats, and the process exits 0.  ``SIGKILL`` skips all
   of that — which is exactly what the store design is for.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ServiceError
from repro.service.exposition import TelemetryExposition
from repro.service.ingress import ServiceIngress
from repro.service.shard import TenantSpec, tenant_spec_from_dict
from repro.service.supervisor import RestartPolicy, ScheduleService

__all__ = ["load_specs_file", "serve", "main"]


def load_specs_file(path: "str | Path") -> List[TenantSpec]:
    """Tenant specs from a JSON file: either a bare list of spec
    documents or ``{"tenants": [...]}``."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(doc, dict):
        doc = doc.get("tenants", [])
    if not isinstance(doc, list):
        raise ServiceError(
            f"specs file {str(path)!r} must hold a list of tenant specs"
        )
    return [tenant_spec_from_dict(entry) for entry in doc]


def _store_has_state(store_dir: Path) -> bool:
    from repro.store.tenant import SPEC_FILE

    if not store_dir.is_dir():
        return False
    return any(
        (sub / SPEC_FILE).exists()
        for sub in store_dir.iterdir()
        if sub.is_dir()
    )


async def serve(
    store_dir: "str | Path",
    *,
    specs: Optional[List[TenantSpec]] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    policy: Optional[RestartPolicy] = None,
    store_fsync: bool = True,
    telemetry: bool = True,
    telemetry_port: int = 0,
    out=None,
) -> Dict[str, Any]:
    """Run the durable service until SIGTERM/SIGINT, then drain.

    Returns the final drain stats (per tenant).  ``out`` (default
    stdout) receives the hello and drained event lines.  With
    ``telemetry`` (the daemon default) every shard tracks per-tenant
    SLOs and an HTTP exposition listener serves ``/metrics`` (Prometheus
    text), ``/metrics.json`` and ``/health`` on ``telemetry_port``
    (0 = ephemeral; announced in the hello line)."""
    out = out if out is not None else sys.stdout
    store_dir = Path(store_dir)
    store_dir.mkdir(parents=True, exist_ok=True)

    cold = _store_has_state(store_dir)
    if cold:
        service = ScheduleService.cold_start(
            store_dir,
            policy=policy,
            store_fsync=store_fsync,
            telemetry=telemetry,
        )
    else:
        if not specs:
            raise ServiceError(
                f"store {str(store_dir)!r} is empty and no specs were "
                "given; nothing to serve"
            )
        service = ScheduleService(
            specs,
            policy=policy,
            store_dir=store_dir,
            store_fsync=store_fsync,
            telemetry=telemetry,
        )
    await service.start()

    ingress = ServiceIngress(service, verify_on_close=True)
    server = await ingress.serve_tcp(host=host, port=port)
    bound_port = server.sockets[0].getsockname()[1]

    exposition: Optional[TelemetryExposition] = None
    if telemetry:
        exposition = TelemetryExposition(service)
        await exposition.start(host=host, port=telemetry_port)

    stop = asyncio.get_running_loop().create_future()

    def _request_stop(signame: str) -> None:
        if not stop.done():
            stop.set_result(signame)

    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, _request_stop, sig.name)

    print(
        json.dumps(
            {
                "event": "serving",
                "port": bound_port,
                "host": host,
                "cold_start": cold,
                "tenants": list(service.tenants),
                "store": str(store_dir),
                "telemetry_port": (
                    None if exposition is None else exposition.port
                ),
            }
        ),
        file=out,
        flush=True,
    )

    signame = await stop
    stats = await service.drain()
    if exposition is not None:
        await exposition.stop()
    await ingress.stop_tcp()
    print(
        json.dumps(
            {"event": "drained", "signal": signame, "stats": stats}
        ),
        file=out,
        flush=True,
    )
    return stats


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry (the CLI's ``serve`` subcommand routes here)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Durable scheduling service: TCP JSON-line ingress, "
        "crash-safe tenant store, SIGTERM drain.",
    )
    parser.add_argument("--store", required=True, help="store directory")
    parser.add_argument(
        "--specs",
        default=None,
        help="JSON tenant-spec file (required for a fresh store)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip fsyncs in the store (faster; survives SIGKILL but "
        "not power loss)",
    )
    parser.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable the SLO trackers and the HTTP exposition listener",
    )
    parser.add_argument(
        "--telemetry-port",
        type=int,
        default=0,
        help="HTTP exposition port (default 0 = ephemeral, announced "
        "in the hello line)",
    )
    args = parser.parse_args(argv)

    specs = load_specs_file(args.specs) if args.specs else None
    asyncio.run(
        serve(
            args.store,
            specs=specs,
            host=args.host,
            port=args.port,
            store_fsync=not args.no_fsync,
            telemetry=not args.no_telemetry,
            telemetry_port=args.telemetry_port,
        )
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the soak
    raise SystemExit(main())
