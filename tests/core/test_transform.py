"""Unit tests for the time-stretch transformation (Section III-A)."""

import pytest

from repro.capacity import ConstantCapacity, PiecewiseConstantCapacity
from repro.core import EDFScheduler, StretchTransform
from repro.errors import CapacityError
from repro.sim import Job, RunSegment, simulate


@pytest.fixture
def cap():
    return PiecewiseConstantCapacity([0.0, 10.0, 20.0], [1.0, 4.0, 2.0])


class TestTimeMap:
    def test_forward_is_scaled_cumulative_work(self, cap):
        tr = StretchTransform(cap, rate=2.0)
        # ∫_0^15 c = 10 + 20 = 30; stretched time = 30/2 = 15.
        assert tr.forward(15.0) == pytest.approx(15.0)
        assert tr.forward(0.0) == 0.0

    def test_default_rate_is_upper_bound(self, cap):
        tr = StretchTransform(cap)
        assert tr.rate == cap.upper

    def test_inverse_roundtrip(self, cap):
        tr = StretchTransform(cap, rate=3.0)
        for t in (0.0, 3.7, 10.0, 15.2, 40.0):
            assert tr.inverse(tr.forward(t)) == pytest.approx(t)

    def test_forward_is_increasing(self, cap):
        tr = StretchTransform(cap)
        ts = [0.0, 1.0, 5.0, 10.0, 12.0, 25.0, 40.0]
        images = [tr.forward(t) for t in ts]
        assert images == sorted(images)
        assert len(set(images)) == len(images)

    def test_workload_preservation(self, cap):
        """The defining property: ∫_s^t c = rate * (T(t) − T(s))."""
        tr = StretchTransform(cap, rate=5.0)
        for s, t in [(0.0, 7.0), (3.0, 18.0), (12.0, 33.0)]:
            assert cap.integrate(s, t) == pytest.approx(
                5.0 * (tr.forward(t) - tr.forward(s))
            )

    def test_rejects_negative_time(self, cap):
        tr = StretchTransform(cap)
        with pytest.raises(CapacityError):
            tr.forward(-1.0)
        with pytest.raises(CapacityError):
            tr.inverse(-1.0)

    def test_rejects_bad_rate(self, cap):
        with pytest.raises(CapacityError):
            StretchTransform(cap, rate=0.0)


class TestInstanceMap:
    def test_job_parameters(self, cap):
        tr = StretchTransform(cap, rate=2.0)
        job = Job(3, release=5.0, workload=7.0, deadline=15.0, value=2.5)
        image = tr.transform_job(job)
        assert image.jid == 3
        assert image.release == pytest.approx(tr.forward(5.0))
        assert image.deadline == pytest.approx(tr.forward(15.0))
        assert image.workload == 7.0  # preserved
        assert image.value == 2.5     # preserved

    def test_transformed_instance_runs_on_constant_capacity(self, cap):
        tr = StretchTransform(cap)
        inst = tr.transform_instance([Job(0, 0.0, 4.0, 9.0, 1.0)])
        assert isinstance(inst.capacity, ConstantCapacity)
        assert inst.capacity.rate == tr.rate


class TestScheduleBijection:
    def test_feasibility_preserved_both_ways(self, cap):
        """A job set is EDF-feasible on the original system iff its image
        is on the constant-capacity system — the paper's reduction."""
        tr = StretchTransform(cap)
        jobs = [
            Job(0, 0.0, 8.0, 9.0, 1.0),
            Job(1, 2.0, 10.0, 14.0, 1.0),
            Job(2, 11.0, 20.0, 19.0, 1.0),
        ]
        original = simulate(jobs, cap, EDFScheduler())
        image_inst = tr.transform_instance(jobs)
        image = simulate(image_inst.jobs, image_inst.capacity, EDFScheduler())
        assert original.completed_ids == image.completed_ids
        assert original.value == pytest.approx(image.value)

    def test_segment_mapping_preserves_work(self, cap):
        tr = StretchTransform(cap, rate=2.0)
        segs = [RunSegment(0.0, 7.0, 0, cap.integrate(0.0, 7.0)),
                RunSegment(9.0, 14.0, 1, cap.integrate(9.0, 14.0))]
        mapped = tr.map_segments(segs)
        for orig, img in zip(segs, mapped):
            # Image duration * constant rate must equal the original work.
            assert 2.0 * (img.end - img.start) == pytest.approx(orig.work)
            assert img.work == orig.work
        back = tr.unmap_segments(mapped)
        for orig, rt in zip(segs, back):
            assert rt.start == pytest.approx(orig.start)
            assert rt.end == pytest.approx(orig.end)

    def test_mapped_schedule_validates_on_image_system(self, cap):
        """Map a legal varying-capacity schedule and re-validate it against
        the constant-capacity image — end-to-end check of the bijection."""
        tr = StretchTransform(cap)
        jobs = [Job(0, 0.0, 8.0, 9.0, 1.0), Job(1, 2.0, 10.0, 14.0, 1.0)]
        result = simulate(jobs, cap, EDFScheduler(), validate=True)
        image_inst = tr.transform_instance(jobs)
        mapped = tr.map_segments(result.trace.segments)

        from repro.sim.trace import ScheduleTrace

        image_trace = ScheduleTrace()
        for seg in mapped:
            image_trace.add_segment(seg.start, seg.end, seg.jid, seg.work)
        image_trace.validate(image_inst.jobs, image_inst.capacity)
