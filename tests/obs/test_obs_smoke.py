"""The ``obs_smoke`` CI step: a traced Figure-1 slice through the real CLI.

Runs ``repro-sched figure1 --trace ... --profile`` on a small workload,
re-runs it to prove the exported JSONL is byte-deterministic, and renders
``repro-sched obs report`` / ``obs tail`` on the artifact.  The trace file
is written under ``test-results/`` so the CI failure-artifact upload
preserves it for offline ``repro-sched obs`` debugging.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import load_trace

pytestmark = pytest.mark.obs_smoke

_ARGS = ["figure1", "--lam", "6.0", "--jobs", "60"]


@pytest.fixture(scope="module")
def trace_path() -> Path:
    out = Path("test-results")
    out.mkdir(exist_ok=True)
    return out / "obs_smoke_trace.jsonl"


def test_traced_figure1_slice(trace_path, capsys):
    assert main(_ARGS + ["--trace", str(trace_path), "--profile"]) == 0
    captured = capsys.readouterr()
    assert "Figure 1" in captured.out
    assert "wrote" in captured.err and str(trace_path) in captured.err

    doc = load_trace(trace_path)
    assert doc["header"]["events"] > 0
    assert doc["header"]["runs"] == 8  # 4 panels x (V-Dover, Dover)
    assert doc["metrics"] is not None  # --profile footer rides along
    kinds = {e["kind"] for e in doc["events"]}
    assert {"run.start", "job.release", "decision", "run.end"} <= kinds


def test_traced_figure1_is_deterministic(trace_path, tmp_path, capsys):
    rerun = tmp_path / "rerun.jsonl"
    assert main(_ARGS + ["--trace", str(rerun)]) == 0
    assert main(_ARGS + ["--trace", str(tmp_path / "rerun2.jsonl")]) == 0
    capsys.readouterr()
    assert rerun.read_bytes() == (tmp_path / "rerun2.jsonl").read_bytes()


def test_obs_report_renders_artifact(trace_path, capsys):
    assert main(["obs", "report", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "events by kind:" in out
    assert "decisions:" in out
    assert "dispatch latency by event kind (profiled):" in out

    assert main(["obs", "tail", str(trace_path), "-n", "5"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("last 5 of ")
