"""E14 — ablation: deadline tightness (why the paper pins slack = 1).

Relative deadlines are ``slack × workload / c̲``; the paper's simulation
uses slack = 1 (zero conservative laxity at release), the hardest regime
for online scheduling.  Sweeping the slack shows the regime dependence:

* slack = 1: V-Dover clearly ahead of EDF and far ahead of Dover(ĉ=c̲);
* large slack: the system approaches the underloaded regime of Theorem 2,
  every sensible policy converges, and V-Dover's edge shrinks toward zero
  (asserted: monotone-ish shrinkage, never significantly negative).
"""

from __future__ import annotations

import pytest

from conftest import expected_jobs
from repro.experiments import run_slack_sweep
from repro.experiments.runner import default_mc_runs


def test_slack_ablation(archive, benchmark):
    slacks = (1.0, 1.5, 2.0, 4.0, 8.0)
    sweep = run_slack_sweep(
        slacks=slacks,
        lam=8.0,
        n_runs=default_mc_runs(30),
        expected_jobs=min(500.0, expected_jobs()),
    )
    archive("ablation_slack", sweep.render())

    vd = [s.mean for s in sweep.percents["V-Dover"]]
    edf = [s.mean for s in sweep.percents["EDF"]]
    dover = [s.mean for s in sweep.percents["Dover(c=1)"]]

    # V-Dover leads EDF at every slack (floor periods stay overloaded no
    # matter how loose the deadlines — triage keeps paying a few points).
    for v, e in zip(vd, edf):
        assert v > e - 0.5
    # The *supplement* advantage over Dover(c=1) is a zero-laxity
    # phenomenon: dramatic at slack=1, mostly gone once jobs carry real
    # laxity (their zero-laxity interrupts fire late or never).
    gap_tight = vd[0] - dover[0]
    gap_loose = vd[-1] - dover[-1]
    assert gap_tight > 5.0
    assert gap_loose < gap_tight / 2.0
    # Value captured grows with slack for every policy (endpoint check).
    for name in sweep.percents:
        series = [s.mean for s in sweep.percents[name]]
        assert series[-1] > series[0]

    benchmark.pedantic(
        lambda: run_slack_sweep(slacks=(2.0,), n_runs=3, expected_jobs=150.0, workers=1),
        rounds=1,
        iterations=1,
    )
