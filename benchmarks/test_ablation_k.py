"""E13 — ablation: robustness to a misestimated importance-ratio bound.

V-Dover needs ``k`` to set its β, but an operator never knows the true
bid-density spread exactly.  The sweep runs V-Dover believing
k ∈ {1.5, 3, 7, 14, 49} against a true-k=7 workload.  Expected (and
asserted) shape: average performance is *flat* — within ~1.5 points across
a 32× misestimation range, with a slight preference for over-believing
(larger β is the safer error, consistent with E7/E9's finding that the
worst-case-optimal β errs low).
"""

from __future__ import annotations

import pytest

from conftest import expected_jobs
from repro.experiments import run_k_misestimation_sweep
from repro.experiments.runner import default_mc_runs


def test_k_misestimation(archive, benchmark):
    sweep = run_k_misestimation_sweep(
        believed_ks=(1.5, 3.0, 7.0, 14.0, 49.0),
        true_k=7.0,
        lam=8.0,
        n_runs=default_mc_runs(30),
        expected_jobs=min(500.0, expected_jobs()),
    )
    archive("ablation_k_misestimation", sweep.render())

    means = [s.mean for s in sweep.percents["V-Dover"]]
    correct = means[2]  # believed k == true k
    assert max(means) - min(means) < 3.0, "k misestimation should be benign"
    for m in means:
        assert m >= correct - 2.0, "correct k should not be badly beaten"

    benchmark.pedantic(
        lambda: run_k_misestimation_sweep(
            believed_ks=(7.0,), n_runs=3, expected_jobs=150.0, workers=1
        ),
        rounds=1,
        iterations=1,
    )
