"""E1 — reproduce the paper's Table I.

Prints the same rows the paper reports (% of generated value captured per
λ, Dover at four ĉ settings vs V-Dover, relative gain against the best
Dover) and asserts the reproduction's shape claims:

* V-Dover's mean is at or above the best Dover's in every row;
* the paired gain is significantly positive in every row;
* the gain peaks at moderate load and shrinks toward both extremes
  (the paper's λ ∈ [5, 8] observation, asserted loosely as
  interior-max >= edge gains).

Absolute numbers depend on the Monte-Carlo scale (paper: 800 runs x 2000
jobs; default here: REPRO_MC_RUNS x REPRO_JOBS, see conftest).
"""

from __future__ import annotations

import pytest

from conftest import expected_jobs
from repro.experiments import Table1Config, run_table1
from repro.experiments.runner import default_mc_runs


@pytest.fixture(scope="module")
def table1():
    config = Table1Config(
        n_runs=default_mc_runs(40),
        expected_jobs=expected_jobs(),
        seed=2011,
    )
    return run_table1(config)


def test_table1_reproduction(table1, archive, benchmark):
    archive("table1", table1.render())

    for row in table1.rows:
        assert row.vdover_percent.mean >= row.best_dover_percent.mean, (
            f"lambda={row.lam}: V-Dover below best Dover"
        )
        assert row.gain_percent.mean - row.gain_percent.ci_half_width > 0.0, (
            f"lambda={row.lam}: gain not significantly positive"
        )

    gains = {row.lam: row.gain_percent.mean for row in table1.rows}
    interior_max = max(gains[lam] for lam in (5.0, 6.0, 7.0, 8.0))
    assert interior_max >= gains[12.0], "gain should shrink at heavy load"

    # Timing probe: one full replication at the configured scale.
    from numpy.random import default_rng

    from repro.experiments.runner import PaperInstanceFactory
    from repro.sim import simulate
    from repro.workload import PoissonWorkload

    lam = 6.0
    horizon = expected_jobs() / lam
    factory = PaperInstanceFactory(
        workload=PoissonWorkload(lam=lam, horizon=horizon), sojourn=horizon / 4
    )

    def one_replication():
        jobs, capacity = factory.make(default_rng(0))
        spec = table1.config.specs()[-1]  # V-Dover
        return simulate(jobs, capacity, spec.build()).value

    benchmark(one_replication)
