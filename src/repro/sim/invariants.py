"""Runtime invariant watchdog: independent monitors over the live engine.

The trace validator (:meth:`~repro.sim.trace.ScheduleTrace.validate`)
re-checks a *finished* schedule; the watchdog checks the run *while it
happens*, one observation after every dispatched event.  That catches
violations the post-hoc validator can mask (e.g. a transiently negative
remaining workload that later self-corrects) and localizes a failure to
the first event that broke the property.

Monitors are strictly **observation-only**: they read the engine through
its public read-only accessors and never mutate schedulers, jobs, the
event queue or the trace.  Capacity queries are safe too — the stochastic
models materialize their path lazily but order-independently, so a
watchdog peeking at ``capacity.value(t)`` cannot perturb the run (the
determinism-audit test pins this down byte-for-byte).

Shipped monitors
----------------
================================  ==============================================
:class:`MonotoneTimeMonitor`      event timestamps never decrease
:class:`DeadlineMonitor`          no run segment extends past its job's deadline
:class:`WorkConservationMonitor`  per-segment work equals the true capacity
                                  integral (no job runs faster than ``c(t)``)
:class:`ValueAccountingMonitor`   accrued value is exactly the sum of completed
                                  jobs' values, and only grows
:class:`CapacityBandMonitor`      the *true* capacity stays inside its declared
                                  band ``[c̲, c̄]`` at every event instant
:class:`AdmissibilityMonitor`     every released job is individually admissible
                                  (V-Dover's Definition 4 precondition) —
                                  **opt-in**, because adversary instances are
                                  inadmissible on purpose
================================  ==============================================

In default mode violations are *counted* (``watchdog.violations``,
``watchdog.counts``) and the run proceeds; in ``paranoid`` mode the first
violation raises :class:`~repro.errors.InvariantViolationError`.

Monitors work on both engines: on the multiprocessor engine they read the
per-processor trace/capacity lists (``engine.proc_traces`` /
``engine.capacities``); on the single-processor engine (or any test
double exposing only ``trace`` / ``capacity``) they fall back to the
one-processor view.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import InvariantViolationError
from repro.faults.base import unwrap_faults
from repro.sim.events import Event, EventKind

__all__ = [
    "InvariantViolation",
    "InvariantMonitor",
    "MonotoneTimeMonitor",
    "DeadlineMonitor",
    "WorkConservationMonitor",
    "ValueAccountingMonitor",
    "CapacityBandMonitor",
    "AdmissibilityMonitor",
    "InvariantWatchdog",
    "default_monitors",
]

_REL_TOL = 1e-6


def _engine_traces(engine) -> list:
    """Per-processor traces: ``proc_traces`` when present, else ``[trace]``."""
    traces = getattr(engine, "proc_traces", None)
    return [engine.trace] if traces is None else list(traces)


def _engine_capacities(engine) -> list:
    """Per-processor capacities: ``capacities`` when present, else
    ``[capacity]``."""
    caps = getattr(engine, "capacities", None)
    return [engine.capacity] if caps is None else list(caps)


@dataclass(frozen=True)
class InvariantViolation:
    """One observed breach of a runtime invariant."""

    monitor: str
    time: float
    message: str
    jid: Optional[int] = None

    def __str__(self) -> str:
        where = f" (job {self.jid})" if self.jid is not None else ""
        return f"[{self.monitor}] t={self.time:g}{where}: {self.message}"


class InvariantMonitor:
    """Base class: three observation hooks, all optional.

    ``start(engine)`` fires once per (re)start — including after a
    snapshot restore; ``after_event(engine, event)`` fires after every
    dispatched event's effects are applied; ``after_run(engine, result)``
    fires once when the run reaches its horizon.  Each hook returns a list
    of violations (empty when the invariant holds).
    """

    #: short name used in violation records and the watchdog's counters
    name: str = "monitor"

    def start(self, engine) -> List[InvariantViolation]:
        return []

    def after_event(self, engine, event: Event) -> List[InvariantViolation]:
        return []

    def after_run(self, engine, result) -> List[InvariantViolation]:
        return []


class MonotoneTimeMonitor(InvariantMonitor):
    """Dispatched event timestamps must never decrease."""

    name = "monotone-time"

    def start(self, engine) -> List[InvariantViolation]:
        self._last = engine.now
        return []

    def after_event(self, engine, event: Event) -> List[InvariantViolation]:
        if event.time < self._last - 1e-9:
            bad = [
                InvariantViolation(
                    self.name,
                    event.time,
                    f"event at t={event.time:g} after t={self._last:g}",
                )
            ]
        else:
            bad = []
        self._last = max(self._last, event.time)
        return bad


class DeadlineMonitor(InvariantMonitor):
    """No recorded run segment may extend past its job's deadline.

    Re-checks from one segment before the last seen index because the
    trace *merges* contiguous same-job segments in place — the most recent
    entry can still grow.
    """

    name = "deadline"

    def start(self, engine) -> List[InvariantViolation]:
        self._seen: Dict[int, int] = {}
        return []

    def _check(self, engine) -> List[InvariantViolation]:
        bad: List[InvariantViolation] = []
        jobs = engine.jobs_by_id
        for proc, trace in enumerate(_engine_traces(engine)):
            segments = trace.segments
            seen = self._seen.get(proc, 0)
            for i in range(max(0, seen - 1), len(segments)):
                seg = segments[i]
                job = jobs.get(seg.jid)
                if job is None:
                    bad.append(
                        InvariantViolation(
                            self.name, seg.end, "segment for unknown job", seg.jid
                        )
                    )
                    continue
                if seg.end > job.deadline + _REL_TOL * max(
                    1.0, abs(job.deadline)
                ):
                    bad.append(
                        InvariantViolation(
                            self.name,
                            seg.end,
                            f"ran until {seg.end:g} past deadline "
                            f"{job.deadline:g}",
                            seg.jid,
                        )
                    )
                if seg.start < job.release - _REL_TOL * max(
                    1.0, abs(job.release)
                ):
                    bad.append(
                        InvariantViolation(
                            self.name,
                            seg.start,
                            f"ran at {seg.start:g} before release "
                            f"{job.release:g}",
                            seg.jid,
                        )
                    )
            self._seen[proc] = len(segments)
        return bad

    def after_event(self, engine, event: Event) -> List[InvariantViolation]:
        return self._check(engine)

    def after_run(self, engine, result) -> List[InvariantViolation]:
        self._seen = {}  # wind-down closed the final segment: re-check all
        return self._check(engine)


class WorkConservationMonitor(InvariantMonitor):
    """Per-segment work must equal the *true* capacity integral.

    Uses :func:`~repro.faults.base.unwrap_faults` so sensing faults do not
    fool the monitor — physics is judged against the pristine model.
    """

    name = "work-conservation"

    def start(self, engine) -> List[InvariantViolation]:
        self._seen: Dict[int, int] = {}
        return []

    def _check(self, engine) -> List[InvariantViolation]:
        bad: List[InvariantViolation] = []
        capacities = _engine_capacities(engine)
        for proc, trace in enumerate(_engine_traces(engine)):
            segments = trace.segments
            capacity = unwrap_faults(capacities[proc])
            seen = self._seen.get(proc, 0)
            for i in range(max(0, seen - 1), len(segments)):
                seg = segments[i]
                expected = capacity.integrate(seg.start, seg.end)
                if abs(expected - seg.work) > _REL_TOL * max(
                    1.0, abs(expected)
                ):
                    bad.append(
                        InvariantViolation(
                            self.name,
                            seg.end,
                            f"segment [{seg.start:g}, {seg.end:g}] recorded "
                            f"{seg.work:g} work, capacity integral "
                            f"{expected:g}",
                            seg.jid,
                        )
                    )
            self._seen[proc] = len(segments)
        return bad

    def after_event(self, engine, event: Event) -> List[InvariantViolation]:
        return self._check(engine)

    def after_run(self, engine, result) -> List[InvariantViolation]:
        self._seen = {}
        return self._check(engine)


class ValueAccountingMonitor(InvariantMonitor):
    """Accrued value must equal the sum of completed jobs' values and be
    non-decreasing over time."""

    name = "value-accounting"

    def _check(self, engine) -> List[InvariantViolation]:
        bad: List[InvariantViolation] = []
        trace = engine.trace
        jobs = engine.jobs_by_id
        expected = sum(
            jobs[jid].value
            for jid, st in trace.outcomes.items()
            if st.name == "COMPLETED" and jid in jobs
        )
        accrued = trace.value_points[-1][1] if trace.value_points else 0.0
        if abs(accrued - expected) > 1e-9 * max(1.0, abs(expected)):
            bad.append(
                InvariantViolation(
                    self.name,
                    engine.now,
                    f"accrued value {accrued:g} != sum of completed values "
                    f"{expected:g}",
                )
            )
        prev = 0.0
        for t, cum in trace.value_points:
            if cum < prev - 1e-12:
                bad.append(
                    InvariantViolation(
                        self.name, t, f"value decreased: {cum:g} < {prev:g}"
                    )
                )
            prev = cum
        return bad

    def after_event(self, engine, event: Event) -> List[InvariantViolation]:
        if event.kind in (EventKind.COMPLETION, EventKind.DEADLINE):
            return self._check(engine)
        return []

    def after_run(self, engine, result) -> List[InvariantViolation]:
        return self._check(engine)


class CapacityBandMonitor(InvariantMonitor):
    """The *true* capacity must stay inside its declared band.

    Sensing faults may mis-declare the band on purpose; the monitor
    unwraps them and holds the pristine model to its own contract
    ``c̲ ≤ c(t) ≤ c̄``, sampled at every event instant.
    """

    name = "capacity-band"

    def _check_at(self, engine, t: float) -> List[InvariantViolation]:
        bad: List[InvariantViolation] = []
        for proc, wrapped in enumerate(_engine_capacities(engine)):
            capacity = unwrap_faults(wrapped)
            value = capacity.value(t)
            lo, hi = capacity.lower, capacity.upper
            tol = _REL_TOL * max(1.0, abs(hi))
            if not math.isfinite(value) or value < lo - tol or value > hi + tol:
                bad.append(
                    InvariantViolation(
                        self.name,
                        t,
                        f"capacity {value!r} on processor {proc} outside "
                        f"declared band [{lo:g}, {hi:g}]",
                    )
                )
        return bad

    def start(self, engine) -> List[InvariantViolation]:
        return self._check_at(engine, engine.now)

    def after_event(self, engine, event: Event) -> List[InvariantViolation]:
        return self._check_at(engine, event.time)


class AdmissibilityMonitor(InvariantMonitor):
    """Every released job must be individually admissible (Definition 4):
    ``workload ≤ c̲ · (deadline − release)``.

    V-Dover's competitive guarantee is *conditioned* on this property; the
    monitor flags instances that void the guarantee.  It is excluded from
    :func:`default_monitors` because the adversary experiments violate it
    deliberately (that is the whole point of Theorem 3(3)).
    """

    name = "admissibility"

    def after_event(self, engine, event: Event) -> List[InvariantViolation]:
        if event.kind is not EventKind.RELEASE:
            return []
        job = event.payload
        # Multiprocessor reading of Definition 4: a job is admissible when
        # *some* processor can guarantee it alone, i.e. against the best
        # single-machine floor c* = max_p c̲_p (matches Global-V-Dover).
        lower = max(
            unwrap_faults(c).lower for c in _engine_capacities(engine)
        )
        if not job.is_individually_admissible(lower):
            return [
                InvariantViolation(
                    self.name,
                    event.time,
                    f"job not individually admissible: workload "
                    f"{job.workload:g} > {lower:g} * "
                    f"({job.deadline:g} - {job.release:g})",
                    job.jid,
                )
            ]
        return []


def default_monitors(*, admissibility: bool = False) -> List[InvariantMonitor]:
    """The standard battery.  ``admissibility=True`` adds the (opt-in)
    Definition-4 precondition check."""
    monitors: List[InvariantMonitor] = [
        MonotoneTimeMonitor(),
        DeadlineMonitor(),
        WorkConservationMonitor(),
        ValueAccountingMonitor(),
        CapacityBandMonitor(),
    ]
    if admissibility:
        monitors.append(AdmissibilityMonitor())
    return monitors


class InvariantWatchdog:
    """Drives a battery of monitors from the engine's observation hooks.

    Parameters
    ----------
    monitors:
        The monitors to run; defaults to :func:`default_monitors`.
    paranoid:
        When true, the first violation raises
        :class:`~repro.errors.InvariantViolationError`; otherwise
        violations accumulate in :attr:`violations` / :attr:`counts` and
        the run continues.
    """

    def __init__(
        self,
        monitors: Optional[Sequence[InvariantMonitor]] = None,
        *,
        paranoid: bool = False,
    ) -> None:
        self._monitors = (
            list(monitors) if monitors is not None else default_monitors()
        )
        self._paranoid = bool(paranoid)
        self.violations: List[InvariantViolation] = []
        self.counts: Dict[str, int] = {}

    @property
    def monitors(self) -> List[InvariantMonitor]:
        return list(self._monitors)

    @property
    def total_violations(self) -> int:
        return len(self.violations)

    def _report(self, found: List[InvariantViolation]) -> None:
        for violation in found:
            self.violations.append(violation)
            self.counts[violation.monitor] = (
                self.counts.get(violation.monitor, 0) + 1
            )
            if self._paranoid:
                raise InvariantViolationError(str(violation))

    # -- engine hooks --------------------------------------------------
    def start(self, engine) -> None:
        for monitor in self._monitors:
            self._report(monitor.start(engine))

    def after_event(self, engine, event: Event) -> None:
        for monitor in self._monitors:
            self._report(monitor.after_event(engine, event))

    def after_run(self, engine, result) -> None:
        for monitor in self._monitors:
            self._report(monitor.after_run(engine, result))

    def summary(self) -> Dict[str, int]:
        """Violation counts by monitor (empty dict == clean run)."""
        return dict(self.counts)
