"""Structured trace events and the ring-buffered trace sink.

The trace layer records *what happened and why* during a run: scheduler
decisions with reasons (admit / evict / supplement-revive / deadline-miss),
kernel transitions (releases, completions, preemptions), fault injections
and recovery/replay phases.  Events live in a bounded ring buffer (oldest
events are dropped once the ring fills, with a drop counter) and can be
exported to JSON Lines for offline analysis with ``repro-sched obs
{report,tail,diff}``.

Determinism contract (pinned by ``tests/obs/test_trace_determinism.py``):

* every event carries a ``replay`` flag.  **Replay events** describe the
  simulated world (releases, decisions, completions, injected faults) and
  are a pure function of the instance + scheduler — two same-seed runs emit
  identical replay streams, and a crash-resumed run re-emits the replayed
  window identically.  **Lifecycle events** (``replay=False``) describe the
  *process* history — crashes survived, snapshot restores — and naturally
  differ between a crashed and an uncrashed run.
* on a snapshot restore the kernel calls :meth:`TraceSink.truncate_replay`
  to drop the current run's replay events at or past the snapshot's
  dispatch index; journal-verified replay then regenerates them
  bit-identically, so ``export_jsonl(..., replay_only=True)`` produces
  byte-identical files with or without a mid-run crash (provided the ring
  did not overflow).

Events are grouped into *runs* (one engine bootstrap each, see
:meth:`TraceSink.begin_run`) so a single sink can absorb several
simulations — e.g. the paired V-Dover/Dover runs of one Figure-1 panel —
without a restore in one run truncating another run's events.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import ObservabilityError

__all__ = ["TraceEvent", "TraceSink", "TRACE_SCHEMA"]

#: Version tag written into exported JSONL headers.
TRACE_SCHEMA = 1


class TraceEvent:
    """One structured occurrence (slots: cheap to allocate in bulk).

    Attributes
    ----------
    kind:
        Dotted event type, e.g. ``"job.release"``, ``"decision"``,
        ``"fault.kill"``, ``"recovery.restore"``.
    t:
        Simulation time of the event (never wall-clock, so traces are
        reproducible).
    run:
        Run epoch within the sink (0-based; bumped by
        :meth:`TraceSink.begin_run`).
    dispatch:
        Kernel dispatch index during which the event was emitted (``-1``
        outside the event loop: bootstrap / wind-down).
    replay:
        True for simulation-deterministic events (see module docstring).
    data:
        Event-specific payload (JSON-serialisable, jid-keyed).
    """

    __slots__ = ("kind", "t", "run", "dispatch", "replay", "data")

    def __init__(
        self,
        kind: str,
        t: float,
        run: int,
        dispatch: int,
        replay: bool,
        data: Optional[Dict[str, Any]],
    ) -> None:
        self.kind = kind
        self.t = t
        self.run = run
        self.dispatch = dispatch
        self.replay = replay
        self.data = data

    def to_dict(self) -> Dict[str, Any]:
        """Stable JSON-ready representation (sorted at dump time)."""
        doc: Dict[str, Any] = {
            "kind": self.kind,
            "t": self.t,
            "run": self.run,
            "d": self.dispatch,
        }
        if not self.replay:
            doc["life"] = True
        if self.data:
            doc["data"] = self.data
        return doc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceEvent({self.kind!r}, t={self.t:g}, run={self.run}, "
            f"d={self.dispatch}, data={self.data!r})"
        )


class TraceSink:
    """Bounded, deterministic event buffer with JSONL export.

    Parameters
    ----------
    ring:
        Maximum events retained.  When full, the oldest events are dropped
        (and counted in :attr:`dropped`).  Byte-identical export across
        crash-resume is guaranteed only while the ring has not overflowed.
    """

    def __init__(self, ring: int = 65536) -> None:
        if ring < 1:
            raise ObservabilityError(f"ring size must be >= 1, got {ring!r}")
        self.ring = int(ring)
        self._events: deque[TraceEvent] = deque(maxlen=self.ring)
        #: events evicted by the ring bound since the last :meth:`clear`
        self.dropped = 0
        #: dispatch index stamped onto emitted events (kernel-maintained)
        self.current_dispatch = -1
        self._epoch = -1

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def begin_run(self) -> int:
        """Open a new run epoch (one engine bootstrap); returns it."""
        self._epoch += 1
        self.current_dispatch = -1
        return self._epoch

    @property
    def run_epoch(self) -> int:
        """Current run epoch (-1 before the first :meth:`begin_run`)."""
        return self._epoch

    def emit(
        self,
        kind: str,
        t: float,
        data: Optional[Dict[str, Any]] = None,
        *,
        replay: bool = True,
    ) -> None:
        """Append one event (stamped with the current run + dispatch)."""
        if len(self._events) == self.ring:
            self.dropped += 1
        self._events.append(
            TraceEvent(kind, t, self._epoch, self.current_dispatch, replay, data)
        )

    def truncate_replay(self, dispatch_count: int) -> int:
        """Drop the *current run's* replay events with ``dispatch >=
        dispatch_count`` (snapshot restore: journal replay will re-emit
        them identically).  Lifecycle events and other runs' events are
        kept.  Returns the number of events removed."""
        epoch = self._epoch
        kept = [
            e
            for e in self._events
            if not (e.replay and e.run == epoch and e.dispatch >= dispatch_count)
        ]
        removed = len(self._events) - len(kept)
        if removed:
            self._events.clear()
            self._events.extend(kept)
        return removed

    def clear(self) -> None:
        """Empty the buffer and reset counters (run epochs keep counting)."""
        self._events.clear()
        self.dropped = 0
        self.current_dispatch = -1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def events(self, *, replay_only: bool = False) -> List[TraceEvent]:
        if replay_only:
            return [e for e in self._events if e.replay]
        return list(self._events)

    def tail(self, n: int) -> List[Dict[str, Any]]:
        """The last ``n`` events as JSON-ready dicts (diagnostics: attached
        to :class:`~repro.experiments.runner.FailedReplication`)."""
        if n <= 0:
            return []
        return [e.to_dict() for e in list(self._events)[-n:]]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_jsonl(
        self,
        path,
        *,
        replay_only: bool = False,
        metrics: Optional[Dict[str, Any]] = None,
        extra_header: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Write the buffer as JSON Lines; returns the event count written.

        Layout: one header object (``kind="trace.header"``), one object per
        event, and — when a metrics snapshot is supplied — one trailing
        ``kind="trace.metrics"`` object.  All objects are dumped with
        sorted keys and compact separators, so identical buffers produce
        byte-identical files.  ``replay_only=True`` restricts the export to
        the deterministic replay stream (and omits the drop/lifecycle
        variance), which is what the byte-identity suite compares.
        """
        events = self.events(replay_only=replay_only)
        header: Dict[str, Any] = {
            "kind": "trace.header",
            "schema": TRACE_SCHEMA,
            "events": len(events),
            "runs": self._epoch + 1,
            "replay_only": bool(replay_only),
        }
        if not replay_only:
            header["dropped"] = self.dropped
            header["ring"] = self.ring
        if extra_header:
            header.update(extra_header)
        with open(path, "w") as fh:
            fh.write(_dumps(header) + "\n")
            for event in events:
                fh.write(_dumps(event.to_dict()) + "\n")
            if metrics is not None:
                fh.write(_dumps({"kind": "trace.metrics", "metrics": metrics}) + "\n")
        return len(events)


def _dumps(doc: Dict[str, Any]) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def load_trace(path) -> Dict[str, Any]:
    """Read a trace file written by :meth:`TraceSink.export_jsonl`.

    Returns ``{"header": dict, "events": [dict, ...], "metrics": dict |
    None}``.  Raises :class:`~repro.errors.ObservabilityError` on malformed
    input (missing/foreign header, undecodable line)."""
    path = str(path)
    header: Optional[Dict[str, Any]] = None
    events: List[Dict[str, Any]] = []
    metrics: Optional[Dict[str, Any]] = None
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObservabilityError(
                    f"{path}: undecodable trace line {lineno}"
                ) from exc
            if lineno == 1:
                if doc.get("kind") != "trace.header":
                    raise ObservabilityError(
                        f"{path}: not a repro trace file (missing header)"
                    )
                header = doc
                continue
            if doc.get("kind") == "trace.metrics":
                metrics = doc.get("metrics")
                continue
            events.append(doc)
    if header is None:
        raise ObservabilityError(f"{path}: empty trace file")
    return {"header": header, "events": events, "metrics": metrics}
