"""Abstract interface for time-varying processor capacity functions.

The paper models the processor available to secondary jobs as an integrable
function ``c(t)`` bounded between ``c_lower`` (the paper's ``c̲``) and
``c_upper`` (``c̄``)::

    C(c̲, c̄) = { c(t) | c(t) integrable, c̲ <= c(t) <= c̄ }

The workload that can be finished in ``[t1, t2]`` is ``∫ c(τ) dτ`` over that
interval.  Everything the simulation engine and the offline algorithms need
from a capacity model is captured by four queries:

* :meth:`CapacityFunction.value` — the instantaneous rate ``c(t)``;
* :meth:`CapacityFunction.integrate` — workload processable over an interval;
* :meth:`CapacityFunction.advance` — the inverse integral: the first instant
  by which a given amount of work completes (used to predict completions);
* :meth:`CapacityFunction.pieces` — an iterator of piecewise-constant
  segments covering an interval (used by the engine and by the time-stretch
  transformation of Section III-A).

All shipped models are piecewise-constant, which makes ``integrate`` and
``advance`` exact.  A genuinely continuous model can participate by
discretising itself in :meth:`pieces` (see :class:`repro.capacity.trace.
TraceCapacity` which does exactly this for sampled traces).
"""

from __future__ import annotations

import abc
import math
from typing import Iterator, Tuple

from repro.errors import CapacityError

__all__ = ["CapacityFunction", "Piece"]

#: A maximal interval of constant rate: ``(start, end, rate)``.
Piece = Tuple[float, float, float]


class CapacityFunction(abc.ABC):
    """A processor-capacity trajectory ``c(t)`` defined for all ``t >= 0``.

    Concrete subclasses must implement :meth:`value` and :meth:`pieces`;
    :meth:`integrate` and :meth:`advance` have exact default implementations
    built on :meth:`pieces` but may be overridden when a closed form is
    cheaper (e.g. :class:`repro.capacity.constant.ConstantCapacity`).

    Parameters
    ----------
    lower, upper:
        The declared bounds ``c̲`` and ``c̄`` of the capacity input set
        ``C(c̲, c̄)``.  Schedulers are only allowed to see these bounds and
        the past of the trajectory; they must never peek at future pieces.
    """

    def __init__(self, lower: float, upper: float) -> None:
        if not (0.0 < lower <= upper):
            raise CapacityError(
                f"capacity bounds must satisfy 0 < lower <= upper, "
                f"got lower={lower!r}, upper={upper!r}"
            )
        self._lower = float(lower)
        self._upper = float(upper)

    # ------------------------------------------------------------------
    # Declared bounds
    # ------------------------------------------------------------------
    @property
    def lower(self) -> float:
        """The conservative bound ``c̲`` (guaranteed minimum rate)."""
        return self._lower

    @property
    def upper(self) -> float:
        """The optimistic bound ``c̄`` (guaranteed maximum rate)."""
        return self._upper

    @property
    def delta(self) -> float:
        """The maximum-variation ratio ``δ = c̄ / c̲`` (paper, Section II-A)."""
        return self._upper / self._lower

    # ------------------------------------------------------------------
    # Abstract queries
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def value(self, t: float) -> float:
        """Return the instantaneous capacity ``c(t)``.

        The returned value must lie in ``[lower, upper]`` for all ``t >= 0``.
        """

    @abc.abstractmethod
    def pieces(self, t0: float, t1: float) -> Iterator[Piece]:
        """Yield constant-rate segments ``(start, end, rate)`` covering
        ``[t0, t1)`` in order, with ``start`` of the first piece equal to
        ``t0`` and ``end`` of the last equal to ``t1``.

        An empty interval (``t0 >= t1``) yields nothing.
        """

    # ------------------------------------------------------------------
    # Derived queries (exact for piecewise-constant models)
    # ------------------------------------------------------------------
    def integrate(self, t0: float, t1: float) -> float:
        """Return ``∫_{t0}^{t1} c(τ) dτ`` — the workload processable in
        ``[t0, t1]``.  Raises :class:`CapacityError` if ``t1 < t0``."""
        if t1 < t0:
            raise CapacityError(f"reversed interval: [{t0}, {t1}]")
        total = 0.0
        for start, end, rate in self.pieces(t0, t1):
            total += (end - start) * rate
        return total

    def advance(self, t0: float, work: float, horizon: float = math.inf) -> float:
        """Return the earliest ``t >= t0`` with ``∫_{t0}^{t} c = work``.

        This is the inverse of :meth:`integrate` in its second argument and
        is what the engine uses to predict job completions exactly.  Returns
        ``math.inf`` if the work does not complete before ``horizon``.

        Parameters
        ----------
        t0:
            Start of processing.
        work:
            Non-negative amount of workload to process.
        horizon:
            Give up (return ``inf``) past this time.  Because ``c >= lower
            > 0`` everywhere, any finite workload completes by
            ``t0 + work / lower``, so the default search window is finite
            even for ``horizon=inf``.
        """
        if work < 0.0:
            raise CapacityError(f"negative workload: {work!r}")
        if work == 0.0:
            return t0
        # c(t) >= lower > 0 guarantees completion within this window.
        limit = t0 + work / self._lower
        if horizon < limit:
            limit = horizon
        remaining = work
        for start, end, rate in self.pieces(t0, limit):
            capacity_here = (end - start) * rate
            if capacity_here >= remaining - 1e-15:
                if rate <= 0.0:  # pragma: no cover - bounds forbid this
                    raise CapacityError(f"non-positive rate {rate} at t={start}")
                # max() guards against one-ulp drift below t0.
                return max(t0, start + remaining / rate)
            remaining -= capacity_here
        if horizon is not math.inf and remaining <= 1e-12 * max(1.0, work):
            return limit
        return math.inf

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def mean(self, t0: float, t1: float) -> float:
        """Average capacity over ``[t0, t1]``."""
        if t1 <= t0:
            raise CapacityError(f"empty interval: [{t0}, {t1}]")
        return self.integrate(t0, t1) / (t1 - t0)

    def next_change(self, t: float, horizon: float) -> float:
        """Return the first discontinuity strictly after ``t`` (capped by
        ``horizon``), or ``horizon`` if the rate is constant until then.

        The default implementation scans :meth:`pieces`; subclasses with
        cheap breakpoint access may override.
        """
        for start, end, _rate in self.pieces(t, horizon):
            if end < horizon:
                return end
        return horizon

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(lower={self._lower:g}, "
            f"upper={self._upper:g})"
        )
