"""Regression tests: completion exactly at the deadline must succeed.

The paper's workload sets every relative deadline to ``workload / c̲``, so
completions coincide *exactly* with deadlines; the predicted completion
instant can land one ulp past the deadline and must not be misread as a
failure.  (Found via Lemma-1 violations — see EXPERIMENTS.md, E10.)
"""

import pytest

from repro.capacity import ConstantCapacity, TwoStateMarkovCapacity
from repro.core import EDFScheduler, VDoverScheduler
from repro.sim import Job, JobStatus, simulate
from repro.workload import PoissonWorkload


class TestExactDeadlineCompletion:
    def test_zero_laxity_job_completes(self):
        job = Job(0, 0.0, 1.0, 1.0, 1.0)
        r = simulate([job], ConstantCapacity(1.0), EDFScheduler(), validate=True)
        assert r.completed_ids == [0]

    def test_awkward_float_workloads(self):
        """Workloads engineered to round badly: p/c then *c may not return
        p exactly, yet all zero-laxity jobs must complete back-to-back."""
        rates = 0.3  # 0.3 is inexact in binary
        jobs = []
        t = 0.0
        for i in range(50):
            p = 0.1 * (i % 7 + 1) / 3.0
            jobs.append(Job(i, t, p, t + p / rates, 1.0))
            t += p / rates
        r = simulate(jobs, ConstantCapacity(rates), EDFScheduler(), validate=True)
        assert r.n_completed == 50

    def test_paper_workload_back_to_back_chain(self):
        """Zero-laxity Poisson jobs on exactly-floor capacity: any job that
        starts at its release must complete; interrupted ones must not."""
        jobs = PoissonWorkload(lam=0.5, horizon=100.0).generate(3)
        r = simulate(jobs, ConstantCapacity(1.0), EDFScheduler(), validate=True)
        # Low load: most jobs run in isolation and complete exactly at
        # their deadline.  Every completed job must be legal (validator)
        # and isolated jobs must not be spuriously failed.
        isolated = [
            j
            for j in jobs
            if all(
                other is j
                or other.deadline <= j.release
                or other.release >= j.deadline
                for other in jobs
            )
        ]
        for j in isolated:
            assert r.trace.outcomes[j.jid] is JobStatus.COMPLETED

    def test_vdover_zero_laxity_chain_on_markov_capacity(self):
        """The original reproducer: V-Dover on the paper's workload must
        never record a job that ran from release to deadline at full
        capacity as failed."""
        lam, H = 6.0, 100.0
        jobs = PoissonWorkload(lam=lam, horizon=H).generate(7)
        cap = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=H / 4, rng=57)
        r = simulate(jobs, cap, VDoverScheduler(k=7.0), validate=True)
        by_id = {j.jid: j for j in jobs}
        for seg in r.trace.segments:
            job = by_id[seg.jid]
            if (
                r.trace.outcomes.get(seg.jid) is JobStatus.FAILED
                and abs(seg.start - job.release) < 1e-12
                and abs(seg.end - job.deadline) < 1e-12
            ):
                # ran its whole window uninterrupted at c >= c̲ yet failed?
                needed = job.workload
                provided = cap.integrate(seg.start, seg.end)
                assert provided < needed - 1e-6, (
                    f"job {seg.jid} spuriously failed at its deadline"
                )
