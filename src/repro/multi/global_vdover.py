"""Global V-Dover — the extension the E12 crossover asks for.

E12 measures a crossover: migration (Global-EDF) wins while load is
moderate, value triage (partitioned V-Dover) wins under heavy overload.
This policy combines the two mechanisms in the spirit of V-Dover, with no
competitive-ratio claim (the paper's analysis is single-processor; a
multiprocessor analysis is open):

* **regular jobs** run under global EDF (top-m by deadline, free
  migration) — the underloaded-optimal core;
* each waiting regular job carries a **zero-conservative-laxity alarm**,
  computed against the best guaranteed floor any single processor offers
  (``c* = max_p c̲_p`` — the strongest promise the cluster can make to one
  job, the natural multiprocessor reading of Definition 5);
* an urgent job whose value exceeds ``β ×`` the cheapest running regular
  job's value **displaces** it (value triage at the margin — the
  multiprocessor analogue of handler D, comparing against the job it would
  actually evict rather than a Qedf chain); losers are demoted to
  **supplements**;
* supplements fill processors left idle by the regular election, latest
  deadline first, and are preempted instantly by regular demand — exactly
  the paper's delta (ii), pooled across the fleet.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SchedulingError
from repro.sim.job import Job
from repro.sim.queues import JobQueue, edf_key, latest_deadline_key
from repro.multi.scheduler import Assignment, MultiScheduler

__all__ = ["GlobalVDoverScheduler"]


class GlobalVDoverScheduler(MultiScheduler):
    """Migration-capable V-Dover-style policy (extension, no guarantee).

    Parameters
    ----------
    k:
        Importance-ratio bound, setting ``β = 1 + √k`` by default (the
    	classical threshold; see EXPERIMENTS.md E9 for why it is preferred
        over β* on average-case workloads).
    beta:
        Explicit threshold override (> 1).
    """

    name = "Global-V-Dover"

    def __init__(self, k: float, *, beta: float | None = None) -> None:
        super().__init__()
        if k < 1.0:
            raise SchedulingError(f"k must be >= 1, got {k!r}")
        self._beta = float(beta) if beta is not None else 1.0 + k**0.5
        if self._beta <= 1.0:
            raise SchedulingError(f"beta must exceed 1, got {self._beta!r}")

    @property
    def beta(self) -> float:
        return self._beta

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._regular: JobQueue[Job] = JobQueue(edf_key, name="gvd-regular")
        self._supp: JobQueue[Job] = JobQueue(latest_deadline_key, name="gvd-supp")
        self._supp_ids: set[int] = set()
        # The strongest single-job floor promise across the fleet.
        self._rate = max(
            self.ctx.bounds(p)[0] for p in range(self.ctx.n_procs)
        )

    def _arm(self, job: Job) -> None:
        fire_at = job.deadline - self.ctx.remaining(job) / self._rate
        self.ctx.set_alarm(job, fire_at, tag="zero-claxity")

    # ------------------------------------------------------------------
    def _elect(self) -> Assignment:
        """Global EDF over regulars; supplements fill the idle remainder."""
        running = list(self.ctx.running())
        m = len(running)
        # Re-pool everything currently running.
        for job in running:
            if job is None:
                continue
            pool = self._supp if job.jid in self._supp_ids else self._regular
            if job not in pool:
                pool.insert(job)

        chosen: list[Job] = []
        for _ in range(min(m, len(self._regular))):
            chosen.append(self._regular.dequeue())
        supp_chosen: list[Job] = []
        for _ in range(min(m - len(chosen), len(self._supp))):
            supp_chosen.append(self._supp.dequeue())

        chosen_ids = {j.jid for j in chosen} | {j.jid for j in supp_chosen}
        desired: list[Optional[Job]] = [None] * m
        placed: set[int] = set()
        for proc, job in enumerate(running):
            if job is not None and job.jid in chosen_ids:
                desired[proc] = job
                placed.add(job.jid)
        free = [p for p in range(m) if desired[p] is None]
        free.sort(key=lambda p: -self.ctx.capacity_now(p))
        unplaced = [j for j in chosen + supp_chosen if j.jid not in placed]
        for proc, job in zip(free, unplaced):
            desired[proc] = job

        # Displaced waiting regulars keep (or regain) their alarms.
        for proc, job in enumerate(running):
            if (
                job is not None
                and desired[proc] is not job
                and job not in [d for d in desired]
                and job.jid not in self._supp_ids
            ):
                self._arm(job)
        return desired

    # ------------------------------------------------------------------
    def on_release(self, job: Job) -> Assignment:
        self._regular.insert(job)
        self._arm(job)
        return self._elect()

    def on_job_end(self, job: Job, completed: bool) -> Assignment:
        self._regular.remove(job)
        self._supp.remove(job)
        self._supp_ids.discard(job.jid)
        return self._elect()

    def on_alarm(self, job: Job, tag: str) -> Assignment:
        if tag != "zero-claxity" or job.jid in self._supp_ids:
            return self.ctx.running()
        running = list(self.ctx.running())
        # An idle or supplement-occupied slot takes the urgent job free.
        for proc, occupant in enumerate(running):
            if occupant is None or occupant.jid in self._supp_ids:
                self._regular.remove(job)
                if occupant is not None:
                    self._supp.insert(occupant)
                desired = list(running)
                desired[proc] = job
                return desired
        # All processors run regulars: challenge the cheapest one.
        victim_proc = min(
            range(len(running)),
            key=lambda p: (running[p].value, running[p].jid),  # type: ignore[union-attr]
        )
        victim = running[victim_proc]
        assert victim is not None
        if job.value > self._beta * victim.value:
            self._regular.remove(job)
            self._regular.insert(victim)
            self._arm(victim)
            desired = list(running)
            desired[victim_proc] = job
            return desired
        # Not valuable enough: demote to supplement.
        self._regular.remove(job)
        self._supp_ids.add(job.jid)
        self._supp.insert(job)
        return running

    def on_eviction(self, job: Job) -> Assignment:
        """An execution fault evicted ``job``: requeue it into the pool it
        belongs to (the default would misfile demoted supplements back
        into the regular queue and double-arm their alarms)."""
        if job.jid in self._supp_ids:
            self._supp.insert(job)
            return self._elect()
        return self.on_release(job)

    # ------------------------------------------------------------------
    # Snapshot protocol (crash recovery)
    # ------------------------------------------------------------------
    def _policy_state(self) -> dict:
        # Sorted-jid serialisation: both queues tie-break on jid, so
        # insertion order is irrelevant on restore.  Armed alarms live in
        # the engine's event-queue snapshot; re-arming would bump version
        # tokens and orphan them.
        return {
            "regular": self._regular.live_jids(),
            "supp": self._supp.live_jids(),
            "supp_ids": sorted(self._supp_ids),
            "rate": self._rate,
        }

    def _restore_policy_state(self, state: dict, jobs_by_id) -> None:
        for jid in state["regular"]:
            self._regular.insert(jobs_by_id[jid])
        for jid in state["supp"]:
            self._supp.insert(jobs_by_id[jid])
        self._supp_ids = set(state["supp_ids"])
        self._rate = float(state["rate"])
