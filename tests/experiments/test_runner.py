"""Unit tests for the Monte-Carlo replication harness."""

import numpy as np
import pytest

from repro.core import DoverScheduler, EDFScheduler, VDoverScheduler
from repro.errors import ReproError
from repro.experiments import (
    MonteCarloRunner,
    PaperInstanceFactory,
    SchedulerSpec,
    default_mc_runs,
)
from repro.workload import PoissonWorkload


def small_factory(lam=6.0, jobs=60.0):
    horizon = jobs / lam
    return PaperInstanceFactory(
        workload=PoissonWorkload(lam=lam, horizon=horizon),
        sojourn=horizon / 4.0,
    )


SPECS = [
    SchedulerSpec("EDF", EDFScheduler, {}),
    SchedulerSpec("V-Dover", VDoverScheduler, {"k": 7.0}),
]


class TestSchedulerSpec:
    def test_build_sets_name(self):
        spec = SchedulerSpec("mine", DoverScheduler, {"k": 7.0, "c_hat": 2.0})
        sched = spec.build()
        assert sched.name == "mine"
        assert sched.c_hat == 2.0

    def test_duplicate_names_rejected(self):
        with pytest.raises(ReproError):
            MonteCarloRunner(small_factory(), [SPECS[0], SPECS[0]])


class TestFactory:
    def test_produces_jobs_and_capacity(self):
        rng = np.random.default_rng(0)
        jobs, capacity = small_factory().make(rng)
        assert jobs
        assert capacity.lower == 1.0 and capacity.upper == 35.0

    def test_same_rng_state_same_instance(self):
        a = small_factory().make(np.random.default_rng(42))
        b = small_factory().make(np.random.default_rng(42))
        assert a[0] == b[0]


class TestRunner:
    def test_outcomes_are_paired(self):
        runner = MonteCarloRunner(small_factory(), SPECS)
        outcomes = runner.run(3, seed=0, workers=1)
        assert len(outcomes) == 3
        for o in outcomes:
            assert set(o.values) == {"EDF", "V-Dover"}
            assert o.generated_value > 0
            assert 0.0 <= o.normalized("V-Dover") <= 1.0

    def test_seeded_reproducibility(self):
        runner = MonteCarloRunner(small_factory(), SPECS)
        a = runner.run(4, seed=5, workers=1)
        b = runner.run(4, seed=5, workers=1)
        assert [o.values for o in a] == [o.values for o in b]

    def test_parallel_matches_serial(self):
        runner = MonteCarloRunner(small_factory(), SPECS)
        serial = runner.run(8, seed=9, workers=1)
        parallel = runner.run(8, seed=9, workers=2)
        assert [o.values for o in serial] == [o.values for o in parallel]

    def test_run_count_validated(self):
        runner = MonteCarloRunner(small_factory(), SPECS)
        with pytest.raises(ReproError):
            runner.run(0)


class TestDefaultRuns:
    def test_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_MC_RUNS", raising=False)
        assert default_mc_runs(12) == 12

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MC_RUNS", "77")
        assert default_mc_runs(12) == 77

    def test_env_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_MC_RUNS", "0")
        with pytest.raises(ReproError):
            default_mc_runs(12)

    def test_non_numeric_env_wrapped(self, monkeypatch):
        """Satellite: a typo'd REPRO_MC_RUNS surfaces as the project's own
        error type (with a hint), not a bare ValueError."""
        monkeypatch.setenv("REPRO_MC_RUNS", "lots")
        with pytest.raises(ReproError, match="REPRO_MC_RUNS must be an integer"):
            default_mc_runs(12)
