"""EventQueue compaction: lazy-deletion hygiene keeps the heap bounded.

Satellite contract: armed-and-abandoned alarms (V-Dover re-arms a laxity
alarm on every enqueue) must not grow the heap without bound over a long
run.  The unit half checks :meth:`EventQueue.compact` semantics directly;
the regression half watches the live engine queue through an
observation-only probe monitor and asserts the high-water mark stays
O(pending jobs), not O(alarms ever armed).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.capacity import TwoStateMarkovCapacity
from repro.core import VDoverScheduler
from repro.errors import SimulationError
from repro.sim import InvariantWatchdog, simulate
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.invariants import InvariantMonitor
from repro.workload.poisson import PoissonWorkload


def _event(t: float, kind=EventKind.TIMER, payload=None, version=0) -> Event:
    return Event(t, kind, payload, version)


class TestCompactUnit:
    def test_compact_without_predicate_is_noop(self):
        q = EventQueue()
        q.push(_event(1.0))
        assert q.note_stale(5) == 0
        assert q.compact() == 0
        assert len(q) == 1

    def test_compact_drops_only_stale_entries(self):
        q = EventQueue(stale=lambda e: e.payload == "dead")
        for i in range(6):
            q.push(_event(float(i), payload="dead" if i % 2 else "live"))
        removed = q.compact()
        assert removed == 3
        assert len(q) == 3
        assert [q.pop().time for _ in range(3)] == [0.0, 2.0, 4.0]

    def test_compact_preserves_pop_order(self):
        rng = np.random.default_rng(17)
        q = EventQueue(stale=lambda e: e.payload == "dead")
        times = rng.uniform(0.0, 50.0, size=200)
        tags = ["dead" if rng.random() < 0.5 else "live" for _ in times]
        reference = EventQueue()
        for t, tag in zip(times, tags):
            q.push(_event(float(t), payload=tag))
            if tag == "live":
                reference.push(_event(float(t), payload=tag))
        q.compact()
        got = [q.pop().time for _ in range(len(q))]
        want = [reference.pop().time for _ in range(len(reference))]
        assert got == want

    def test_note_stale_auto_compacts_past_half(self):
        q = EventQueue(stale=lambda e: e.payload == "dead")
        for i in range(10):
            q.push(_event(float(i), payload="dead" if i < 6 else "live"))
        # Hint below the threshold: nothing happens yet.
        assert q.note_stale(4) == 0
        assert len(q) == 10 and q.stale_hint == 4
        # Crossing half the heap triggers the sweep.
        assert q.note_stale(2) == 6
        assert len(q) == 4 and q.stale_hint == 0

    def test_pop_keeps_hint_bounded_by_heap(self):
        q = EventQueue(stale=lambda e: False)
        q.push(_event(0.0))
        q.push(_event(1.0))
        q._stale_hint = 99  # simulate an overcounted hint
        q.pop()
        assert q.stale_hint <= len(q)

    def test_dump_load_preserves_order_and_counters(self):
        q = EventQueue(stale=lambda e: False)
        for t in (3.0, 1.0, 2.0):
            q.push(_event(t))
        q.note_stale(1)
        clone = EventQueue(stale=lambda e: False)
        clone.load(q.dump(), q.next_seq, q.stale_hint)
        assert clone.stale_hint == q.stale_hint
        assert clone.next_seq == q.next_seq
        assert [clone.pop().time for _ in range(len(clone))] == [1.0, 2.0, 3.0]

    def test_nan_time_rejected(self):
        with pytest.raises(SimulationError, match="NaN"):
            EventQueue().push(_event(float("nan")))


# ----------------------------------------------------------------------
# Regression: the live engine heap stays bounded under alarm churn
# ----------------------------------------------------------------------
class _QueueSizeProbe(InvariantMonitor):
    """Observation-only probe riding the watchdog hook."""

    name = "queue-size-probe"

    def __init__(self) -> None:
        self.high_water = 0

    def after_event(self, engine, event):
        self.high_water = max(self.high_water, engine.event_queue_size)
        return []


def test_engine_heap_bounded_under_alarm_churn():
    """V-Dover re-arms its laxity alarm on every enqueue/preemption; with
    lazy deletion alone the heap would retain every abandoned alarm.  The
    high-water mark must stay proportional to the job count, not to the
    total number of alarms armed over the run."""
    horizon = 40.0
    workload = PoissonWorkload(
        lam=8.0, horizon=horizon, density_range=(1.0, 7.0), c_lower=1.0
    )
    jobs = workload.generate(np.random.default_rng(12))
    capacity = TwoStateMarkovCapacity(
        1.0, 35.0, mean_sojourn=2.0, rng=np.random.default_rng(13)
    )
    probe = _QueueSizeProbe()
    simulate(
        jobs,
        capacity,
        VDoverScheduler(k=7.0),
        watchdog=InvariantWatchdog([probe]),
    )
    assert probe.high_water > 0
    # Release + deadline + completion + a live alarm per pending job, plus
    # auto-compaction's 2x lazy-deletion slack: generous, but orders of
    # magnitude below the unbounded-churn regime this guards against.
    assert probe.high_water <= 8 * len(jobs) + 32, (
        f"event heap grew to {probe.high_water} for {len(jobs)} jobs"
    )


@pytest.mark.parametrize("policy", ["global-vdover", "partitioned"])
def test_multi_engine_heap_bounded_under_alarm_churn(policy):
    """The multiprocessor engine runs the same kernel loop, so it gets the
    same lazy-deletion hygiene: cancelled/re-armed alarms call
    ``note_stale`` and the heap auto-compacts.  (The pre-kernel multi
    engine never compacted — this is the regression guard.)"""
    from repro.cloud.cluster import LeastWorkDispatcher
    from repro.multi import (
        GlobalVDoverScheduler,
        PartitionedScheduler,
        simulate_multi,
    )

    horizon = 40.0
    workload = PoissonWorkload(
        lam=12.0, horizon=horizon, density_range=(1.0, 7.0), c_lower=1.0
    )
    jobs = workload.generate(np.random.default_rng(12))
    capacities = [
        TwoStateMarkovCapacity(
            1.0, 35.0, mean_sojourn=2.0, rng=np.random.default_rng(13 + p)
        )
        for p in range(3)
    ]
    make = {
        "global-vdover": lambda: GlobalVDoverScheduler(k=7.0),
        "partitioned": lambda: PartitionedScheduler(
            LeastWorkDispatcher(), lambda: VDoverScheduler(k=7.0)
        ),
    }[policy]
    probe = _QueueSizeProbe()
    simulate_multi(
        jobs, capacities, make(), watchdog=InvariantWatchdog([probe])
    )
    assert probe.high_water > 0
    assert probe.high_water <= 8 * len(jobs) + 32, (
        f"multi event heap grew to {probe.high_water} for {len(jobs)} jobs"
    )
