"""E16 recovery sweep + Monte-Carlo crash-resume integration tests.

The ``recovery_smoke`` marker tags the tiny end-to-end crash → snapshot →
journal-replay → bit-identical check that CI runs as its own step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EDFScheduler
from repro.errors import ExperimentError
from repro.experiments.checkpoint import _outcome_from_dict, _outcome_to_dict
from repro.experiments.recovery_sweep import (
    RecoveryInstanceFactory,
    crash_resume_equivalence,
    default_recovery_rates,
    run_recovery_sweep,
)
from repro.experiments.runner import (
    MonteCarloRunner,
    PaperInstanceFactory,
    ReplicationOutcome,
    SchedulerSpec,
)
from repro.faults import ExecutionFaultSpec, JobKillFault, RevocationBurst
from repro.workload.poisson import PoissonWorkload


def _tiny_factory(expected_jobs: float = 24.0) -> PaperInstanceFactory:
    lam = 6.0
    horizon = expected_jobs / lam
    return PaperInstanceFactory(
        workload=PoissonWorkload(
            lam=lam, horizon=horizon, density_range=(1.0, 7.0), c_lower=1.0
        ),
        low=1.0,
        high=35.0,
        sojourn=horizon / 4.0,
    )


class TestDefaults:
    def test_rate_grids(self):
        assert default_recovery_rates("kill")[0] == 0.0
        assert default_recovery_rates("revocation")[0] == 0.0

    def test_unknown_kind(self):
        with pytest.raises(ExperimentError, match="unknown execution-fault"):
            default_recovery_rates("meteor")


class TestRecoveryInstanceFactory:
    def test_pairing_across_rates(self):
        """Fixed replication seed ⇒ identical (jobs, capacity draw) for
        every fault rate — the sweep is a paired comparison."""
        base = _tiny_factory()
        lo = RecoveryInstanceFactory(
            base, ExecutionFaultSpec(kind="kill", severity=0.05)
        )
        hi = RecoveryInstanceFactory(
            base, ExecutionFaultSpec(kind="kill", severity=0.5)
        )
        jobs_lo, _, faults_lo = lo.make_with_faults(np.random.default_rng(7))
        jobs_hi, _, faults_hi = hi.make_with_faults(np.random.default_rng(7))
        assert jobs_lo == jobs_hi
        (f_lo,), (f_hi,) = faults_lo, faults_hi
        assert isinstance(f_lo, JobKillFault) and isinstance(f_hi, JobKillFault)
        assert f_lo.seed == f_hi.seed  # same post-instance fault seed
        assert f_lo.rate == 0.05 and f_hi.rate == 0.5

    def test_zero_severity_yields_no_faults(self):
        factory = RecoveryInstanceFactory(
            _tiny_factory(), ExecutionFaultSpec(kind="kill", severity=0.0)
        )
        _jobs, _capacity, faults = factory.make_with_faults(
            np.random.default_rng(1)
        )
        assert faults == ()

    def test_revocation_transforms_capacity(self):
        factory = RecoveryInstanceFactory(
            _tiny_factory(),
            ExecutionFaultSpec(
                kind="revocation", severity=2.0, options={"mean_down": 1.0}
            ),
        )
        jobs, capacity, faults = factory.make_with_faults(
            np.random.default_rng(3)
        )
        (fault,) = faults
        assert isinstance(fault, RevocationBurst)
        horizon = max(j.deadline for j in jobs) + 1.0
        for start, end in fault.windows(horizon):
            mid = 0.5 * (start + min(end, horizon))
            assert capacity.value(mid) == capacity.lower


class TestSweep:
    def test_kill_sweep_tiny(self):
        result = run_recovery_sweep(
            "kill",
            rates=(0.0, 0.5),
            n_runs=3,
            seed=2,
            workers=1,
            expected_jobs=24.0,
        )
        assert result.swept_values == [0.0, 0.5]
        assert set(result.percents) == {"EDF", "Dover(c=1)", "V-Dover"}
        for summaries in result.percents.values():
            assert len(summaries) == 2
            assert all(0.0 <= s.mean <= 100.0 for s in summaries)
        assert result.failures == []

    def test_unknown_kind_rejected_even_with_rates(self):
        with pytest.raises(ExperimentError):
            run_recovery_sweep("meteor", rates=(0.0,), n_runs=1)


class TestRunnerCrashResume:
    def test_outcome_survives_engine_crash(self):
        """A crash plan armed on every run: the worker resumes from the
        snapshot in-process and reports how many crashes it survived."""
        factory = RecoveryInstanceFactory(
            _tiny_factory(),
            ExecutionFaultSpec(kind="crash", options={"at_event": 12}),
        )
        runner = MonteCarloRunner(
            factory, [SchedulerSpec("EDF", EDFScheduler, {})]
        )
        outcomes = runner.run(2, seed=5, workers=1)
        assert len(outcomes) == 2
        assert all(o.recovered >= 1 for o in outcomes)

    def test_crash_resume_matches_fault_free(self):
        """Crashing and resuming must not change the measured values."""
        base = _tiny_factory()
        crashing = RecoveryInstanceFactory(
            base, ExecutionFaultSpec(kind="crash", options={"at_event": 9})
        )
        specs = [SchedulerSpec("EDF", EDFScheduler, {})]
        clean = MonteCarloRunner(base, specs).run(2, seed=8, workers=1)
        crashed = MonteCarloRunner(crashing, specs).run(2, seed=8, workers=1)
        for a, b in zip(clean, crashed):
            assert a.values == b.values
            assert a.completed == b.completed
            assert b.recovered >= 1

    def test_checkpoint_roundtrips_recovered(self):
        outcome = ReplicationOutcome(
            generated_value=10.0,
            n_jobs=4,
            values={"EDF": 6.0},
            completed={"EDF": 3},
            recovered=2,
        )
        assert _outcome_from_dict(_outcome_to_dict(outcome)) == outcome
        # Pre-PR checkpoints have no "recovered" field: default to 0.
        d = _outcome_to_dict(outcome)
        del d["recovered"]
        assert _outcome_from_dict(d).recovered == 0


@pytest.mark.recovery_smoke
def test_crash_resume_equivalence_smoke():
    """The CI smoke: one crash per scheduler, resumed run bit-identical."""
    report = crash_resume_equivalence(
        expected_jobs=60.0, crash_at_event=20, snapshot_every=8
    )
    assert set(report) == {"EDF", "Dover(c=1)", "V-Dover"}
    for name, row in report.items():
        assert row["identical"], f"{name} diverged after crash resume"
        assert row["recoveries"] == 1
        assert row["events_journaled"] > 20
