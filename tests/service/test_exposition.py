"""Live exposition: HTTP endpoints, wire metrics/health queries, and the
satellite guarantee — a scrape during a restart ladder never raises and
reports ``restarting`` instead of letting the tenant vanish."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import MessageError
from repro.obs.telemetry import lint_prometheus
from repro.service import (
    CapacitySpec,
    HealthQuery,
    InjectFault,
    MetricsQuery,
    RestartPolicy,
    ScheduleService,
    Submit,
    TelemetryExposition,
    TenantSpec,
)
from repro.sim.job import Job


def _spec(tenant="t0", **kw):
    base = dict(
        tenant=tenant,
        horizon=30.0,
        scheduler="edf",
        capacity=CapacitySpec("constant", {"rate": 1.0}),
        snapshot_every=4,
    )
    base.update(kw)
    return TenantSpec(**base)


def _job(jid, release):
    return Job(
        jid=jid,
        release=release,
        workload=1.0,
        deadline=release + 5.0,
        value=1.0,
    )


def _run(coro):
    return asyncio.run(coro)


async def _http_get(port, path, method="GET"):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"{method} {path} HTTP/1.0\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    return status, head.decode("latin-1"), body.decode("utf-8")


class TestEndpoints:
    def test_metrics_json_health_and_errors(self):
        async def run():
            service = ScheduleService(
                [_spec("t0"), _spec("t1")], telemetry=True
            )
            await service.start()
            await service.dispatch(Submit("t0", _job(1, 1.0)))
            expo = TelemetryExposition(service)
            await expo.start(port=0)
            port = expo.port

            prom = await _http_get(port, "/metrics")
            scrape = await _http_get(port, "/metrics.json")
            health = await _http_get(port, "/health")
            missing = await _http_get(port, "/nope")
            posted = await _http_get(port, "/metrics", method="POST")
            head = await _http_get(port, "/metrics", method="HEAD")

            await expo.stop()
            await service.close()
            return prom, scrape, health, missing, posted, head

        prom, scrape, health, missing, posted, head = _run(run())
        assert prom[0] == 200
        assert "version=0.0.4" in prom[1]
        assert lint_prometheus(prom[2]) == []
        assert 'repro_submitted_total{tenant="t0"} 1.0' in prom[2]

        assert scrape[0] == 200
        fleet = json.loads(scrape[2])["tenants"]
        assert set(fleet) == {"t0", "t1"}
        assert fleet["t0"]["stats"]["submitted"] == 1
        assert "slo" in fleet["t0"]

        assert health[0] == 200
        assert json.loads(health[2])["health"] == {"t0": "ok", "t1": "ok"}

        assert missing[0] == 404
        assert posted[0] == 405
        assert head[0] == 200 and head[2] == ""  # HEAD: headers only

    def test_stop_releases_the_port(self):
        async def run():
            service = ScheduleService([_spec()], telemetry=True)
            await service.start()
            expo = TelemetryExposition(service)
            await expo.start(port=0)
            assert expo.port is not None
            await expo.stop()
            assert expo.port is None
            await service.close()

        _run(run())


class TestWireQueries:
    def test_metrics_and_health_messages(self):
        async def run():
            service = ScheduleService([_spec("t0"), _spec("t1")], telemetry=True)
            await service.start()
            await service.dispatch(Submit("t1", _job(1, 1.0)))
            fleet = await service.dispatch(MetricsQuery("*"))
            one = await service.dispatch(MetricsQuery("t1"))
            states = await service.dispatch(HealthQuery("*"))
            single = await service.dispatch(HealthQuery("t0"))
            with pytest.raises(MessageError, match="unknown tenant"):
                await service.dispatch(MetricsQuery("ghost"))
            await service.close()
            return fleet, one, states, single

        fleet, one, states, single = _run(run())
        assert set(fleet["tenants"]) == {"t0", "t1"}
        assert one["tenant"] == "t1"
        assert one["stats"]["submitted"] == 1
        assert states["health"] == {"t0": "ok", "t1": "ok"}
        assert single == {"tenant": "t0", "health": "ok"}

    def test_scrapes_answer_while_draining(self):
        async def run():
            service = ScheduleService([_spec()], telemetry=True)
            await service.start()
            await service.dispatch(Submit("t0", _job(1, 1.0)))
            await service.drain()
            fleet = await service.dispatch(MetricsQuery("*"))
            states = await service.dispatch(HealthQuery("*"))
            await service.close()
            return fleet, states

        fleet, states = _run(run())
        assert fleet["tenants"]["t0"]["stats"]["submitted"] == 1
        assert states["health"]["t0"] in ("ok", "degraded")


class TestScrapeDuringRestarts:
    def test_restarting_tenant_reported_not_vanished(self):
        # Long backoff pins the tenant mid restart ladder; every scrape
        # surface must keep answering and say "restarting".
        policy = RestartPolicy(backoff_base=0.25, backoff_cap=0.25)

        async def run():
            service = ScheduleService(
                [_spec("t0", snapshot_every=1), _spec("t1")],
                policy=policy,
                telemetry=True,
            )
            await service.start()
            for jid in range(3):
                await service.dispatch(Submit("t0", _job(jid, 1.0 + jid)))
            expo = TelemetryExposition(service)
            await expo.start(port=0)
            port = expo.port

            crash = asyncio.ensure_future(
                service.dispatch(InjectFault("t0", "crash", time=5.0))
            )
            await asyncio.sleep(0.05)  # inside the 0.25 s backoff sleep

            seen = []
            wire = await service.dispatch(HealthQuery("*"))
            seen.append(wire["health"]["t0"])
            fleet = await service.dispatch(MetricsQuery("*"))
            assert "t0" in fleet["tenants"]  # never vanishes mid-ladder
            status, _, prom = await _http_get(port, "/metrics")
            assert status == 200
            status, _, health_body = await _http_get(port, "/health")
            assert status == 200
            seen.append(json.loads(health_body)["health"]["t0"])

            await crash
            after = await service.dispatch(HealthQuery("t0"))
            await expo.stop()
            await service.close()
            return seen, prom, after

        seen, prom, after = _run(run())
        assert seen == ["restarting", "restarting"]
        assert (
            'repro_tenant_health{tenant="t0",state="restarting"} 1' in prom
        )
        assert 'repro_tenant_health{tenant="t1",state="ok"} 1' in prom
        # Ladder finished: restarting clears into degraded (restarts > 0).
        assert after["health"] == "degraded"

    def test_concurrent_restarts_never_break_a_scrape(self):
        # Both tenants crash at once; a polling scraper hammering every
        # surface throughout must never see an exception or a missing
        # tenant, and must observe the restarting state at least once.
        policy = RestartPolicy(backoff_base=0.15, backoff_cap=0.15)

        async def run():
            service = ScheduleService(
                [_spec("t0", snapshot_every=1), _spec("t1", snapshot_every=1)],
                policy=policy,
                telemetry=True,
            )
            await service.start()
            for tenant in ("t0", "t1"):
                for jid in range(3):
                    await service.dispatch(
                        Submit(tenant, _job(jid, 1.0 + jid))
                    )
            expo = TelemetryExposition(service)
            await expo.start(port=0)
            port = expo.port

            crashes = [
                asyncio.ensure_future(
                    service.dispatch(InjectFault(t, "crash", time=5.0))
                )
                for t in ("t0", "t1")
            ]
            observed = set()
            problems = []
            for _ in range(12):
                try:
                    fleet = await service.dispatch(MetricsQuery("*"))
                    if set(fleet["tenants"]) != {"t0", "t1"}:
                        problems.append("tenant vanished from wire scrape")
                    observed.update(
                        e["health"] for e in fleet["tenants"].values()
                    )
                    status, _, body = await _http_get(port, "/metrics")
                    if status != 200:
                        problems.append(f"HTTP scrape -> {status}")
                    elif lint_prometheus(body):
                        problems.append("HTTP scrape failed lint")
                except Exception as exc:  # noqa: BLE001 - the assertion
                    problems.append(f"scrape raised: {exc!r}")
                await asyncio.sleep(0.03)
            await asyncio.gather(*crashes)
            await expo.stop()
            await service.close()
            return observed, problems

        observed, problems = _run(run())
        assert problems == []
        assert "restarting" in observed
