"""Job model: the paper's ``T_i = (r_i, p_i, d_i, v_i)`` tuple.

A :class:`Job` is immutable; all mutable execution state (remaining
workload, status, queue membership) lives in the engine and schedulers so a
single job object can be reused across simulations, schedulers and
Monte-Carlo replications without copying.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import InvalidInstanceError

__all__ = [
    "Job",
    "JobStatus",
    "STATUS_CODE",
    "CODE_STATUS",
    "TERMINAL_CODES",
    "make_jobs",
    "validate_jobs",
    "total_value",
]


class JobStatus(enum.Enum):
    """Lifecycle of a job inside one simulation run."""

    PENDING = "pending"      #: not yet released
    READY = "ready"          #: released, not running, deadline not passed
    RUNNING = "running"      #: currently executing on the processor
    COMPLETED = "completed"  #: full workload finished by the deadline
    FAILED = "failed"        #: deadline passed with workload remaining
    ABANDONED = "abandoned"  #: given up by the scheduler before the deadline


#: Dense integer codes for :class:`JobStatus`, the representation the
#: columnar :class:`repro.sim.jobtable.JobTable` stores (ints compare and
#: vectorize cheaply; the enum stays the API surface).  The code order is
#: part of the snapshot-adjacent contract — append, never reorder.
CODE_STATUS: tuple[JobStatus, ...] = (
    JobStatus.PENDING,
    JobStatus.READY,
    JobStatus.RUNNING,
    JobStatus.COMPLETED,
    JobStatus.FAILED,
    JobStatus.ABANDONED,
)
STATUS_CODE: dict[JobStatus, int] = {s: i for i, s in enumerate(CODE_STATUS)}

#: Codes of states a job can never leave (completed / failed / abandoned).
TERMINAL_CODES: frozenset[int] = frozenset(
    (
        STATUS_CODE[JobStatus.COMPLETED],
        STATUS_CODE[JobStatus.FAILED],
        STATUS_CODE[JobStatus.ABANDONED],
    )
)


@dataclass(frozen=True, order=False)
class Job:
    """An immutable secondary job.

    Parameters
    ----------
    jid:
        Unique integer id within an instance (also the deterministic
        tie-breaker everywhere ordering matters).
    release:
        Release time ``r_i``; the scheduler learns of the job at this time.
    workload:
        Processing demand ``p_i`` in capacity-units x time.
    deadline:
        Firm deadline ``d_i``; completing after it yields zero value.
    value:
        Value ``v_i`` accrued if and only if the job completes by ``d_i``.
    """

    jid: int
    release: float
    workload: float
    deadline: float
    value: float

    def __post_init__(self) -> None:
        if self.workload <= 0.0:
            raise InvalidInstanceError(
                f"job {self.jid}: workload must be positive, got {self.workload!r}"
            )
        if self.value < 0.0:
            raise InvalidInstanceError(
                f"job {self.jid}: value must be non-negative, got {self.value!r}"
            )
        if self.deadline <= self.release:
            raise InvalidInstanceError(
                f"job {self.jid}: deadline {self.deadline!r} not after "
                f"release {self.release!r}"
            )
        if self.release < 0.0:
            raise InvalidInstanceError(
                f"job {self.jid}: negative release time {self.release!r}"
            )

    # ------------------------------------------------------------------
    @property
    def density(self) -> float:
        """Value density ``v_i / p_i`` (paper, Definition 3)."""
        return self.value / self.workload

    @property
    def relative_deadline(self) -> float:
        """The span ``d_i - r_i`` from release to deadline."""
        return self.deadline - self.release

    def conservative_processing_time(self, rate: float) -> float:
        """``p_i / rate`` — full processing time if capacity is always
        ``rate`` (the paper's ``t_c(T_i, c)`` for a fresh job)."""
        return self.workload / rate

    def is_individually_admissible(self, c_lower: float) -> bool:
        """Definition 4: ``d_i - r_i >= p_i / c̲`` — the job could always be
        completed in isolation even under worst-case capacity.

        The comparison tolerates the usual float slop so that instances
        built with ``relative_deadline = workload / c_lower`` (the paper's
        zero-conservative-laxity workload) count as admissible.
        """
        return self.relative_deadline >= self.workload / c_lower - 1e-9

    def laxity(self, t: float, remaining: float, rate: float) -> float:
        """Laxity at time ``t`` given ``remaining`` workload, if future
        capacity were always ``rate``.

        With ``rate = c̲`` this is the paper's *conservative laxity*
        (Definition 5); with ``rate = ĉ`` it is Dover's estimated laxity.
        """
        return self.deadline - t - remaining / rate

    def __lt__(self, other: "Job") -> bool:
        """Order by (deadline, jid): the canonical EDF order with a
        deterministic tie-break.  Needed so jobs can live in heaps."""
        return (self.deadline, self.jid) < (other.deadline, other.jid)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Job(jid={self.jid}, r={self.release:g}, p={self.workload:g}, "
            f"d={self.deadline:g}, v={self.value:g})"
        )


# ----------------------------------------------------------------------
# Instance helpers
# ----------------------------------------------------------------------
def make_jobs(rows: Iterable[tuple[float, float, float, float]]) -> list[Job]:
    """Build jobs from ``(release, workload, deadline, value)`` rows,
    assigning sequential ids in input order."""
    return [
        Job(jid=i, release=r, workload=p, deadline=d, value=v)
        for i, (r, p, d, v) in enumerate(rows)
    ]


def validate_jobs(jobs: Sequence[Job]) -> None:
    """Check that a job collection forms a valid instance: unique ids.

    Per-job field validity is enforced by :class:`Job` itself.
    """
    seen: set[int] = set()
    for job in jobs:
        if job.jid in seen:
            raise InvalidInstanceError(f"duplicate job id {job.jid}")
        seen.add(job.jid)


def total_value(jobs: Iterable[Job]) -> float:
    """Sum of all job values — the normalizer used by the paper's Table I
    (the optimal offline value is NP-hard to compute, so results are
    reported as a fraction of the total generated value)."""
    return sum(job.value for job in jobs)


def importance_ratio(jobs: Sequence[Job]) -> float:
    """The importance ratio ``k_I`` (Definition 3): max density / min density.

    Raises :class:`InvalidInstanceError` on an empty collection or when some
    job has zero value (the ratio is then undefined/infinite).
    """
    if not jobs:
        raise InvalidInstanceError("importance ratio of an empty job set")
    densities = [job.density for job in jobs]
    lo = min(densities)
    if lo <= 0.0:
        raise InvalidInstanceError(
            "importance ratio undefined: some job has zero value density"
        )
    return max(densities) / lo


__all__.append("importance_ratio")
