"""Unit tests for the Markov-modulated capacity models."""

import numpy as np
import pytest

from repro.capacity import MarkovModulatedCapacity, TwoStateMarkovCapacity
from repro.errors import CapacityError


class TestConstruction:
    def test_two_state_bounds(self):
        cap = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=5.0, rng=0)
        assert cap.lower == 1.0
        assert cap.upper == 35.0
        assert cap.delta == 35.0

    def test_two_state_requires_low_below_high(self):
        with pytest.raises(CapacityError):
            TwoStateMarkovCapacity(5.0, 5.0)

    def test_needs_two_states(self):
        with pytest.raises(CapacityError):
            MarkovModulatedCapacity([1.0], [1.0])

    def test_rejects_bad_kernel(self):
        with pytest.raises(CapacityError):
            MarkovModulatedCapacity(
                [1.0, 2.0], [1.0, 1.0], transitions=[[0.5, 0.5], [1.0, 0.0]]
            )

    def test_rejects_non_positive_sojourn(self):
        with pytest.raises(CapacityError):
            MarkovModulatedCapacity([1.0, 2.0], [1.0, 0.0])

    def test_start_high(self):
        cap = TwoStateMarkovCapacity(1.0, 35.0, start_high=True, rng=0)
        assert cap.value(0.0) == 35.0


class TestPath:
    def test_values_within_bounds(self):
        cap = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=2.0, rng=3)
        for t in np.linspace(0.0, 100.0, 200):
            assert cap.value(float(t)) in (1.0, 35.0)

    def test_memoized_path_is_consistent(self):
        cap = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=2.0, rng=7)
        first = [cap.value(t) for t in np.linspace(0, 50, 101)]
        again = [cap.value(t) for t in np.linspace(0, 50, 101)]
        assert first == again

    def test_same_seed_same_path(self):
        a = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=2.0, rng=11)
        b = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=2.0, rng=11)
        ts = np.linspace(0, 80, 161)
        assert [a.value(float(t)) for t in ts] == [b.value(float(t)) for t in ts]

    def test_query_order_does_not_change_path(self):
        a = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=2.0, rng=13)
        b = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=2.0, rng=13)
        # Query a far-future point first on `a`, then compare pointwise.
        a.value(200.0)
        ts = np.linspace(0, 200, 101)
        assert [a.value(float(t)) for t in ts] == [b.value(float(t)) for t in ts]

    def test_alternation(self):
        cap = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=1.0, rng=5)
        rates = [r for _, _, r in cap.pieces(0.0, 50.0)]
        for r0, r1 in zip(rates, rates[1:]):
            assert r0 != r1  # two-state chain must alternate


class TestQueries:
    def test_integrate_matches_pieces(self):
        cap = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=3.0, rng=17)
        by_pieces = sum((e - s) * r for s, e, r in cap.pieces(2.0, 60.0))
        assert cap.integrate(2.0, 60.0) == pytest.approx(by_pieces)

    def test_advance_inverse(self):
        cap = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=3.0, rng=19)
        t = cap.advance(1.0, 100.0)
        assert cap.integrate(1.0, t) == pytest.approx(100.0)

    def test_advance_bounded_by_conservative_rate(self):
        cap = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=3.0, rng=23)
        work = 50.0
        t = cap.advance(0.0, work)
        assert t <= work / cap.lower + 1e-9
        assert t >= work / cap.upper - 1e-9

    def test_pieces_infinite_horizon_rejected(self):
        cap = TwoStateMarkovCapacity(1.0, 35.0, rng=0)
        with pytest.raises(CapacityError):
            list(cap.pieces(0.0, float("inf")))

    def test_realized_path_covers_horizon(self):
        cap = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=5.0, rng=29)
        path = cap.realized_path(40.0)
        assert path[0][0] == 0.0
        assert path[-1][1] == pytest.approx(40.0)

    def test_mean_sojourn_statistics(self):
        """Empirical mean sojourn within ~3 standard errors of the target."""
        cap = TwoStateMarkovCapacity(1.0, 2.0, mean_sojourn=4.0, rng=31)
        pieces = list(cap.pieces(0.0, 4000.0))[:-1]  # last piece is clipped
        durations = [e - s for s, e, _ in pieces]
        mean = np.mean(durations)
        se = np.std(durations) / np.sqrt(len(durations))
        assert abs(mean - 4.0) < 3.5 * se + 0.5


class TestCustomKernels:
    def test_three_state_chain_with_kernel(self):
        kernel = [
            [0.0, 0.7, 0.3],
            [0.5, 0.0, 0.5],
            [1.0, 0.0, 0.0],
        ]
        cap = MarkovModulatedCapacity(
            rates=[1.0, 5.0, 20.0],
            mean_sojourns=[2.0, 1.0, 0.5],
            transitions=kernel,
            rng=7,
        )
        rates_seen = {r for _, _, r in cap.pieces(0.0, 400.0)}
        assert rates_seen == {1.0, 5.0, 20.0}
        assert cap.lower == 1.0 and cap.upper == 20.0

    def test_forbidden_transition_never_taken(self):
        # From state 2 the chain may only jump to state 0.
        kernel = [
            [0.0, 1.0, 0.0],
            [0.5, 0.0, 0.5],
            [1.0, 0.0, 0.0],
        ]
        cap = MarkovModulatedCapacity(
            rates=[1.0, 5.0, 20.0],
            mean_sojourns=[1.0, 1.0, 1.0],
            transitions=kernel,
            rng=11,
        )
        rates = [r for _, _, r in cap.pieces(0.0, 500.0)]
        for a, b in zip(rates, rates[1:]):
            if a == 20.0:
                assert b == 1.0  # 2 -> 0 only
            if a == 1.0:
                assert b == 5.0  # 0 -> 1 only

    def test_uniform_default_kernel_three_states(self):
        cap = MarkovModulatedCapacity(
            rates=[1.0, 2.0, 3.0], mean_sojourns=[1.0, 1.0, 1.0], rng=3
        )
        rates = [r for _, _, r in cap.pieces(0.0, 300.0)]
        # never self-transition
        for a, b in zip(rates, rates[1:]):
            assert a != b
