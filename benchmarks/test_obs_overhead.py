"""Observability overhead: the zero-overhead-when-off contract, measured.

The telemetry subsystem hides behind one gate (``repro.obs.current()``);
when no session is open the kernel hot path pays a single ``is not None``
attribute check per emission site.  This benchmark pins the contract:

* **disabled**: the full-scale Figure-1-style run must stay within the
  pre-instrumentation budget.  Measured against the archived pre-obs
  baseline (commit 098b966, same machine as ``results/``): 45.98 ms EDF /
  52.61 ms V-Dover pre-obs vs 45.27 / 50.14 ms with the gate compiled in
  — within run-to-run noise, i.e. well inside the ±5% acceptance band.
  Absolute times vary across machines, so the *assertions* below compare
  interleaved in-process runs (disabled vs enabled) rather than archived
  wall-clock numbers.
* **enabled**: tracing is an opt-in cost, not a tax.  Reference ladder on
  the baseline machine (V-Dover full scale): metrics-only ×1.43, ring
  trace ×1.64, trace+profiling ×1.86.  The assertions allow generous CI
  headroom (×2.5 / ×3.5) — the point is to catch an accidental hot-path
  regression (e.g. formatting event payloads while disabled), not to
  benchmark the laptop.
* **bit-identity**: the observed run's values and schedule must equal the
  unobserved run's exactly, at full scale.

Run with ``pytest benchmarks/test_obs_overhead.py -v``.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro import obs
from repro.capacity import TwoStateMarkovCapacity
from repro.core import VDoverScheduler
from repro.sim import simulate
from repro.workload import PoissonWorkload

#: Pre-obs baseline (commit 098b966) vs gate-compiled-in disabled path,
#: measured back to back on the machine that produced ``results/``.
PRE_OBS_BASELINE_MS = {
    "edf_pre_obs": 45.98,
    "edf_disabled": 45.27,
    "vdover_pre_obs": 52.61,
    "vdover_disabled": 50.14,
}

_REPEATS = 5


@pytest.fixture(scope="module")
def paper_instance():
    lam, horizon = 6.0, 2000.0 / 6.0
    jobs = PoissonWorkload(lam=lam, horizon=horizon).generate(7)
    return jobs, horizon


def _run(jobs, horizon):
    capacity = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=horizon / 4, rng=3)
    t0 = time.perf_counter()
    result = simulate(jobs, capacity, VDoverScheduler(k=7.0))
    return time.perf_counter() - t0, result


def _ladder(jobs, horizon):
    """Interleaved medians for disabled / metrics-only / trace / profiled."""
    samples: dict[str, list[float]] = {m: [] for m in
                                       ("off", "metrics", "trace", "profiled")}
    for _ in range(_REPEATS):
        dt, _ = _run(jobs, horizon)
        samples["off"].append(dt)
        with obs.session(trace=False):
            dt, _ = _run(jobs, horizon)
        samples["metrics"].append(dt)
        with obs.session():
            dt, _ = _run(jobs, horizon)
        samples["trace"].append(dt)
        with obs.session(profile=True):
            dt, _ = _run(jobs, horizon)
        samples["profiled"].append(dt)
    return {m: statistics.median(ts) for m, ts in samples.items()}


def test_obs_overhead_ladder(paper_instance, archive):
    jobs, horizon = paper_instance
    med = _ladder(jobs, horizon)
    base = med["off"]
    lines = ["observability overhead (V-Dover, ~2000 jobs, median of "
             f"{_REPEATS} interleaved runs):", ""]
    lines.append(
        f"  pre-obs baseline (archived): edf {PRE_OBS_BASELINE_MS['edf_pre_obs']:.2f} ms"
        f" -> {PRE_OBS_BASELINE_MS['edf_disabled']:.2f} ms disabled;"
        f" vdover {PRE_OBS_BASELINE_MS['vdover_pre_obs']:.2f} ms"
        f" -> {PRE_OBS_BASELINE_MS['vdover_disabled']:.2f} ms disabled"
    )
    lines.append("")
    for mode in ("off", "metrics", "trace", "profiled"):
        lines.append(
            f"  {mode:>9}: {1000 * med[mode]:8.2f} ms   x{med[mode] / base:.2f}"
        )
    archive("obs_overhead", "\n".join(lines))

    # Generous CI-safe bounds: catching a hot-path regression, not racing.
    assert med["metrics"] / base < 2.5, "metrics-only mode became a tax"
    assert med["trace"] / base < 3.0, "ring tracing became a tax"
    assert med["profiled"] / base < 3.5, "profiling became a tax"


def test_observed_run_bit_identical_at_full_scale(paper_instance):
    jobs, horizon = paper_instance
    _, plain = _run(jobs, horizon)
    with obs.session(profile=True):
        _, observed = _run(jobs, horizon)
    assert observed.value == plain.value
    assert observed.trace.segments == plain.trace.segments
    assert observed.trace.outcomes == plain.trace.outcomes
