"""Generic crash→restore→resume loop shared by both engine façades.

The resilience contract (docs/ROBUSTNESS.md §7) is the same for the
single-processor and multiprocessor engines: a :class:`SimulatedCrash`
raised mid-run carries the last *periodic* snapshot; recovery rebuilds a
fresh engine, restores that snapshot (which re-verifies the write-ahead
journal tail), and re-enters the event loop.  Previously this loop lived
inline in :func:`repro.sim.engine.simulate`; it is now a kernel-level
helper so :func:`repro.multi.engine.simulate_multi` gets bit-identical
crash-resume for free.

Livelock detection (docs/ROBUSTNESS.md §10): a crash that recurs at the
*same position with no dispatch progress* will recur forever — the
restore is deterministic, so replaying the identical prefix reaches the
identical crash.  :class:`CrashLoopDetector` recognises that signature
after the *second* identical crash and raises
:class:`~repro.errors.RecoveryError` immediately with the stuck
position, instead of burning the remaining ``max_recoveries`` budget on
recoveries that cannot succeed.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.errors import RecoveryError, SimulatedCrash

__all__ = ["CrashLoopDetector", "run_with_recovery"]


class CrashLoopDetector:
    """Detects a recovery livelock: consecutive crashes at one position.

    A crash's *position* is ``(time, at_event, fault_index,
    snapshot.dispatch_count)``: where the run died and how far the
    recovery anchor had advanced.  If two consecutive crashes share a
    position, the restore→replay cycle made no progress — the third,
    fourth, … attempts are guaranteed to die at the same spot (the
    engine is deterministic), so :meth:`observe` raises
    :class:`~repro.errors.RecoveryError` naming the stuck position.  Any
    crash at a new position (later time, later event index, or a fresher
    snapshot) resets the detector.
    """

    __slots__ = ("_last",)

    def __init__(self) -> None:
        self._last: Optional[Tuple[object, ...]] = None

    def reset(self) -> None:
        self._last = None

    def observe(self, crash: SimulatedCrash) -> None:
        """Record one crash; raise on the second consecutive identical one."""
        snapshot = crash.snapshot
        position = (
            crash.time,
            crash.at_event,
            crash.fault_index,
            None if snapshot is None else snapshot.dispatch_count,
        )
        if position == self._last:
            raise RecoveryError(
                "recovery livelock: two consecutive crashes at "
                f"t={crash.time:g} (at_event={crash.at_event}, "
                f"fault_index={crash.fault_index}) with the recovery "
                "anchor stuck at dispatch "
                f"#{position[3]}; further recoveries cannot make progress"
            ) from crash
        self._last = position


def run_with_recovery(
    build: Callable[[], "object"],
    *,
    recover: bool = False,
    max_recoveries: int = 8,
):
    """Run ``build()``'s engine to completion, restarting after crashes.

    ``build`` must return a fresh, un-started engine exposing ``run()``
    and ``restore(snapshot)``.  When ``recover`` is false a
    :class:`SimulatedCrash` propagates to the caller unchanged (the
    caller owns the snapshot).  When true, each crash rebuilds the
    engine via ``build()`` and restores the snapshot the crash carried;
    after ``max_recoveries`` unsuccessful rounds a
    :class:`~repro.errors.RecoveryError` is raised so a crash loop
    cannot spin forever — and a *livelocked* loop (two consecutive
    crashes at the same position without progress) is cut short
    immediately by :class:`CrashLoopDetector` without waiting for the
    budget to drain.

    Returns ``(result, recoveries)`` — the completed run's result object
    and the number of crash→restore cycles it took to get there.
    """
    if max_recoveries < 0:
        raise ValueError(f"max_recoveries must be >= 0, got {max_recoveries}")

    engine = build()
    recoveries = 0
    detector = CrashLoopDetector()
    while True:
        try:
            result = engine.run()
            return result, recoveries
        except SimulatedCrash as crash:
            if not recover:
                raise
            snapshot = crash.snapshot
            if snapshot is None:
                raise RecoveryError(
                    "engine crashed before the first snapshot; nothing to "
                    "restore from (snapshot_every too large?)"
                ) from crash
            detector.observe(crash)
            recoveries += 1
            if recoveries > max_recoveries:
                raise RecoveryError(
                    f"engine crashed {recoveries} times; giving up after "
                    f"max_recoveries={max_recoveries}"
                ) from crash
            engine = build()
            engine.restore(snapshot)


def recoveries_or_zero(recoveries: Optional[int]) -> int:
    """Small helper for result plumbing: ``None``-safe recovery count."""
    return int(recoveries or 0)
