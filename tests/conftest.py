"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.capacity import (
    ConstantCapacity,
    PiecewiseConstantCapacity,
    TwoStateMarkovCapacity,
)
from repro.sim import Job, simulate


@pytest.fixture
def unit_capacity():
    """Constant capacity 1 — the classical setting."""
    return ConstantCapacity(1.0)


@pytest.fixture
def step_capacity():
    """A simple deterministic varying capacity: 1 on [0,10), 4 on [10,20),
    2 afterwards.  Declared bounds (1, 4)."""
    return PiecewiseConstantCapacity([0.0, 10.0, 20.0], [1.0, 4.0, 2.0])


@pytest.fixture
def paper_capacity():
    """A seeded instance of the paper's two-state CTMC."""
    return TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=25.0, rng=1234)


@pytest.fixture
def rng():
    return np.random.default_rng(99)


def run_validated(jobs, capacity, scheduler, **kwargs):
    """Simulate with trace validation turned on (the suite's default)."""
    return simulate(jobs, capacity, scheduler, validate=True, **kwargs)


@pytest.fixture
def simulate_validated():
    return run_validated


def jobs_from_rows(rows):
    """(release, workload, deadline, value) rows -> Job list."""
    return [Job(i, r, p, d, v) for i, (r, p, d, v) in enumerate(rows)]


@pytest.fixture
def make_jobs():
    return jobs_from_rows
