"""Unit tests for multiprocessor metrics and the cross-processor validator."""

import pytest

from repro.capacity import ConstantCapacity
from repro.errors import SimulationError
from repro.multi.metrics import MultiSimulationResult
from repro.sim import Job, JobStatus, ScheduleTrace


def J(jid, r, p, d, v=1.0):
    return Job(jid, r, p, d, v)


def make_result(jobs, proc_segments, outcomes=None):
    """Hand-build a MultiSimulationResult from raw segment tuples."""
    traces = []
    for segments in proc_segments:
        trace = ScheduleTrace()
        for start, end, jid, work in segments:
            trace.add_segment(start, end, jid, work)
        traces.append(trace)
    combined = ScheduleTrace()
    for job, (status, t) in (outcomes or {}).items():
        combined.record_outcome(job, status, t)
    return MultiSimulationResult(
        scheduler_name="hand",
        jobs=jobs,
        horizon=10.0,
        proc_traces=traces,
        combined=combined,
    )


class TestValidator:
    def test_legal_parallel_schedule_passes(self):
        a, b = J(0, 0.0, 2.0, 5.0), J(1, 0.0, 2.0, 5.0)
        result = make_result(
            [a, b],
            [[(0.0, 2.0, 0, 2.0)], [(0.0, 2.0, 1, 2.0)]],
            {a: (JobStatus.COMPLETED, 2.0), b: (JobStatus.COMPLETED, 2.0)},
        )
        result.validate([ConstantCapacity(1.0), ConstantCapacity(1.0)])

    def test_intra_job_parallelism_detected(self):
        """The same job running on two processors at once must be caught."""
        a = J(0, 0.0, 4.0, 5.0)
        result = make_result(
            [a],
            [[(0.0, 2.0, 0, 2.0)], [(1.0, 3.0, 0, 2.0)]],  # overlap [1, 2]
            {a: (JobStatus.COMPLETED, 3.0)},
        )
        with pytest.raises(SimulationError, match="two processors"):
            result.validate([ConstantCapacity(1.0), ConstantCapacity(1.0)])

    def test_split_execution_without_overlap_is_legal(self):
        a = J(0, 0.0, 4.0, 5.0)
        result = make_result(
            [a],
            [[(0.0, 2.0, 0, 2.0)], [(2.0, 4.0, 0, 2.0)]],  # a clean migration
            {a: (JobStatus.COMPLETED, 4.0)},
        )
        result.validate([ConstantCapacity(1.0), ConstantCapacity(1.0)])

    def test_incomplete_workload_on_completed_job_detected(self):
        a = J(0, 0.0, 4.0, 5.0)
        result = make_result(
            [a],
            [[(0.0, 2.0, 0, 2.0)], []],
            {a: (JobStatus.COMPLETED, 2.0)},  # only half the work done
        )
        with pytest.raises(SimulationError, match="completed with work"):
            result.validate([ConstantCapacity(1.0), ConstantCapacity(1.0)])

    def test_capacity_count_mismatch(self):
        result = make_result([J(0, 0.0, 1.0, 2.0)], [[]])
        with pytest.raises(SimulationError, match="capacities"):
            result.validate([ConstantCapacity(1.0), ConstantCapacity(1.0)])


class TestMetrics:
    def test_migration_count(self):
        a, b = J(0, 0.0, 4.0, 9.0), J(1, 0.0, 2.0, 9.0)
        result = make_result(
            [a, b],
            [
                [(0.0, 2.0, 0, 2.0), (2.0, 4.0, 1, 2.0)],
                [(0.0, 2.0, 1, 2.0), (2.0, 4.0, 0, 2.0)],
            ],
        )
        # Both jobs swapped processors once.
        assert result.migrations() == 2

    def test_busy_time_and_work_aggregate(self):
        a = J(0, 0.0, 4.0, 9.0)
        result = make_result(
            [a], [[(0.0, 2.0, 0, 2.0)], [(2.0, 4.0, 0, 2.0)]]
        )
        assert result.busy_time == pytest.approx(4.0)
        assert result.executed_work == pytest.approx(4.0)
        assert result.work_by_job() == {0: pytest.approx(4.0)}

    def test_value_and_ids(self):
        a, b = J(0, 0.0, 1.0, 2.0, v=3.0), J(1, 0.0, 1.0, 2.0, v=4.0)
        result = make_result(
            [a, b],
            [[], []],
            {a: (JobStatus.COMPLETED, 1.0), b: (JobStatus.FAILED, 2.0)},
        )
        assert result.value == pytest.approx(3.0)
        assert result.completed_ids == [0]
        assert result.failed_ids == [1]
        assert result.normalized_value == pytest.approx(3.0 / 7.0)
