"""Regular-interval analysis: empirical Lemma 1 reports.

Lemma 1 is the paper's capacity-to-value conversion: for every regular
interval ``I_R`` produced by V-Dover,

    ∫_{I_R} c(t) dt  <=  regval(I_R) + clval(I_R) / (β − 1).

:func:`lemma1_report` evaluates the bound interval-by-interval for a
scheduler that just finished a run, returning violation and tightness
statistics.  Used by the E10 benchmark and available to users who want to
sanity-check the machinery on their own workloads (a violation indicates
either an implementation divergence from the analyzed dynamics or a
workload whose minimum value density is below 1 — the lemma is stated
under the paper's density normalisation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.capacity.base import CapacityFunction
from repro.core.dover_family import DoverFamilyScheduler, RegularInterval
from repro.errors import AnalysisError

__all__ = ["Lemma1Report", "lemma1_report"]


@dataclass(frozen=True)
class Lemma1Report:
    """Outcome of checking Lemma 1 over one run's regular intervals."""

    n_intervals: int
    n_violations: int
    #: work/bound per interval (1.0 = tight; > 1.0 = violated)
    tightness: tuple[float, ...]
    violations: tuple[RegularInterval, ...]

    @property
    def holds(self) -> bool:
        return self.n_violations == 0

    @property
    def mean_tightness(self) -> float:
        return float(np.mean(self.tightness)) if self.tightness else 0.0

    @property
    def max_tightness(self) -> float:
        return float(np.max(self.tightness)) if self.tightness else 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "holds" if self.holds else f"VIOLATED x{self.n_violations}"
        return (
            f"Lemma 1 {status} over {self.n_intervals} intervals "
            f"(mean tightness {self.mean_tightness:.3f}, "
            f"max {self.max_tightness:.4f})"
        )


def lemma1_report(
    scheduler: DoverFamilyScheduler,
    capacity: CapacityFunction,
    *,
    tol: float = 1e-6,
) -> Lemma1Report:
    """Check Lemma 1 on the scheduler's last run against ``capacity``.

    The scheduler must have completed a simulation (its
    ``regular_intervals`` reflect the most recent ``bind``/run) and
    ``capacity`` must be the same trajectory object the run used.
    """
    beta = getattr(scheduler, "_beta", None)
    if beta is None or beta <= 1.0:
        raise AnalysisError("scheduler has no valid beta; has it been run?")
    intervals = scheduler.regular_intervals
    tightness: List[float] = []
    violations: List[RegularInterval] = []
    for iv in intervals:
        work = capacity.integrate(iv.start, iv.end)
        bound = iv.lemma1_bound(beta)
        if bound > 0.0:
            tightness.append(work / bound)
        if work > bound + tol:
            violations.append(iv)
    return Lemma1Report(
        n_intervals=len(intervals),
        n_violations=len(violations),
        tightness=tuple(tightness),
        violations=tuple(violations),
    )
