"""Unit tests for the individual-admissibility predicates (Definition 4)."""

import pytest

from repro.core import (
    admissibility_report,
    all_individually_admissible,
    filter_admissible,
    is_individually_admissible,
)
from repro.sim import Job


def J(jid, r, p, d, v=1.0):
    return Job(jid, r, p, d, v)


class TestPredicate:
    def test_admissible(self):
        assert is_individually_admissible(J(0, 0.0, 2.0, 4.0), c_lower=1.0)

    def test_boundary_counts_as_admissible(self):
        # The paper's workload puts every job exactly at the boundary.
        assert is_individually_admissible(J(0, 0.0, 4.0, 4.0), c_lower=1.0)

    def test_inadmissible(self):
        assert not is_individually_admissible(J(0, 0.0, 5.0, 4.0), c_lower=1.0)

    def test_depends_on_floor(self):
        job = J(0, 0.0, 4.0, 2.0)
        assert not is_individually_admissible(job, c_lower=1.0)
        assert is_individually_admissible(job, c_lower=2.0)


class TestCollections:
    def test_all_admissible(self):
        jobs = [J(0, 0.0, 1.0, 2.0), J(1, 0.0, 2.0, 2.0)]
        assert all_individually_admissible(jobs, 1.0)

    def test_one_bad_apple(self):
        jobs = [J(0, 0.0, 1.0, 2.0), J(1, 0.0, 5.0, 2.0)]
        assert not all_individually_admissible(jobs, 1.0)

    def test_filter_split(self):
        jobs = [J(0, 0.0, 1.0, 2.0), J(1, 0.0, 5.0, 2.0), J(2, 0.0, 2.0, 3.0)]
        ok, bad = filter_admissible(jobs, 1.0)
        assert [j.jid for j in ok] == [0, 2]
        assert [j.jid for j in bad] == [1]

    def test_report(self):
        jobs = [
            J(0, 0.0, 1.0, 2.0, v=3.0),
            J(1, 0.0, 5.0, 2.0, v=7.0),
        ]
        rep = admissibility_report(jobs, 1.0)
        assert rep["n_jobs"] == 2
        assert rep["n_admissible"] == 1
        assert rep["n_inadmissible"] == 1
        assert rep["admissible_value"] == pytest.approx(3.0)
        assert rep["inadmissible_value"] == pytest.approx(7.0)
        assert rep["all_admissible"] is False

    def test_empty_report(self):
        rep = admissibility_report([], 1.0)
        assert rep["all_admissible"] is True
