"""Metrics registry: counters, gauges and histograms with snapshot/merge.

Design goals, in order:

1. **Cheap when hot** — instruments are plain ``__slots__`` objects;
   ``registry.counter(name)`` memoises, so steady-state cost is one dict
   hit plus an integer add.  (The *disabled* path never reaches here at
   all — see :mod:`repro.obs.core`.)
2. **Mergeable** — :meth:`MetricsRegistry.snapshot` produces a plain
   JSON-able dict and :func:`merge_snapshots` folds many of them into one
   (counters add, gauges keep the high-water mark, histograms pool their
   moments).  This is how the Monte-Carlo runner aggregates per-worker
   registries into a sweep-level view, and how checkpoints persist them.
3. **Deterministic where the simulation is** — counts derived from the
   event stream are reproducible; wall-clock histograms (dispatch latency,
   replication wall time) are not, which is why metrics are kept out of
   the byte-identical trace export by default.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Mapping

from repro.errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("n",)

    def __init__(self) -> None:
        self.n = 0

    def inc(self, k: int = 1) -> None:
        self.n += k


class Gauge:
    """Last-observed value plus its high-water mark."""

    __slots__ = ("last", "hwm")

    def __init__(self) -> None:
        self.last = 0.0
        self.hwm = -math.inf

    def set(self, value: float) -> None:
        self.last = value
        if value > self.hwm:
            self.hwm = value


class Histogram:
    """Streaming summary (count / sum / min / max) of observations.

    Deliberately bucket-free: the quantities the reports need (count,
    total, mean, extremes) merge exactly across workers; fixed buckets
    would add hot-path branches for little analytical gain here.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named instruments, created on first use.

    A name is bound to exactly one instrument type for the registry's
    lifetime; asking for the same name with a different type raises
    :class:`~repro.errors.ObservabilityError` (silent type confusion would
    corrupt merges)."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def _check_unique(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ObservabilityError(
                    f"metric {name!r} already registered as a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            self._check_unique(name, "counter")
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            self._check_unique(name, "gauge")
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            self._check_unique(name, "histogram")
            h = self._histograms[name] = Histogram()
        return h

    # ------------------------------------------------------------------
    # Snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A plain JSON-able image of every instrument."""
        return {
            "counters": {k: c.n for k, c in sorted(self._counters.items())},
            "gauges": {
                k: {"last": g.last, "hwm": g.hwm}
                for k, g in sorted(self._gauges.items())
            },
            "histograms": {
                k: {"count": h.count, "sum": h.total, "min": h.min, "max": h.max}
                for k, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snap: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` dict into this registry's live state."""
        for name, n in snap.get("counters", {}).items():
            self.counter(name).inc(int(n))
        for name, doc in snap.get("gauges", {}).items():
            g = self.gauge(name)
            hwm = float(doc.get("hwm", -math.inf))
            if hwm > g.hwm:
                g.hwm = hwm
                g.last = float(doc.get("last", hwm))
        for name, doc in snap.get("histograms", {}).items():
            h = self.histogram(name)
            h.count += int(doc.get("count", 0))
            h.total += float(doc.get("sum", 0.0))
            h.min = min(h.min, float(doc.get("min", math.inf)))
            h.max = max(h.max, float(doc.get("max", -math.inf)))


def merge_snapshots(snaps: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Merge many snapshot dicts into one (the MC aggregation primitive).

    Counters add; gauges keep the maximal high-water mark (the ``last``
    value of the snapshot that owned it); histograms pool count/sum and
    take the global extremes."""
    acc = MetricsRegistry()
    for snap in snaps:
        acc.merge(snap)
    return acc.snapshot()
