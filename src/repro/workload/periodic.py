"""Periodic task sets (Liu & Layland style), expressed as job streams.

Real-time theory's classical workload: task ``i`` releases one job every
``period_i`` with workload ``wcet_i`` (here in capacity units) and deadline
equal to the next release.  Used by the underload experiments: a periodic
set whose total density is below the conservative capacity bound is
feasible, so EDF must capture *all* its value (Theorem 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import InvalidInstanceError
from repro.sim.job import Job
from repro.workload.base import WorkloadGenerator, as_generator

__all__ = ["PeriodicTask", "PeriodicWorkload"]


@dataclass(frozen=True)
class PeriodicTask:
    """One periodic task: a job every ``period``, workload ``demand``."""

    period: float
    demand: float
    value_per_job: float
    offset: float = 0.0
    #: deadline relative to release; defaults to the period (implicit
    #: deadline in real-time terminology)
    relative_deadline: float | None = None

    def __post_init__(self) -> None:
        if self.period <= 0.0 or self.demand <= 0.0 or self.value_per_job < 0.0:
            raise InvalidInstanceError(f"invalid periodic task: {self!r}")
        if self.offset < 0.0:
            raise InvalidInstanceError(f"negative offset: {self.offset!r}")
        if self.relative_deadline is not None and self.relative_deadline <= 0.0:
            raise InvalidInstanceError(
                f"non-positive relative deadline: {self.relative_deadline!r}"
            )


class PeriodicWorkload(WorkloadGenerator):
    """Unroll a set of periodic tasks into a job stream over a horizon.

    Deterministic (the RNG argument is accepted for interface uniformity
    but unused unless ``jitter`` is set, in which case each release is
    perturbed uniformly by ±jitter/2 without letting jobs overtake their
    deadlines).
    """

    def __init__(
        self,
        tasks: Sequence[PeriodicTask],
        horizon: float,
        *,
        jitter: float = 0.0,
    ) -> None:
        if horizon <= 0.0:
            raise InvalidInstanceError(f"horizon must be positive: {horizon!r}")
        if jitter < 0.0:
            raise InvalidInstanceError(f"negative jitter: {jitter!r}")
        if not tasks:
            raise InvalidInstanceError("at least one periodic task required")
        self.tasks = list(tasks)
        self.horizon = float(horizon)
        self.jitter = float(jitter)

    def utilization(self, rate: float) -> float:
        """Total demand density relative to a constant rate: the classical
        ``Σ demand_i / (period_i · rate)``; feasible under EDF iff <= 1 for
        implicit-deadline tasks on a constant-rate processor."""
        return sum(t.demand / (t.period * rate) for t in self.tasks)

    def generate(self, rng: np.random.Generator | int | None = None) -> list[Job]:
        gen = as_generator(rng)
        releases: list[float] = []
        workloads: list[float] = []
        rel_deadlines: list[float] = []
        values: list[float] = []
        for task in self.tasks:
            rel_dl = (
                task.relative_deadline
                if task.relative_deadline is not None
                else task.period
            )
            t = task.offset
            while t < self.horizon:
                release = t
                if self.jitter > 0.0:
                    # Jitter may only delay within the slack so the deadline
                    # (anchored at the nominal release) stays ahead.
                    wiggle = min(self.jitter, 0.5 * rel_dl)
                    release = t + gen.uniform(0.0, wiggle)
                releases.append(release)
                workloads.append(task.demand)
                rel_deadlines.append(rel_dl + (t - release))
                values.append(task.value_per_job)
                t += task.period
        return self._finalize(releases, workloads, rel_deadlines, values)
