"""Unit tests for the SWF importer."""

import pytest

from repro.errors import InvalidInstanceError
from repro.workload.swf import parse_swf, swf_to_jobs

# A small, well-formed SWF fragment: job_id submit wait run procs ...
SWF_TEXT = """\
; SWF header comment
; MaxJobs: 5
1 100 5 60 4 0 0 -1 -1 -1 1 1 1 -1 -1 -1 -1 -1
2 160 0 120 2 0 0 -1 -1 -1 1 1 1 -1 -1 -1 -1 -1
3 200 9 -1 8 0 0 -1 -1 -1 1 1 1 -1 -1 -1 -1 -1
4 220 0 30 -1 0 0 -1 -1 -1 1 1 1 -1 -1 -1 -1 -1
5 250 2 10 1 0 0 -1 -1 -1 1 1 1 -1 -1 -1 -1 -1
"""


class TestParse:
    def test_parses_all_data_lines(self):
        records = parse_swf(SWF_TEXT)
        assert len(records) == 5
        assert records[0].job_id == 1
        assert records[0].submit == 100.0
        assert records[0].run_time == 60.0
        assert records[0].processors == 4

    def test_comments_and_blanks_ignored(self):
        assert parse_swf("; nothing\n\n;x\n") == []

    def test_malformed_line_raises(self):
        with pytest.raises(InvalidInstanceError, match="line 1"):
            parse_swf("1 2 3\n")
        with pytest.raises(InvalidInstanceError):
            parse_swf("a b c d e\n")


class TestConvert:
    def test_unknown_fields_skipped_and_reported(self):
        report = swf_to_jobs(SWF_TEXT, rng=0)
        assert report.n_lines == 5
        assert report.n_parsed == 3  # jobs 3 and 4 have -1 fields
        assert report.n_skipped == 2

    def test_workload_is_node_seconds(self):
        report = swf_to_jobs(SWF_TEXT, rng=0)
        first = report.jobs[0]
        assert first.workload == pytest.approx(60.0 * 4)

    def test_release_normalised_to_zero(self):
        report = swf_to_jobs(SWF_TEXT, rng=0)
        assert report.jobs[0].release == 0.0
        assert report.jobs[1].release == pytest.approx(60.0)

    def test_time_scale(self):
        report = swf_to_jobs(SWF_TEXT, rng=0, time_scale=0.5)
        assert report.jobs[1].release == pytest.approx(30.0)

    def test_jobs_individually_admissible(self):
        report = swf_to_jobs(SWF_TEXT, rng=0, c_lower=2.0)
        for job in report.jobs:
            assert job.is_individually_admissible(2.0)

    def test_density_range_respected(self):
        report = swf_to_jobs(SWF_TEXT, rng=1, density_range=(2.0, 3.0))
        for job in report.jobs:
            assert 2.0 - 1e-9 <= job.density <= 3.0 + 1e-9

    def test_reproducible(self):
        a = swf_to_jobs(SWF_TEXT, rng=42)
        b = swf_to_jobs(SWF_TEXT, rng=42)
        assert a.jobs == b.jobs

    def test_file_source(self, tmp_path):
        path = tmp_path / "trace.swf"
        path.write_text(SWF_TEXT)
        report = swf_to_jobs(str(path), rng=0)
        assert report.n_parsed == 3

    def test_bad_params_rejected(self):
        with pytest.raises(InvalidInstanceError):
            swf_to_jobs(SWF_TEXT, slack_range=(0.5, 2.0))
        with pytest.raises(InvalidInstanceError):
            swf_to_jobs(SWF_TEXT, density_range=(0.0, 1.0))
        with pytest.raises(InvalidInstanceError):
            swf_to_jobs(SWF_TEXT, c_lower=0.0)

    def test_end_to_end_schedulable(self):
        from repro.capacity import ConstantCapacity
        from repro.core import VDoverScheduler
        from repro.sim import simulate

        report = swf_to_jobs(SWF_TEXT, rng=3, work_scale=0.01)
        result = simulate(
            list(report.jobs), ConstantCapacity(2.0), VDoverScheduler(k=7.0),
            validate=True,
        )
        assert result.n_completed + result.n_failed == len(report.jobs)
