"""A synthetic spot market: price process and bid-driven request stream.

Amazon EC2 Spot Instances (the paper's motivating system) price unused
capacity dynamically; customers bid, and their value density *is* their
bid.  No real spot-price traces are available offline, so the price follows
a discretised mean-reverting (Ornstein–Uhlenbeck) process — the standard
synthetic model for spot prices — and customer bids are drawn as a markup
over the prevailing price.  The resulting request stream has a natural
importance-ratio bound: bids are clamped to ``[price_floor,
price_ceiling]``, so ``k = ceiling / floor``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.vm import VMRequest
from repro.errors import InvalidInstanceError
from repro.workload.base import as_generator

__all__ = ["SpotPriceProcess", "SpotMarket"]


@dataclass(frozen=True)
class SpotPriceProcess:
    """Mean-reverting price on a uniform grid:
    ``p_{i+1} = p_i + θ(μ − p_i)Δ + σ√Δ ε_i``, clamped to the band."""

    mean: float = 1.0
    reversion: float = 0.5
    volatility: float = 0.3
    floor: float = 0.25
    ceiling: float = 4.0
    dt: float = 0.25

    def __post_init__(self) -> None:
        if not (0.0 < self.floor <= self.mean <= self.ceiling):
            raise InvalidInstanceError(
                f"need floor <= mean <= ceiling, got {self.floor!r}, "
                f"{self.mean!r}, {self.ceiling!r}"
            )
        if self.reversion <= 0.0 or self.volatility < 0.0 or self.dt <= 0.0:
            raise InvalidInstanceError("bad price-process parameters")

    def sample(
        self, horizon: float, rng: np.random.Generator | int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(grid_times, prices)`` on ``[0, horizon]``."""
        gen = as_generator(rng)
        n = max(2, int(np.ceil(horizon / self.dt)) + 1)
        times = np.arange(n) * self.dt
        prices = np.empty(n)
        prices[0] = self.mean
        noise = gen.standard_normal(n - 1)
        sqdt = np.sqrt(self.dt)
        for i in range(n - 1):
            drift = self.reversion * (self.mean - prices[i]) * self.dt
            prices[i + 1] = prices[i] + drift + self.volatility * sqdt * noise[i]
        np.clip(prices, self.floor, self.ceiling, out=prices)
        return times, prices

    @property
    def importance_ratio_bound(self) -> float:
        """``k = ceiling / floor`` for bids clamped to the price band."""
        return self.ceiling / self.floor


class SpotMarket:
    """Generates secondary VM requests whose bids track the spot price.

    Parameters
    ----------
    price:
        The spot-price process.
    request_rate:
        Poisson rate of request submissions.  Demand is *elastic*: the
        effective rate scales by ``(mean/price)^elasticity`` — cheap spots
        attract bids (this is what makes the stream bursty in practice).
    demand_mean:
        Mean exponential compute demand per request.
    markup_range:
        Bids are ``price × U[markup_range]``, clamped to the price band.
    slack_range:
        Relative deadline is ``demand / floor_capacity × U[slack_range]``;
        slacks >= 1 keep requests individually admissible.
    floor_capacity:
        The server's guaranteed residual (``c̲``) used to size deadlines.
    elasticity:
        Demand-elasticity exponent (0 = inelastic).
    """

    def __init__(
        self,
        price: SpotPriceProcess,
        *,
        request_rate: float = 2.0,
        demand_mean: float = 1.0,
        markup_range: tuple[float, float] = (1.0, 1.5),
        slack_range: tuple[float, float] = (1.0, 2.0),
        floor_capacity: float = 1.0,
        elasticity: float = 1.0,
    ) -> None:
        if request_rate <= 0.0 or demand_mean <= 0.0 or floor_capacity <= 0.0:
            raise InvalidInstanceError("rates, demand and floor must be positive")
        lo, hi = markup_range
        if not (0.0 < lo <= hi):
            raise InvalidInstanceError(f"bad markup range {markup_range!r}")
        slo, shi = slack_range
        if not (0.0 < slo <= shi):
            raise InvalidInstanceError(f"bad slack range {slack_range!r}")
        if slo < 1.0:
            raise InvalidInstanceError(
                "slack_range below 1 produces individually inadmissible "
                "requests; Theorem 3(3) says no online guarantee survives that"
            )
        self.price = price
        self.request_rate = float(request_rate)
        self.demand_mean = float(demand_mean)
        self.markup_range = (float(lo), float(hi))
        self.slack_range = (float(slo), float(shi))
        self.floor_capacity = float(floor_capacity)
        self.elasticity = float(elasticity)

    def generate_requests(
        self, horizon: float, rng: np.random.Generator | int | None = None
    ) -> tuple[list[VMRequest], np.ndarray, np.ndarray]:
        """Sample the price path and the elastic request stream.

        Returns ``(requests, grid_times, prices)`` so callers can inspect
        the price trajectory that shaped the stream.
        """
        gen = as_generator(rng)
        times, prices = self.price.sample(horizon, gen)
        requests: list[VMRequest] = []
        rid = 0
        # Thinning over the grid: per-cell Poisson with elastic rate.
        for i in range(len(times) - 1):
            t0, t1 = float(times[i]), float(times[i + 1])
            rate = self.request_rate * (self.price.mean / prices[i]) ** self.elasticity
            n = int(gen.poisson(rate * (t1 - t0)))
            for _ in range(n):
                submit = float(gen.uniform(t0, t1))
                demand = max(float(gen.exponential(self.demand_mean)), 1e-9)
                bid = float(
                    np.clip(
                        prices[i] * gen.uniform(*self.markup_range),
                        self.price.floor,
                        self.price.ceiling,
                    )
                )
                slack = float(gen.uniform(*self.slack_range))
                latest = submit + slack * demand / self.floor_capacity
                requests.append(
                    VMRequest(
                        request_id=rid,
                        submit_time=submit,
                        compute_demand=demand,
                        latest_finish=latest,
                        bid=bid,
                    )
                )
                rid += 1
        return requests, times, prices
