"""Unit tests for the Monte-Carlo replication harness."""

import numpy as np
import pytest

from repro.core import DoverScheduler, EDFScheduler, VDoverScheduler
from repro.errors import ReproError
from repro.experiments import (
    MonteCarloRunner,
    PaperInstanceFactory,
    SchedulerSpec,
    default_mc_runs,
)
from repro.workload import PoissonWorkload


def small_factory(lam=6.0, jobs=60.0):
    horizon = jobs / lam
    return PaperInstanceFactory(
        workload=PoissonWorkload(lam=lam, horizon=horizon),
        sojourn=horizon / 4.0,
    )


SPECS = [
    SchedulerSpec("EDF", EDFScheduler, {}),
    SchedulerSpec("V-Dover", VDoverScheduler, {"k": 7.0}),
]


class TestSchedulerSpec:
    def test_build_sets_name(self):
        spec = SchedulerSpec("mine", DoverScheduler, {"k": 7.0, "c_hat": 2.0})
        sched = spec.build()
        assert sched.name == "mine"
        assert sched.c_hat == 2.0

    def test_duplicate_names_rejected(self):
        with pytest.raises(ReproError):
            MonteCarloRunner(small_factory(), [SPECS[0], SPECS[0]])


class TestFactory:
    def test_produces_jobs_and_capacity(self):
        rng = np.random.default_rng(0)
        jobs, capacity = small_factory().make(rng)
        assert jobs
        assert capacity.lower == 1.0 and capacity.upper == 35.0

    def test_same_rng_state_same_instance(self):
        a = small_factory().make(np.random.default_rng(42))
        b = small_factory().make(np.random.default_rng(42))
        assert a[0] == b[0]


class TestRunner:
    def test_outcomes_are_paired(self):
        runner = MonteCarloRunner(small_factory(), SPECS)
        outcomes = runner.run(3, seed=0, workers=1)
        assert len(outcomes) == 3
        for o in outcomes:
            assert set(o.values) == {"EDF", "V-Dover"}
            assert o.generated_value > 0
            assert 0.0 <= o.normalized("V-Dover") <= 1.0

    def test_seeded_reproducibility(self):
        runner = MonteCarloRunner(small_factory(), SPECS)
        a = runner.run(4, seed=5, workers=1)
        b = runner.run(4, seed=5, workers=1)
        assert [o.values for o in a] == [o.values for o in b]

    def test_parallel_matches_serial(self):
        runner = MonteCarloRunner(small_factory(), SPECS)
        serial = runner.run(8, seed=9, workers=1)
        parallel = runner.run(8, seed=9, workers=2)
        assert [o.values for o in serial] == [o.values for o in parallel]

    def test_run_count_validated(self):
        runner = MonteCarloRunner(small_factory(), SPECS)
        with pytest.raises(ReproError):
            runner.run(0)


class TestDefaultRuns:
    def test_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_MC_RUNS", raising=False)
        assert default_mc_runs(12) == 12

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MC_RUNS", "77")
        assert default_mc_runs(12) == 77

    def test_env_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_MC_RUNS", "0")
        with pytest.raises(ReproError):
            default_mc_runs(12)

    def test_non_numeric_env_wrapped(self, monkeypatch):
        """Satellite: a typo'd REPRO_MC_RUNS surfaces as the project's own
        error type (with a hint), not a bare ValueError."""
        monkeypatch.setenv("REPRO_MC_RUNS", "lots")
        with pytest.raises(ReproError, match="REPRO_MC_RUNS must be an integer"):
            default_mc_runs(12)


class TestReplicationDeadlinePortability:
    """Satellite: the wall-clock budget must be enforced (not silently
    dropped) even where SIGALRM pre-emption is unavailable — e.g. when a
    replication runs on a non-main thread."""

    def _run_in_thread(self, fn):
        import threading

        box = {}

        def target():
            try:
                box["result"] = fn()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                box["error"] = exc

        thread = threading.Thread(target=target)
        thread.start()
        thread.join()
        if "error" in box:
            raise box["error"]
        return box.get("result")

    def test_main_thread_uses_sigalrm_silently(self):
        import warnings

        from repro.experiments.runner import _replication_deadline

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning would fail
            with _replication_deadline(5.0):
                pass

    def test_non_main_thread_warns_and_passes_fast_work(self):
        import warnings

        from repro.experiments.runner import (
            TimeoutEnforcementWarning,
            _replication_deadline,
        )

        def run():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                with _replication_deadline(5.0):
                    pass
            return caught

        caught = self._run_in_thread(run)
        assert any(
            issubclass(w.category, TimeoutEnforcementWarning) for w in caught
        )
        message = str(
            next(
                w.message
                for w in caught
                if issubclass(w.category, TimeoutEnforcementWarning)
            )
        )
        assert "cannot pre-empt" in message

    def test_non_main_thread_soft_deadline_raises_post_hoc(self):
        import time
        import warnings

        from repro.errors import ReplicationTimeout
        from repro.experiments.runner import _replication_deadline

        def run():
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                with _replication_deadline(0.01):
                    time.sleep(0.05)  # blows the budget, unpreempted

        with pytest.raises(ReplicationTimeout, match="soft deadline"):
            self._run_in_thread(run)

    def test_zero_budget_is_identity_everywhere(self):
        import warnings

        from repro.experiments.runner import _replication_deadline

        def run():
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                with _replication_deadline(None):
                    return "ok"

        assert self._run_in_thread(run) == "ok"
