"""Tests for regular-interval tracking (Definition 6) and the empirical
Lemma 1 check — the paper's analysis machinery, made observable."""

import pytest

from repro.capacity import ConstantCapacity, TwoStateMarkovCapacity
from repro.core import VDoverScheduler
from repro.core.dover_family import RegularInterval
from repro.sim import Job, simulate
from repro.workload import PoissonWorkload


def J(jid, r, p, d, v=1.0):
    return Job(jid, r, p, d, v)


class TestIntervalStructure:
    def test_single_job_single_interval(self):
        sched = VDoverScheduler(k=7.0)
        simulate([J(0, 1.0, 2.0, 9.0, v=3.0)], ConstantCapacity(1.0), sched)
        intervals = sched.regular_intervals
        assert len(intervals) == 1
        iv = intervals[0]
        assert iv.start == pytest.approx(1.0)
        assert iv.end == pytest.approx(3.0)
        assert iv.regval == pytest.approx(3.0)
        assert iv.clval == 0.0

    def test_edf_chain_is_one_interval(self):
        """A nested EDF preemption keeps Qedf busy, so the whole episode is
        a single regular interval ending at the last unwinding completion."""
        jobs = [J(0, 0.0, 4.0, 20.0, v=1.0), J(1, 1.0, 1.0, 5.0, v=1.0)]
        sched = VDoverScheduler(k=7.0)
        simulate(jobs, ConstantCapacity(1.0), sched)
        intervals = sched.regular_intervals
        assert len(intervals) == 1
        assert intervals[0].start == pytest.approx(0.0)
        assert intervals[0].end == pytest.approx(5.0)
        assert intervals[0].regval == pytest.approx(2.0)

    def test_disjoint_episodes_are_disjoint_intervals(self):
        jobs = [J(0, 0.0, 1.0, 5.0), J(1, 10.0, 1.0, 15.0)]
        sched = VDoverScheduler(k=7.0)
        simulate(jobs, ConstantCapacity(1.0), sched)
        intervals = sched.regular_intervals
        assert len(intervals) == 2
        assert intervals[0].end <= intervals[1].start

    def test_intervals_do_not_overlap(self):
        jobs = PoissonWorkload(lam=4.0, horizon=40.0).generate(3)
        sched = VDoverScheduler(k=7.0)
        cap = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=10.0, rng=5)
        simulate(jobs, cap, sched)
        intervals = sched.regular_intervals
        for a, b in zip(intervals, intervals[1:]):
            assert a.end <= b.start + 1e-9
            assert a.start < a.end + 1e-9

    def test_zero_cl_value_counted(self):
        """A job scheduled through handler D contributes to clval."""
        jobs = [J(0, 0.0, 10.0, 10.5, v=1.0), J(1, 2.0, 5.0, 7.0, v=100.0)]
        sched = VDoverScheduler(k=100.0)
        simulate(jobs, ConstantCapacity(1.0), sched)
        total_clval = sum(iv.clval for iv in sched.regular_intervals)
        assert total_clval == pytest.approx(100.0)

    def test_lemma1_bound_helper(self):
        iv = RegularInterval(start=0.0, end=1.0, regval=4.0, clval=2.0)
        assert iv.lemma1_bound(beta=3.0) == pytest.approx(5.0)


class TestLemma1:
    @pytest.mark.parametrize("seed", range(6))
    def test_lemma1_holds_on_paper_workload(self, seed):
        """Lemma 1: for every regular interval,
        ``∫ c <= regval + clval / (β − 1)`` (min density normalised to 1,
        which the paper's U[1,7] densities satisfy)."""
        lam, H = 6.0, 80.0
        jobs = PoissonWorkload(lam=lam, horizon=H).generate(seed)
        capacity = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=H / 4, rng=seed + 31)
        sched = VDoverScheduler(k=7.0)
        simulate(jobs, capacity, sched)
        assert sched.regular_intervals, "workload produced no intervals"
        for iv in sched.regular_intervals:
            work = capacity.integrate(iv.start, iv.end)
            assert work <= iv.lemma1_bound(sched.beta) + 1e-6, (
                f"Lemma 1 violated on [{iv.start}, {iv.end}]: "
                f"work={work}, bound={iv.lemma1_bound(sched.beta)}"
            )

    def test_lemma1_holds_under_heavy_overload(self):
        lam, H = 14.0, 40.0
        jobs = PoissonWorkload(lam=lam, horizon=H).generate(99)
        capacity = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=H / 4, rng=77)
        sched = VDoverScheduler(k=7.0)
        simulate(jobs, capacity, sched)
        for iv in sched.regular_intervals:
            work = capacity.integrate(iv.start, iv.end)
            assert work <= iv.lemma1_bound(sched.beta) + 1e-6
