"""E12 — multiprocessor extension: migration vs value triage.

The paper's conclusion gestures at cloud-wise scheduling "with
extensions"; this benchmark measures the two standard extensions against
each other on m = 4 servers with *independent* residual-capacity paths:

* **Global-EDF / Global-Density** — one pool, free migration: work flows
  to whichever server is currently fast;
* **Partitioned V-Dover** — route once, triage locally: no migration, but
  overload-safe value decisions per server.

Measured shape (asserted): migration dominates while the system is
underloaded-ish (independent capacity paths make partitioning waste
spikes), but plain global EDF collapses under heavy overload exactly like
its single-processor self, falling *below* partitioned V-Dover — the
crossover that motivates a (future) global V-Dover.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import render_table
from repro.capacity import TwoStateMarkovCapacity
from repro.cloud import LeastWorkDispatcher
from repro.core import VDoverScheduler
from repro.experiments.runner import default_mc_runs
from repro.multi import (
    GlobalDensityScheduler,
    GlobalEDFScheduler,
    GlobalVDoverScheduler,
    PartitionedScheduler,
    simulate_multi,
)
from repro.workload import PoissonWorkload

M_PROCS = 4


def _policies():
    return [
        ("Global-EDF", lambda: GlobalEDFScheduler()),
        ("Global-Density", lambda: GlobalDensityScheduler()),
        ("Global-V-Dover", lambda: GlobalVDoverScheduler(k=7.0)),
        (
            "Partitioned V-Dover",
            lambda: PartitionedScheduler(
                LeastWorkDispatcher(), lambda: VDoverScheduler(k=7.0)
            ),
        ),
    ]


def test_multiprocessor_extension(archive, benchmark):
    runs = default_mc_runs(8)
    lambdas = (12.0, 24.0, 40.0)
    means: dict[tuple[float, str], float] = {}
    rows = []
    for lam in lambdas:
        horizon = 1600.0 / lam
        per_policy: dict[str, list[float]] = {name: [] for name, _ in _policies()}
        for seed in range(runs):
            jobs = PoissonWorkload(lam=lam, horizon=horizon).generate(seed)
            generated = sum(j.value for j in jobs)
            if generated <= 0:
                continue
            for name, make in _policies():
                caps = [
                    TwoStateMarkovCapacity(
                        1.0, 10.0, mean_sojourn=horizon / 4, rng=seed * 10 + i
                    )
                    for i in range(M_PROCS)
                ]
                result = simulate_multi(jobs, caps, make())
                per_policy[name].append(result.value / generated)
        row = [f"{lam:g}"]
        for name, _ in _policies():
            mean = 100.0 * float(np.mean(per_policy[name]))
            means[(lam, name)] = mean
            row.append(mean)
        rows.append(row)

    archive(
        "multiprocessor",
        render_table(
            ["lambda"] + [name for name, _ in _policies()],
            rows,
            title=(
                f"Multiprocessor extension — % of offered value, m={M_PROCS} "
                f"servers with independent capacity paths (n={runs} runs)"
            ),
            float_fmt="{:.2f}",
        ),
    )

    # Light load: migration beats static partitioning.
    assert means[(12.0, "Global-EDF")] > means[(12.0, "Partitioned V-Dover")]
    # Heavy overload: EDF's value-blindness resurfaces; triage wins.
    assert means[(40.0, "Partitioned V-Dover")] > means[(40.0, "Global-EDF")]
    # Value-aware migration dominates value-blind migration under load.
    assert means[(40.0, "Global-Density")] > means[(40.0, "Global-EDF")]
    # The Global V-Dover extension dominates both parents at every load.
    for lam in lambdas:
        assert means[(lam, "Global-V-Dover")] >= means[(lam, "Global-EDF")] - 1.0
        assert (
            means[(lam, "Global-V-Dover")]
            >= means[(lam, "Partitioned V-Dover")] - 1.0
        )

    jobs = PoissonWorkload(lam=24.0, horizon=40.0).generate(0)
    caps = [
        TwoStateMarkovCapacity(1.0, 10.0, mean_sojourn=10.0, rng=i) for i in range(M_PROCS)
    ]
    benchmark(lambda: simulate_multi(jobs, caps, GlobalEDFScheduler()).value)
