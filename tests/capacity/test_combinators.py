"""Unit tests for the capacity combinators."""

import pytest

from repro.capacity import (
    ClampedCapacity,
    ConstantCapacity,
    PiecewiseConstantCapacity,
    ScaledCapacity,
    ShiftedCapacity,
    SinusoidalCapacity,
    SummedCapacity,
)
from repro.errors import CapacityError


@pytest.fixture
def step():
    return PiecewiseConstantCapacity([0.0, 5.0], [1.0, 3.0])


class TestScaled:
    def test_values_and_bounds(self, step):
        cap = ScaledCapacity(step, 2.0)
        assert cap.value(1.0) == 2.0
        assert cap.value(6.0) == 6.0
        assert (cap.lower, cap.upper) == (2.0, 6.0)

    def test_integral_scales(self, step):
        cap = ScaledCapacity(step, 0.5)
        assert cap.integrate(0.0, 10.0) == pytest.approx(0.5 * step.integrate(0.0, 10.0))

    def test_advance_consistent(self, step):
        cap = ScaledCapacity(step, 2.0)
        t = cap.advance(0.0, 12.0)
        assert cap.integrate(0.0, t) == pytest.approx(12.0)

    def test_rejects_non_positive_factor(self, step):
        with pytest.raises(CapacityError):
            ScaledCapacity(step, 0.0)


class TestShifted:
    def test_shift_moves_breakpoint(self, step):
        cap = ShiftedCapacity(step, 2.0)
        assert cap.value(6.9) == 1.0   # inner t=4.9, still in first piece
        assert cap.value(7.0) == 3.0   # inner t=5.0

    def test_prefix_pinned_at_initial_rate(self, step):
        cap = ShiftedCapacity(step, 2.0)
        assert cap.value(0.5) == 1.0

    def test_pieces_tile(self, step):
        cap = ShiftedCapacity(step, 2.0)
        pieces = list(cap.pieces(0.0, 12.0))
        assert pieces[0][0] == 0.0
        assert pieces[-1][1] == 12.0
        for (s0, e0, _), (s1, _, _) in zip(pieces, pieces[1:]):
            assert e0 == pytest.approx(s1)

    def test_integral_matches_pieces(self, step):
        cap = ShiftedCapacity(step, 2.0)
        by_pieces = sum((e - s) * r for s, e, r in cap.pieces(1.0, 11.0))
        assert cap.integrate(1.0, 11.0) == pytest.approx(by_pieces)

    def test_rejects_negative_shift(self, step):
        with pytest.raises(CapacityError):
            ShiftedCapacity(step, -1.0)


class TestSummed:
    def test_pointwise_sum(self, step):
        cap = SummedCapacity([step, ConstantCapacity(2.0)])
        assert cap.value(1.0) == 3.0
        assert cap.value(6.0) == 5.0
        assert (cap.lower, cap.upper) == (3.0, 5.0)

    def test_integral_is_sum_of_integrals(self, step):
        other = PiecewiseConstantCapacity([0.0, 3.0], [2.0, 4.0])
        cap = SummedCapacity([step, other])
        assert cap.integrate(0.0, 10.0) == pytest.approx(
            step.integrate(0.0, 10.0) + other.integrate(0.0, 10.0)
        )

    def test_pieces_cover_union_of_breakpoints(self, step):
        other = PiecewiseConstantCapacity([0.0, 3.0], [2.0, 4.0])
        cap = SummedCapacity([step, other])
        edges = [s for s, _, _ in cap.pieces(0.0, 10.0)]
        assert 3.0 in edges and 5.0 in edges

    def test_empty_rejected(self):
        with pytest.raises(CapacityError):
            SummedCapacity([])

    def test_sum_of_sinusoids_is_exact_on_pieces(self):
        a = SinusoidalCapacity(1.0, 3.0, period=8.0)
        b = SinusoidalCapacity(2.0, 4.0, period=5.0)
        cap = SummedCapacity([a, b])
        by_pieces = sum((e - s) * r for s, e, r in cap.pieces(0.0, 20.0))
        assert cap.integrate(0.0, 20.0) == pytest.approx(by_pieces)


class TestClamped:
    def test_clamps_both_ends(self, step):
        cap = ClampedCapacity(step, floor=1.5, ceiling=2.5)
        assert cap.value(1.0) == 1.5
        assert cap.value(6.0) == 2.5
        assert (cap.lower, cap.upper) == (1.5, 2.5)

    def test_noop_when_within_band(self, step):
        cap = ClampedCapacity(step, floor=0.5, ceiling=10.0)
        assert cap.integrate(0.0, 10.0) == pytest.approx(step.integrate(0.0, 10.0))

    def test_rejects_bad_band(self, step):
        with pytest.raises(CapacityError):
            ClampedCapacity(step, floor=3.0, ceiling=2.0)
        with pytest.raises(CapacityError):
            ClampedCapacity(step, floor=0.0, ceiling=2.0)

    def test_advance_consistent(self, step):
        cap = ClampedCapacity(step, floor=1.5, ceiling=2.5)
        t = cap.advance(0.0, 10.0)
        assert cap.integrate(0.0, t) == pytest.approx(10.0)


class TestComposition:
    def test_scheduling_on_composed_capacity(self, step):
        """Combinators plug into the engine like any other model."""
        from repro.core import EDFScheduler
        from repro.sim import Job, simulate

        cap = ClampedCapacity(
            SummedCapacity([step, ConstantCapacity(1.0)]), floor=1.0, ceiling=3.0
        )
        jobs = [Job(0, 0.0, 6.0, 4.0, 1.0)]
        result = simulate(jobs, cap, EDFScheduler(), validate=True)
        # rate is clamped to 2 then 3: 2*4 = 8 >= 6 by t=3.
        assert result.completed_ids == [0]
        assert result.trace.completion_times[0] == pytest.approx(3.0)
