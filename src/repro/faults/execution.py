"""Execution-layer fault injection: kills, revocations, scheduled crashes.

PR 2's sensing faults (:mod:`repro.faults.models`) corrupt what schedulers
*observe*; the models here corrupt what actually *happens*.  Secondary jobs
live on residual capacity — the spot/preemptible regime where machines
disappear under you — so the executed world must be allowed to misbehave:

* :class:`JobKillFault` — the running secondary job is aborted mid-run at
  Poisson instants; a configurable fraction of its progress survives the
  kill (``retain=0`` restarts from scratch, ``retain=1`` is a pure
  preemption).
* :class:`RevocationBurst` — primary-preemption/VM-revocation spikes: for
  the duration of each (renewal-sampled or explicitly given) revocation
  window the residual capacity is forced down to the guaranteed floor
  ``c̲`` and the running job is evicted at the window start.  Windows can
  be derived from :class:`~repro.cloud.spotmarket.SpotPriceProcess` price
  spikes via :meth:`RevocationBurst.from_price_spikes` (a price above the
  threshold = the primary outbids the secondary).
* :class:`EngineCrashPlan` — a deterministic, scheduled crash of the
  simulation *process* itself at a given time or event index, raising
  :class:`~repro.errors.SimulatedCrash` with the engine's last periodic
  snapshot attached; the recovery machinery (snapshot + write-ahead
  journal, :mod:`repro.sim.journal`) then resumes the run bit-identically.

All models are plain picklable objects, seeded explicitly like the sensing
faults, and are *armed* on an engine before the run starts: arming pushes
``FAULT`` events (and, for event-indexed crashes, registers a pre-dispatch
check).  :class:`ExecutionFaultSpec` is the picklable recipe the
Monte-Carlo harness ships to workers, mirroring
:class:`~repro.faults.spec.FaultSpec`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.capacity.base import CapacityFunction
from repro.capacity.piecewise import PiecewiseConstantCapacity
from repro.errors import FaultConfigError

__all__ = [
    "ExecutionFault",
    "JobKillFault",
    "RecordedFaultLog",
    "RevocationBurst",
    "EngineCrashPlan",
    "ExecutionFaultSpec",
    "EXECUTION_FAULT_KINDS",
    "apply_fault_transforms",
]

#: The supported execution-fault families, in presentation order.
EXECUTION_FAULT_KINDS = ("kill", "revocation", "crash")


class ExecutionFault:
    """Base class: a picklable, seeded event-level fault model.

    Lifecycle: construct (pure data) → optionally :meth:`transform` the
    instance's capacity (revocations reshape the physics) → :meth:`arm` on
    the engine right before the run (pushes FAULT events).  A restored
    engine calls :meth:`rearm` instead — queued FAULT events travel inside
    the snapshot, so ``rearm`` must only re-register out-of-band hooks.

    Per-processor targeting: faults carry a ``proc`` attribute (default 0,
    the whole world on a single-processor engine).  On a multiprocessor
    engine a fault strikes only its target machine — the modelled reality
    of a heterogeneous fleet, where one VM is revoked while its siblings
    keep running.  Use :func:`apply_fault_transforms` to apply physics
    transforms to the right trajectory of a capacity list.
    """

    #: target processor (0 on single-processor engines)
    proc: int = 0

    def transform(
        self, capacity: CapacityFunction, horizon: float
    ) -> CapacityFunction:
        """Reshape the *physics* of the run (default: identity)."""
        return capacity

    def arm(self, engine, index: int) -> None:
        """Queue this fault's events on a fresh engine.  ``index`` is the
        fault's position in the engine's fault list (used in payloads)."""
        raise NotImplementedError

    def rearm(self, engine, index: int) -> None:
        """Re-register out-of-band hooks on a snapshot-restored engine.
        Default: nothing (event-queue faults travel in the snapshot)."""

    def _check_proc(self, engine) -> None:
        """Refuse to arm on an engine with fewer processors than targeted."""
        n = int(getattr(engine, "n_procs", 1))
        if not 0 <= self.proc < n:
            raise FaultConfigError(
                f"{type(self).__name__} targets processor {self.proc}, "
                f"engine has {n}"
            )


def apply_fault_transforms(
    capacities: Sequence[CapacityFunction],
    faults: Sequence[ExecutionFault],
    horizon: float,
) -> List[CapacityFunction]:
    """Apply each fault's physics transform to its *target* processor.

    The single-processor call sites apply ``fault.transform`` to the one
    capacity directly; this is the multiprocessor equivalent — fault ``f``
    reshapes ``capacities[f.proc]`` only, the rest pass through untouched.
    """
    out = list(capacities)
    for fault in faults:
        proc = int(getattr(fault, "proc", 0))
        if not 0 <= proc < len(out):
            raise FaultConfigError(
                f"{type(fault).__name__} targets processor {proc}, "
                f"cluster has {len(out)}"
            )
        out[proc] = fault.transform(out[proc], horizon)
    return out


class JobKillFault(ExecutionFault):
    """Abort the running job at Poisson instants, destroying progress.

    Parameters
    ----------
    rate:
        Poisson rate of kill attempts per unit time (an attempt that lands
        on an idle processor is a miss).
    retain:
        Fraction of the victim's already-performed progress that survives
        the kill, in [0, 1].  ``0`` (default) models a full restart —
        workload progress lost; ``1`` models a pure eviction.
    seed:
        Seed of the kill-time sampler (kill times are drawn once, at arm
        time, so a run's kill schedule is deterministic data).
    proc:
        Target processor (default 0).  On a multiprocessor engine the
        kills strike only this machine's running job.
    """

    def __init__(
        self,
        rate: float,
        *,
        retain: float = 0.0,
        seed: int = 0,
        proc: int = 0,
    ) -> None:
        if not rate >= 0.0:
            raise FaultConfigError(f"kill rate must be >= 0, got {rate!r}")
        if not 0.0 <= retain <= 1.0:
            raise FaultConfigError(f"retain must be in [0, 1], got {retain!r}")
        if proc < 0:
            raise FaultConfigError(f"proc must be >= 0, got {proc!r}")
        self.rate = float(rate)
        self.retain = float(retain)
        self.seed = int(seed)
        self.proc = int(proc)

    def kill_times(self, horizon: float) -> List[float]:
        """The deterministic kill schedule over ``[0, horizon]``."""
        if self.rate == 0.0 or horizon <= 0.0:
            return []
        rng = np.random.default_rng(self.seed)
        times: List[float] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / self.rate))
            if t >= horizon:
                return times
            times.append(t)

    def arm(self, engine, index: int) -> None:
        self._check_proc(engine)
        # proc 0 keeps the historical 3-tuple payload so single-processor
        # journals (and their keys) stay bit-identical across versions.
        suffix = () if self.proc == 0 else (self.proc,)
        for t in self.kill_times(engine.horizon):
            engine.push_fault_event(t, ("kill", index, self.retain) + suffix)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = f", proc={self.proc}" if self.proc else ""
        return (
            f"JobKillFault(rate={self.rate:g}, retain={self.retain:g}, "
            f"seed={self.seed}{where})"
        )


class RevocationBurst(ExecutionFault):
    """VM-revocation spikes: capacity pinned to ``c̲``, running job evicted.

    During each revocation window the primary workload claims everything
    above the guaranteed floor: :meth:`transform` rewrites the capacity
    trajectory to ``c̲`` inside the windows (physics — both channels), and
    :meth:`arm` queues an eviction at each window start.

    Parameters
    ----------
    rate:
        Rate of revocation onsets per unit time (alternating renewal: up
        durations ~ Exp(mean ``1/rate``), down durations ~ Exp(mean
        ``mean_down``)).  Ignored when explicit ``windows`` are given.
    mean_down:
        Mean revocation window length.
    seed:
        Seed of the renewal sampler.
    windows:
        Explicit ``(start, end)`` revocation windows, overriding sampling —
        e.g. from :meth:`from_price_spikes`.
    proc:
        Target processor (default 0).  On a multiprocessor engine only
        this machine's capacity is pinned to its floor and only its
        running job is evicted — one VM of the fleet is revoked, the
        siblings keep running.
    """

    def __init__(
        self,
        rate: float = 0.0,
        *,
        mean_down: float = 1.0,
        seed: int = 0,
        windows: "Sequence[Tuple[float, float]] | None" = None,
        proc: int = 0,
    ) -> None:
        if not rate >= 0.0:
            raise FaultConfigError(f"revocation rate must be >= 0, got {rate!r}")
        if not mean_down > 0.0:
            raise FaultConfigError(f"mean_down must be > 0, got {mean_down!r}")
        if proc < 0:
            raise FaultConfigError(f"proc must be >= 0, got {proc!r}")
        self.rate = float(rate)
        self.mean_down = float(mean_down)
        self.seed = int(seed)
        self.proc = int(proc)
        self._explicit_windows = None
        if windows is not None:
            cleaned = []
            for start, end in windows:
                start, end = float(start), float(end)
                if not (math.isfinite(start) and math.isfinite(end)) or end <= start:
                    raise FaultConfigError(
                        f"bad revocation window ({start!r}, {end!r})"
                    )
                cleaned.append((start, end))
            cleaned.sort()
            for (s0, e0), (s1, e1) in zip(cleaned, cleaned[1:]):
                if s1 < e0:
                    raise FaultConfigError(
                        f"revocation windows overlap: ({s0}, {e0}) and "
                        f"({s1}, {e1})"
                    )
            self._explicit_windows = tuple(cleaned)

    @classmethod
    def from_price_spikes(
        cls,
        times: "np.ndarray | Sequence[float]",
        prices: "np.ndarray | Sequence[float]",
        threshold: float,
    ) -> "RevocationBurst":
        """Windows = maximal grid intervals where the spot price exceeds
        ``threshold`` (the primary outbids the secondary — exactly the
        :class:`~repro.cloud.spotmarket.SpotPriceProcess` output format)."""
        times = np.asarray(times, dtype=float)
        prices = np.asarray(prices, dtype=float)
        if times.shape != prices.shape or times.ndim != 1:
            raise FaultConfigError(
                "times and prices must be 1-D arrays of equal length"
            )
        windows: List[Tuple[float, float]] = []
        open_start: Optional[float] = None
        for i, price in enumerate(prices):
            above = price > threshold
            if above and open_start is None:
                open_start = float(times[i])
            elif not above and open_start is not None:
                windows.append((open_start, float(times[i])))
                open_start = None
        if open_start is not None:
            # Spike still open at the end of the grid: one grid step wide.
            step = float(times[1] - times[0]) if len(times) > 1 else 1.0
            windows.append((open_start, float(times[-1]) + step))
        return cls(windows=windows)

    def windows(self, horizon: float) -> Tuple[Tuple[float, float], ...]:
        """The (clipped) revocation windows over ``[0, horizon]``."""
        if self._explicit_windows is not None:
            return tuple(
                (s, min(e, horizon))
                for s, e in self._explicit_windows
                if s < horizon
            )
        if self.rate == 0.0 or horizon <= 0.0:
            return ()
        rng = np.random.default_rng(self.seed)
        out: List[Tuple[float, float]] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / self.rate))  # up period
            if t >= horizon:
                return tuple(out)
            down = float(rng.exponential(self.mean_down))
            out.append((t, min(t + down, horizon)))
            t += down
            if t >= horizon:
                return tuple(out)

    def transform(
        self, capacity: CapacityFunction, horizon: float
    ) -> CapacityFunction:
        """Pin the trajectory to ``c̲`` inside each revocation window.

        Materialises the (possibly stochastic) trajectory over
        ``[0, horizon]`` and returns an equivalent
        :class:`~repro.capacity.piecewise.PiecewiseConstantCapacity` with
        the windows overlaid — same declared band, so scheduler contracts
        are unchanged.
        """
        windows = self.windows(horizon)
        if not windows:
            return capacity
        floor = capacity.lower
        # Cut points: capacity pieces × window edges.
        cuts = {0.0, float(horizon)}
        for start, end, _rate in capacity.pieces(0.0, horizon):
            cuts.add(float(start))
            cuts.add(float(end))
        for s, e in windows:
            cuts.add(float(s))
            cuts.add(float(e))
        grid = sorted(c for c in cuts if 0.0 <= c <= horizon)

        def revoked(t: float) -> bool:
            return any(s <= t < e for s, e in windows)

        breakpoints: List[float] = []
        rates: List[float] = []
        for left, right in zip(grid, grid[1:]):
            if right <= left:
                continue
            mid = 0.5 * (left + right)
            rate = floor if revoked(mid) else capacity.value(mid)
            if breakpoints and rates[-1] == rate:
                continue  # merge equal-rate neighbours
            breakpoints.append(left)
            rates.append(rate)
        if not breakpoints:  # pragma: no cover - defensive
            return capacity
        if breakpoints[0] != 0.0:
            breakpoints.insert(0, 0.0)
            rates.insert(0, rates[0])
        return PiecewiseConstantCapacity(
            breakpoints, rates, lower=capacity.lower, upper=capacity.upper
        )

    def arm(self, engine, index: int) -> None:
        self._check_proc(engine)
        # proc 0 keeps the historical 2-tuple payload so single-processor
        # journals (and their keys) stay bit-identical across versions.
        suffix = () if self.proc == 0 else (self.proc,)
        for start, _end in self.windows(engine.horizon):
            engine.push_fault_event(start, ("evict", index) + suffix)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = f", proc={self.proc}" if self.proc else ""
        if self._explicit_windows is not None:
            return f"RevocationBurst(windows={len(self._explicit_windows)}{where})"
        return (
            f"RevocationBurst(rate={self.rate:g}, mean_down={self.mean_down:g}, "
            f"seed={self.seed}{where})"
        )


class RecordedFaultLog(ExecutionFault):
    """Replay a *recorded* sequence of injected fault events verbatim.

    The live service (:mod:`repro.service`) lets operators push kill and
    evict events mid-run through the ingress; those injections are not a
    sampled model, they are observed history.  The shard records each
    push as an exact ``(time, payload)`` pair, and the closed-horizon
    replay arms this log so the re-run sees byte-for-byte the same FAULT
    events — including their journal keys — as the live run did.

    Payloads carrying the sentinel fault index ``-1`` (the service's
    injected kills/evicts) never consult the engine's fault list, so the
    log can sit at any position in the replay engine's ``faults``.
    """

    def __init__(
        self, events: Sequence[Tuple[float, Tuple]]
    ) -> None:
        cleaned: List[Tuple[float, Tuple]] = []
        for time, payload in events:
            time = float(time)
            payload = tuple(payload)
            if not payload or payload[0] not in ("kill", "evict"):
                raise FaultConfigError(
                    f"RecordedFaultLog only replays kill/evict payloads, "
                    f"got {payload!r}"
                )
            cleaned.append((time, payload))
        self.events: Tuple[Tuple[float, Tuple], ...] = tuple(cleaned)

    def arm(self, engine, index: int) -> None:
        for time, payload in self.events:
            engine.push_fault_event(time, payload)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RecordedFaultLog(n={len(self.events)})"


class EngineCrashPlan(ExecutionFault):
    """A deterministic, scheduled crash of the simulation process.

    Exactly one of ``at_time`` / ``at_event`` must be given: the plan
    raises :class:`~repro.errors.SimulatedCrash` when simulation time
    reaches ``at_time`` (as a lowest-priority FAULT event) or just before
    the ``at_event``-th event dispatch.  ``fired`` flips to True at crash
    time and travels with engine snapshots, so a resumed run sails past the
    crash point.
    """

    #: engines use this marker to default-enable periodic snapshotting
    is_crash_plan = True

    def __init__(
        self,
        at_time: float | None = None,
        at_event: int | None = None,
    ) -> None:
        if (at_time is None) == (at_event is None):
            raise FaultConfigError(
                "exactly one of at_time / at_event must be given"
            )
        if at_time is not None and not (math.isfinite(at_time) and at_time >= 0.0):
            raise FaultConfigError(f"bad crash time {at_time!r}")
        if at_event is not None and at_event < 0:
            raise FaultConfigError(f"bad crash event index {at_event!r}")
        self.at_time = None if at_time is None else float(at_time)
        self.at_event = None if at_event is None else int(at_event)
        self.fired = False

    def arm(self, engine, index: int) -> None:
        if self.at_time is not None:
            engine.push_fault_event(self.at_time, ("crash", index))
        else:
            engine.register_event_crash(index, self.at_event)

    def rearm(self, engine, index: int) -> None:
        # Time-based crash events travel inside the snapshot's event heap;
        # only the event-indexed pre-dispatch check lives outside it.
        if self.at_event is not None:
            engine.register_event_crash(index, self.at_event)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = (
            f"at_time={self.at_time:g}"
            if self.at_time is not None
            else f"at_event={self.at_event}"
        )
        return f"EngineCrashPlan({where}, fired={self.fired})"


@dataclass(frozen=True)
class ExecutionFaultSpec:
    """A picklable recipe for one execution fault (worker-shippable).

    Severity conventions (``severity = 0`` builds no fault):

    * ``kill`` — Poisson kill rate per unit time; option ``retain`` (default
      0.0) is the surviving-progress fraction;
    * ``revocation`` — revocation-onset rate; option ``mean_down`` (default
      1.0) is the mean window length;
    * ``crash`` — severity ignored; options ``at_time`` *or* ``at_event``
      place the crash.

    Kill and revocation specs accept a ``proc`` option (default 0) to
    target one machine of a multiprocessor engine.
    """

    kind: str
    severity: float = 0.0
    options: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EXECUTION_FAULT_KINDS and self.kind != "none":
            raise FaultConfigError(
                f"unknown execution-fault kind {self.kind!r}; expected one "
                f"of {('none',) + EXECUTION_FAULT_KINDS}"
            )
        if not self.severity >= 0.0:
            raise FaultConfigError(
                f"severity must be >= 0, got {self.severity!r}"
            )
        if self.kind == "crash" and not (
            "at_time" in self.options or "at_event" in self.options
        ):
            raise FaultConfigError(
                "crash spec needs an at_time or at_event option"
            )

    @property
    def label(self) -> str:
        if self.kind == "none" or (self.kind != "crash" and self.severity == 0.0):
            return "no-fault"
        if self.kind == "crash":
            return "crash"
        return f"{self.kind}={self.severity:g}"

    def build(self, seed: int = 0) -> Optional[ExecutionFault]:
        """Materialise the fault (``None`` when the spec is the identity)."""
        if self.kind == "none":
            return None
        if self.kind == "kill":
            if self.severity == 0.0:
                return None
            return JobKillFault(
                self.severity,
                retain=float(self.options.get("retain", 0.0)),
                seed=seed,
                proc=int(self.options.get("proc", 0)),
            )
        if self.kind == "revocation":
            if self.severity == 0.0:
                return None
            return RevocationBurst(
                self.severity,
                mean_down=float(self.options.get("mean_down", 1.0)),
                seed=seed,
                proc=int(self.options.get("proc", 0)),
            )
        if self.kind == "crash":
            return EngineCrashPlan(
                at_time=self.options.get("at_time"),
                at_event=self.options.get("at_event"),
            )
        raise FaultConfigError(  # pragma: no cover - __post_init__ guards
            f"unknown execution-fault kind {self.kind!r}"
        )
