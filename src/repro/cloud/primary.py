"""Primary-job occupancy: where the time-varying capacity comes from.

The paper's ``c(t)`` is "the remaining resource capacity left by the
execution of the primary jobs".  This module closes that loop: it simulates
a server's primary (contracted, on-demand) VM population — Poisson arrivals,
exponential holding times, each instance pinning a fixed slice of the
server — and emits the *residual* capacity as a
:class:`~repro.capacity.piecewise.PiecewiseConstantCapacity` that plugs
straight into the schedulers.

Non-intrusiveness (Section I-A) is modelled in the admission rule: primary
arrivals are admitted while the occupied share stays within
``total − floor``; the ``floor`` is the provider's standing reservation
that defines the conservative bound ``c̲`` the secondary scheduler is
promised.  (Real providers publish exactly such a bound to make spot
capacity saleable at all.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.capacity.piecewise import PiecewiseConstantCapacity
from repro.errors import InvalidInstanceError
from repro.workload.base import as_generator

__all__ = ["PrimaryOccupancyModel"]


@dataclass(frozen=True)
class PrimaryOccupancyModel:
    """M/M/c-style primary VM population on one server.

    Parameters
    ----------
    total_capacity:
        The server's full capacity (``c̄`` of the residual process: the
        residual equals this when no primary runs).
    floor:
        Guaranteed residual capacity (``c̲``): primary admission never eats
        into this reservation.
    arrival_rate:
        Poisson rate of primary VM launch requests.
    mean_holding:
        Mean exponential lifetime of a primary VM.
    vm_size:
        Capacity share each primary VM pins while alive.
    """

    total_capacity: float
    floor: float
    arrival_rate: float
    mean_holding: float
    vm_size: float = 1.0

    def __post_init__(self) -> None:
        if not (0.0 < self.floor < self.total_capacity):
            raise InvalidInstanceError(
                f"need 0 < floor < total_capacity, got floor={self.floor!r}, "
                f"total={self.total_capacity!r}"
            )
        if self.arrival_rate <= 0.0 or self.mean_holding <= 0.0:
            raise InvalidInstanceError(
                "arrival_rate and mean_holding must be positive"
            )
        if self.vm_size <= 0.0 or self.vm_size > self.total_capacity - self.floor:
            raise InvalidInstanceError(
                f"vm_size {self.vm_size!r} must fit within "
                f"total − floor = {self.total_capacity - self.floor!r}"
            )

    @property
    def max_primary_vms(self) -> int:
        """How many primary VMs fit without violating the floor."""
        return int((self.total_capacity - self.floor) / self.vm_size + 1e-9)

    def sample_residual(
        self,
        horizon: float,
        rng: np.random.Generator | int | None = None,
    ) -> PiecewiseConstantCapacity:
        """Simulate the primary population on ``[0, horizon]`` and return
        the residual capacity ``c(t) = total − occupied(t)``.

        Arrivals finding the server primary-full are rejected (they run
        elsewhere in the cloud); departures free one VM slice each.
        """
        if horizon <= 0.0:
            raise InvalidInstanceError(f"horizon must be positive: {horizon!r}")
        gen = as_generator(rng)
        cap = self.max_primary_vms

        # Event-driven birth-death process.
        breakpoints = [0.0]
        occupancies = [0]
        active: list[float] = []  # departure times of live VMs (unsorted)
        t = 0.0
        n = 0
        next_arrival = gen.exponential(1.0 / self.arrival_rate)
        while True:
            next_departure = min(active) if active else float("inf")
            t_next = min(next_arrival, next_departure)
            if t_next >= horizon:
                break
            t = t_next
            if next_arrival <= next_departure:
                if n < cap:
                    n += 1
                    active.append(t + gen.exponential(self.mean_holding))
                next_arrival = t + gen.exponential(1.0 / self.arrival_rate)
            else:
                active.remove(next_departure)
                n -= 1
            if n != occupancies[-1]:
                if t == breakpoints[-1]:
                    occupancies[-1] = n
                else:
                    breakpoints.append(t)
                    occupancies.append(n)

        # Residual rates are *derived* floats (`total − k·vm_size`), and
        # when the top occupancy exactly exhausts `total − floor` the
        # re-derived minimum can drift below the floor — by one ulp from
        # division rounding, or by up to ~1e-9·vm_size from the deliberate
        # rounding nudge in `max_primary_vms`.  Snap such drift onto the
        # *exact* band edges so the realized min/max rates equal the
        # declared `floor`/`total_capacity` (no re-derived arithmetic),
        # instead of tripping the capacity-band validation on a legitimate
        # instance.  Genuine violations (off by a whole VM quantum) still
        # fall outside the snap window and raise in the constructor.
        snap = 1e-8 * max(1.0, self.vm_size)
        rates = []
        for k in occupancies:
            r = self.total_capacity - k * self.vm_size
            if self.floor - snap <= r < self.floor:
                r = self.floor
            elif r > self.total_capacity:  # pragma: no cover - k >= 0
                r = self.total_capacity
            rates.append(r)
        return PiecewiseConstantCapacity(
            breakpoints,
            rates,
            lower=self.floor,
            upper=self.total_capacity,
        )

    def expected_occupancy(self) -> float:
        """Erlang-loss mean occupancy (offered load capped at the VM cap) —
        a sanity anchor for tests: offered load ``a = λ·mean_holding`` VMs,
        truncated by the admission cap."""
        a = self.arrival_rate * self.mean_holding
        cap = self.max_primary_vms
        # Erlang-B stationary distribution of M/M/cap/cap.
        weights = []
        w = 1.0
        for k in range(cap + 1):
            if k > 0:
                w *= a / k
            weights.append(w)
        total = sum(weights)
        return sum(k * w for k, w in enumerate(weights)) / total
