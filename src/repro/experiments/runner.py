"""Seeded, optionally parallel Monte-Carlo replication harness.

Design rules (per the HPC guides and for statistical hygiene):

* every replication derives its RNG from ``SeedSequence(seed).spawn(n)``,
  so results do not depend on worker scheduling or on how many workers run;
* all schedulers inside one replication run on the *same* instance (same
  jobs, same realized capacity path), so cross-algorithm comparisons are
  paired — exactly how the paper compares V-Dover with Dover's four ĉ
  settings;
* worker payloads are plain picklable dataclasses (no lambdas), so the
  harness runs unchanged under ``multiprocessing``.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.capacity.base import CapacityFunction
from repro.capacity.markov import TwoStateMarkovCapacity
from repro.errors import ReproError
from repro.sim.engine import simulate
from repro.sim.job import Job, total_value
from repro.sim.scheduler import Scheduler
from repro.workload.base import WorkloadGenerator

__all__ = [
    "SchedulerSpec",
    "PaperInstanceFactory",
    "ReplicationOutcome",
    "MonteCarloRunner",
    "default_mc_runs",
]


def default_mc_runs(fallback: int) -> int:
    """Monte-Carlo run count: ``REPRO_MC_RUNS`` env override, else fallback.

    The paper averages over 800 runs; the shipped benchmarks default to a
    laptop-friendly count and scale up via the environment variable."""
    raw = os.environ.get("REPRO_MC_RUNS")
    if raw is None:
        return fallback
    runs = int(raw)
    if runs < 1:
        raise ReproError(f"REPRO_MC_RUNS must be >= 1, got {runs}")
    return runs


@dataclass(frozen=True)
class SchedulerSpec:
    """Picklable recipe for a scheduler instance."""

    name: str
    cls: type
    kwargs: Mapping = field(default_factory=dict)

    def build(self) -> Scheduler:
        scheduler = self.cls(**self.kwargs)
        scheduler.name = self.name  # stable label independent of defaults
        return scheduler


@dataclass(frozen=True)
class PaperInstanceFactory:
    """The paper's Section-IV instance distribution.

    Jobs from a workload generator; capacity an independent two-state CTMC
    (``low``/``high`` with mean sojourn ``sojourn``).  One factory call
    consumes two child RNGs — one for jobs, one for the capacity path — so
    the two processes are independent, as in the paper.
    """

    workload: WorkloadGenerator
    low: float = 1.0
    high: float = 35.0
    sojourn: float = 1.0

    def make(self, rng: np.random.Generator) -> tuple[list[Job], CapacityFunction]:
        job_seed, cap_seed = rng.spawn(2)
        jobs = self.workload.generate(job_seed)
        capacity = TwoStateMarkovCapacity(
            self.low, self.high, mean_sojourn=self.sojourn, rng=cap_seed
        )
        return jobs, capacity


@dataclass
class ReplicationOutcome:
    """Per-replication metrics for every scheduler (paired by instance)."""

    generated_value: float
    n_jobs: int
    #: scheduler name -> accrued value
    values: dict[str, float]
    #: scheduler name -> completed-job count
    completed: dict[str, int]

    def normalized(self, name: str) -> float:
        return self.values[name] / self.generated_value if self.generated_value else 0.0


def _run_one(
    args: tuple,
) -> ReplicationOutcome:
    """Worker: one replication — one instance, all schedulers (paired)."""
    factory, specs, seed_seq = args
    rng = np.random.default_rng(seed_seq)
    jobs, capacity = factory.make(rng)
    gen_value = total_value(jobs)
    values: dict[str, float] = {}
    completed: dict[str, int] = {}
    for spec in specs:
        result = simulate(jobs, capacity, spec.build())
        values[spec.name] = result.value
        completed[spec.name] = result.n_completed
    return ReplicationOutcome(
        generated_value=gen_value,
        n_jobs=len(jobs),
        values=values,
        completed=completed,
    )


class MonteCarloRunner:
    """Replicate (instance → all schedulers) ``n_runs`` times.

    Parameters
    ----------
    factory:
        Instance factory (e.g. :class:`PaperInstanceFactory`).
    specs:
        Scheduler recipes, all evaluated on every instance.
    """

    def __init__(self, factory, specs: Sequence[SchedulerSpec]) -> None:
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate scheduler names: {names}")
        self.factory = factory
        self.specs = list(specs)

    def run(
        self,
        n_runs: int,
        seed: int = 0,
        *,
        workers: int | None = None,
    ) -> list[ReplicationOutcome]:
        """Execute the replications; ``workers=0``/``1`` forces serial.

        ``workers=None`` auto-sizes to the CPU count (capped at 8) when the
        job is big enough to amortise process startup.
        """
        if n_runs < 1:
            raise ReproError(f"n_runs must be >= 1, got {n_runs}")
        seeds = np.random.SeedSequence(seed).spawn(n_runs)
        payloads = [(self.factory, self.specs, s) for s in seeds]

        if workers is None:
            workers = min(os.cpu_count() or 1, 8) if n_runs >= 8 else 1
        if workers <= 1:
            return [_run_one(p) for p in payloads]

        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=workers) as pool:
            return pool.map(_run_one, payloads, chunksize=max(1, n_runs // (4 * workers)))
