"""Same-instant event cascades: the orderings the paper's workload forces.

With relative deadlines of exactly ``p/c̲``, a job's release, its
zero-laxity alarm and (if it runs in isolation) its completion-at-deadline
all share timestamps with other events.  These tests pin the cascade
semantics end to end.
"""

import pytest

from repro.capacity import ConstantCapacity
from repro.core import VDoverScheduler
from repro.sim import Job, simulate


def J(jid, r, p, d, v=1.0):
    return Job(jid, r, p, d, v)


class TestSameInstantCascades:
    def test_release_then_alarm_same_instant(self):
        """A zero-laxity arrival while another job runs: the release
        handler queues it, then its (clamped) zero-laxity alarm fires at
        the same instant and handler D decides."""
        jobs = [
            J(0, 0.0, 5.0, 5.0, v=1.0),      # running, zero slack
            J(1, 1.0, 4.0, 5.0, v=100.0),    # zero laxity at release; wins D
        ]
        r = simulate(jobs, ConstantCapacity(1.0), VDoverScheduler(k=100.0), validate=True)
        assert r.completed_ids == [1]
        # The switch happened exactly at t=1 (release + alarm cascade).
        assert any(
            s.jid == 1 and s.start == pytest.approx(1.0) for s in r.trace.segments
        )

    def test_two_urgent_arrivals_same_instant_no_livelock(self):
        """Two zero-laxity jobs at the same instant: β > 1 forbids mutual
        displacement, so the cascade settles deterministically."""
        jobs = [
            J(0, 0.0, 5.0, 5.0, v=1.0),
            J(1, 1.0, 4.0, 5.0, v=50.0),
            J(2, 1.0, 4.0, 5.0, v=60.0),
        ]
        r = simulate(jobs, ConstantCapacity(1.0), VDoverScheduler(k=100.0), validate=True)
        # Exactly one of the urgent pair can be served.
        assert len(r.completed_ids) == 1
        assert r.completed_ids[0] in (1, 2)
        assert len(r.trace.segments) < 20

    def test_completion_release_alarm_stack(self):
        """A completion, a release and the released job's alarm at one
        timestamp: completion first (banks the value), then release, then
        the alarm."""
        jobs = [
            J(0, 0.0, 2.0, 2.0, v=5.0),      # completes exactly at t=2
            J(1, 2.0, 3.0, 5.0, v=1.0),      # released at t=2, zero laxity
        ]
        r = simulate(jobs, ConstantCapacity(1.0), VDoverScheduler(k=5.0), validate=True)
        assert r.n_completed == 2
        assert r.trace.completion_times[0] == pytest.approx(2.0)
        assert r.trace.completion_times[1] == pytest.approx(5.0)

    def test_back_to_back_zero_laxity_chain(self):
        """A seamless chain of zero-laxity jobs: every one completes
        exactly at its deadline, the next starting the same instant."""
        jobs = []
        t = 0.0
        for i in range(10):
            p = 1.0 + 0.1 * i
            jobs.append(J(i, t, p, t + p, v=1.0))
            t += p
        r = simulate(jobs, ConstantCapacity(1.0), VDoverScheduler(k=7.0), validate=True)
        assert r.n_completed == 10
        assert r.busy_time == pytest.approx(t)
