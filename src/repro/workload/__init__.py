"""Workload substrate: stochastic generators, adversarial families, replay."""

from repro.workload.adversary import AdversaryOutcome, EscalationAdversary
from repro.workload.base import WorkloadGenerator, as_generator
from repro.workload.bursty import MMPPWorkload
from repro.workload.instances import feasible_instance, inadmissible_trap, locke_trap
from repro.workload.mixture import MixtureWorkload
from repro.workload.periodic import PeriodicTask, PeriodicWorkload
from repro.workload.poisson import PoissonWorkload
from repro.workload.swf import SWFImportReport, parse_swf, swf_to_jobs
from repro.workload.replay import (
    ReplayWorkload,
    jobs_from_records,
    jobs_to_records,
    load_instance,
    save_instance,
)

__all__ = [
    "WorkloadGenerator",
    "AdversaryOutcome",
    "EscalationAdversary",
    "as_generator",
    "PoissonWorkload",
    "MMPPWorkload",
    "MixtureWorkload",
    "PeriodicTask",
    "PeriodicWorkload",
    "feasible_instance",
    "inadmissible_trap",
    "locke_trap",
    "ReplayWorkload",
    "jobs_from_records",
    "jobs_to_records",
    "load_instance",
    "save_instance",
    "SWFImportReport",
    "parse_swf",
    "swf_to_jobs",
]
