"""Property-based tests for capacity-model invariants (hypothesis)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capacity import (
    ConstantCapacity,
    PiecewiseConstantCapacity,
    TwoStateMarkovCapacity,
)


@st.composite
def piecewise_capacities(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=20.0, allow_nan=False),
            min_size=n - 1,
            max_size=n - 1,
        )
    )
    breakpoints = [0.0]
    for gap in gaps:
        breakpoints.append(breakpoints[-1] + gap)
    rates = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    return PiecewiseConstantCapacity(breakpoints, rates)


@st.composite
def intervals(draw):
    a = draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    b = draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    return (a, b) if a <= b else (b, a)


class TestPiecewiseInvariants:
    @given(cap=piecewise_capacities(), iv=intervals())
    def test_integral_bounded_by_declared_rates(self, cap, iv):
        t0, t1 = iv
        work = cap.integrate(t0, t1)
        assert cap.lower * (t1 - t0) - 1e-9 <= work
        assert work <= cap.upper * (t1 - t0) + 1e-9

    @given(cap=piecewise_capacities(), iv=intervals(), mid=st.floats(0.0, 1.0))
    def test_integral_additivity(self, cap, iv, mid):
        t0, t1 = iv
        tm = t0 + mid * (t1 - t0)
        total = cap.integrate(t0, t1)
        split = cap.integrate(t0, tm) + cap.integrate(tm, t1)
        assert split == pytest.approx(total, rel=1e-9, abs=1e-9)

    @given(
        cap=piecewise_capacities(),
        t0=st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        work=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    )
    def test_advance_inverts_integrate(self, cap, t0, work):
        t = cap.advance(t0, work)
        assert t >= t0
        assert cap.integrate(t0, t) == pytest.approx(work, rel=1e-9, abs=1e-9)

    @given(cap=piecewise_capacities(), iv=intervals())
    def test_pieces_tile_interval_exactly(self, cap, iv):
        t0, t1 = iv
        pieces = list(cap.pieces(t0, t1))
        if t0 == t1:
            assert pieces == []
            return
        assert pieces[0][0] == t0
        assert pieces[-1][1] == t1
        for (s0, e0, _), (s1, _, _) in zip(pieces, pieces[1:]):
            assert e0 == s1
        for s, e, rate in pieces:
            assert s < e
            assert rate == cap.value(s)

    @given(cap=piecewise_capacities(), iv=intervals())
    def test_value_within_bounds(self, cap, iv):
        t0, t1 = iv
        assert cap.lower <= cap.value(t0) <= cap.upper
        assert cap.lower <= cap.value(t1) <= cap.upper


class TestMarkovInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        iv=intervals(),
        work=st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
    )
    def test_markov_same_laws(self, seed, iv, work):
        cap = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=5.0, rng=seed)
        t0, t1 = iv
        total = cap.integrate(t0, t1)
        assert 1.0 * (t1 - t0) - 1e-9 <= total <= 35.0 * (t1 - t0) + 1e-9
        t = cap.advance(t0, work)
        assert cap.integrate(t0, t) == pytest.approx(work, rel=1e-9, abs=1e-9)


class TestConstantDegeneracy:
    @given(
        rate=st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
        iv=intervals(),
    )
    def test_constant_equals_one_piece(self, rate, iv):
        t0, t1 = iv
        const = ConstantCapacity(rate)
        pw = PiecewiseConstantCapacity([0.0], [rate])
        assert const.integrate(t0, t1) == pytest.approx(pw.integrate(t0, t1))
        if t1 > t0:
            assert const.value(t0) == pw.value(t0)
