"""Concrete capacity-sensor fault models.

Four composable corruptions of the sensing channel (see
:mod:`repro.faults.base` for the physics/sensing split and
docs/ROBUSTNESS.md for the taxonomy):

* :class:`NoisyCapacity` — Gaussian (multiplicative or additive) noise on
  every reading;
* :class:`StaleCapacity` — readings delayed by a fixed Δ (the sensor
  reports ``c(t − Δ)``);
* :class:`DropoutCapacity` — the sensor is unavailable on outage windows
  (explicit, or sampled as an alternating-renewal process) and raises
  :class:`~repro.errors.CapacityReadError` inside them;
* :class:`BiasedBoundsCapacity` — the *declared* band ``(c̲, c̄)`` is
  mis-reported while readings stay honest, modelling an operator who
  promised more conservative capacity than the substrate delivers.

Determinism: noise and stochastic dropout derive every random draw from
``(seed, query)`` so a reading at time ``t`` is the same however often and
in whatever order it is queried — replications stay reproducible and
picklable across worker processes.
"""

from __future__ import annotations

import math
import struct
from bisect import bisect_right
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.capacity.base import CapacityFunction
from repro.errors import CapacityReadError, FaultConfigError
from repro.faults.base import CapacitySensorFault

__all__ = [
    "NoisyCapacity",
    "StaleCapacity",
    "DropoutCapacity",
    "BiasedBoundsCapacity",
]


def _hash_normal(seed: int, t: float) -> float:
    """A standard-normal draw that is a pure function of ``(seed, t)``.

    Uses the bit pattern of ``t`` as extra SeedSequence entropy, so repeated
    queries at the same instant return the same reading (sensor consistency)
    while distinct instants decorrelate.
    """
    bits = struct.unpack("<Q", struct.pack("<d", float(t)))[0]
    rng = np.random.default_rng(np.random.SeedSequence(entropy=(seed, bits)))
    return float(rng.standard_normal())


class NoisyCapacity(CapacitySensorFault):
    """Gaussian noise on the reported rate.

    Parameters
    ----------
    inner:
        The capacity (or fault stack) being wrapped.
    sigma:
        Noise width.  Relative mode reports ``c(t)·(1 + σ·g)``, absolute
        mode ``c(t) + σ·g`` with ``g ~ N(0, 1)``.  Readings are floored at
        zero (a rate sensor cannot report a negative rate) but are *not*
        clamped into the declared band — that is the consumer's job.
    relative:
        Multiplicative (default) vs additive noise.
    seed:
        Seed of the deterministic noise stream.
    """

    def __init__(
        self,
        inner: CapacityFunction,
        sigma: float,
        *,
        relative: bool = True,
        seed: int = 0,
    ) -> None:
        if not (math.isfinite(sigma) and sigma >= 0.0):
            raise FaultConfigError(f"noise width must be >= 0, got {sigma!r}")
        super().__init__(inner)
        self._sigma = float(sigma)
        self._relative = bool(relative)
        self._seed = int(seed)

    def sense(self, t: float) -> float:
        reading = self._inner.value(t)
        if self._sigma == 0.0:
            return reading
        g = _hash_normal(self._seed, t)
        if self._relative:
            reading *= 1.0 + self._sigma * g
        else:
            reading += self._sigma * g
        return max(0.0, reading)


class StaleCapacity(CapacitySensorFault):
    """A sensor whose readings lag reality by ``delay`` time units:
    ``sense(t) = c(max(0, t − delay))``."""

    def __init__(self, inner: CapacityFunction, delay: float) -> None:
        if not (math.isfinite(delay) and delay >= 0.0):
            raise FaultConfigError(f"staleness delay must be >= 0, got {delay!r}")
        super().__init__(inner)
        self._delay = float(delay)

    @property
    def delay(self) -> float:
        return self._delay

    def sense(self, t: float) -> float:
        return self._inner.value(max(0.0, t - self._delay))


class DropoutCapacity(CapacitySensorFault):
    """A sensor that goes dark on outage windows.

    Inside an outage, :meth:`sense` raises :class:`~repro.errors.
    CapacityReadError` carrying the recovery instant; outside, readings pass
    through.  Windows come either from an explicit list or from an
    alternating-renewal process (exponential up-times of mean ``mean_up``,
    exponential outages of mean ``mean_down``) materialized lazily — the
    same append-only idiom as the Markov capacity, so query order does not
    change the realization.

    Parameters
    ----------
    windows:
        Explicit, sorted, disjoint ``(start, end)`` outage intervals.
        Mutually exclusive with the stochastic parameters.
    mean_up, mean_down:
        Means of the exponential availability / outage durations.
    seed:
        Seed of the renewal process (stochastic mode only).
    """

    def __init__(
        self,
        inner: CapacityFunction,
        *,
        windows: Iterable[Tuple[float, float]] | None = None,
        mean_up: float | None = None,
        mean_down: float | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(inner)
        if windows is not None:
            if mean_up is not None or mean_down is not None:
                raise FaultConfigError(
                    "give either explicit windows or (mean_up, mean_down), not both"
                )
            wins = [(float(a), float(b)) for a, b in windows]
            prev_end = -math.inf
            for a, b in wins:
                if not (a < b):
                    raise FaultConfigError(f"empty outage window: ({a!r}, {b!r})")
                if a < prev_end:
                    raise FaultConfigError("outage windows must be sorted and disjoint")
                prev_end = b
            self._explicit: list[Tuple[float, float]] | None = wins
            self._rng = None
        else:
            if mean_up is None or mean_down is None:
                raise FaultConfigError(
                    "stochastic dropout needs both mean_up and mean_down"
                )
            if not (mean_up > 0.0 and mean_down > 0.0):
                raise FaultConfigError(
                    f"mean_up/mean_down must be positive, got "
                    f"{mean_up!r}/{mean_down!r}"
                )
            self._explicit = None
            self._mean_up = float(mean_up)
            self._mean_down = float(mean_down)
            self._rng = np.random.default_rng(seed)
            self._sampled: list[Tuple[float, float]] = []
            # Availability is decided on [0, _frontier); starts available.
            self._frontier = float(self._rng.exponential(self._mean_up))

    # -- window materialization ----------------------------------------
    def _ensure(self, t: float) -> None:
        while self._frontier <= t:
            start = self._frontier
            end = start + float(self._rng.exponential(self._mean_down))
            self._sampled.append((start, end))
            self._frontier = end + float(self._rng.exponential(self._mean_up))

    def _outage_at(self, t: float) -> Tuple[float, float] | None:
        if self._explicit is not None:
            wins = self._explicit
        else:
            self._ensure(t)
            wins = self._sampled
        i = bisect_right(wins, (t, math.inf)) - 1
        if i >= 0 and wins[i][0] <= t < wins[i][1]:
            return wins[i]
        return None

    def outage_windows(self, horizon: float) -> list[Tuple[float, float]]:
        """The outage windows intersecting ``[0, horizon)`` (materializing
        the renewal process as needed)."""
        if self._explicit is None:
            self._ensure(horizon)
            wins = self._sampled
        else:
            wins = self._explicit
        return [w for w in wins if w[0] < horizon]

    def sense(self, t: float) -> float:
        window = self._outage_at(t)
        if window is not None:
            raise CapacityReadError(t, resumes_at=window[1])
        return self._inner.value(t)


class BiasedBoundsCapacity(CapacitySensorFault):
    """Mis-declared capacity bounds with honest instantaneous readings.

    The scheduler-facing band becomes ``(lower', upper')`` — given directly
    or as multiples of the true declared bounds — while the trajectory (and
    the sensor) keep reporting the truth.  An inflated ``lower'`` models the
    dangerous direction: V-Dover trusts a conservative bound the substrate
    does not actually guarantee.
    """

    def __init__(
        self,
        inner: CapacityFunction,
        *,
        lower_factor: float = 1.0,
        upper_factor: float = 1.0,
        lower: float | None = None,
        upper: float | None = None,
    ) -> None:
        if lower_factor <= 0.0 or upper_factor <= 0.0:
            raise FaultConfigError(
                f"bias factors must be positive, got "
                f"{lower_factor!r}/{upper_factor!r}"
            )
        lo = inner.lower * lower_factor if lower is None else float(lower)
        hi = inner.upper * upper_factor if upper is None else float(upper)
        if not (math.isfinite(lo) and math.isfinite(hi)):
            raise FaultConfigError(
                f"mis-declared bounds must be finite, got [{lo!r}, {hi!r}]"
            )
        # A heavily inflated lower bound may cross the (unchanged) upper
        # bound; a sensor that mis-declares c̲ above c̄ is still a band of
        # one point in practice — snap rather than reject, the consumer's
        # degradation logic handles the rest.
        if lo > hi:
            lo = hi
        super().__init__(inner, lower=lo, upper=hi)
