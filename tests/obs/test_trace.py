"""Unit tests for the trace sink: ring bound, run epochs, truncation,
JSONL export/load round trips and malformed-input handling."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import TRACE_SCHEMA, TraceSink, load_trace


class TestRingBuffer:
    def test_bounded_with_drop_counter(self):
        sink = TraceSink(ring=4)
        sink.begin_run()
        for i in range(10):
            sink.emit("e", float(i))
        assert len(sink) == 4
        assert sink.dropped == 6
        assert [e.t for e in sink.events()] == [6.0, 7.0, 8.0, 9.0]

    def test_invalid_ring_size(self):
        with pytest.raises(ObservabilityError):
            TraceSink(ring=0)

    def test_tail(self):
        sink = TraceSink(ring=16)
        sink.begin_run()
        for i in range(5):
            sink.emit("e", float(i), {"i": i})
        tail = sink.tail(2)
        assert [d["t"] for d in tail] == [3.0, 4.0]
        assert all(isinstance(d, dict) for d in tail)
        assert sink.tail(0) == []


class TestRunEpochs:
    def test_begin_run_stamps_epoch_and_resets_dispatch(self):
        sink = TraceSink()
        assert sink.run_epoch == -1
        sink.begin_run()
        sink.current_dispatch = 7
        sink.emit("a", 0.0)
        sink.begin_run()
        assert sink.current_dispatch == -1
        sink.emit("b", 0.0)
        runs = [e.run for e in sink.events()]
        assert runs == [0, 1]

    def test_truncate_only_current_run_replay(self):
        sink = TraceSink()
        sink.begin_run()  # run 0
        sink.current_dispatch = 5
        sink.emit("old.run", 1.0)
        sink.begin_run()  # run 1
        sink.current_dispatch = 2
        sink.emit("keep.early", 2.0)
        sink.current_dispatch = 9
        sink.emit("drop.late", 3.0)
        sink.emit("keep.lifecycle", 3.0, replay=False)
        removed = sink.truncate_replay(5)
        assert removed == 1
        kinds = [e.kind for e in sink.events()]
        # run-0 events survive even though their dispatch >= 5.
        assert kinds == ["old.run", "keep.early", "keep.lifecycle"]


class TestExportLoad:
    def test_roundtrip(self, tmp_path):
        sink = TraceSink()
        sink.begin_run()
        sink.emit("job.release", 0.5, {"jid": 3})
        sink.emit("fault.crash", 1.0, {"fault": "x"}, replay=False)
        path = tmp_path / "t.jsonl"
        n = sink.export_jsonl(path, metrics={"counters": {"c": 1}})
        assert n == 2
        doc = load_trace(path)
        assert doc["header"]["schema"] == TRACE_SCHEMA
        assert doc["header"]["events"] == 2
        assert [e["kind"] for e in doc["events"]] == ["job.release", "fault.crash"]
        assert doc["events"][1]["life"] is True
        assert doc["metrics"] == {"counters": {"c": 1}}

    def test_replay_only_excludes_lifecycle(self, tmp_path):
        sink = TraceSink()
        sink.begin_run()
        sink.emit("a", 0.0)
        sink.emit("b", 0.0, replay=False)
        path = tmp_path / "t.jsonl"
        assert sink.export_jsonl(path, replay_only=True) == 1
        doc = load_trace(path)
        assert [e["kind"] for e in doc["events"]] == ["a"]
        assert doc["header"]["replay_only"] is True
        # replay-only headers omit the ring/drop variance.
        assert "dropped" not in doc["header"]

    def test_load_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text(json.dumps({"kind": "something.else"}) + "\n")
        with pytest.raises(ObservabilityError):
            load_trace(path)

    def test_load_rejects_garbage_line(self, tmp_path):
        sink = TraceSink()
        sink.begin_run()
        sink.emit("a", 0.0)
        path = tmp_path / "x.jsonl"
        sink.export_jsonl(path)
        with open(path, "a") as fh:
            fh.write("{not json\n")
        with pytest.raises(ObservabilityError):
            load_trace(path)

    def test_load_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ObservabilityError):
            load_trace(path)
