"""Bursty arrivals: a Markov-modulated Poisson process (MMPP).

The cloud's secondary-job demand is burstier than a homogeneous Poisson
process (spot-market bids cluster when the spot price dips).  The MMPP
alternates between a *quiet* and a *burst* phase with exponential sojourns;
within each phase arrivals are Poisson at the phase's rate.  Everything
else (workloads, deadlines, values) matches :class:`~repro.workload.
poisson.PoissonWorkload` so results are directly comparable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidInstanceError
from repro.sim.job import Job
from repro.workload.base import WorkloadGenerator, as_generator

__all__ = ["MMPPWorkload"]


class MMPPWorkload(WorkloadGenerator):
    """Two-phase Markov-modulated Poisson arrivals.

    Parameters
    ----------
    quiet_rate, burst_rate:
        Arrival rates of the two phases (burst_rate > quiet_rate).
    mean_phase:
        Mean exponential sojourn in each phase.
    horizon:
        Arrivals occur in ``[0, horizon)``.
    workload_mean, density_range, c_lower, deadline_slack:
        As in :class:`~repro.workload.poisson.PoissonWorkload`.
    """

    def __init__(
        self,
        quiet_rate: float,
        burst_rate: float,
        mean_phase: float,
        horizon: float,
        *,
        workload_mean: float = 1.0,
        density_range: tuple[float, float] = (1.0, 7.0),
        c_lower: float = 1.0,
        deadline_slack: float = 1.0,
    ) -> None:
        if not (0.0 < quiet_rate < burst_rate):
            raise InvalidInstanceError(
                f"need 0 < quiet_rate < burst_rate, got {quiet_rate!r}, {burst_rate!r}"
            )
        if mean_phase <= 0.0 or horizon <= 0.0:
            raise InvalidInstanceError("mean_phase and horizon must be positive")
        lo, hi = density_range
        if not (0.0 < lo <= hi):
            raise InvalidInstanceError(f"bad density range: {density_range!r}")
        self.quiet_rate = float(quiet_rate)
        self.burst_rate = float(burst_rate)
        self.mean_phase = float(mean_phase)
        self.horizon = float(horizon)
        self.workload_mean = float(workload_mean)
        self.density_range = (float(lo), float(hi))
        self.c_lower = float(c_lower)
        self.deadline_slack = float(deadline_slack)

    def _sample_arrivals(self, gen: np.random.Generator) -> np.ndarray:
        """Thinning-free phase-by-phase sampling of the MMPP."""
        arrivals: list[float] = []
        t = 0.0
        burst = bool(gen.integers(0, 2))  # random initial phase
        while t < self.horizon:
            phase_end = min(t + gen.exponential(self.mean_phase), self.horizon)
            rate = self.burst_rate if burst else self.quiet_rate
            n = int(gen.poisson(rate * (phase_end - t)))
            if n:
                arrivals.extend(gen.uniform(t, phase_end, size=n).tolist())
            t = phase_end
            burst = not burst
        return np.asarray(arrivals, dtype=float)

    def generate(self, rng: np.random.Generator | int | None = None) -> list[Job]:
        gen = as_generator(rng)
        releases = self._sample_arrivals(gen)
        n = releases.size
        if n == 0:
            return []
        workloads = np.maximum(gen.exponential(self.workload_mean, size=n), 1e-12)
        densities = gen.uniform(*self.density_range, size=n)
        rel_deadlines = self.deadline_slack * workloads / self.c_lower
        values = densities * workloads
        return self._finalize(releases, workloads, rel_deadlines, values)
