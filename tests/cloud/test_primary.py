"""Unit tests for the primary-occupancy model."""

import numpy as np
import pytest

from repro.cloud import PrimaryOccupancyModel
from repro.errors import InvalidInstanceError


def model(**overrides):
    kwargs = dict(
        total_capacity=10.0,
        floor=2.0,
        arrival_rate=1.0,
        mean_holding=2.0,
        vm_size=1.0,
    )
    kwargs.update(overrides)
    return PrimaryOccupancyModel(**kwargs)


class TestConstruction:
    @pytest.mark.parametrize(
        "overrides",
        [
            dict(floor=0.0),
            dict(floor=10.0),
            dict(arrival_rate=0.0),
            dict(mean_holding=0.0),
            dict(vm_size=0.0),
            dict(vm_size=9.0),  # does not fit within total - floor
        ],
    )
    def test_rejects_bad_params(self, overrides):
        with pytest.raises(InvalidInstanceError):
            model(**overrides)

    def test_max_primary_vms(self):
        assert model().max_primary_vms == 8
        assert model(vm_size=3.0).max_primary_vms == 2


class TestResidualSampling:
    def test_respects_floor_and_ceiling(self):
        m = model(arrival_rate=5.0)
        cap = m.sample_residual(200.0, rng=0)
        assert min(cap.rates) >= m.floor - 1e-9
        assert max(cap.rates) <= m.total_capacity + 1e-9
        assert cap.lower == m.floor
        assert cap.upper == m.total_capacity

    def test_starts_empty(self):
        cap = model().sample_residual(50.0, rng=1)
        assert cap.value(0.0) == pytest.approx(10.0)

    def test_deterministic_per_seed(self):
        m = model()
        a = m.sample_residual(100.0, rng=7)
        b = m.sample_residual(100.0, rng=7)
        assert a.breakpoints == b.breakpoints
        assert a.rates == b.rates

    def test_occupancy_steps_by_vm_size(self):
        m = model(vm_size=2.0)
        cap = m.sample_residual(100.0, rng=3)
        for rate in cap.rates:
            k = (m.total_capacity - rate) / m.vm_size
            assert k == pytest.approx(round(k))

    def test_mean_occupancy_near_erlang(self):
        """Long-run mean residual matches the Erlang-loss prediction."""
        m = model(arrival_rate=2.0, mean_holding=2.0)
        cap = m.sample_residual(5000.0, rng=11)
        mean_residual = cap.integrate(0.0, 5000.0) / 5000.0
        predicted = m.total_capacity - m.vm_size * m.expected_occupancy()
        assert mean_residual == pytest.approx(predicted, rel=0.1)

    def test_rejects_bad_horizon(self):
        with pytest.raises(InvalidInstanceError):
            model().sample_residual(0.0)
