"""ASCII Gantt rendering of schedule traces.

Turns a :class:`~repro.sim.trace.ScheduleTrace` into a terminal timeline —
one row per job plus a capacity row — so schedules can be eyeballed in
tests, examples and bug reports without a plotting stack.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.capacity.base import CapacityFunction
from repro.errors import SimulationError
from repro.sim.job import Job, JobStatus
from repro.sim.trace import ScheduleTrace

__all__ = ["render_gantt"]

_STATUS_MARK = {
    JobStatus.COMPLETED: "+",
    JobStatus.FAILED: "x",
    JobStatus.ABANDONED: "x",
}


def render_gantt(
    trace: ScheduleTrace,
    jobs: Sequence[Job],
    *,
    capacity: CapacityFunction | None = None,
    width: int = 72,
    horizon: float | None = None,
) -> str:
    """Render a trace as an ASCII Gantt chart.

    Per job row: ``.`` outside the [release, deadline] window, ``-`` inside
    the window but not executing, ``#`` executing; the row ends with ``+``
    (completed) or ``x`` (failed).  An optional capacity row shows the
    rate's relative level on a 1–9 scale.
    """
    if width < 10:
        raise SimulationError(f"gantt width too small: {width}")
    if horizon is None:
        horizon = max(
            [seg.end for seg in trace.segments]
            + [job.deadline for job in jobs]
            + [1.0]
        )
    if horizon <= 0.0:
        raise SimulationError(f"non-positive horizon: {horizon}")
    dt = horizon / width

    def col(t: float) -> int:
        return min(width - 1, max(0, int(t / dt)))

    lines = [f"t = 0 .. {horizon:g}   ('#' running, '-' waiting, '.' outside window)"]

    if capacity is not None:
        lo, hi = capacity.lower, capacity.upper
        row = []
        for i in range(width):
            rate = capacity.value((i + 0.5) * dt)
            if hi > lo:
                level = 1 + int(round(8 * (rate - lo) / (hi - lo)))
            else:
                level = 9
            row.append(str(min(9, max(1, level))))
        lines.append(f"{'c(t)':>8} |{''.join(row)}|")

    label_width = 8
    for job in sorted(jobs, key=lambda j: (j.release, j.jid)):
        cells = ["."] * width
        for i in range(col(job.release), col(job.deadline) + 1):
            cells[i] = "-"
        for seg in trace.segments:
            if seg.jid != job.jid:
                continue
            for i in range(col(seg.start), max(col(seg.start), col(seg.end - 1e-12)) + 1):
                cells[i] = "#"
        mark = _STATUS_MARK.get(trace.outcomes.get(job.jid), "?")
        label = f"job {job.jid}"[:label_width]
        lines.append(f"{label:>{label_width}} |{''.join(cells)}| {mark}")
    return "\n".join(lines)
