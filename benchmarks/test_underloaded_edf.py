"""E3 — Theorem 2: EDF achieves competitive ratio 1 when underloaded.

Generates random underloaded varying-capacity instances (by construction,
via witness schedules) and measures EDF's ratio against the total value —
which equals the offline optimum for feasible instances.  The table prints
the measured ratio per instance family; every entry must be exactly 1.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.capacity import TwoStateMarkovCapacity
from repro.core import EDFScheduler, LLFScheduler
from repro.experiments.runner import default_mc_runs
from repro.sim import simulate, total_value
from repro.workload import feasible_instance


def test_theorem2_edf_ratio_one(archive, benchmark):
    runs = default_mc_runs(25)
    rows = []
    all_ratios = []
    for delta_high in (5.0, 15.0, 35.0):
        ratios = []
        llf_ratios = []
        for seed in range(runs):
            capacity = TwoStateMarkovCapacity(
                1.0, delta_high, mean_sojourn=8.0, rng=seed
            )
            jobs = feasible_instance(capacity, n=15, horizon=60.0, rng=seed + 10_000)
            gen = total_value(jobs)
            if gen == 0.0:
                continue
            edf = simulate(jobs, capacity, EDFScheduler())
            llf = simulate(jobs, capacity, LLFScheduler())
            ratios.append(edf.value / gen)
            llf_ratios.append(llf.value / gen)
        all_ratios.extend(ratios)
        rows.append(
            [
                f"delta={delta_high:g}",
                min(ratios),
                sum(ratios) / len(ratios),
                sum(llf_ratios) / len(llf_ratios),
            ]
        )

    archive(
        "theorem2_underloaded",
        render_table(
            ["capacity family", "EDF min ratio", "EDF mean ratio", "LLF mean ratio"],
            rows,
            title=(
                f"Theorem 2 — EDF on underloaded varying-capacity instances "
                f"(n={runs} instances per family; ratio vs offline optimum)"
            ),
            float_fmt="{:.6f}",
        ),
    )

    assert min(all_ratios) == pytest.approx(1.0), (
        "EDF missed value on an underloaded instance — Theorem 2 violated"
    )

    capacity = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=8.0, rng=0)
    jobs = feasible_instance(capacity, n=15, horizon=60.0, rng=10_000)
    benchmark(lambda: simulate(jobs, capacity, EDFScheduler()).value)
