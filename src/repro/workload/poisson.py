"""The paper's Section-IV workload: Poisson arrivals, exponential workloads,
zero-conservative-laxity deadlines, uniform value densities.

Defaults reproduce the simulation setup exactly:

* arrivals: Poisson process, rate ``lam`` over ``[0, horizon)``
  (``horizon = 2000/λ`` in the paper, for 2000 expected jobs);
* workload: exponential with mean ``1.0``;
* relative deadline: ``deadline_slack × workload / c_lower`` — the paper
  uses slack 1, i.e. every job has exactly zero conservative laxity at
  release, so it is individually admissible with no room to spare (the
  regime that exercises V-Dover's zero-laxity triage hardest);
* value: ``density × workload`` with density ~ U[1, 7], so the importance
  ratio bound is ``k = 7``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidInstanceError
from repro.sim.job import Job
from repro.workload.base import WorkloadGenerator, as_generator

__all__ = ["PoissonWorkload"]


class PoissonWorkload(WorkloadGenerator):
    """Poisson/exponential workload of the paper's simulation study.

    Parameters
    ----------
    lam:
        Arrival rate λ (jobs per unit time).
    horizon:
        Arrivals occur in ``[0, horizon)``.
    workload_mean:
        Mean of the exponential workload distribution (paper: 1.0).
    density_range:
        ``(low, high)`` of the uniform value-density distribution
        (paper: (1.0, 7.0), hence k = 7).
    c_lower:
        The conservative capacity bound used to size relative deadlines.
    deadline_slack:
        Relative deadline multiplier: ``d − r = slack × p / c_lower``.
        1.0 (paper) means zero conservative laxity at release; values > 1
        loosen deadlines (used by the underload experiments).
    """

    def __init__(
        self,
        lam: float,
        horizon: float,
        *,
        workload_mean: float = 1.0,
        density_range: tuple[float, float] = (1.0, 7.0),
        c_lower: float = 1.0,
        deadline_slack: float = 1.0,
    ) -> None:
        if lam <= 0.0 or horizon <= 0.0:
            raise InvalidInstanceError(
                f"need positive rate and horizon, got lam={lam!r}, "
                f"horizon={horizon!r}"
            )
        if workload_mean <= 0.0:
            raise InvalidInstanceError(f"workload mean must be positive: {workload_mean!r}")
        lo, hi = density_range
        if not (0.0 < lo <= hi):
            raise InvalidInstanceError(f"bad density range: {density_range!r}")
        if c_lower <= 0.0:
            raise InvalidInstanceError(f"c_lower must be positive: {c_lower!r}")
        if deadline_slack <= 0.0:
            raise InvalidInstanceError(f"deadline_slack must be positive: {deadline_slack!r}")
        self.lam = float(lam)
        self.horizon = float(horizon)
        self.workload_mean = float(workload_mean)
        self.density_range = (float(lo), float(hi))
        self.c_lower = float(c_lower)
        self.deadline_slack = float(deadline_slack)

    @property
    def importance_ratio_bound(self) -> float:
        """The ``k`` implied by the density range (paper: 7.0)."""
        lo, hi = self.density_range
        return hi / lo

    @property
    def expected_jobs(self) -> float:
        return self.lam * self.horizon

    def generate(self, rng: np.random.Generator | int | None = None) -> list[Job]:
        gen = as_generator(rng)
        n = int(gen.poisson(self.lam * self.horizon))
        if n == 0:
            return []
        releases = gen.uniform(0.0, self.horizon, size=n)
        workloads = gen.exponential(self.workload_mean, size=n)
        # Guard against pathological zero draws (measure-zero but floats).
        workloads = np.maximum(workloads, 1e-12)
        densities = gen.uniform(*self.density_range, size=n)
        rel_deadlines = self.deadline_slack * workloads / self.c_lower
        values = densities * workloads
        return self._finalize(releases, workloads, rel_deadlines, values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PoissonWorkload(lam={self.lam:g}, horizon={self.horizon:g}, "
            f"slack={self.deadline_slack:g})"
        )
