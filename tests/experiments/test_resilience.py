"""Resilience of the Monte-Carlo harness: crash isolation, timeouts,
retries, and checkpoint/resume (docs/ROBUSTNESS.md)."""

import json
import pickle
import signal
import time
from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.errors import CheckpointError, ExperimentError, ReproError
from repro.experiments import (
    CheckpointStore,
    FailedReplication,
    MonteCarloRunner,
    PaperInstanceFactory,
    SchedulerSpec,
    run_fingerprint,
)
from repro.core import EDFScheduler, VDoverScheduler
from repro.workload import PoissonWorkload

SPECS = [
    SchedulerSpec("EDF", EDFScheduler, {}),
    SchedulerSpec("V-Dover", VDoverScheduler, {"k": 7.0}),
]


def small_factory(lam=6.0, jobs=40.0):
    horizon = jobs / lam
    return PaperInstanceFactory(
        workload=PoissonWorkload(lam=lam, horizon=horizon),
        sojourn=horizon / 4.0,
    )


@dataclass(frozen=True)
class CrashEveryNth:
    """Deterministically crashes whenever the drawn job count divides
    ``modulus`` — the same replications fail no matter how, where, or in
    what order they execute."""

    inner: PaperInstanceFactory
    modulus: int = 3

    def make(self, rng):
        jobs, capacity = self.inner.make(rng)
        if len(jobs) % self.modulus == 0:
            raise RuntimeError(f"injected crash (n_jobs={len(jobs)})")
        return jobs, capacity


@dataclass(frozen=True)
class SleepyFactory:
    """Burns wall-clock before delegating, to trip the SIGALRM budget."""

    inner: PaperInstanceFactory
    sleep: float = 0.5

    def make(self, rng):
        time.sleep(self.sleep)
        return self.inner.make(rng)


@dataclass(frozen=True)
class FlakyOnceFactory:
    """Raises ``OSError`` the first time each marker file is missing, then
    succeeds — a transient fault that a single retry absorbs."""

    inner: PaperInstanceFactory
    marker: str = ""

    def make(self, rng):
        from pathlib import Path

        path = Path(self.marker)
        if not path.exists():
            path.touch()
            raise OSError("transient sensor glitch")
        return self.inner.make(rng)


@dataclass(frozen=True)
class CountingFactory:
    """Appends one line to ``log`` per execution, so tests can count how
    many replications actually ran (vs were resumed from a checkpoint)."""

    inner: PaperInstanceFactory
    log: str = ""

    def make(self, rng):
        with open(self.log, "a") as fh:
            fh.write("x\n")
        return self.inner.make(rng)


def executions(log) -> int:
    try:
        with open(log) as fh:
            return sum(1 for _ in fh)
    except FileNotFoundError:
        return 0


class TestCrashIsolation:
    def test_failures_are_structured_not_fatal(self):
        runner = MonteCarloRunner(CrashEveryNth(small_factory()), SPECS)
        report = runner.run_report(12, seed=0, workers=1)
        assert report.outcomes and report.failures  # both kinds occurred
        assert len(report.outcomes) + len(report.failures) == 12
        for failure in report.failure_records():
            assert isinstance(failure, FailedReplication)
            assert failure.error_type == "RuntimeError"
            assert "injected crash" in failure.message
            assert failure.attempts == 1
            assert "RuntimeError" in failure.traceback

    def test_strict_run_raises(self):
        runner = MonteCarloRunner(CrashEveryNth(small_factory()), SPECS)
        with pytest.raises(ExperimentError, match="injected crash"):
            runner.run(12, seed=0, workers=1)

    def test_serial_and_parallel_fail_identically(self):
        """Satellite: a worker crash must not change which replications
        fail, nor the values of the survivors."""
        runner = MonteCarloRunner(CrashEveryNth(small_factory()), SPECS)
        serial = runner.run_report(12, seed=0, workers=1)
        parallel = runner.run_report(12, seed=0, workers=3)
        assert sorted(serial.failures) == sorted(parallel.failures)
        assert sorted(serial.outcomes) == sorted(parallel.outcomes)
        for i in serial.outcomes:
            assert serial.outcomes[i].values == parallel.outcomes[i].values

    def test_survivors_keyed_by_index_for_pairing(self):
        runner = MonteCarloRunner(CrashEveryNth(small_factory()), SPECS)
        report = runner.run_report(12, seed=0, workers=1)
        clean = MonteCarloRunner(small_factory(), SPECS).run(12, seed=0, workers=1)
        for i, outcome in report.outcomes.items():
            assert outcome.values == clean[i].values


@pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="needs POSIX interval timers"
)
class TestTimeout:
    def test_hung_replication_times_out(self):
        runner = MonteCarloRunner(SleepyFactory(small_factory(), sleep=5.0), SPECS)
        start = time.monotonic()
        report = runner.run_report(1, seed=0, workers=1, timeout=0.1)
        assert time.monotonic() - start < 2.0  # did not sleep the full 5 s
        (failure,) = report.failure_records()
        assert failure.error_type == "ReplicationTimeout"
        assert failure.attempts == 1

    def test_timeout_consumes_retry_budget(self):
        runner = MonteCarloRunner(SleepyFactory(small_factory(), sleep=5.0), SPECS)
        report = runner.run_report(1, seed=0, workers=1, timeout=0.05, max_retries=2)
        (failure,) = report.failure_records()
        assert failure.attempts == 3  # 1 try + 2 retries

    def test_generous_timeout_is_harmless(self):
        runner = MonteCarloRunner(small_factory(), SPECS)
        with_budget = runner.run(3, seed=4, workers=1, timeout=60.0)
        without = runner.run(3, seed=4, workers=1)
        assert [o.values for o in with_budget] == [o.values for o in without]

    def test_timeout_validated(self):
        runner = MonteCarloRunner(small_factory(), SPECS)
        with pytest.raises(ReproError):
            runner.run(1, timeout=-1.0)
        with pytest.raises(ReproError):
            runner.run(1, max_retries=-1)


class TestRetry:
    def test_transient_failure_retried_and_bit_identical(self, tmp_path):
        marker = tmp_path / "glitch.marker"
        flaky = MonteCarloRunner(
            FlakyOnceFactory(small_factory(), marker=str(marker)), SPECS
        )
        outcomes = flaky.run(1, seed=8, workers=1, max_retries=1)
        clean = MonteCarloRunner(small_factory(), SPECS).run(1, seed=8, workers=1)
        # The retried replication re-derives its RNG from scratch, so the
        # second attempt sees exactly the instance the first would have.
        assert outcomes[0].values == clean[0].values

    def test_deterministic_failure_not_retried(self):
        runner = MonteCarloRunner(CrashEveryNth(small_factory()), SPECS)
        report = runner.run_report(12, seed=0, workers=1, max_retries=5)
        for failure in report.failure_records():
            assert failure.attempts == 1  # RuntimeError is not transient

    def test_exhausted_retries_record_attempt_count(self, tmp_path):
        # marker is never created by anyone else -> OSError every attempt
        @dataclass(frozen=True)
        class AlwaysOSError:
            inner: PaperInstanceFactory = field(default_factory=small_factory)

            def make(self, rng):
                raise OSError("persistent glitch")

        runner = MonteCarloRunner(AlwaysOSError(), SPECS)
        report = runner.run_report(1, seed=0, workers=1, max_retries=2)
        (failure,) = report.failure_records()
        assert failure.error_type == "OSError"
        assert failure.attempts == 3


class TestCheckpointResume:
    def _ckpt_runner(self, tmp_path, log_name="exec.log"):
        log = tmp_path / log_name
        runner = MonteCarloRunner(
            CountingFactory(small_factory(), log=str(log)), SPECS
        )
        return runner, log

    def test_uninterrupted_run_with_checkpoint_matches_without(self, tmp_path):
        runner, _ = self._ckpt_runner(tmp_path)
        ckpt = tmp_path / "run.ckpt.jsonl"
        with_ckpt = runner.run(5, seed=3, workers=1, checkpoint=ckpt)
        without = runner.run(5, seed=3, workers=1)
        assert [o.values for o in with_ckpt] == [o.values for o in without]

    def test_interrupted_run_resumes_bit_identical(self, tmp_path):
        runner, log = self._ckpt_runner(tmp_path)
        ckpt = tmp_path / "run.ckpt.jsonl"
        full = runner.run(6, seed=3, workers=1, checkpoint=ckpt)

        # Simulate a crash after 3 replications: keep header + 3 records.
        lines = ckpt.read_text().splitlines()
        ckpt.write_text("\n".join(lines[:4]) + "\n")
        log.unlink()

        report = runner.run_report(6, seed=3, workers=1, checkpoint=ckpt)
        assert report.resumed == 3
        assert executions(log) == 3  # only the missing replications ran
        assert [o.values for o in report.survivors] == [o.values for o in full]

    def test_truncated_tail_tolerated(self, tmp_path):
        runner, log = self._ckpt_runner(tmp_path)
        ckpt = tmp_path / "run.ckpt.jsonl"
        full = runner.run(4, seed=5, workers=1, checkpoint=ckpt)
        # a crash mid-append leaves half a JSON document on the last line
        with ckpt.open("a") as fh:
            fh.write('{"index": 99, "outco')
        log.unlink()
        resumed = runner.run(4, seed=5, workers=1, checkpoint=ckpt)
        assert [o.values for o in resumed] == [o.values for o in full]

    def test_failures_reattempted_on_resume(self, tmp_path):
        marker = tmp_path / "glitch.marker"
        flaky = MonteCarloRunner(
            FlakyOnceFactory(small_factory(), marker=str(marker)), SPECS
        )
        ckpt = tmp_path / "run.ckpt.jsonl"
        first = flaky.run_report(1, seed=8, workers=1, checkpoint=ckpt)
        assert first.failures  # transient OSError recorded, no retries asked
        second = flaky.run_report(1, seed=8, workers=1, checkpoint=ckpt)
        assert second.ok  # marker now exists -> the re-attempt succeeded
        clean = MonteCarloRunner(small_factory(), SPECS).run(1, seed=8, workers=1)
        assert second.survivors[0].values == clean[0].values

    def test_config_mismatch_rejected(self, tmp_path):
        runner = MonteCarloRunner(small_factory(), SPECS)
        ckpt = tmp_path / "run.ckpt.jsonl"
        runner.run(2, seed=3, workers=1, checkpoint=ckpt)
        with pytest.raises(CheckpointError, match="different run"):
            runner.run(2, seed=4, workers=1, checkpoint=ckpt)  # other seed
        with pytest.raises(CheckpointError, match="different run"):
            runner.run(3, seed=3, workers=1, checkpoint=ckpt)  # other count
        other = MonteCarloRunner(small_factory(lam=8.0), SPECS)
        with pytest.raises(CheckpointError, match="different run"):
            other.run(2, seed=3, workers=1, checkpoint=ckpt)  # other factory

    def test_corrupt_header_rejected(self, tmp_path):
        ckpt = tmp_path / "run.ckpt.jsonl"
        ckpt.write_text("not json\n")
        runner = MonteCarloRunner(small_factory(), SPECS)
        with pytest.raises(CheckpointError):
            runner.run(2, seed=3, workers=1, checkpoint=ckpt)

    def test_parallel_checkpointed_run_resumable(self, tmp_path):
        runner, log = self._ckpt_runner(tmp_path)
        ckpt = tmp_path / "run.ckpt.jsonl"
        full = runner.run(8, seed=9, workers=2, checkpoint=ckpt)
        lines = ckpt.read_text().splitlines()
        ckpt.write_text("\n".join(lines[:5]) + "\n")  # keep header + 4
        resumed = runner.run(8, seed=9, workers=2, checkpoint=ckpt)
        assert [o.values for o in resumed] == [o.values for o in full]


class TestCheckpointStoreUnit:
    def test_fingerprint_sensitive_to_every_input(self):
        f = small_factory()
        base = run_fingerprint(f, SPECS, 1, 4)
        assert run_fingerprint(f, SPECS, 2, 4) != base
        assert run_fingerprint(f, SPECS, 1, 5) != base
        assert run_fingerprint(f, SPECS[:1], 1, 4) != base
        assert run_fingerprint(small_factory(lam=9.0), SPECS, 1, 4) != base
        assert run_fingerprint(f, SPECS, 1, 4) == base  # and stable

    def test_header_written_and_replayed(self, tmp_path):
        ckpt = tmp_path / "u.ckpt.jsonl"
        with CheckpointStore(ckpt, seed=1, n_runs=3, fingerprint="abc") as store:
            assert store.pending() == [0, 1, 2]
        header = json.loads(ckpt.read_text().splitlines()[0])
        assert header["kind"] == "mc_checkpoint"
        assert header["schema"] == 2

    def test_out_of_range_index_rejected(self, tmp_path):
        ckpt = tmp_path / "u.ckpt.jsonl"
        with CheckpointStore(ckpt, seed=1, n_runs=2, fingerprint="abc"):
            pass
        with ckpt.open("a") as fh:
            fh.write(json.dumps({"index": 7, "failed": {
                "index": 7, "error_type": "X", "message": "", "attempts": 1,
            }}) + "\n")
        with pytest.raises(CheckpointError, match="out of range"):
            CheckpointStore(ckpt, seed=1, n_runs=2, fingerprint="abc")


class TestSpawnCompatibility:
    """Satellite: the harness must survive the ``spawn`` start method
    (macOS/Windows default), which pickles every payload."""

    def test_payloads_are_picklable(self):
        seeds = np.random.SeedSequence(0).spawn(2)
        from repro.experiments.runner import _RetryPolicy

        payload = (0, small_factory(), SPECS, seeds[0], _RetryPolicy())
        assert pickle.loads(pickle.dumps(payload))[0] == 0

    def test_spawn_matches_serial(self):
        runner = MonteCarloRunner(small_factory(), SPECS)
        serial = runner.run(2, seed=6, workers=1)
        spawned = runner.run(2, seed=6, workers=2, mp_start_method="spawn")
        assert [o.values for o in serial] == [o.values for o in spawned]
