"""The capacity zoo: composing realistic residual-capacity models.

The paper abstracts residual capacity as any integrable c(t) in a band
[c̲, c̄].  This example builds progressively more realistic members of
that family — diurnal baseline, primary-load CTMC, their composition,
clamping — and shows how the same V-Dover run responds, with the capacity
itself drawn in the Gantt header.

Run:  python examples/capacity_models.py
"""

from repro.analysis import render_table
from repro.capacity import (
    ClampedCapacity,
    ConstantCapacity,
    ScaledCapacity,
    SinusoidalCapacity,
    SummedCapacity,
    TwoStateMarkovCapacity,
)
from repro.core import VDoverScheduler
from repro.sim import render_gantt, simulate
from repro.workload import PoissonWorkload


def main() -> None:
    horizon = 48.0  # two "days"

    # 1. flat baseline: what non-cloud schedulers assume
    flat = ConstantCapacity(4.0)

    # 2. diurnal: primary load peaks by day, secondary capacity by night
    diurnal = SinusoidalCapacity(low=1.0, high=7.0, period=24.0)

    # 3. the paper's CTMC: abrupt primary arrivals/departures
    ctmc = TwoStateMarkovCapacity(1.0, 7.0, mean_sojourn=6.0, rng=5)

    # 4. composition: a diurnal baseline plus a bursty CTMC overlay,
    #    clamped to the band the provider actually promises.
    composed = ClampedCapacity(
        SummedCapacity([ScaledCapacity(diurnal, 0.5), ScaledCapacity(ctmc, 0.5)]),
        floor=1.0,
        ceiling=6.0,
    )

    models = [
        ("constant", flat),
        ("diurnal", diurnal),
        ("two-state CTMC", ctmc),
        ("clamp(0.5*diurnal + 0.5*CTMC)", composed),
    ]

    workload = PoissonWorkload(lam=4.0, horizon=horizon, deadline_slack=1.5)
    jobs = workload.generate(17)
    offered = sum(j.value for j in jobs)
    print(f"{len(jobs)} jobs over {horizon:g}h, offered value {offered:.1f}\n")

    rows = []
    for name, capacity in models:
        result = simulate(jobs, capacity, VDoverScheduler(k=7.0), validate=True)
        rows.append(
            [
                name,
                f"[{capacity.lower:g}, {capacity.upper:g}]",
                capacity.mean(0.0, horizon),
                result.value,
                f"{100 * result.normalized_value:.1f}%",
            ]
        )
    print(
        render_table(
            ["capacity model", "band", "mean c", "V-Dover value", "% of offered"],
            rows,
            float_fmt="{:.2f}",
        )
    )

    print("\nSchedule on the composed model (capacity row = rate level 1-9):")
    result = simulate(jobs[:10], composed, VDoverScheduler(k=7.0), validate=True)
    print(render_gantt(result.trace, jobs[:10], capacity=composed, width=68))


if __name__ == "__main__":
    main()
