"""Unit tests for the capacity-sensor fault wrappers."""

import math

import numpy as np
import pytest

from repro.capacity import (
    ConstantCapacity,
    PiecewiseConstantCapacity,
    TwoStateMarkovCapacity,
)
from repro.errors import CapacityReadError, FaultConfigError
from repro.faults import (
    BiasedBoundsCapacity,
    CapacitySensorFault,
    DropoutCapacity,
    FaultSpec,
    NoisyCapacity,
    StaleCapacity,
    unwrap_faults,
)


def steps():
    return PiecewiseConstantCapacity(
        [0.0, 2.0, 5.0], [1.0, 35.0, 4.0], lower=1.0, upper=35.0
    )


class TestPhysicsDelegation:
    """The physics channel must be verbatim whatever the sensor does."""

    def test_integrate_advance_pieces_unchanged(self):
        true = steps()
        faulty = NoisyCapacity(StaleCapacity(true, delay=1.0), sigma=0.5, seed=3)
        assert faulty.integrate(0.0, 7.0) == true.integrate(0.0, 7.0)
        assert faulty.advance(0.0, 10.0) == true.advance(0.0, 10.0)
        assert list(faulty.pieces(0.0, 7.0)) == list(true.pieces(0.0, 7.0))
        assert faulty.next_change(0.0, 10.0) == true.next_change(0.0, 10.0)
        assert faulty.mean(0.0, 7.0) == true.mean(0.0, 7.0)

    def test_prefix_fast_path_passes_through(self):
        true = steps()
        faulty = StaleCapacity(true, delay=2.0)
        assert faulty.supports_prefix_index == true.supports_prefix_index
        if true.supports_prefix_index:
            assert faulty.cumulative(6.0) == true.cumulative(6.0)

    def test_dropout_physics_never_raises(self):
        faulty = DropoutCapacity(steps(), windows=[(0.0, 100.0)])
        # The sensor is dark for the whole horizon, the world keeps moving.
        assert faulty.integrate(0.0, 7.0) == steps().integrate(0.0, 7.0)

    def test_unwrap_and_true_value(self):
        true = steps()
        faulty = NoisyCapacity(
            DropoutCapacity(true, windows=[(1.0, 2.0)]), sigma=1.0, seed=0
        )
        assert unwrap_faults(faulty) is true
        assert unwrap_faults(true) is true
        assert faulty.true_value(3.0) == true.value(3.0)

    def test_wraps_only_capacity_functions(self):
        with pytest.raises(FaultConfigError):
            NoisyCapacity("not a capacity", sigma=0.1)


class TestNoisy:
    def test_zero_sigma_is_identity(self):
        true = steps()
        faulty = NoisyCapacity(true, sigma=0.0)
        for t in (0.0, 1.0, 3.0, 6.0):
            assert faulty.value(t) == true.value(t)

    def test_deterministic_per_query(self):
        a = NoisyCapacity(steps(), sigma=0.3, seed=7)
        b = NoisyCapacity(steps(), sigma=0.3, seed=7)
        for t in (0.5, 2.5, 6.0):
            assert a.value(t) == b.value(t)
            # repeated queries at the same instant agree (sensor consistency)
            assert a.value(t) == a.value(t)

    def test_seed_decorrelates(self):
        a = NoisyCapacity(steps(), sigma=0.3, seed=1)
        b = NoisyCapacity(steps(), sigma=0.3, seed=2)
        assert any(a.value(t) != b.value(t) for t in (0.5, 2.5, 6.0))

    def test_reading_floored_at_zero(self):
        faulty = NoisyCapacity(ConstantCapacity(1.0), sigma=100.0, seed=0)
        assert all(faulty.value(t / 10) >= 0.0 for t in range(50))

    def test_readings_can_leave_band(self):
        faulty = NoisyCapacity(ConstantCapacity(10.0), sigma=5.0, relative=False, seed=0)
        vals = [faulty.value(t / 10) for t in range(100)]
        assert any(v > faulty.upper or v < faulty.lower for v in vals)

    def test_additive_mode(self):
        faulty = NoisyCapacity(ConstantCapacity(10.0), sigma=1.0, relative=False, seed=4)
        t = 0.25
        g = faulty.value(t) - 10.0
        # multiplicative at the same (seed, t) scales the same draw by c
        rel = NoisyCapacity(ConstantCapacity(10.0), sigma=1.0, relative=True, seed=4)
        assert rel.value(t) == pytest.approx(10.0 * (1.0 + g))

    def test_rejects_bad_sigma(self):
        with pytest.raises(FaultConfigError):
            NoisyCapacity(steps(), sigma=-0.1)
        with pytest.raises(FaultConfigError):
            NoisyCapacity(steps(), sigma=math.nan)


class TestStale:
    def test_reports_past_value(self):
        true = steps()
        faulty = StaleCapacity(true, delay=2.0)
        assert faulty.value(3.0) == true.value(1.0)
        assert faulty.value(6.0) == true.value(4.0)

    def test_clamped_at_zero(self):
        faulty = StaleCapacity(steps(), delay=5.0)
        assert faulty.value(1.0) == steps().value(0.0)

    def test_rejects_negative_delay(self):
        with pytest.raises(FaultConfigError):
            StaleCapacity(steps(), delay=-1.0)


class TestDropout:
    def test_explicit_windows(self):
        faulty = DropoutCapacity(steps(), windows=[(1.0, 2.0), (4.0, 6.0)])
        assert faulty.value(0.5) == steps().value(0.5)
        with pytest.raises(CapacityReadError) as exc:
            faulty.value(1.5)
        assert exc.value.t == 1.5
        assert exc.value.resumes_at == 2.0
        assert faulty.value(2.0) == steps().value(2.0)  # boundary: recovered
        with pytest.raises(CapacityReadError):
            faulty.value(5.0)

    def test_window_validation(self):
        with pytest.raises(FaultConfigError):
            DropoutCapacity(steps(), windows=[(2.0, 1.0)])
        with pytest.raises(FaultConfigError):
            DropoutCapacity(steps(), windows=[(0.0, 3.0), (2.0, 4.0)])
        with pytest.raises(FaultConfigError):
            DropoutCapacity(steps(), windows=[(0.0, 1.0)], mean_up=1.0, mean_down=1.0)
        with pytest.raises(FaultConfigError):
            DropoutCapacity(steps(), mean_up=1.0)  # missing mean_down
        with pytest.raises(FaultConfigError):
            DropoutCapacity(steps(), mean_up=-1.0, mean_down=1.0)

    def test_stochastic_windows_deterministic_and_order_free(self):
        a = DropoutCapacity(steps(), mean_up=2.0, mean_down=1.0, seed=11)
        b = DropoutCapacity(steps(), mean_up=2.0, mean_down=1.0, seed=11)
        # query b at scattered times first: materialization order must not
        # change the realization (append-only renewal sampling)
        for t in (9.0, 0.3, 5.5, 2.2):
            try:
                b.value(t)
            except CapacityReadError:
                pass
        assert a.outage_windows(10.0) == b.outage_windows(10.0)

    def test_stochastic_fraction_roughly_matches(self):
        faulty = DropoutCapacity(steps(), mean_up=3.0, mean_down=1.0, seed=5)
        horizon = 5000.0
        down = sum(
            min(end, horizon) - start
            for start, end in faulty.outage_windows(horizon)
            if start < horizon
        )
        assert down / horizon == pytest.approx(0.25, abs=0.05)


class TestBiasedBounds:
    def test_bounds_lifted_readings_honest(self):
        true = steps()
        faulty = BiasedBoundsCapacity(true, lower=10.0)
        assert faulty.lower == 10.0
        assert faulty.upper == true.upper
        assert faulty.value(0.5) == true.value(0.5)  # honest sensor

    def test_factor_form(self):
        faulty = BiasedBoundsCapacity(steps(), lower_factor=3.0, upper_factor=0.5)
        assert faulty.lower == 3.0
        assert faulty.upper == 17.5

    def test_crossed_band_snaps(self):
        faulty = BiasedBoundsCapacity(steps(), lower=100.0)
        assert faulty.lower == faulty.upper == 35.0

    def test_rejects_nonpositive(self):
        with pytest.raises(FaultConfigError):
            BiasedBoundsCapacity(steps(), lower_factor=0.0)
        with pytest.raises(FaultConfigError):
            BiasedBoundsCapacity(steps(), lower=math.inf)


class TestComposition:
    def test_stacked_faults(self):
        true = steps()
        faulty = NoisyCapacity(StaleCapacity(true, delay=2.0), sigma=0.0)
        # zero noise over a stale sensor == the stale reading
        assert faulty.value(3.0) == true.value(1.0)
        assert unwrap_faults(faulty) is true

    def test_dropout_propagates_through_noise(self):
        faulty = NoisyCapacity(
            DropoutCapacity(steps(), windows=[(1.0, 2.0)]), sigma=0.3, seed=0
        )
        with pytest.raises(CapacityReadError):
            faulty.value(1.5)


class TestFaultSpec:
    def test_zero_severity_is_identity(self):
        cap = steps()
        assert FaultSpec("noise", 0.0).apply(cap) is cap
        assert FaultSpec("none").apply(cap) is cap

    @pytest.mark.parametrize(
        "kind,cls",
        [
            ("noise", NoisyCapacity),
            ("staleness", StaleCapacity),
            ("dropout", DropoutCapacity),
            ("bias", BiasedBoundsCapacity),
        ],
    )
    def test_apply_builds_right_wrapper(self, kind, cls):
        wrapped = FaultSpec(kind, 0.3).apply(steps(), seed=1)
        assert isinstance(wrapped, cls)
        assert unwrap_faults(wrapped).lower == 1.0

    def test_bias_severity_interpolates_band(self):
        wrapped = FaultSpec("bias", 0.5).apply(steps())
        assert wrapped.lower == pytest.approx(1.0 + 0.5 * 34.0)
        assert wrapped.upper == 35.0

    def test_dropout_fraction_parameterization(self):
        wrapped = FaultSpec("dropout", 0.25, {"mean_down": 2.0}).apply(steps(), seed=0)
        assert wrapped._mean_down == 2.0
        assert wrapped._mean_up == pytest.approx(6.0)  # p = down/(up+down) = 1/4

    def test_validation(self):
        with pytest.raises(FaultConfigError):
            FaultSpec("gamma-rays", 0.1)
        with pytest.raises(FaultConfigError):
            FaultSpec("noise", -1.0)
        with pytest.raises(FaultConfigError):
            FaultSpec("dropout", 1.0)

    def test_label(self):
        assert FaultSpec("noise", 0.0).label == "no-fault"
        assert FaultSpec("staleness", 2.0).label == "staleness=2"

    def test_applies_to_markov_paths(self):
        rng = np.random.default_rng(0)
        cap = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=5.0, rng=rng)
        wrapped = FaultSpec("noise", 0.2).apply(cap, seed=9)
        assert isinstance(wrapped, CapacitySensorFault)
        assert wrapped.integrate(0.0, 10.0) == cap.integrate(0.0, 10.0)
