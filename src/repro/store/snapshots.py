"""Snapshot files with a checksummed manifest: partial = invisible.

A :class:`SnapshotStore` holds the durable anchors of a tenant's state:
opaque payload blobs (the shard pickles its state image) written under
monotonically numbered names, with a ``MANIFEST`` file pointing at the
newest *complete* snapshot.

The write protocol makes a partial snapshot impossible to observe:

1. the snapshot file is written to ``snap-<n>.bin.tmp``, fsynced, and
   renamed to ``snap-<n>.bin`` (directory fsynced) — so a visible
   ``snap-*.bin`` always carries its full, self-validating content
   (magic, meta block, payload block, each length+CRC32 framed);
2. only then is ``MANIFEST`` replaced the same way (``MANIFEST.tmp`` →
   rename → dir-fsync), atomically repointing readers at the new file;
3. only *after* the manifest is durable are snapshots beyond the keep
   window deleted.

A crash between (1) and (2) leaves a complete-but-unreferenced snapshot
file and an old manifest still pointing at the previous one: readers
never see the new state until it is fully committed.  Loading validates
the manifest's own checksum and the pointed file's framing; on bit rot
the damaged artifact is renamed ``*.quarantine`` and the store falls
back to the newest remaining snapshot that validates.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Dict, List, Optional, Tuple

from repro.errors import StorageError
from repro.store.directory import Directory

__all__ = ["SnapshotStore"]

_MAGIC = b"RSNP"
_BLOCK = struct.Struct("<II")  # length, crc32
MANIFEST = "MANIFEST"


def _snap_name(seq: int) -> str:
    return f"snap-{seq:012d}.bin"


def _manifest_crc(doc: Dict) -> int:
    body = {k: v for k, v in sorted(doc.items()) if k != "crc"}
    return zlib.crc32(json.dumps(body, sort_keys=True).encode()) & 0xFFFFFFFF


class SnapshotStore:
    """Numbered snapshot blobs behind an atomically-replaced manifest."""

    def __init__(self, directory: Directory, *, keep: int = 2,
                 fsync: bool = True) -> None:
        if keep < 1:
            raise StorageError(f"keep must be >= 1, got {keep!r}")
        self._dir = directory
        self._keep = int(keep)
        self._fsync = bool(fsync)
        #: artifacts renamed ``*.quarantine`` by validation failures.
        self.quarantined: List[str] = []
        self._next_seq = self._scan_next_seq()

    def _scan_next_seq(self) -> int:
        best = -1
        for name in self._dir.listdir():
            if name.endswith(".tmp"):
                self._dir.remove(name)  # dead mid-write leftovers
                continue
            seq = self._parse_seq(name)
            if seq is not None:
                best = max(best, seq)
        return best + 1

    @staticmethod
    def _parse_seq(name: str) -> Optional[int]:
        if not (name.startswith("snap-") and name.endswith(".bin")):
            return None
        try:
            return int(name[5:-4])
        except ValueError:
            return None

    # -- write ----------------------------------------------------------
    @staticmethod
    def _encode(meta: Dict, payload: bytes) -> bytes:
        meta_blob = json.dumps(meta, sort_keys=True).encode()
        return (
            _MAGIC
            + _BLOCK.pack(len(meta_blob), zlib.crc32(meta_blob) & 0xFFFFFFFF)
            + meta_blob
            + _BLOCK.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
            + payload
        )

    @staticmethod
    def _decode(data: bytes) -> Tuple[Dict, bytes]:
        if len(data) < len(_MAGIC) + _BLOCK.size or data[:4] != _MAGIC:
            raise StorageError("bad snapshot magic")
        off = len(_MAGIC)
        meta_len, meta_crc = _BLOCK.unpack(data[off : off + _BLOCK.size])
        off += _BLOCK.size
        meta_blob = data[off : off + meta_len]
        if len(meta_blob) != meta_len or (
            zlib.crc32(meta_blob) & 0xFFFFFFFF
        ) != meta_crc:
            raise StorageError("snapshot meta block corrupt")
        off += meta_len
        if off + _BLOCK.size > len(data):
            raise StorageError("snapshot payload block missing")
        pay_len, pay_crc = _BLOCK.unpack(data[off : off + _BLOCK.size])
        off += _BLOCK.size
        payload = data[off : off + pay_len]
        if len(payload) != pay_len or (
            zlib.crc32(payload) & 0xFFFFFFFF
        ) != pay_crc:
            raise StorageError("snapshot payload corrupt")
        return json.loads(meta_blob.decode()), payload

    def write(self, payload: bytes, meta: Optional[Dict] = None) -> int:
        """Commit one snapshot; returns its sequence number."""
        meta = dict(meta or {})
        seq = self._next_seq
        name = _snap_name(seq)
        self._write_atomic(name, self._encode(meta, payload))

        manifest = {
            "kind": "snapshot_manifest",
            "seq": seq,
            "snapshot": name,
        }
        manifest["crc"] = _manifest_crc(manifest)
        self._write_atomic(
            MANIFEST, (json.dumps(manifest, sort_keys=True) + "\n").encode()
        )

        # Only after the manifest durably points elsewhere may the old
        # snapshots go.
        self._prune(seq)
        self._next_seq = seq + 1
        return seq

    def _write_atomic(self, name: str, data: bytes) -> None:
        tmp = name + ".tmp"
        h = self._dir.create(tmp)
        h.write(data)
        if self._fsync:
            h.fsync()
        else:
            h.flush()
        h.close()
        self._dir.rename(tmp, name)
        if self._fsync:
            self._dir.fsync_dir()

    def _prune(self, newest_seq: int) -> None:
        floor = newest_seq - self._keep + 1
        for name in self._dir.listdir():
            seq = self._parse_seq(name)
            if seq is not None and seq < floor:
                self._dir.remove(name)
        self._dir.fsync_dir()

    # -- read -----------------------------------------------------------
    def load(self) -> Optional[Tuple[int, Dict, bytes]]:
        """Newest complete snapshot as ``(seq, meta, payload)``, or
        ``None`` when the store has never committed one.  Damaged
        artifacts are quarantined and older valid snapshots tried."""
        target: Optional[str] = None
        if self._dir.exists(MANIFEST):
            try:
                doc = json.loads(self._dir.read_bytes(MANIFEST).decode())
                if (
                    doc.get("kind") != "snapshot_manifest"
                    or doc.get("crc") != _manifest_crc(doc)
                ):
                    raise StorageError("manifest corrupt")
                target = str(doc["snapshot"])
            except (StorageError, ValueError, KeyError):
                self._set_aside(MANIFEST)
                target = None

        if target is not None:
            loaded = self._try_load(target)
            if loaded is not None:
                return loaded

        # Fallback: newest self-validating snapshot file on disk.
        candidates = sorted(
            (
                name
                for name in self._dir.listdir()
                if self._parse_seq(name) is not None
            ),
            reverse=True,
        )
        for name in candidates:
            loaded = self._try_load(name)
            if loaded is not None:
                return loaded
        return None

    def _try_load(self, name: str) -> Optional[Tuple[int, Dict, bytes]]:
        if not self._dir.exists(name):
            return None
        seq = self._parse_seq(name)
        if seq is None:
            return None
        try:
            meta, payload = self._decode(self._dir.read_bytes(name))
        except StorageError:
            self._set_aside(name)
            return None
        return seq, meta, payload

    def _set_aside(self, name: str) -> None:
        self._dir.rename(name, name + ".quarantine")
        self._dir.fsync_dir()
        self.quarantined.append(name)
