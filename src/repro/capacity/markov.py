"""Markov-modulated capacity — the stochastic model of the paper's Section IV.

The paper drives its simulation with a two-state continuous-time Markov
process: ``c(t)`` alternates between ``1.0`` and ``35.0`` with exponentially
distributed sojourn times of mean ``H/4``.  :class:`TwoStateMarkovCapacity`
implements exactly that; :class:`MarkovModulatedCapacity` generalises it to
any finite state space with a transition kernel.

Trajectories are sampled lazily and memoized: the realized path is extended
(with the owned :class:`numpy.random.Generator`) only as far as queries
require, so repeated queries are consistent within a run and two runs with
the same seed see the same path regardless of query order along increasing
time.  The path doubles as the shared prefix-sum capacity index
(:class:`repro.capacity.prefix.PrefixIndexedCapacity`): the cumulative-work
array ``W`` grows append-only with the breakpoints, so ``integrate`` and
``advance`` stay ``O(log n)`` however long the realized path gets — this is
the incremental-extension side of the index contract (docs/PERFORMANCE.md).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterator, Sequence

import numpy as np

from repro.capacity.base import Piece, ensure_band
from repro.capacity.prefix import PrefixIndexedCapacity
from repro.errors import CapacityError

__all__ = ["MarkovModulatedCapacity", "TwoStateMarkovCapacity"]


class MarkovModulatedCapacity(PrefixIndexedCapacity):
    """Capacity following a continuous-time Markov chain over finite rates.

    Parameters
    ----------
    rates:
        Capacity value of each state (all positive).
    mean_sojourns:
        Mean of the exponential sojourn time in each state.
    transitions:
        Row-stochastic jump matrix with zero diagonal: ``transitions[i][j]``
        is the probability that the chain jumps to state ``j`` when it
        leaves state ``i``.  Defaults to the uniform kernel over the other
        states (which for two states is deterministic alternation).
    initial_state:
        Index of the state occupied at ``t = 0``.
    rng:
        Seed or :class:`numpy.random.Generator` driving the sample path.
    lower, upper:
        Optional declared bounds of the capacity input set (default: the
        min/max state rate).  May be wider than the state rates; must
        contain them up to the shared 1e-12 relative tolerance for
        derived-float drift (see :mod:`repro.capacity.base`).
    """

    def __init__(
        self,
        rates: Sequence[float],
        mean_sojourns: Sequence[float],
        *,
        transitions: Sequence[Sequence[float]] | None = None,
        initial_state: int = 0,
        rng: np.random.Generator | int | None = None,
        lower: float | None = None,
        upper: float | None = None,
    ) -> None:
        if len(rates) < 2:
            raise CapacityError("a Markov capacity needs at least two states")
        if len(mean_sojourns) != len(rates):
            raise CapacityError(
                f"{len(rates)} rates but {len(mean_sojourns)} sojourn means"
            )
        state_rates = [float(r) for r in rates]
        for r in state_rates:
            if r <= 0.0:
                raise CapacityError(f"non-positive state rate: {r!r}")
        sojourns = [float(s) for s in mean_sojourns]
        for s in sojourns:
            if s <= 0.0:
                raise CapacityError(f"non-positive mean sojourn: {s!r}")
        n = len(state_rates)
        if transitions is None:
            kernel = np.full((n, n), 1.0 / (n - 1))
            np.fill_diagonal(kernel, 0.0)
        else:
            kernel = np.asarray(transitions, dtype=float)
            if kernel.shape != (n, n):
                raise CapacityError(
                    f"transition kernel must be {n}x{n}, got {kernel.shape}"
                )
            if np.any(np.diag(kernel) != 0.0):
                raise CapacityError("transition kernel must have zero diagonal")
            if np.any(kernel < 0.0) or not np.allclose(kernel.sum(axis=1), 1.0):
                raise CapacityError("transition kernel rows must sum to 1")
        if not 0 <= initial_state < n:
            raise CapacityError(f"initial_state {initial_state} out of range")

        lo = min(state_rates) if lower is None else float(lower)
        hi = max(state_rates) if upper is None else float(upper)
        ensure_band(lo, hi, min(state_rates), max(state_rates),
                    what="state rates")
        super().__init__(lo, hi)
        self._state_rates = state_rates
        self._sojourns = sojourns
        self._kernel = kernel
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

        # Materialized sample path == prefix-sum index (grown lazily,
        # append-only; see PrefixIndexedCapacity's extension contract).
        self._bp: list[float] = [0.0]
        self._states: list[int] = [initial_state]
        self._cum: list[float] = [0.0]
        # Time at which the *current* final segment ends (exclusive); the
        # final segment's rate is valid on [bp[-1], _frontier).
        self._frontier = 0.0
        self._sample_next_sojourn()

    # ------------------------------------------------------------------
    # Path materialization
    # ------------------------------------------------------------------
    def _sample_next_sojourn(self) -> None:
        """Extend the frontier by one exponential sojourn in the last state."""
        state = self._states[-1]
        self._frontier = self._bp[-1] + self._rng.exponential(self._sojourns[state])

    def _ensure(self, t: float) -> None:
        """Materialize the path (and its index) at least up to ``t``."""
        while self._frontier <= t:
            state = self._states[-1]
            start = self._bp[-1]
            end = self._frontier
            nxt = int(self._rng.choice(len(self._state_rates), p=self._kernel[state]))
            self._cum.append(self._cum[-1] + (end - start) * self._state_rates[state])
            self._bp.append(end)
            self._states.append(nxt)
            self._sample_next_sojourn()

    # Index hooks -------------------------------------------------------
    def _materialize(self, t: float) -> None:
        self._ensure(t)

    def _rate_at(self, i: int) -> float:
        return self._state_rates[self._states[i]]

    def _index(self, t: float) -> int:
        return self.segment_index(t)

    # ------------------------------------------------------------------
    # CapacityFunction interface
    # ------------------------------------------------------------------
    def value(self, t: float) -> float:
        if t < 0.0:
            raise CapacityError(f"capacity undefined for t < 0: {t!r}")
        return self._state_rates[self._states[self._index(t)]]

    def pieces(self, t0: float, t1: float) -> Iterator[Piece]:
        if t1 <= t0:
            return
        if t0 < 0.0:
            raise CapacityError(f"capacity undefined for t < 0: {t0!r}")
        if not math.isfinite(t1):
            raise CapacityError("cannot enumerate pieces to an infinite horizon")
        self._ensure(t1)
        i = max(0, bisect_right(self._bp, t0) - 1)
        start = t0
        while start < t1:
            end = self._bp[i + 1] if i + 1 < len(self._bp) else self._frontier
            if end > t1:
                end = t1
            yield (start, end, self._state_rates[self._states[i]])
            start = end
            i += 1

    # integrate / advance / cumulative / next_change: O(log n) via the
    # shared prefix-sum index (PrefixIndexedCapacity); materialization is
    # driven through the _materialize hook above.

    @property
    def breakpoints_materialized(self) -> tuple[float, ...]:
        """Breakpoints of the realized path materialized so far.

        Append-only: indices of previously observed entries never change
        (the prefix-sum index's incremental-extension contract)."""
        return tuple(self._bp)

    # ------------------------------------------------------------------
    def realized_path(self, horizon: float) -> list[Piece]:
        """Return the realized trajectory on ``[0, horizon)`` as pieces.

        Useful for plotting and for handing the *exact* same path to an
        offline algorithm as a :class:`~repro.capacity.piecewise.
        PiecewiseConstantCapacity`.
        """
        return list(self.pieces(0.0, horizon))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(states={self._state_rates}, "
            f"sojourns={self._sojourns})"
        )


class TwoStateMarkovCapacity(MarkovModulatedCapacity):
    """The paper's Section-IV capacity process.

    ``c(t)`` alternates between ``low`` (default 1.0) and ``high`` (default
    35.0) with exponential sojourns of mean ``mean_sojourn`` (the paper uses
    ``H / 4`` where ``H`` is the simulation horizon).
    """

    def __init__(
        self,
        low: float = 1.0,
        high: float = 35.0,
        mean_sojourn: float = 1.0,
        *,
        start_high: bool = False,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if low >= high:
            raise CapacityError(f"need low < high, got {low!r} >= {high!r}")
        super().__init__(
            rates=[low, high],
            mean_sojourns=[mean_sojourn, mean_sojourn],
            transitions=[[0.0, 1.0], [1.0, 0.0]],
            initial_state=1 if start_high else 0,
            rng=rng,
        )
