"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.runs == 50
        assert args.lambdas is None

    def test_sweep_kinds(self):
        for kind in ("policy", "supplement", "beta", "delta"):
            args = build_parser().parse_args(["sweep", kind])
            assert args.kind == kind
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "nonsense"])

    def test_faults_kinds(self):
        for kind in ("noise", "staleness", "dropout", "bias"):
            args = build_parser().parse_args(["faults", kind])
            assert args.kind == kind
            assert args.severities is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "gamma-rays"])

    def test_table1_resilience_flags(self):
        args = build_parser().parse_args(
            ["table1", "--checkpoint", "/tmp/ck", "--timeout", "30", "--retries", "2"]
        )
        assert args.checkpoint == "/tmp/ck"
        assert args.timeout == 30.0
        assert args.retries == 2
        defaults = build_parser().parse_args(["table1"])
        assert defaults.checkpoint is None and defaults.retries == 0


class TestCommands:
    def test_theory(self, capsys):
        assert main(["theory", "--k", "7", "--delta", "35"]) == 0
        out = capsys.readouterr().out
        assert "f(k, δ)" in out
        assert "upper bound" in out

    def test_adversary(self, capsys):
        assert main(["adversary", "--n", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out
        lines = [l for l in out.splitlines() if l.strip() and l.lstrip()[0].isdigit()]
        ratios = [float(l.split("|")[-1]) for l in lines]
        assert ratios[0] > ratios[1]  # decaying ratio visible from the CLI

    def test_table1_small(self, capsys):
        code = main(
            [
                "table1",
                "--runs", "2",
                "--lambdas", "6",
                "--jobs", "60",
                "--workers", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "V-Dover" in out

    def test_figure1_small(self, capsys):
        assert main(["figure1", "--lam", "6", "--jobs", "60", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "legend" in out  # now rendered as charts

    def test_sweep_beta_small(self, capsys):
        assert main(["sweep", "beta", "--runs", "2", "--workers", "1"]) == 0
        assert "beta" in capsys.readouterr().out

    def test_faults_small(self, capsys):
        code = main(
            [
                "faults", "noise",
                "--severities", "0", "0.5",
                "--runs", "2",
                "--jobs", "60",
                "--workers", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "noise severity" in out
        assert "Dover(sensed)" in out

    def test_table1_checkpoint_resumes(self, tmp_path, capsys):
        argv = [
            "table1",
            "--runs", "2",
            "--lambdas", "6",
            "--jobs", "60",
            "--workers", "1",
            "--checkpoint", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert (tmp_path / "table1_lam6.ckpt.jsonl").exists()
        assert main(argv) == 0  # resumes from the checkpoint
        assert capsys.readouterr().out == first


class TestSimulateCommand:
    @pytest.fixture
    def instance_file(self, tmp_path):
        from repro.capacity import PiecewiseConstantCapacity
        from repro.sim import Job
        from repro.workload import save_instance

        path = tmp_path / "inst.json"
        jobs = [Job(0, 0.0, 3.0, 6.0, 2.0), Job(1, 1.0, 2.0, 4.0, 5.0)]
        cap = PiecewiseConstantCapacity([0.0, 5.0], [1.0, 2.0])
        save_instance(path, jobs, cap)
        return str(path)

    @pytest.mark.parametrize(
        "scheduler", ["vdover", "dover", "edf", "edf-ac", "llf", "greedy", "fcfs"]
    )
    def test_every_scheduler_choice_runs(self, instance_file, scheduler, capsys):
        assert main(["simulate", instance_file, "--scheduler", scheduler]) == 0
        out = capsys.readouterr().out
        assert "value" in out and "completed" in out

    def test_gantt_flag(self, instance_file, capsys):
        assert main(["simulate", instance_file, "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "#" in out and "c(t)" in out

    def test_instance_without_capacity_errors(self, tmp_path, capsys):
        from repro.sim import Job
        from repro.workload import save_instance

        path = tmp_path / "nocap.json"
        save_instance(path, [Job(0, 0.0, 1.0, 2.0, 1.0)])
        assert main(["simulate", str(path)]) == 1

    def test_figure1_draws_charts(self, capsys):
        assert main(["figure1", "--lam", "6", "--jobs", "40", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "legend" in out
        assert "V-Dover" in out
