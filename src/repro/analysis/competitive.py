"""Empirical competitive-ratio estimation.

The competitive ratio compares an online algorithm against the clairvoyant
optimum over a *set* of instances (Definition 1: the worst case).  Exactly
computing the offline optimum is NP-hard, so three reference levels are
supported, in decreasing tightness and cost:

* ``"optimal"`` — exact branch-and-bound (small instances only);
* ``"greedy"``  — clairvoyant greedy admission (lower-bounds the optimum,
  so the measured ratio *upper*-bounds the true ratio);
* ``"generated"`` — total generated value (upper-bounds the optimum, so
  the measured ratio *lower*-bounds the true ratio; this is the paper's
  Table-I normalisation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.capacity.base import CapacityFunction
from repro.core.offline import greedy_admission, optimal_offline_value
from repro.errors import AnalysisError
from repro.sim.engine import simulate
from repro.sim.job import Job, total_value
from repro.sim.scheduler import Scheduler

__all__ = ["RatioEstimate", "empirical_ratio", "worst_case_ratio"]


@dataclass(frozen=True)
class RatioEstimate:
    """One instance's online-vs-reference comparison."""

    online_value: float
    reference_value: float
    reference_kind: str

    @property
    def ratio(self) -> float:
        if self.reference_value <= 0.0:
            # Nothing to gain: by convention the ratio is 1 (the online
            # algorithm trivially matched the best possible, zero).
            return 1.0
        return self.online_value / self.reference_value


def _reference_value(
    jobs: Sequence[Job], capacity: CapacityFunction, kind: str, max_jobs: int
) -> float:
    if kind == "optimal":
        return optimal_offline_value(jobs, capacity, max_jobs=max_jobs)
    if kind == "greedy":
        value, _ = greedy_admission(jobs, capacity)
        return value
    if kind == "generated":
        return total_value(jobs)
    raise AnalysisError(f"unknown reference kind: {kind!r}")


def empirical_ratio(
    jobs: Sequence[Job],
    capacity: CapacityFunction,
    scheduler: Scheduler,
    *,
    reference: str = "greedy",
    max_jobs: int = 20,
) -> RatioEstimate:
    """Measure one instance: run the scheduler, compare to the reference."""
    result = simulate(jobs, capacity, scheduler)
    ref = _reference_value(jobs, capacity, reference, max_jobs)
    return RatioEstimate(
        online_value=result.value, reference_value=ref, reference_kind=reference
    )


def worst_case_ratio(
    instances: Iterable[tuple[Sequence[Job], CapacityFunction]],
    scheduler: Scheduler,
    *,
    reference: str = "greedy",
    max_jobs: int = 20,
) -> float:
    """Minimum empirical ratio over a family of instances — the sample
    analogue of Definition 1's infimum."""
    worst = float("inf")
    seen = False
    for jobs, capacity in instances:
        est = empirical_ratio(
            jobs, capacity, scheduler, reference=reference, max_jobs=max_jobs
        )
        worst = min(worst, est.ratio)
        seen = True
    if not seen:
        raise AnalysisError("worst_case_ratio over an empty instance family")
    return worst
