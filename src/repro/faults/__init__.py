"""Capacity-sensing fault injection (docs/ROBUSTNESS.md).

Composable wrappers that corrupt the *sensing* channel of a capacity model
(instantaneous readings and declared bounds) while keeping the simulated
physics honest, plus the picklable :class:`FaultSpec` recipes the
fault-sweep experiment ships to Monte-Carlo workers.
"""

from repro.faults.base import CapacitySensorFault, unwrap_faults
from repro.faults.models import (
    BiasedBoundsCapacity,
    DropoutCapacity,
    NoisyCapacity,
    StaleCapacity,
)
from repro.faults.spec import FAULT_KINDS, FaultSpec

__all__ = [
    "CapacitySensorFault",
    "unwrap_faults",
    "NoisyCapacity",
    "StaleCapacity",
    "DropoutCapacity",
    "BiasedBoundsCapacity",
    "FaultSpec",
    "FAULT_KINDS",
]
