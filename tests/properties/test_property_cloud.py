"""Property tests for the cloud substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import PrimaryOccupancyModel, SpotMarket, SpotPriceProcess


@st.composite
def primary_models(draw):
    total = draw(st.floats(min_value=4.0, max_value=32.0))
    floor = draw(st.floats(min_value=0.5, max_value=total / 4.0))
    vm_size = draw(st.floats(min_value=0.5, max_value=(total - floor) / 2.0))
    return PrimaryOccupancyModel(
        total_capacity=total,
        floor=floor,
        arrival_rate=draw(st.floats(min_value=0.2, max_value=8.0)),
        mean_holding=draw(st.floats(min_value=0.5, max_value=6.0)),
        vm_size=vm_size,
    )


class TestPrimaryProperties:
    @settings(max_examples=30, deadline=None)
    @given(model=primary_models(), seed=st.integers(0, 10_000))
    def test_residual_respects_band_and_quantisation(self, model, seed):
        residual = model.sample_residual(60.0, rng=seed)
        assert residual.lower == model.floor
        assert residual.upper == model.total_capacity
        for rate in residual.rates:
            assert model.floor - 1e-9 <= rate <= model.total_capacity + 1e-9
            occupied = (model.total_capacity - rate) / model.vm_size
            assert abs(occupied - round(occupied)) < 1e-6

    @settings(max_examples=20, deadline=None)
    @given(model=primary_models(), seed=st.integers(0, 10_000))
    def test_residual_is_simulatable(self, model, seed):
        from repro.core import VDoverScheduler
        from repro.sim import Job, simulate

        residual = model.sample_residual(30.0, rng=seed)
        jobs = [
            Job(i, float(i), 1.0, float(i) + 1.0 / model.floor + 1.0, 1.0)
            for i in range(8)
        ]
        result = simulate(jobs, residual, VDoverScheduler(k=7.0), validate=True)
        assert result.n_completed + result.n_failed == len(jobs)


class TestMarketProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        rate=st.floats(min_value=0.5, max_value=6.0),
        floor=st.floats(min_value=0.3, max_value=0.9),
    )
    def test_requests_always_valid_and_admissible(self, seed, rate, floor):
        price = SpotPriceProcess(floor=floor, ceiling=4.0, mean=1.0)
        market = SpotMarket(price, request_rate=rate, floor_capacity=1.0)
        requests, _, prices = market.generate_requests(30.0, rng=seed)
        assert prices.min() >= floor - 1e-12
        for req in requests:
            assert floor - 1e-9 <= req.bid <= 4.0 + 1e-9
            assert req.is_admissible(1.0)
            job = req.to_job()
            assert job.density == pytest.approx(req.bid)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_importance_ratio_bound_holds(self, seed):
        price = SpotPriceProcess(floor=0.5, ceiling=4.0)
        market = SpotMarket(price, request_rate=5.0)
        requests, _, _ = market.generate_requests(40.0, rng=seed)
        if len(requests) >= 2:
            densities = [r.bid for r in requests]
            assert max(densities) / min(densities) <= price.importance_ratio_bound + 1e-9
