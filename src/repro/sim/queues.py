"""Job queues used by the schedulers (the paper's Qedf, Qother, Qsupp).

All three queues of the V-Dover algorithm are priority queues over jobs
(possibly with attached bookkeeping tuples) that additionally support
*removal by job* — a job can leave a queue because its deadline passed,
because the zero-laxity handler drained Qedf into Qother, or because it got
scheduled.  :class:`JobQueue` implements this with a heap plus lazy
deletion (tombstones), giving O(log n) push/pop/remove amortised.

Orderings (paper, Section III-D):

* ``Qedf``   — earliest deadline first (entries are ``(job, t_insert,
  cslack_insert)`` tuples);
* ``Qother`` — earliest deadline first;
* ``Qsupp``  — **latest** deadline first.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generic, Iterator, Optional, Tuple, TypeVar

from repro.errors import SchedulingError
from repro.sim.job import Job

__all__ = ["JobQueue", "edf_key", "latest_deadline_key", "EdfEntry"]

#: Bookkeeping entry for Qedf: (job, t_insert, cslack_insert).
EdfEntry = Tuple[Job, float, float]

E = TypeVar("E")


def edf_key(job: Job) -> tuple:
    """Earliest-deadline-first ordering key with deterministic tie-break."""
    return (job.deadline, job.jid)


def latest_deadline_key(job: Job) -> tuple:
    """Latest-deadline-first ordering key (used by Qsupp)."""
    return (-job.deadline, job.jid)


class JobQueue(Generic[E]):
    """Heap-ordered queue of entries keyed by their job, with removal.

    Parameters
    ----------
    key:
        Maps a *job* to its ordering key (smallest first).
    entry_job:
        Extracts the job from an entry.  Defaults to identity, for queues
        whose entries are bare jobs; Qedf passes ``lambda e: e[0]``.
    name:
        For diagnostics.
    """

    def __init__(
        self,
        key: Callable[[Job], tuple] = edf_key,
        *,
        entry_job: Callable[[E], Job] | None = None,
        name: str = "queue",
    ) -> None:
        self._key = key
        self._entry_job = entry_job or (lambda entry: entry)  # type: ignore[assignment]
        self._name = name
        self._heap: list[tuple[tuple, int, E]] = []
        self._live: dict[int, E] = {}  # jid -> current entry
        self._counter = itertools.count()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._live)

    def __bool__(self) -> bool:
        return bool(self._live)

    def __contains__(self, job: Job) -> bool:
        return job.jid in self._live

    def jobs(self) -> Iterator[Job]:
        """Iterate over live member jobs (heap order not guaranteed)."""
        for entry in self._live.values():
            yield self._entry_job(entry)

    def entries(self) -> Iterator[E]:
        """Iterate over live entries (heap order not guaranteed)."""
        yield from self._live.values()

    # ------------------------------------------------------------------
    def insert(self, entry: E) -> None:
        """Insert an entry; its job must not already be a member."""
        job = self._entry_job(entry)
        if job.jid in self._live:
            raise SchedulingError(
                f"{self._name}: job {job.jid} inserted twice"
            )
        self._live[job.jid] = entry
        heapq.heappush(self._heap, (self._key(job), next(self._counter), entry))

    def _purge(self) -> None:
        """Drop tombstoned heap entries from the top."""
        while self._heap:
            _, _, entry = self._heap[0]
            job = self._entry_job(entry)
            if self._live.get(job.jid) is entry:
                return
            heapq.heappop(self._heap)

    def first(self) -> E:
        """The paper's ``FirstInQueue``: best entry without removal."""
        self._purge()
        if not self._heap:
            raise SchedulingError(f"{self._name}: first() on empty queue")
        return self._heap[0][2]

    def dequeue(self) -> E:
        """The paper's ``Dequeue``: pop and return the best entry."""
        self._purge()
        if not self._heap:
            raise SchedulingError(f"{self._name}: dequeue() on empty queue")
        _, _, entry = heapq.heappop(self._heap)
        del self._live[self._entry_job(entry).jid]
        return entry

    def remove(self, job: Job) -> Optional[E]:
        """Remove ``job``'s entry if present; return it (else ``None``).

        O(1): the heap copy becomes a tombstone purged lazily.
        """
        return self._live.pop(job.jid, None)

    def drain(self) -> list[E]:
        """Remove and return *all* live entries in key order."""
        out = []
        while self._live:
            out.append(self.dequeue())
        self._heap.clear()
        return out

    def clear(self) -> None:
        self._live.clear()
        self._heap.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JobQueue({self._name}, size={len(self._live)})"
