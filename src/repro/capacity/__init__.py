"""Time-varying processor-capacity models (the paper's ``C(c̲, c̄)``).

The scheduler sees only the declared bounds and the past of the trajectory;
the simulation engine is clairvoyant.  See :class:`CapacityFunction` for the
interface contract.
"""

from repro.capacity.base import CapacityFunction, Piece
from repro.capacity.combinators import (
    ClampedCapacity,
    ScaledCapacity,
    ShiftedCapacity,
    SummedCapacity,
)
from repro.capacity.constant import ConstantCapacity
from repro.capacity.markov import MarkovModulatedCapacity, TwoStateMarkovCapacity
from repro.capacity.piecewise import PiecewiseConstantCapacity
from repro.capacity.sinusoidal import SinusoidalCapacity
from repro.capacity.trace import TraceCapacity, sample_function

__all__ = [
    "CapacityFunction",
    "Piece",
    "ClampedCapacity",
    "ScaledCapacity",
    "ShiftedCapacity",
    "SummedCapacity",
    "ConstantCapacity",
    "PiecewiseConstantCapacity",
    "MarkovModulatedCapacity",
    "TwoStateMarkovCapacity",
    "SinusoidalCapacity",
    "TraceCapacity",
    "sample_function",
]
