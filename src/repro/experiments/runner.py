"""Seeded, optionally parallel, crash-isolated Monte-Carlo harness.

Design rules (per the HPC guides and for statistical hygiene):

* every replication derives its RNG from ``SeedSequence(seed).spawn(n)``,
  so results do not depend on worker scheduling, on how many workers run,
  on retries, or on whether the run was resumed from a checkpoint;
* all schedulers inside one replication run on the *same* instance (same
  jobs, same realized capacity path), so cross-algorithm comparisons are
  paired — exactly how the paper compares V-Dover with Dover's four ĉ
  settings;
* worker payloads are plain picklable dataclasses (no lambdas), so the
  harness runs unchanged under ``multiprocessing`` with either the
  ``fork`` or ``spawn`` start method.

Resilience (docs/ROBUSTNESS.md): a replication that raises is returned to
the parent as a structured :class:`FailedReplication` instead of killing
the whole pool; each replication gets an optional wall-clock budget
enforced *inside* the worker (``SIGALRM``, where available) so a hung
replication cannot stall the sweep; transient failures (timeouts, OS
errors) are retried with linear backoff; and long sweeps checkpoint every
finished replication incrementally (:mod:`repro.experiments.checkpoint`)
so an interrupted run resumes from completed seeds with bit-identical
results.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
import traceback as traceback_module
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro import obs as _obs
from repro.capacity.base import CapacityFunction
from repro.capacity.markov import TwoStateMarkovCapacity
from repro.errors import (
    ExperimentError,
    ReplicationTimeout,
    ReproError,
    SimulatedCrash,
)
from repro.multi.engine import MultiprocessorEngine, simulate_multi
from repro.sim.engine import SimulationEngine, simulate
from repro.sim.job import Job, total_value
from repro.sim.scheduler import Scheduler
from repro.workload.base import WorkloadGenerator

__all__ = [
    "SchedulerSpec",
    "PaperInstanceFactory",
    "MultiInstanceFactory",
    "ReplicationOutcome",
    "FailedReplication",
    "MonteCarloReport",
    "MonteCarloRunner",
    "default_mc_runs",
    "TRANSIENT_EXCEPTIONS",
    "TimeoutEnforcementWarning",
]

#: Exception families the runner treats as *transient* (worth retrying):
#: per-replication wall-clock timeouts and operating-system hiccups.
#: Deterministic model errors (a scheduler driven outside its contract,
#: an invalid instance) would fail identically on every retry and are
#: recorded as failures immediately.
TRANSIENT_EXCEPTIONS = (ReplicationTimeout, OSError)

#: Upper bound on snapshot resumes per replication (a crash plan that
#: somehow re-fires forever must not wedge the worker).
_MAX_CRASH_RESUMES = 16


def default_mc_runs(fallback: int) -> int:
    """Monte-Carlo run count: ``REPRO_MC_RUNS`` env override, else fallback.

    The paper averages over 800 runs; the shipped benchmarks default to a
    laptop-friendly count and scale up via the environment variable."""
    raw = os.environ.get("REPRO_MC_RUNS")
    if raw is None:
        return fallback
    try:
        runs = int(raw)
    except ValueError as exc:
        raise ReproError(
            f"REPRO_MC_RUNS must be an integer (e.g. REPRO_MC_RUNS=800), "
            f"got {raw!r}"
        ) from exc
    if runs < 1:
        raise ReproError(f"REPRO_MC_RUNS must be >= 1, got {runs}")
    return runs


@dataclass(frozen=True)
class SchedulerSpec:
    """Picklable recipe for a scheduler instance."""

    name: str
    cls: type
    kwargs: Mapping = field(default_factory=dict)

    def build(self) -> Scheduler:
        scheduler = self.cls(**self.kwargs)
        scheduler.name = self.name  # stable label independent of defaults
        return scheduler


@dataclass(frozen=True)
class PaperInstanceFactory:
    """The paper's Section-IV instance distribution.

    Jobs from a workload generator; capacity an independent two-state CTMC
    (``low``/``high`` with mean sojourn ``sojourn``).  One factory call
    consumes two child RNGs — one for jobs, one for the capacity path — so
    the two processes are independent, as in the paper.
    """

    workload: WorkloadGenerator
    low: float = 1.0
    high: float = 35.0
    sojourn: float = 1.0

    def make(self, rng: np.random.Generator) -> tuple[list[Job], CapacityFunction]:
        job_seed, cap_seed = rng.spawn(2)
        jobs = self.workload.generate(job_seed)
        capacity = TwoStateMarkovCapacity(
            self.low, self.high, mean_sojourn=self.sojourn, rng=cap_seed
        )
        return jobs, capacity


@dataclass(frozen=True)
class MultiInstanceFactory:
    """Multiprocessor instance distribution: one cluster-wide job stream,
    ``n_procs`` independent two-state CTMC capacity paths.

    When :func:`_run_one` receives a *list* of capacities from a factory,
    it runs every scheduler spec through the multiprocessor engine — crash
    resume, fault arming and paired comparisons all work identically.
    Per-processor bands may be heterogeneous via ``lows`` / ``highs``
    (sequences of length ``n_procs``, overriding the scalar defaults).
    """

    workload: WorkloadGenerator
    n_procs: int = 2
    low: float = 1.0
    high: float = 35.0
    sojourn: float = 1.0
    lows: Sequence[float] | None = None
    highs: Sequence[float] | None = None

    def make(
        self, rng: np.random.Generator
    ) -> tuple[list[Job], list[CapacityFunction]]:
        if self.n_procs < 1:
            raise ExperimentError(f"n_procs must be >= 1, got {self.n_procs}")
        for name, seq in (("lows", self.lows), ("highs", self.highs)):
            if seq is not None and len(seq) != self.n_procs:
                raise ExperimentError(
                    f"{name} must have one entry per processor "
                    f"({self.n_procs}), got {len(seq)}"
                )
        seeds = rng.spawn(1 + self.n_procs)
        jobs = self.workload.generate(seeds[0])
        capacities: list[CapacityFunction] = []
        for p in range(self.n_procs):
            lo = self.lows[p] if self.lows is not None else self.low
            hi = self.highs[p] if self.highs is not None else self.high
            capacities.append(
                TwoStateMarkovCapacity(
                    lo, hi, mean_sojourn=self.sojourn, rng=seeds[1 + p]
                )
            )
        return jobs, capacities


@dataclass
class ReplicationOutcome:
    """Per-replication metrics for every scheduler (paired by instance)."""

    generated_value: float
    n_jobs: int
    #: scheduler name -> accrued value
    values: dict[str, float]
    #: scheduler name -> completed-job count
    completed: dict[str, int]
    #: simulated engine crashes survived via snapshot resume while
    #: producing this outcome (0 for fault-free runs)
    recovered: int = 0
    #: worker-side observability metrics snapshot (``None`` unless the
    #: replication ran inside an obs session — see
    #: :meth:`MonteCarloReport.merged_metrics`)
    metrics: "dict | None" = None

    def normalized(self, name: str) -> float:
        return self.values[name] / self.generated_value if self.generated_value else 0.0


@dataclass(frozen=True)
class FailedReplication:
    """Structured record of a replication that raised or timed out.

    Returned by workers instead of the exception itself, so one bad
    replication cannot kill ``pool.map`` and lose every sibling's work.
    """

    index: int
    error_type: str  #: qualified exception class name
    message: str
    attempts: int  #: total attempts, including retries
    traceback: str = ""
    #: last engine snapshot when the failure was an unrecoverable
    #: simulated crash (in-memory only; never serialized to checkpoints)
    snapshot: object = field(default=None, compare=False, repr=False)
    #: the last N trace events preceding the failure (JSON-ready dicts)
    #: when the replication ran inside an obs session — what turned
    #: "replication #317 raised" into a diagnosable record
    trace_tail: tuple = ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"replication #{self.index} failed after {self.attempts} "
            f"attempt(s): {self.error_type}: {self.message}"
        )


@dataclass
class MonteCarloReport:
    """Everything a resilient run produced: survivors, failures, resume
    accounting.

    ``outcomes`` is keyed by replication index, so paired analyses can
    align survivors across independent runs even when different subsets
    failed."""

    n_runs: int
    outcomes: dict[int, ReplicationOutcome] = field(default_factory=dict)
    failures: dict[int, FailedReplication] = field(default_factory=dict)
    #: replications loaded from a checkpoint instead of being executed
    resumed: int = 0

    @property
    def survivors(self) -> list[ReplicationOutcome]:
        """Completed outcomes in replication-index order."""
        return [self.outcomes[i] for i in sorted(self.outcomes)]

    @property
    def ok(self) -> bool:
        return not self.failures

    def failure_records(self) -> list[FailedReplication]:
        return [self.failures[i] for i in sorted(self.failures)]

    def raise_on_failure(self) -> None:
        """Raise :class:`ExperimentError` summarizing failures, if any."""
        if self.ok:
            return
        records = self.failure_records()
        head = records[0]
        detail = f"\nfirst failure traceback:\n{head.traceback}" if head.traceback else ""
        raise ExperimentError(
            f"{len(records)} of {self.n_runs} Monte-Carlo replications "
            f"failed (first: {head}){detail}"
        )

    def merged_metrics(self) -> "dict | None":
        """Sweep-wide observability metrics: the per-worker registry
        snapshots of every surviving replication, merged (counters add,
        gauges keep the high-water mark, histograms pool their moments —
        see :func:`repro.obs.merge_snapshots`).

        ``None`` when no survivor carries a snapshot, i.e. the sweep ran
        with observability disabled."""
        snaps = [o.metrics for o in self.survivors if o.metrics is not None]
        if not snaps:
            return None
        return _obs.merge_snapshots(snaps)


# ----------------------------------------------------------------------
# Worker-side machinery
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _RetryPolicy:
    """Picklable per-replication resilience knobs."""

    timeout: float | None = None  #: wall-clock budget per attempt (seconds)
    max_retries: int = 0  #: extra attempts for transient failures
    backoff: float = 0.0  #: sleep ``backoff * attempt`` between attempts


class TimeoutEnforcementWarning(RuntimeWarning):
    """The replication timeout cannot pre-empt (no main-thread SIGALRM);
    it is checked *after* the replication finishes instead."""


@contextmanager
def _replication_deadline(seconds: float | None) -> Iterator[None]:
    """Enforce a wall-clock budget (best effort, never silently dropped).

    Where POSIX interval timers exist and we are on the main thread of
    the process — which covers fork/spawn pool workers and the serial
    path — the budget pre-empts via ``SIGALRM``.  Anywhere else
    (non-main threads, platforms without ``SIGALRM``) the historical
    behaviour was to *silently* skip enforcement; now the fallback is a
    soft deadline: a :class:`TimeoutEnforcementWarning` states up front
    that pre-emption is unavailable, the replication runs unpreempted,
    and a post-hoc elapsed check raises the same transient
    :class:`~repro.errors.ReplicationTimeout` when the budget was
    exceeded — so retry accounting stays uniform across contexts."""
    if not seconds:
        yield
        return
    if (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    ):
        def _on_alarm(signum, frame):  # pragma: no cover - exercised via raise
            raise ReplicationTimeout(
                f"replication exceeded its {seconds:g}s wall-clock budget"
            )

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, float(seconds))
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
        return

    reason = (
        "no SIGALRM on this platform"
        if not hasattr(signal, "SIGALRM")
        else f"not on the main thread ({threading.current_thread().name})"
    )
    warnings.warn(
        f"replication timeout of {seconds:g}s cannot pre-empt ({reason}); "
        "falling back to a post-hoc soft deadline check",
        TimeoutEnforcementWarning,
        stacklevel=3,
    )
    started = time.perf_counter()
    yield
    elapsed = time.perf_counter() - started
    if elapsed > seconds:
        raise ReplicationTimeout(
            f"replication exceeded its {seconds:g}s wall-clock budget "
            f"(soft deadline: took {elapsed:.3f}s, detected post-hoc "
            f"because {reason})"
        )


def _fresh_seed(seed_seq: np.random.SeedSequence) -> np.random.SeedSequence:
    """A pristine copy of ``seed_seq`` (zero children spawned).

    ``Generator.spawn`` advances the *shared* SeedSequence spawn counter,
    so re-running a replication with the original object would silently
    derive different child streams.  Rebuilding from ``entropy`` +
    ``spawn_key`` makes every attempt — first run, retry, or resume —
    bit-identical."""
    return np.random.SeedSequence(
        entropy=seed_seq.entropy, spawn_key=seed_seq.spawn_key
    )


class _ReplicationCrash(Exception):
    """Internal: a :class:`~repro.errors.SimulatedCrash` escaped one
    scheduler's run inside a replication.

    Carries everything :func:`_run_one` needs to *resume* — which
    scheduler crashed, the paired values already banked for earlier
    schedulers, and the crash (whose snapshot the resumed engine
    restores) — so the crash-isolation loop continues the replication
    from the last snapshot instead of re-running it from scratch."""

    def __init__(
        self,
        spec_index: int,
        values: dict,
        completed: dict,
        recovered: int,
        crash: SimulatedCrash,
    ) -> None:
        super().__init__(str(crash))
        self.spec_index = spec_index
        self.values = values
        self.completed = completed
        self.recovered = recovered
        self.crash = crash


def _run_one(args: tuple, resume: "_ReplicationCrash | None" = None) -> ReplicationOutcome:
    """Worker: one replication — one instance, all schedulers (paired).

    Instance factories may expose ``make_with_faults(rng) -> (jobs,
    capacity, faults)`` to arm execution faults (:mod:`repro.faults.
    execution`) on every scheduler's run; plain factories keep the
    fault-free ``make(rng)`` contract.  A :class:`~repro.errors.
    SimulatedCrash` escaping a run is wrapped in :class:`_ReplicationCrash`
    with the partial paired results; when ``resume`` carries such a crash,
    the affected scheduler restores the crash's snapshot and the earlier
    schedulers' banked values are kept (jobs and capacity re-derive
    bit-identically from the replication seed)."""
    factory, specs, seed_seq = args
    rng = np.random.default_rng(_fresh_seed(seed_seq))
    make_with_faults = getattr(factory, "make_with_faults", None)
    if make_with_faults is not None:
        jobs, capacity, faults = make_with_faults(rng)
    else:
        jobs, capacity = factory.make(rng)
        faults = ()
    gen_value = total_value(jobs)

    start_index = 0
    values: dict[str, float] = {}
    completed: dict[str, int] = {}
    recovered = 0
    pending_snapshot = None
    if resume is not None:
        start_index = resume.spec_index
        values = dict(resume.values)
        completed = dict(resume.completed)
        recovered = resume.recovered + 1  # the crash now being survived
        pending_snapshot = resume.crash.snapshot

    for i, spec in enumerate(specs):
        if i < start_index:
            continue
        # A factory returning a *list* of capacities selects the
        # multiprocessor engine; schedulers are then MultiScheduler specs.
        is_multi = isinstance(capacity, (list, tuple))
        try:
            if i == start_index and pending_snapshot is not None:
                if is_multi:
                    engine = MultiprocessorEngine(
                        jobs, list(capacity), spec.build(), faults=faults
                    )
                else:
                    engine = SimulationEngine(
                        jobs, capacity, spec.build(), faults=faults
                    )
                engine.restore(pending_snapshot)
                result = engine.run()
            else:
                # Crash plans keep a ``fired`` latch; clear it so every
                # scheduler in the paired comparison sees the same fault.
                for fault in faults:
                    if getattr(fault, "is_crash_plan", False):
                        fault.fired = False
                if is_multi:
                    result = simulate_multi(
                        jobs, list(capacity), spec.build(), faults=faults
                    )
                else:
                    result = simulate(jobs, capacity, spec.build(), faults=faults)
        except SimulatedCrash as crash:
            raise _ReplicationCrash(i, values, completed, recovered, crash)
        values[spec.name] = result.value
        completed[spec.name] = result.n_completed
    return ReplicationOutcome(
        generated_value=gen_value,
        n_jobs=len(jobs),
        values=values,
        completed=completed,
        recovered=recovered,
    )


def _trace_tail(octx: "_obs.ObsContext | None", n: int) -> tuple:
    """The last ``n`` trace events of the worker session (diagnostics for
    :class:`FailedReplication`); empty when tracing is off."""
    if octx is None or octx.sink is None:
        return ()
    return tuple(octx.sink.tail(n))


def _run_one_safe(
    payload: tuple,
) -> tuple[int, ReplicationOutcome | FailedReplication]:
    """Crash-isolated worker: never raises (except ``KeyboardInterrupt``).

    Applies the per-attempt deadline, retries transient failures with
    linear backoff, and downgrades terminal exceptions to a structured
    :class:`FailedReplication` so the pool — and every sibling
    replication — survives.

    When the payload carries an :class:`~repro.obs.ObsSpec` the worker
    opens its *own* observability session around the replication (sessions
    stack, so an ambient parent session is untouched).  One session spans
    all snapshot resumes of a replication — its metrics describe the whole
    replication, crashes included — while a *transient* retry reopens a
    fresh session so the retried attempt's trace is not polluted by the
    abandoned one.  Successful outcomes carry the registry snapshot (plus
    a ``mc.replication_wall_s`` wall-time observation); failures carry the
    trailing trace events."""
    if len(payload) == 5:  # pre-obs payload shape (kept for direct callers)
        index, factory, specs, seed_seq, policy = payload
        obs_spec: "_obs.ObsSpec | None" = None
    else:
        index, factory, specs, seed_seq, policy, obs_spec = payload
    attempts = 0
    resume: _ReplicationCrash | None = None
    crash_resumes = 0
    octx: "_obs.ObsContext | None" = None
    if obs_spec is not None:
        octx = _obs.enable(ring=obs_spec.ring, profile=obs_spec.profile)
    wall_start = time.perf_counter()
    try:
        while True:
            attempts += 1
            try:
                with _replication_deadline(policy.timeout):
                    outcome = _run_one((factory, specs, seed_seq), resume=resume)
                if octx is not None:
                    octx.metrics.histogram("mc.replication_wall_s").observe(
                        time.perf_counter() - wall_start
                    )
                    outcome.metrics = octx.snapshot_metrics()
                return index, outcome
            except KeyboardInterrupt:  # pragma: no cover - user interrupt
                raise
            except _ReplicationCrash as crashed:
                # A simulated engine crash: resume from its snapshot rather
                # than re-running the whole replication.  Resumes do not
                # consume the transient-retry budget (they make progress).
                crash_resumes += 1
                if crashed.crash.snapshot is not None and crash_resumes <= _MAX_CRASH_RESUMES:
                    resume = crashed
                    attempts -= 1
                    continue
                reason = (
                    "crash carries no snapshot (snapshotting disabled?)"
                    if crashed.crash.snapshot is None
                    else f"gave up after {_MAX_CRASH_RESUMES} snapshot resumes"
                )
                return index, FailedReplication(
                    index=index,
                    error_type=type(crashed.crash).__qualname__,
                    message=f"{crashed.crash} — {reason}",
                    attempts=attempts,
                    traceback=traceback_module.format_exc(),
                    snapshot=crashed.crash.snapshot,
                    trace_tail=_trace_tail(octx, obs_spec.tail if obs_spec else 0),
                )
            except Exception as exc:
                transient = isinstance(exc, TRANSIENT_EXCEPTIONS)
                if transient and attempts <= policy.max_retries:
                    if policy.backoff > 0.0:
                        time.sleep(policy.backoff * attempts)
                    resume = None  # retries restart the replication from scratch
                    if octx is not None:
                        # Fresh session: the retried attempt is bit-identical
                        # to a first-try success, so its trace/metrics must
                        # not carry the abandoned attempt's events.
                        _obs.disable()
                        octx = _obs.enable(
                            ring=obs_spec.ring, profile=obs_spec.profile
                        )
                        wall_start = time.perf_counter()
                    continue
                return index, FailedReplication(
                    index=index,
                    error_type=type(exc).__qualname__,
                    message=str(exc),
                    attempts=attempts,
                    traceback=traceback_module.format_exc(),
                    trace_tail=_trace_tail(octx, obs_spec.tail if obs_spec else 0),
                )
    finally:
        if octx is not None:
            _obs.disable()


def _mp_context(start_method: str | None = None):
    """The multiprocessing context: an explicit method if requested, else
    ``fork`` where available with a ``spawn`` fallback (macOS/Windows —
    ``fork`` either does not exist or is unsafe there)."""
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context("spawn")


class MonteCarloRunner:
    """Replicate (instance → all schedulers) ``n_runs`` times.

    Parameters
    ----------
    factory:
        Instance factory (e.g. :class:`PaperInstanceFactory`).
    specs:
        Scheduler recipes, all evaluated on every instance.
    """

    def __init__(self, factory, specs: Sequence[SchedulerSpec]) -> None:
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate scheduler names: {names}")
        self.factory = factory
        self.specs = list(specs)

    # ------------------------------------------------------------------
    def run(
        self,
        n_runs: int,
        seed: int = 0,
        *,
        workers: int | None = None,
        timeout: float | None = None,
        max_retries: int = 0,
        backoff: float = 0.0,
        checkpoint: "str | os.PathLike | None" = None,
        mp_start_method: str | None = None,
        obs_spec: "_obs.ObsSpec | None" = None,
    ) -> list[ReplicationOutcome]:
        """Execute the replications and return the outcomes in order.

        Strict wrapper over :meth:`run_report`: any replication failure
        (after retries) raises :class:`~repro.errors.ExperimentError`.
        ``workers=0``/``1`` forces serial; ``workers=None`` auto-sizes to
        the CPU count (capped at 8) when the job is big enough to amortise
        process startup.
        """
        report = self.run_report(
            n_runs,
            seed,
            workers=workers,
            timeout=timeout,
            max_retries=max_retries,
            backoff=backoff,
            checkpoint=checkpoint,
            mp_start_method=mp_start_method,
            obs_spec=obs_spec,
        )
        report.raise_on_failure()
        return report.survivors

    def run_report(
        self,
        n_runs: int,
        seed: int = 0,
        *,
        workers: int | None = None,
        timeout: float | None = None,
        max_retries: int = 0,
        backoff: float = 0.0,
        checkpoint: "str | os.PathLike | None" = None,
        mp_start_method: str | None = None,
        obs_spec: "_obs.ObsSpec | None" = None,
    ) -> MonteCarloReport:
        """Crash-isolated execution with full failure accounting.

        Parameters
        ----------
        workers:
            Parallelism (see :meth:`run`).
        timeout:
            Per-replication wall-clock budget in seconds, enforced inside
            the worker via ``SIGALRM`` where available (POSIX main thread);
            elsewhere the budget is best-effort.  Timeouts are transient:
            they consume the retry budget before being recorded as
            failures.
        max_retries, backoff:
            Bounded retry for transient failures (:data:`
            TRANSIENT_EXCEPTIONS`): up to ``max_retries`` extra attempts,
            sleeping ``backoff * attempt`` seconds in between.  Retries
            re-derive the replication's RNG from scratch, so a retried
            replication is bit-identical to one that succeeded first try.
        checkpoint:
            Path of an incremental JSON-lines checkpoint (schema v2, see
            :mod:`repro.experiments.checkpoint`).  Completed replications
            found there are loaded instead of re-executed; newly finished
            replications (and failure metadata) are appended as they
            complete, so an interrupted sweep resumes where it stopped.
        mp_start_method:
            Explicit multiprocessing start method (``"fork"``/``"spawn"``/
            ``"forkserver"``); default picks ``fork`` where available and
            falls back to ``spawn``.
        obs_spec:
            Per-worker observability recipe (:class:`repro.obs.ObsSpec`).
            Each worker opens its own session per replication; surviving
            outcomes carry a metrics snapshot (merged sweep-wide via
            :meth:`MonteCarloReport.merged_metrics`) and failures carry
            the last ``obs_spec.tail`` trace events.  When ``None`` and an
            observability session is active in the calling process, a
            default spec (inheriting the ambient profiling flag) is
            derived automatically, so ``with obs.session(): runner.run(...)``
            just works; pass a spec explicitly to control ring/tail sizes
            or to force observability regardless of ambient state.
        """
        if n_runs < 1:
            raise ReproError(f"n_runs must be >= 1, got {n_runs}")
        if max_retries < 0:
            raise ReproError(f"max_retries must be >= 0, got {max_retries}")
        if timeout is not None and timeout <= 0.0:
            raise ReproError(f"timeout must be positive, got {timeout}")
        policy = _RetryPolicy(
            timeout=timeout, max_retries=int(max_retries), backoff=float(backoff)
        )
        if obs_spec is None:
            ambient = _obs.current()
            if ambient is not None:
                obs_spec = _obs.ObsSpec(profile=ambient.profile)
        seeds = np.random.SeedSequence(seed).spawn(n_runs)
        report = MonteCarloReport(n_runs=n_runs)

        store = None
        pending = list(range(n_runs))
        if checkpoint is not None:
            from repro.experiments.checkpoint import CheckpointStore, run_fingerprint

            store = CheckpointStore(
                checkpoint,
                seed=seed,
                n_runs=n_runs,
                fingerprint=run_fingerprint(self.factory, self.specs, seed, n_runs),
            )
            report.outcomes.update(store.completed)
            report.resumed = len(store.completed)
            pending = store.pending()

        payloads = [
            (i, self.factory, self.specs, seeds[i], policy, obs_spec)
            for i in pending
        ]

        def _absorb(index: int, result) -> None:
            if store is not None:
                store.record(index, result)
            if isinstance(result, FailedReplication):
                report.failures[index] = result
            else:
                report.outcomes[index] = result

        try:
            if not payloads:
                return report
            n_pending = len(payloads)
            if workers is None:
                workers = min(os.cpu_count() or 1, 8) if n_pending >= 8 else 1
            if workers <= 1:
                for payload in payloads:
                    index, result = _run_one_safe(payload)
                    _absorb(index, result)
                return report

            ctx = _mp_context(mp_start_method)
            # Stream with chunksize 1 when checkpointing so every finished
            # replication hits disk promptly; otherwise amortise IPC.
            chunksize = (
                1 if store is not None else max(1, n_pending // (4 * workers))
            )
            with ctx.Pool(processes=workers) as pool:
                for index, result in pool.imap_unordered(
                    _run_one_safe, payloads, chunksize=chunksize
                ):
                    _absorb(index, result)
            return report
        finally:
            if store is not None:
                store.close()
