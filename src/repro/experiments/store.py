"""Persist and compare experiment results.

Reproduction work is iterative: you run Table I today, change the engine
tomorrow, and need to know what moved.  The store serialises experiment
results (Table I rows, sweeps) to JSON with their configuration and a
schema version, reloads them, and diffs two runs with per-cell drift —
the benchmark suite's `benchmarks/results/*.txt` artifacts are for humans,
these JSON files are for machines.

Schema history
--------------
* **v1** — rows/percents + config.
* **v2** — adds *failure metadata*: results carry the structured
  :class:`~repro.experiments.runner.FailedReplication` records of every
  replication that was lost to a crash or timeout, so a stored table is
  honest about which cells averaged fewer than ``n_runs`` samples.  The
  companion per-replication *checkpoint records* live in
  :mod:`repro.experiments.checkpoint` (same schema number).

Both loaders accept v1 files unchanged (they simply carry no failure
metadata) — stored baselines keep working across the bump.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Mapping

from repro.analysis.stats import Summary
from repro.errors import AnalysisError
from repro.experiments.runner import FailedReplication
from repro.experiments.sweeps import SweepResult
from repro.experiments.table1 import Table1Config, Table1Result, Table1Row

__all__ = [
    "save_table1",
    "load_table1",
    "diff_table1",
    "save_sweep",
    "load_sweep",
]

_SCHEMA = 2
#: Schemas the loaders accept; v1 files predate failure metadata.
_SUPPORTED_SCHEMAS = (1, 2)


def _summary_to_dict(s: Summary) -> dict:
    return {"n": s.n, "mean": s.mean, "std": s.std, "ci_half_width": s.ci_half_width}


def _summary_from_dict(d: Mapping) -> Summary:
    return Summary(
        n=int(d["n"]),
        mean=float(d["mean"]),
        std=float(d["std"]),
        ci_half_width=float(d["ci_half_width"]),
    )


def _failure_to_dict(f: FailedReplication) -> dict:
    return {
        "index": f.index,
        "error_type": f.error_type,
        "message": f.message,
        "attempts": f.attempts,
        "traceback": f.traceback,
    }


def _failure_from_dict(d: Mapping) -> FailedReplication:
    return FailedReplication(
        index=int(d["index"]),
        error_type=str(d["error_type"]),
        message=str(d["message"]),
        attempts=int(d["attempts"]),
        traceback=str(d.get("traceback", "")),
    )


def _check_schema(doc: Mapping, path) -> None:
    if doc.get("schema") not in _SUPPORTED_SCHEMAS:
        raise AnalysisError(f"{path}: unsupported schema {doc.get('schema')}")


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
def save_table1(path: str | Path, result: Table1Result) -> None:
    doc = {
        "schema": _SCHEMA,
        "kind": "table1",
        "config": asdict(result.config),
        "rows": [
            {
                "lam": row.lam,
                "dover_percent": {
                    str(c): _summary_to_dict(s) for c, s in row.dover_percent.items()
                },
                "vdover_percent": _summary_to_dict(row.vdover_percent),
                "best_c_hat": row.best_c_hat,
                "gain_percent": _summary_to_dict(row.gain_percent),
            }
            for row in result.rows
        ],
        # v2: failure metadata, keyed by the row's λ.
        "failures": {
            str(lam): [_failure_to_dict(f) for f in failures]
            for lam, failures in result.failures.items()
        },
    }
    Path(path).write_text(json.dumps(doc, indent=2))


def load_table1(path: str | Path) -> Table1Result:
    doc = json.loads(Path(path).read_text())
    if doc.get("kind") != "table1":
        raise AnalysisError(f"{path}: not a table1 result file")
    _check_schema(doc, path)
    config_dict = dict(doc["config"])
    config_dict["lambdas"] = tuple(config_dict["lambdas"])
    config_dict["c_hats"] = tuple(config_dict["c_hats"])
    result = Table1Result(config=Table1Config(**config_dict))
    for row in doc["rows"]:
        result.rows.append(
            Table1Row(
                lam=float(row["lam"]),
                dover_percent={
                    float(c): _summary_from_dict(s)
                    for c, s in row["dover_percent"].items()
                },
                vdover_percent=_summary_from_dict(row["vdover_percent"]),
                best_c_hat=float(row["best_c_hat"]),
                gain_percent=_summary_from_dict(row["gain_percent"]),
            )
        )
    # v1 files carry no failure metadata; v2 files may carry an empty map.
    for lam, failures in doc.get("failures", {}).items():
        result.failures[float(lam)] = [_failure_from_dict(f) for f in failures]
    return result


def diff_table1(a: Table1Result, b: Table1Result) -> list[dict]:
    """Per-row drift between two Table-I runs (matched by λ).

    Returns one record per common λ with the V-Dover mean drift, the gain
    drift, and whether the drift exceeds the combined confidence widths
    (``significant``) — the machine answer to "did my change move Table I?".
    """
    by_lam_a = {row.lam: row for row in a.rows}
    by_lam_b = {row.lam: row for row in b.rows}
    out = []
    for lam in sorted(set(by_lam_a) & set(by_lam_b)):
        ra, rb = by_lam_a[lam], by_lam_b[lam]
        vd_drift = rb.vdover_percent.mean - ra.vdover_percent.mean
        gain_drift = rb.gain_percent.mean - ra.gain_percent.mean
        width = ra.vdover_percent.ci_half_width + rb.vdover_percent.ci_half_width
        out.append(
            {
                "lam": lam,
                "vdover_drift": vd_drift,
                "gain_drift": gain_drift,
                "significant": abs(vd_drift) > width,
            }
        )
    return out


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------
def save_sweep(path: str | Path, result: SweepResult) -> None:
    doc = {
        "schema": _SCHEMA,
        "kind": "sweep",
        "sweep_name": result.sweep_name,
        "swept_values": result.swept_values,
        "percents": {
            name: [_summary_to_dict(s) for s in summaries]
            for name, summaries in result.percents.items()
        },
        # v2: failure metadata (``swept_value`` identifies the cell).
        "failures": [
            {"swept_value": v, **_failure_to_dict(f)} for v, f in result.failures
        ],
    }
    Path(path).write_text(json.dumps(doc, indent=2))


def load_sweep(path: str | Path) -> SweepResult:
    doc = json.loads(Path(path).read_text())
    if doc.get("kind") != "sweep":
        raise AnalysisError(f"{path}: not a sweep result file")
    _check_schema(doc, path)
    result = SweepResult(sweep_name=doc["sweep_name"])
    result.swept_values = [float(v) for v in doc["swept_values"]]
    result.percents = {
        name: [_summary_from_dict(s) for s in summaries]
        for name, summaries in doc["percents"].items()
    }
    for record in doc.get("failures", []):
        record = dict(record)
        swept_value = float(record.pop("swept_value"))
        result.failures.append((swept_value, _failure_from_dict(record)))
    return result
