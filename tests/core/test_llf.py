"""Unit tests for the LLF scheduler."""

import pytest

from repro.capacity import ConstantCapacity, PiecewiseConstantCapacity
from repro.core import LLFScheduler
from repro.sim import Job, simulate


def J(jid, r, p, d, v=1.0):
    return Job(jid, r, p, d, v)


class TestLlfBasics:
    def test_single_job(self):
        r = simulate([J(0, 0.0, 2.0, 5.0)], ConstantCapacity(1.0), LLFScheduler(), validate=True)
        assert r.completed_ids == [0]

    def test_least_laxity_runs_first(self):
        # laxity(0) = 9 - 5 = 4; laxity(1) = 3 - 1 = 2 -> job 1 first.
        jobs = [J(0, 0.0, 5.0, 9.0), J(1, 0.0, 1.0, 3.0)]
        r = simulate(jobs, ConstantCapacity(1.0), LLFScheduler(), validate=True)
        assert r.trace.segments[0].jid == 1
        assert r.n_completed == 2

    def test_feasible_set_all_complete(self):
        jobs = [
            J(0, 0.0, 2.0, 9.0),
            J(1, 0.0, 2.0, 4.0),
            J(2, 3.0, 1.0, 6.0),
            J(3, 5.0, 2.0, 9.0),
        ]
        r = simulate(jobs, ConstantCapacity(1.0), LLFScheduler(), validate=True)
        assert r.n_completed == 4

    def test_laxity_crossing_preempts(self):
        # Job 0: laxity 10 at t=0.  Job 1 arrives at t=0 with laxity 11;
        # while job 0 runs its laxity stays 10 but job 1's decays, crossing
        # at t≈1, after which job 1 must preempt before it becomes urgent.
        jobs = [J(0, 0.0, 5.0, 15.0), J(1, 0.0, 2.0, 13.0)]
        r = simulate(jobs, ConstantCapacity(1.0), LLFScheduler(), validate=True)
        assert r.n_completed == 2
        # Both complete despite the crossing (no starvation).

    def test_tight_pair_no_thrash(self):
        """Two equal-laxity jobs must not livelock the engine (hysteresis)."""
        jobs = [J(0, 0.0, 4.0, 6.0), J(1, 0.0, 4.0, 6.0001)]
        r = simulate(jobs, ConstantCapacity(1.0), LLFScheduler(), validate=True)
        assert r.n_completed <= 1  # 8 units of demand cannot fit in 6
        assert len(r.trace.segments) < 50  # bounded switching

    def test_varying_capacity(self):
        cap = PiecewiseConstantCapacity([0.0, 2.0], [1.0, 4.0])
        # Conservative laxities at t=0: job 0 -> 1, job 1 -> 2; job 0 runs
        # first, job 1 finishes early thanks to the rate-4 stretch.
        jobs = [J(0, 0.0, 2.0, 3.0), J(1, 0.0, 8.0, 10.0)]
        r = simulate(jobs, cap, LLFScheduler(), validate=True)
        assert r.trace.segments[0].jid == 0
        assert r.n_completed == 2
        assert r.trace.completion_times[1] == pytest.approx(4.0)

    def test_conservative_estimate_can_misjudge(self):
        """With c̲ = 1 the laxity of a long job looks desperate, so LLF
        burns the short job's window on it — the Section III-B caveat about
        generalising LLF to varying capacity."""
        cap = PiecewiseConstantCapacity([0.0, 2.0], [1.0, 4.0])
        jobs = [J(0, 0.0, 2.0, 3.0), J(1, 0.0, 8.0, 4.5)]
        r = simulate(jobs, cap, LLFScheduler(), validate=True)
        assert r.completed_ids == [1]

    def test_explicit_rate_estimate(self):
        sched = LLFScheduler(rate_estimate=2.0)
        jobs = [J(0, 0.0, 2.0, 5.0)]
        r = simulate(jobs, ConstantCapacity(2.0), sched, validate=True)
        assert r.completed_ids == [0]

    def test_expired_waiting_job_purged(self):
        jobs = [J(0, 0.0, 5.0, 5.0), J(1, 1.0, 4.0, 2.0)]
        r = simulate(jobs, ConstantCapacity(1.0), LLFScheduler(), validate=True)
        assert 1 in r.failed_ids
