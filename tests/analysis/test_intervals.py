"""Tests for the Lemma-1 report helper."""

import pytest

from repro.analysis.intervals import lemma1_report
from repro.capacity import ConstantCapacity, TwoStateMarkovCapacity
from repro.core import VDoverScheduler
from repro.errors import AnalysisError
from repro.sim import Job, simulate
from repro.workload import PoissonWorkload


class TestReport:
    def test_holds_on_paper_workload(self):
        jobs = PoissonWorkload(lam=6.0, horizon=60.0).generate(5)
        capacity = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=15.0, rng=9)
        sched = VDoverScheduler(k=7.0)
        simulate(jobs, capacity, sched)
        report = lemma1_report(sched, capacity)
        assert report.holds
        assert report.n_intervals > 0
        assert 0.0 < report.mean_tightness <= 1.0
        assert report.max_tightness <= 1.0 + 1e-9

    def test_tightness_one_for_saturated_interval(self):
        """A single zero-laxity job saturates its interval: work == regval
        (density 1), so tightness is exactly 1."""
        sched = VDoverScheduler(k=7.0)
        jobs = [Job(0, 0.0, 4.0, 4.0, 4.0)]  # density 1, zero laxity
        cap = ConstantCapacity(1.0)
        simulate(jobs, cap, sched)
        report = lemma1_report(sched, cap)
        assert report.n_intervals == 1
        assert report.max_tightness == pytest.approx(1.0)

    def test_unrun_scheduler_rejected(self):
        sched = VDoverScheduler(k=7.0)
        with pytest.raises((AnalysisError, AttributeError)):
            lemma1_report(sched, ConstantCapacity(1.0))

    def test_str_summary(self):
        sched = VDoverScheduler(k=7.0)
        cap = ConstantCapacity(1.0)
        simulate([Job(0, 0.0, 1.0, 3.0, 2.0)], cap, sched)
        assert "holds" in str(lemma1_report(sched, cap))
