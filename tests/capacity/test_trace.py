"""Unit tests for trace-driven capacity and function sampling."""

import math

import pytest

from repro.capacity import TraceCapacity, sample_function
from repro.errors import CapacityError


class TestTraceCapacity:
    def test_zero_order_hold(self):
        cap = TraceCapacity([0.0, 1.0, 3.0], [2.0, 5.0, 1.0])
        assert cap.value(0.5) == 2.0
        assert cap.value(1.0) == 5.0
        assert cap.value(2.9) == 5.0
        assert cap.value(100.0) == 1.0

    def test_rejects_ragged_input(self):
        with pytest.raises(CapacityError):
            TraceCapacity([0.0, 1.0], [2.0])

    def test_rejects_empty(self):
        with pytest.raises(CapacityError):
            TraceCapacity([], [])

    def test_clip_requires_bounds(self):
        with pytest.raises(CapacityError):
            TraceCapacity([0.0], [2.0], clip=True)

    def test_clip_clamps_spikes(self):
        cap = TraceCapacity(
            [0.0, 1.0, 2.0], [0.5, 10.0, 2.0], lower=1.0, upper=4.0, clip=True
        )
        assert cap.value(0.5) == 1.0
        assert cap.value(1.5) == 4.0
        assert cap.value(2.5) == 2.0

    def test_unclipped_out_of_bounds_rejected(self):
        with pytest.raises(CapacityError):
            TraceCapacity([0.0, 1.0], [0.5, 10.0], lower=1.0, upper=4.0)


class TestSampleFunction:
    def test_constant_function(self):
        cap = sample_function(lambda t: 3.0, horizon=10.0, dt=0.5)
        assert cap.integrate(0.0, 10.0) == pytest.approx(30.0)

    def test_linear_function_midpoint_accuracy(self):
        # Midpoint rule integrates affine functions exactly.
        cap = sample_function(lambda t: 1.0 + t, horizon=10.0, dt=0.25)
        assert cap.integrate(0.0, 10.0) == pytest.approx(10.0 + 50.0)

    def test_smooth_function_converges(self):
        fn = lambda t: 2.0 + math.sin(t)  # noqa: E731
        coarse = sample_function(fn, horizon=6.28, dt=0.5)
        fine = sample_function(fn, horizon=6.28, dt=0.01)
        exact = 2.0 * 6.28 + (1.0 - math.cos(6.28))
        assert abs(fine.integrate(0.0, 6.28) - exact) < abs(
            coarse.integrate(0.0, 6.28) - exact
        ) + 1e-9
        assert fine.integrate(0.0, 6.28) == pytest.approx(exact, rel=1e-3)

    def test_rejects_bad_grid(self):
        with pytest.raises(CapacityError):
            sample_function(lambda t: 1.0, horizon=0.0, dt=0.1)
        with pytest.raises(CapacityError):
            sample_function(lambda t: 1.0, horizon=1.0, dt=0.0)
