"""Multiprocessor crash recovery: snapshot/restore must be bit-identical.

Mirror of ``tests/sim/test_snapshot.py`` on the multiprocessor engine —
the same kernel machinery (periodic :class:`~repro.sim.journal.
EngineSnapshot`, write-ahead :class:`~repro.sim.journal.EventJournal`,
replay verification) now serves every shipped multiprocessor policy:
global EDF/density, Global-V-Dover and partitioned V-Dover behind each
dispatcher.  ``multi_results_bit_identical`` compares with no float
tolerance: per-processor segments, outcomes, completion times and value
points all exact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.capacity import TwoStateMarkovCapacity
from repro.cloud.cluster import (
    BestFitDispatcher,
    LeastWorkDispatcher,
    RoundRobinDispatcher,
)
from repro.core import VDoverScheduler
from repro.errors import RecoveryError, SimulatedCrash
from repro.faults import EngineCrashPlan
from repro.multi import (
    GlobalDensityScheduler,
    GlobalEDFScheduler,
    GlobalVDoverScheduler,
    MultiprocessorEngine,
    PartitionedScheduler,
    multi_results_bit_identical,
    simulate_multi,
)
from repro.sim import EventJournal
from repro.workload.poisson import PoissonWorkload

POLICIES = [
    pytest.param(lambda: GlobalEDFScheduler(), id="g-edf"),
    pytest.param(lambda: GlobalDensityScheduler(), id="g-density"),
    pytest.param(lambda: GlobalVDoverScheduler(k=7.0), id="g-vdover"),
    pytest.param(
        lambda: PartitionedScheduler(
            RoundRobinDispatcher(), lambda: VDoverScheduler(k=7.0)
        ),
        id="part-rr",
    ),
    pytest.param(
        lambda: PartitionedScheduler(
            LeastWorkDispatcher(), lambda: VDoverScheduler(k=7.0)
        ),
        id="part-lw",
    ),
    pytest.param(
        lambda: PartitionedScheduler(
            BestFitDispatcher(), lambda: VDoverScheduler(k=7.0)
        ),
        id="part-bf",
    ),
]


def _instance(seed: int = 5, horizon: float = 12.0, m: int = 3):
    workload = PoissonWorkload(
        lam=6.0, horizon=horizon, density_range=(1.0, 7.0), c_lower=1.0
    )
    jobs = workload.generate(np.random.default_rng(seed))
    capacities = [
        TwoStateMarkovCapacity(
            1.0 + 0.5 * p,
            35.0 - 5.0 * p,
            mean_sojourn=horizon / 4.0,
            rng=np.random.default_rng(seed + 1 + p),
        )
        for p in range(m)
    ]
    return jobs, capacities


@pytest.mark.parametrize("make_policy", POLICIES)
@pytest.mark.parametrize("crash_at", [1, 17, 60])
def test_multi_crash_resume_bit_identical(make_policy, crash_at):
    jobs, capacities = _instance()
    reference = simulate_multi(jobs, capacities, make_policy())

    journal = EventJournal()
    recovered = simulate_multi(
        jobs,
        capacities,
        make_policy(),
        faults=[EngineCrashPlan(at_event=crash_at)],
        journal=journal,
        snapshot_every=8,
        recover=True,
    )
    assert recovered.recoveries == 1
    assert multi_results_bit_identical(reference, recovered), (
        f"resume diverged for {reference.scheduler_name}"
    )
    assert len(journal) > crash_at


@pytest.mark.parametrize("make_policy", POLICIES)
def test_multi_snapshot_survives_pickling(make_policy):
    """A pickle round-trip (a real process boundary) loses nothing."""
    jobs, capacities = _instance(seed=9)
    reference = simulate_multi(jobs, capacities, make_policy())

    engine = MultiprocessorEngine(
        jobs,
        capacities,
        make_policy(),
        faults=[EngineCrashPlan(at_event=25)],
        snapshot_every=10,
    )
    with pytest.raises(SimulatedCrash) as excinfo:
        engine.run()
    snapshot = excinfo.value.snapshot.roundtrip()

    fresh = MultiprocessorEngine(jobs, capacities, make_policy())
    fresh.restore(snapshot)
    resumed = fresh.run()
    assert multi_results_bit_identical(reference, resumed)


def test_multi_multiple_crash_plans_all_survived():
    jobs, capacities = _instance(seed=13)
    reference = simulate_multi(jobs, capacities, GlobalVDoverScheduler(k=7.0))
    recovered = simulate_multi(
        jobs,
        capacities,
        GlobalVDoverScheduler(k=7.0),
        faults=[
            EngineCrashPlan(at_event=10),
            EngineCrashPlan(at_time=6.0),
            EngineCrashPlan(at_event=55),
        ],
        snapshot_every=4,
        recover=True,
    )
    assert recovered.recoveries == 3
    assert multi_results_bit_identical(reference, recovered)


def test_multi_restore_rejects_wrong_processor_count():
    jobs, capacities = _instance(seed=5, m=3)
    engine = MultiprocessorEngine(
        jobs,
        capacities,
        GlobalEDFScheduler(),
        faults=[EngineCrashPlan(at_event=9)],
    )
    with pytest.raises(SimulatedCrash) as excinfo:
        engine.run()
    snapshot = excinfo.value.snapshot

    smaller = MultiprocessorEngine(jobs, capacities[:2], GlobalEDFScheduler())
    with pytest.raises(RecoveryError):
        smaller.restore(snapshot)


def test_multi_restore_rejects_wrong_scheduler():
    jobs, capacities = _instance(seed=5)
    engine = MultiprocessorEngine(
        jobs,
        capacities,
        GlobalEDFScheduler(),
        faults=[EngineCrashPlan(at_event=9)],
    )
    with pytest.raises(SimulatedCrash) as excinfo:
        engine.run()
    snapshot = excinfo.value.snapshot

    other = MultiprocessorEngine(
        jobs, capacities, GlobalVDoverScheduler(k=7.0)
    )
    with pytest.raises(RecoveryError):
        other.restore(snapshot)


def test_multi_journal_replay_detects_divergence():
    """Tampering with a journaled record past the snapshot makes the
    resumed multiprocessor engine's replay verification fail loudly."""
    jobs, capacities = _instance(seed=7)
    journal = EventJournal()
    engine = MultiprocessorEngine(
        jobs,
        capacities,
        GlobalEDFScheduler(),
        faults=[EngineCrashPlan(at_event=20)],
        journal=journal,
        snapshot_every=8,
    )
    with pytest.raises(SimulatedCrash) as excinfo:
        engine.run()
    snapshot = excinfo.value.snapshot
    assert snapshot.dispatch_count < len(journal)

    victim = snapshot.dispatch_count
    original = journal._records[victim]
    journal._records[victim] = type(original)(
        index=original.index,
        time=original.time,
        kind=original.kind,
        key="jid:999999",
        version=original.version,
    )

    fresh = MultiprocessorEngine(
        jobs, capacities, GlobalEDFScheduler(), journal=journal
    )
    fresh.restore(snapshot)
    with pytest.raises(RecoveryError, match="diverged"):
        fresh.run()


def test_multi_crash_without_recover_reraises():
    jobs, capacities = _instance(seed=5)
    with pytest.raises(SimulatedCrash):
        simulate_multi(
            jobs,
            capacities,
            GlobalEDFScheduler(),
            faults=[EngineCrashPlan(at_event=5)],
        )
