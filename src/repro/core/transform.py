"""The time-stretch transformation (paper, Section III-A).

The offline varying-capacity problem reduces to the classical
constant-capacity problem through the stretch map

    t' = T(t) = (1/c') ∫₀ᵗ c(τ) dτ

where ``c'`` is the target constant rate.  The map preserves workload
between any two epochs — ``∫_s^t c = c'·(T(t) − T(s))`` — so a job executes
the same amount of work in an interval as in its image, and a schedule is
feasible/valuable on the original instance iff its image is on the
transformed one.  This module implements the map, its inverse, the induced
job transformation (``r' = T(r)``, ``d' = T(d)``, ``p' = p``, ``v' = v``)
and the schedule bijection, so any constant-capacity offline algorithm can
be applied to varying-capacity instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.capacity.base import CapacityFunction
from repro.capacity.constant import ConstantCapacity
from repro.errors import CapacityError
from repro.sim.job import Job
from repro.sim.trace import RunSegment

__all__ = ["StretchTransform"]


@dataclass(frozen=True)
class _TransformedInstance:
    jobs: list[Job]
    capacity: ConstantCapacity


class StretchTransform:
    """The bijection between a varying-capacity system and its
    constant-capacity image.

    Parameters
    ----------
    capacity:
        The original time-varying capacity ``c(t)``.
    rate:
        The constant rate ``c'`` of the image system.  The paper uses the
        upper bound ``c̄``; any positive value yields a valid reduction, so
        it is configurable (rate 1 makes stretched time equal cumulative
        work, which is occasionally convenient).
    """

    def __init__(self, capacity: CapacityFunction, rate: float | None = None) -> None:
        if rate is None:
            rate = capacity.upper
        if rate <= 0.0:
            raise CapacityError(f"target constant rate must be positive: {rate!r}")
        self._capacity = capacity
        self._rate = float(rate)
        # Prefix-sum index fast path (repro.capacity.prefix): T(t) is by
        # definition the cumulative-work array evaluated at t, and T⁻¹ a
        # searchsorted on it, so both directions are O(log n) instead of a
        # linear rescan from t=0 on every call.  Values are bit-identical:
        # indexed models define integrate(0, t) as cumulative(t) − 0.0.
        self._indexed = bool(getattr(capacity, "supports_prefix_index", False))

    @property
    def rate(self) -> float:
        """The image system's constant rate ``c'``."""
        return self._rate

    # ------------------------------------------------------------------
    # The time map
    # ------------------------------------------------------------------
    def forward(self, t: float) -> float:
        """``T(t) = (1/c') ∫₀ᵗ c`` — original time to stretched time."""
        if t < 0.0:
            raise CapacityError(f"stretch map undefined for t < 0: {t!r}")
        if self._indexed:
            return self._capacity.cumulative(t) / self._rate
        return self._capacity.integrate(0.0, t) / self._rate

    def inverse(self, t_stretched: float) -> float:
        """``T⁻¹`` — stretched time back to original time.

        Because ``c >= c̲ > 0``, ``T`` is strictly increasing and the
        inverse is the instant by which ``c'·t'`` units of work accumulate.
        """
        if t_stretched < 0.0:
            raise CapacityError(
                f"inverse stretch undefined for t' < 0: {t_stretched!r}"
            )
        return self._capacity.advance(0.0, self._rate * t_stretched)

    # ------------------------------------------------------------------
    # Instance transformation
    # ------------------------------------------------------------------
    def transform_job(self, job: Job) -> Job:
        """Map ``T_i`` to its stretched image ``T'_i`` (same workload and
        value, stretched release and deadline)."""
        return Job(
            jid=job.jid,
            release=self.forward(job.release),
            workload=job.workload,
            deadline=self.forward(job.deadline),
            value=job.value,
        )

    def transform_instance(self, jobs: Sequence[Job]) -> _TransformedInstance:
        """Map a whole instance; the image runs on ``ConstantCapacity(c')``."""
        return _TransformedInstance(
            jobs=[self.transform_job(job) for job in jobs],
            capacity=ConstantCapacity(self._rate),
        )

    # ------------------------------------------------------------------
    # Schedule bijection
    # ------------------------------------------------------------------
    def map_segments(self, segments: Sequence[RunSegment]) -> list[RunSegment]:
        """Map a schedule of the original system to the image system.

        Interval endpoints map through ``T``; the work in each segment is
        preserved (that is the whole point of the transformation)."""
        out = []
        for seg in segments:
            start = self.forward(seg.start)
            end = self.forward(seg.end)
            out.append(RunSegment(start=start, end=end, jid=seg.jid, work=seg.work))
        return out

    def unmap_segments(self, segments: Sequence[RunSegment]) -> list[RunSegment]:
        """Map a schedule of the image system back to the original one."""
        out = []
        for seg in segments:
            start = self.inverse(seg.start)
            end = self.inverse(seg.end)
            out.append(RunSegment(start=start, end=end, jid=seg.jid, work=seg.work))
        return out
