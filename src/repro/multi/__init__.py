"""Multiprocessor extension: global scheduling with free migration, plus a
partitioned adapter — the 'cloud-wise' extension the paper's conclusion
points at, in both standard flavours."""

from repro.multi.engine import MultiprocessorEngine, simulate_multi
from repro.multi.global_vdover import GlobalVDoverScheduler
from repro.multi.global_policies import (
    GlobalDensityScheduler,
    GlobalEDFScheduler,
    GlobalTopM,
)
from repro.multi.metrics import MultiSimulationResult, multi_results_bit_identical
from repro.multi.partitioned import PartitionedScheduler
from repro.multi.scheduler import (
    Assignment,
    MultiScheduler,
    MultiSchedulerContext,
    SingleProcessorAdapter,
)

__all__ = [
    "MultiprocessorEngine",
    "simulate_multi",
    "GlobalDensityScheduler",
    "GlobalEDFScheduler",
    "GlobalVDoverScheduler",
    "GlobalTopM",
    "MultiSimulationResult",
    "multi_results_bit_identical",
    "PartitionedScheduler",
    "Assignment",
    "MultiScheduler",
    "MultiSchedulerContext",
    "SingleProcessorAdapter",
]
