"""Least Laxity First under an estimated rate.

The paper notes (Section III-B) that LLF does not generalise cleanly to
time-varying capacity because the true remaining *processing time* — and
hence the true laxity — depends on the unknown future trajectory.  This
implementation follows the paper's own workaround for Dover: laxity is
computed against a fixed rate estimate (the conservative bound ``c̲`` by
default, matching Definition 5's *conservative laxity*).

Event-driven realisation.  For a *waiting* job the estimated laxity
``d − t − p_r/ĉ`` decreases at unit rate while ``p_r`` is frozen, so the
ordering among waiting jobs is static between preemptions: the job with the
minimal "laxity intercept" ``d − p_r/ĉ`` is always the least-lax waiting
job.  For the *running* job the laxity is non-decreasing whenever the real
capacity is at least the estimate, so a waiting job can overtake the
running one; the scheduler arms a crossing timer at the conservative
estimate of that instant and re-evaluates there.  A hysteresis margin
``eta`` prevents the infinite-switching pathology of continuous LLF (two
jobs with equal laxity would otherwise exchange the processor at an
unbounded rate).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.sim.batchproto import BatchScheduler
from repro.sim.job import Job
from repro.sim.queues import JobQueue
from repro.sim.scheduler import Scheduler

__all__ = ["LLFScheduler"]


class LLFScheduler(BatchScheduler, Scheduler):
    """Least (conservative) laxity first with switching hysteresis.

    Parameters
    ----------
    rate_estimate:
        Rate used to estimate laxities; ``None`` means the conservative
        bound ``c̲`` supplied by the context.
    eta:
        Hysteresis quantum: a waiting job must undercut the running job's
        laxity by more than ``eta`` to preempt it, and crossing timers are
        re-armed no denser than ``eta`` apart.  This bounds the switching
        rate at ~1/eta (continuous LLF switches infinitely often on laxity
        ties — Mok's classic observation); the default trades scheduling
        precision of 0.05 time units for a bounded event count.
    """

    name = "LLF"

    #: ``on_job_end`` re-elects (and emits / re-arms timers) even for a
    #: waiting job's deadline, so same-instant deadline sweeps must stay
    #: per-event under the batch protocol.
    batch_pure_completions = False

    def __init__(self, rate_estimate: float | None = None, eta: float = 0.05) -> None:
        super().__init__()
        self._rate_cfg = rate_estimate
        self._eta = float(eta)

    def reset(self) -> None:
        self._rate = (
            self._rate_cfg if self._rate_cfg is not None else self.ctx.bounds[0]
        )
        # Waiting jobs keyed by laxity intercept d - p_r/rate: the minimal
        # intercept is the least-lax waiting job at every instant.
        self._ready: JobQueue[Job] = JobQueue(self._intercept_key, name="llf-ready")

    # ------------------------------------------------------------------
    def _intercept_key(self, job: Job) -> tuple:
        # p_r is frozen while waiting, so this key is stable in-queue.
        return (job.deadline - self.ctx.remaining(job) / self._rate, job.jid)

    def _laxity(self, job: Job) -> float:
        return self.ctx.claxity(job, self._rate)

    def _arm_crossing_timer(self, running: Job) -> None:
        """Arm a re-evaluation alarm at the conservative instant where the
        best waiting job's laxity reaches the running job's current laxity
        (running laxity treated as constant — conservative because real
        capacity >= estimate only helps the running job)."""
        if not self._ready:
            return
        waiter = self._ready.first()
        # The waiter preempts when its laxity undercuts the runner's by more
        # than eta; the gap shrinks at rate <= 1, so the crossing is no
        # earlier than now + gap + eta.  The eta floor guarantees strictly
        # positive re-arm delays (no same-instant alarm storms).
        gap = self._laxity(waiter) - self._laxity(running)
        delay = max(gap + self._eta, self._eta)
        self.ctx.set_alarm(waiter, self.ctx.now() + delay, tag="llf-cross")

    def _elect_from(
        self, current: Optional[Job]
    ) -> Tuple[Optional[Job], Optional[tuple]]:
        """Pick the least-lax job among ``current`` + waiting, with
        hysteresis favouring the running job.

        The current job is passed explicitly so a batch fold can thread the
        hypothetical current through the group; the decision record is
        returned as a payload rather than emitted (laxities, crossing
        timers and queue moves are bit-identical either way — the group
        shares one timestamp, so no work elapses between fold steps)."""
        if not self._ready:
            return current, None
        waiter = self._ready.first()
        if current is None:
            chosen = self._ready.dequeue()
            self._arm_crossing_timer(chosen)
            return chosen, (self.name, "admit.idle", chosen.jid, None)
        if self._laxity(waiter) < self._laxity(current) - self._eta:
            self._ready.remove(waiter)
            self._ready.insert(current)
            self._arm_crossing_timer(waiter)
            return waiter, (
                self.name,
                "preempt.llf",
                waiter.jid,
                {"preempted": current.jid},
            )
        self._arm_crossing_timer(current)
        return current, (self.name, "keep.current", current.jid, None)

    def _elect(self) -> Optional[Job]:
        chosen, payload = self._elect_from(self.ctx.current_job())
        self._emit_decision(payload)
        return chosen

    # ------------------------------------------------------------------
    def _on_release_from(
        self, cur: Optional[Job], job: Job
    ) -> Tuple[Optional[Job], Optional[tuple]]:
        self._ready.insert(job)
        return self._elect_from(cur)

    def on_release(self, job: Job) -> Optional[Job]:
        self._ready.insert(job)
        return self._elect()

    def on_job_end(self, job: Job, completed: bool) -> Optional[Job]:
        self._ready.remove(job)
        return self._elect()

    def on_alarm(self, job: Job, tag: str) -> Optional[Job]:
        return self._elect()

    def on_eviction(self, job: Job) -> Optional[Job]:
        self._ready.insert(job)
        return self._elect()

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def _policy_state(self) -> dict:
        return {
            "rate": self._rate,
            "ready": self._ready.live_jids(),
        }

    def _restore_policy_state(self, state: dict, jobs_by_id) -> None:
        self._rate = state["rate"]
        # Intercept keys recompute identically: a waiting job's remaining
        # workload is frozen and the engine restores it before set_state.
        for jid in state["ready"]:
            self._ready.insert(jobs_by_id[jid])
