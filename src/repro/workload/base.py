"""Workload generator interface.

A generator produces a job list from an explicit RNG; all randomness flows
through :class:`numpy.random.Generator` so Monte-Carlo replications are
reproducible and parallelisable via ``SeedSequence.spawn``.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.errors import InvalidInstanceError
from repro.sim.job import Job

__all__ = ["WorkloadGenerator", "as_generator"]


def as_generator(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce a seed-or-generator argument into a Generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


class WorkloadGenerator(abc.ABC):
    """Produces problem instances (job lists) on demand."""

    @abc.abstractmethod
    def generate(self, rng: np.random.Generator | int | None = None) -> list[Job]:
        """Draw one instance.  Jobs are returned sorted by release time
        with sequential ids in that order."""

    # ------------------------------------------------------------------
    @staticmethod
    def _finalize(
        releases: Sequence[float],
        workloads: Sequence[float],
        rel_deadlines: Sequence[float],
        values: Sequence[float],
    ) -> list[Job]:
        """Assemble parallel arrays into sorted, validated jobs."""
        n = len(releases)
        if not (len(workloads) == len(rel_deadlines) == len(values) == n):
            raise InvalidInstanceError("generator produced ragged arrays")
        order = np.argsort(releases, kind="stable")
        jobs = []
        for jid, idx in enumerate(order):
            r = float(releases[idx])
            jobs.append(
                Job(
                    jid=jid,
                    release=r,
                    workload=float(workloads[idx]),
                    deadline=r + float(rel_deadlines[idx]),
                    value=float(values[idx]),
                )
            )
        return jobs
